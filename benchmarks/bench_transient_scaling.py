#!/usr/bin/env python
"""Transient-kernel scaling benchmark: vectorized assembly + LU-reuse fast path.

Sweeps circuit size for the two linear workload shapes that dominate the
characterisation and cluster flows -- Thevenin-driven RC ladders and
multi-net coupled clusters -- and times each against the pre-optimization
kernel (``solver="legacy"``: full element-by-element Python assembly on
every Newton iteration of every time point).  A transistor-loaded variant
measures the Newton-path win (cached base matrices; only nonlinear elements
re-stamped per iteration).

Every linear case is additionally cross-checked: the fast-path and Newton
solutions must agree within 1e-9 V, and the speedup over the legacy kernel
must be at least ``MIN_LINEAR_SPEEDUP``.

Results are written to ``BENCH_transient.json`` (see ``--output``); run with
``--quick`` for the CI smoke configuration.

Usage::

    PYTHONPATH=src python benchmarks/bench_transient_scaling.py [--quick]
"""

import argparse
import datetime
import json
import math
import os
import platform
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import numpy as np

from repro.circuit import Circuit, SaturatedRamp, transient
from repro.circuit.mosfet import MOSFETParams
from repro.units import fF, ps

#: Acceptance floor for the linear-circuit fast path vs the legacy kernel.
MIN_LINEAR_SPEEDUP = 3.0
#: Fast path and Newton path must agree to this tolerance (volts).
MAX_CROSSCHECK_DV = 1e-9

T_STOP = ps(500)
DT = ps(1)

_NMOS = MOSFETParams(polarity="n", vto=0.35, kp=3e-4, lambda_=0.06)
_PMOS = MOSFETParams(polarity="p", vto=0.35, kp=1.2e-4, lambda_=0.08)


def rc_ladder(num_segments):
    """Characterisation-style workload: Thevenin driver into an RC ladder."""
    circuit = Circuit(f"rc_ladder_{num_segments}")
    circuit.add_voltage_source(
        "VTH", "drv", "0", SaturatedRamp(0.0, 1.2, delay=ps(50), transition=ps(40))
    )
    circuit.add_resistor("RTH", "drv", "n0", 200.0)
    for i in range(num_segments):
        circuit.add_resistor(f"R{i}", f"n{i}", f"n{i + 1}", 120.0)
        circuit.add_capacitor(f"C{i}", f"n{i + 1}", "0", fF(4))
        circuit.add_capacitor(f"CC{i}", f"n{i}", f"n{i + 1}", fF(1))
    circuit.add_resistor("RHOLD", f"n{num_segments}", "0", 5e4)
    return circuit


def coupled_cluster(num_segments, num_aggressors=2, nonlinear_receivers=False):
    """Golden-cluster-style workload: coupled victim/aggressor nets.

    The victim net is held by a resistor (its driver is quiet) while the
    aggressor nets are driven by Thevenin ramps; neighbouring nets couple
    capacitively segment by segment.  With ``nonlinear_receivers`` each net
    gets an inverter receiver, which forces the Newton path.
    """
    circuit = Circuit(f"cluster_{num_segments}x{num_aggressors + 1}")
    nets = ["vic"] + [f"agg{k}" for k in range(num_aggressors)]
    circuit.add_resistor("RHOLD_vic", "vic_0", "0", 400.0)
    for k in range(num_aggressors):
        circuit.add_voltage_source(
            f"VTH_{k}",
            f"agg{k}_src",
            "0",
            SaturatedRamp(0.0, 1.2, delay=ps(40 + 15 * k), transition=ps(50)),
        )
        circuit.add_resistor(f"RTH_{k}", f"agg{k}_src", f"agg{k}_0", 250.0)
    for net in nets:
        for i in range(num_segments):
            circuit.add_resistor(f"R_{net}_{i}", f"{net}_{i}", f"{net}_{i + 1}", 90.0)
            circuit.add_capacitor(f"Cg_{net}_{i}", f"{net}_{i + 1}", "0", fF(3))
    for a, b in zip(nets, nets[1:]):
        for i in range(num_segments + 1):
            circuit.add_capacitor(f"Cc_{a}_{b}_{i}", f"{a}_{i}", f"{b}_{i}", fF(1.5))
    if nonlinear_receivers:
        circuit.add_voltage_source("VDD", "vdd", "0", 1.2)
        for net in nets:
            tail = f"{net}_{num_segments}"
            circuit.add_mosfet(f"MN_{net}", f"{net}_out", tail, "0", _NMOS, w=1e-6)
            circuit.add_mosfet(f"MP_{net}", f"{net}_out", tail, "vdd", _PMOS, w=2e-6)
            circuit.add_capacitor(f"CL_{net}", f"{net}_out", "0", fF(2))
    else:
        for net in nets:
            circuit.add_capacitor(f"CL_{net}", f"{net}_{num_segments}", "0", fF(2))
    return circuit


def _time_run(factory, solver, repeats):
    """Best-of-``repeats`` wall-clock of one transient configuration."""
    best = math.inf
    result = None
    for _ in range(repeats):
        circuit = factory()
        start = time.perf_counter()
        result = transient(circuit, t_stop=T_STOP, dt=DT, solver=solver)
        best = min(best, time.perf_counter() - start)
    return best, result


def run_case(name, factory, *, repeats, linear):
    """Benchmark one circuit: legacy baseline vs the optimized kernel."""
    t_legacy, r_legacy = _time_run(factory, "legacy", repeats)
    t_new, r_new = _time_run(factory, "auto", repeats)
    max_dv = float(np.max(np.abs(r_legacy.solutions - r_new.solutions)))

    row = {
        "case": name,
        "linear": linear,
        "num_unknowns": int(r_new.solutions.shape[1]),
        "time_points": int(r_new.stats.num_time_points),
        "legacy_seconds": t_legacy,
        "optimized_seconds": t_new,
        "speedup": t_legacy / t_new,
        "max_dv_vs_legacy": max_dv,
        "fast_path": bool(r_new.stats.fast_path),
        "newton_iterations": int(r_new.stats.newton_iterations),
        "assemblies_avoided": int(r_new.stats.assemblies_avoided),
        "lu_reuse_hits": int(r_new.stats.lu_reuse_hits),
        "matrix_factorizations": int(r_new.stats.matrix_factorizations),
    }
    if linear:
        # Cross-check the LU fast path against the generic Newton path.
        _, r_newton = _time_run(factory, "newton", 1)
        row["max_dv_fast_vs_newton"] = float(
            np.max(np.abs(r_new.solutions - r_newton.solutions))
        )
    print(
        f"{name:32s} n={row['num_unknowns']:4d}  "
        f"legacy={t_legacy * 1e3:8.1f} ms  optimized={t_new * 1e3:7.1f} ms  "
        f"speedup={row['speedup']:6.1f}x  max|dV|={max_dv:.2e}"
    )
    return row


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small sweep for CI smoke runs"
    )
    parser.add_argument(
        "--output",
        default=os.path.join(os.path.dirname(__file__), "..", "BENCH_transient.json"),
        help="path of the JSON report (default: repo-root BENCH_transient.json)",
    )
    args = parser.parse_args(argv)

    if args.quick:
        # Best-of-3 timing even in quick mode: the speedup floor gates CI,
        # and a single sample on a shared runner is too noisy to gate on.
        ladder_sizes, cluster_sizes, repeats = [10, 25], [6], 3
    else:
        ladder_sizes, cluster_sizes, repeats = [10, 20, 40, 80], [4, 8, 16], 3

    rows = []
    print("--- linear workloads (LU-reuse fast path vs legacy kernel) ---")
    for size in ladder_sizes:
        rows.append(
            run_case(
                f"characterization_rc_ladder_{size}",
                lambda s=size: rc_ladder(s),
                repeats=repeats,
                linear=True,
            )
        )
    for size in cluster_sizes:
        rows.append(
            run_case(
                f"cluster_linear_{size}seg",
                lambda s=size: coupled_cluster(s),
                repeats=repeats,
                linear=True,
            )
        )
    print("--- nonlinear workload (vectorized Newton path vs legacy kernel) ---")
    rows.append(
        run_case(
            "cluster_golden_mosfet_receivers",
            lambda: coupled_cluster(
                cluster_sizes[0], nonlinear_receivers=True
            ),
            repeats=repeats,
            linear=False,
        )
    )

    linear_rows = [row for row in rows if row["linear"]]
    speedups = [row["speedup"] for row in linear_rows]
    geomean = math.exp(sum(math.log(s) for s in speedups) / len(speedups))
    worst_dv = max(row["max_dv_fast_vs_newton"] for row in linear_rows)
    summary = {
        "linear_speedup_min": min(speedups),
        "linear_speedup_geomean": geomean,
        "linear_max_dv_fast_vs_newton": worst_dv,
        "nonlinear_speedups": {
            row["case"]: row["speedup"] for row in rows if not row["linear"]
        },
    }
    report = {
        "benchmark": "bench_transient_scaling",
        "recorded_at": datetime.datetime.now(datetime.timezone.utc).isoformat(),
        "quick": args.quick,
        "t_stop_seconds": T_STOP,
        "dt_seconds": DT,
        "platform": platform.platform(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "results": rows,
        "summary": summary,
    }
    output = os.path.abspath(args.output)
    with open(output, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")

    print(
        f"\nlinear speedup: min {summary['linear_speedup_min']:.1f}x, "
        f"geomean {geomean:.1f}x  (floor: {MIN_LINEAR_SPEEDUP}x); "
        f"fast-vs-Newton max|dV| = {worst_dv:.2e}"
    )
    print(f"wrote {output}")

    failures = []
    if summary["linear_speedup_min"] < MIN_LINEAR_SPEEDUP:
        failures.append(
            f"linear speedup {summary['linear_speedup_min']:.2f}x is below the "
            f"{MIN_LINEAR_SPEEDUP}x floor"
        )
    if worst_dv > MAX_CROSSCHECK_DV:
        failures.append(
            f"fast path deviates from Newton by {worst_dv:.2e} V (> {MAX_CROSSCHECK_DV})"
        )
    for row in linear_rows:
        if not row["fast_path"]:
            failures.append(f"linear case {row['case']} did not take the fast path")
    if failures:
        print("FAILED:\n  " + "\n  ".join(failures), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
