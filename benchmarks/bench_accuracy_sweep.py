"""Claim A -- accuracy across noise clusters in 0.13 um and 90 nm.

The paper states that the macromodel "has been tested on several noise
clusters in 0.13 um and 90 nm technology ... and the error was always within
few percents" of circuit simulation.  This benchmark sweeps a set of cluster
configurations (aggressor count, wire length, victim cell, quiet level,
glitch presence) in both technology presets, reports the per-cluster peak and
area errors of the macromodel against the golden simulation, and asserts the
aggregate accuracy claim.
"""

import pytest

from repro.api import AnalysisConfig, NoiseAnalysisSession
from repro.experiments import accuracy_sweep_clusters
from repro.noise import compare_results
from repro.technology import build_default_library
from repro.units import ps

#: Per-cluster error budget (percent).  The paper says "within few percents";
#: we require a tight mean and allow a slightly wider per-case band (the
#: worst case on this substrate is a 1 mm crosstalk-only net driven by a
#: two-stage buffer aggressor, see EXPERIMENTS.md).
PER_CASE_LIMIT_PCT = 12.0
MEAN_LIMIT_PCT = 5.0


@pytest.fixture(scope="module")
def sweep_cases():
    return accuracy_sweep_clusters(quick=False)


def test_accuracy_sweep(benchmark, sweep_cases):
    # One session per technology: shared characterisation cache, both methods
    # resolved through the registry, batched execution.
    config = AnalysisConfig(methods=("golden", "macromodel"), dt=ps(2), check_nrc=False)
    sessions = {
        name: NoiseAnalysisSession(build_default_library(name), config)
        for name in ("cmos130", "cmos90")
    }

    rows = []

    def run_sweep():
        rows.clear()
        for technology, session in sessions.items():
            cases = [case for case in sweep_cases if case.technology == technology]
            reports = session.analyze_many(
                [case.spec for case in cases], labels=[case.label for case in cases]
            )
            for case, report in zip(cases, reports):
                golden = report.result("golden")
                macro = report.result("macromodel")
                errors = compare_results(golden, macro)
                rows.append((case.label, golden.peak, macro.peak, errors))
        return rows

    benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    print("\n--- Claim A: macromodel accuracy across clusters (both technologies) ---")
    print(f"{'cluster':58s} {'golden(V)':>9s} {'macro(V)':>9s} {'peak%':>7s} {'area%':>7s}")
    peak_errors = []
    area_errors = []
    for label, golden_peak, macro_peak, errors in rows:
        peak_errors.append(abs(errors["peak_error_pct"]))
        area_errors.append(abs(errors["area_error_pct"]))
        print(
            f"{label:58s} {golden_peak:9.3f} {macro_peak:9.3f} "
            f"{errors['peak_error_pct']:7.1f} {errors['area_error_pct']:7.1f}"
        )
    mean_peak = sum(peak_errors) / len(peak_errors)
    mean_area = sum(area_errors) / len(area_errors)
    print(f"mean |peak error| = {mean_peak:.1f} %   mean |area error| = {mean_area:.1f} %")
    print(f"max  |peak error| = {max(peak_errors):.1f} %   max  |area error| = {max(area_errors):.1f} %")

    assert mean_peak < MEAN_LIMIT_PCT
    assert mean_area < MEAN_LIMIT_PCT
    assert max(peak_errors) < PER_CASE_LIMIT_PCT
