"""Table 1 -- injected and propagated noise combination.

Regenerates the rows of the paper's Table 1: total noise peak and area at the
victim driving point computed by the golden transistor-level simulation, by
linear superposition of the separately evaluated injected and propagated
noise, and by the non-linear macromodel, together with the percentage errors
of the last two against the golden reference.

The shape to reproduce (paper values in parentheses): superposition
underestimates the peak (-22 %) and the area (-52.8 %) badly; the macromodel
stays within a few percent (+2.6 % peak, +0.8 % area).
"""

import pytest

from repro.api import AnalysisConfig, NoiseAnalysisSession
from repro.experiments import table1_cluster
from repro.golden import GoldenClusterAnalysis
from repro.noise import LinearSuperpositionAnalysis, MacromodelAnalysis, compare_results
from repro.units import ps


@pytest.fixture(scope="module")
def cluster():
    return table1_cluster()


@pytest.fixture(scope="module")
def golden_result(library_cmos130, cluster):
    return GoldenClusterAnalysis(library_cmos130).analyze(cluster, dt=ps(1))


def test_table1_macromodel(benchmark, library_cmos130, characterizer_cmos130, cluster, golden_result):
    """Timed: the macromodel analysis of the Table-1 cluster."""
    analysis = MacromodelAnalysis(library_cmos130, characterizer=characterizer_cmos130)
    analysis.analyze(cluster, dt=ps(1))  # warm the characterisation cache
    result = benchmark(lambda: analysis.analyze(cluster, dt=ps(1)))
    errors = compare_results(golden_result, result)

    print("\n--- Table 1: injected and propagated noise combination ---")
    print(f"{'Noise':12s} {'golden':>10s} {'macromodel':>11s} {'err%':>7s}   (paper: +2.6% / +0.8%)")
    print(f"{'Peak (V)':12s} {golden_result.peak:10.3f} {result.peak:11.3f} {errors['peak_error_pct']:7.1f}")
    print(
        f"{'Area (V*ps)':12s} {golden_result.area_v_ps:10.1f} {result.area_v_ps:11.1f} "
        f"{errors['area_error_pct']:7.1f}"
    )

    # Shape assertions: the macromodel tracks the golden simulation closely.
    assert abs(errors["peak_error_pct"]) < 8.0
    assert abs(errors["area_error_pct"]) < 10.0


def test_table1_linear_superposition(benchmark, library_cmos130, characterizer_cmos130, cluster, golden_result):
    """Timed: the conventional linear-superposition estimate of Table 1."""
    analysis = LinearSuperpositionAnalysis(library_cmos130, characterizer=characterizer_cmos130)
    analysis.analyze(cluster, dt=ps(1))  # warm the characterisation cache
    result = benchmark(lambda: analysis.analyze(cluster, dt=ps(1)))
    errors = compare_results(golden_result, result)

    print("\n--- Table 1: linear superposition baseline ---")
    print(f"{'Noise':12s} {'golden':>10s} {'superpos.':>10s} {'err%':>7s}   (paper: -22.0% / -52.8%)")
    print(f"{'Peak (V)':12s} {golden_result.peak:10.3f} {result.peak:10.3f} {errors['peak_error_pct']:7.1f}")
    print(
        f"{'Area (V*ps)':12s} {golden_result.area_v_ps:10.1f} {result.area_v_ps:10.1f} "
        f"{errors['area_error_pct']:7.1f}"
    )

    # Shape assertions: superposition underestimates both metrics badly.
    assert errors["peak_error_pct"] < -15.0
    assert errors["area_error_pct"] < -30.0


def test_table1_full_comparison_report(benchmark, library_cmos130, cluster):
    """Timed end-to-end: both approximate methods through the session API."""
    session = NoiseAnalysisSession(
        library_cmos130,
        AnalysisConfig(methods=("macromodel", "superposition"), dt=ps(1), check_nrc=False),
    )

    def run():
        return session.analyze(cluster)

    run()  # warm caches
    report = benchmark(run)
    assert set(report.results) == {"macromodel", "superposition"}
    assert report.result("macromodel").peak > report.result("superposition").peak
