"""Figure 1 -- the noise-cluster macromodel topology.

Figure 1 of the paper is structural: a victim driving point modelled by the
non-linear VCCS, two aggressor Thevenin drivers (saturated ramp + R) and the
coupled driving-point model of the interconnect.  This benchmark builds that
exact macromodel for the victim + two-aggressor cluster, verifies its
structure (node/element counts of the reduced model, presence of the VCCS and
of both Thevenin drivers) and checks that the waveform it produces matches
the golden transistor-level simulation -- i.e. that the circuit of Figure 1
is a faithful model of the cluster, which is the figure's claim.
"""

import pytest

from repro.experiments import figure1_cluster
from repro.golden import GoldenClusterAnalysis
from repro.noise import ClusterModelBuilder, DedicatedNoiseEngine, MacromodelAnalysis, compare_results
from repro.units import ps


@pytest.fixture(scope="module")
def cluster():
    return figure1_cluster()


def test_figure1_macromodel_structure_and_accuracy(
    benchmark, library_cmos130, characterizer_cmos130, cluster
):
    builder = ClusterModelBuilder(library_cmos130, cluster, characterizer=characterizer_cmos130)
    analysis = MacromodelAnalysis(library_cmos130, characterizer=characterizer_cmos130)

    # --- structure of the Figure-1 circuit -------------------------------
    network = analysis.build_network(builder)
    reduced = builder.reduced_network()
    # The reduced coupled model has two nodes per net (driving point + far).
    assert reduced.num_nodes == 2 * (1 + cluster.num_aggressors)
    # One non-linear VCCS (the victim driver) ...
    assert len(network.nonlinear_sources) == 1
    # ... and one Norton-transformed Thevenin source per aggressor.
    assert len(network._sources) == cluster.num_aggressors
    print("\n--- Figure 1: reduced coupled driving-point model ---")
    print(builder.reduced_model().summary())

    # --- accuracy of the Figure-1 circuit ---------------------------------
    golden = GoldenClusterAnalysis(library_cmos130).analyze(cluster, dt=ps(1))
    result = benchmark(lambda: analysis.analyze(cluster, dt=ps(1), builder=builder))
    errors = compare_results(golden, result)
    print(
        f"victim driving-point glitch: golden {golden.peak:.3f} V, "
        f"macromodel {result.peak:.3f} V ({errors['peak_error_pct']:+.1f} %)"
    )
    assert abs(errors["peak_error_pct"]) < 8.0

    # The waveforms agree pointwise, not just in their summary metrics.
    difference = golden.victim_waveform.max_difference(result.victim_waveform)
    assert difference < 0.1 * library_cmos130.technology.vdd
