#!/usr/bin/env python
"""Dense-vs-sparse solver backend benchmark: the crossover curve.

Sweeps synthetic interconnect victims (series RC ladders and 2-D resistive
meshes from :mod:`repro.interconnect.synth`) across node counts spanning the
dense/sparse crossover, and times a fixed-step linear transient under each
forced backend.  Every case is differentially gated: the two backends must
agree within ``MAX_BACKEND_DV`` volts, and the 2000-node ladder must show at
least ``MIN_SPEEDUP_2000`` sparse-over-dense speedup -- the workload-class
claim this backend exists for.

Results are written to ``BENCH_sparse.json`` (see ``--output``); CI runs
``--quick`` and gates ``summary.sparse_speedup_geomean`` against the
committed baseline with ``check_regression.py``.  ``--smoke`` runs a single
1000-node ladder end to end (auto backend selection included) for the
sweep-smoke job.

Usage::

    PYTHONPATH=src python benchmarks/bench_sparse_backend.py [--quick|--smoke]
"""

import argparse
import datetime
import json
import math
import os
import platform
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import numpy as np

from repro.circuit import transient
from repro.circuit.stamping import SPARSE_AUTO_THRESHOLD
from repro.interconnect import make_driven_circuit, make_rc_ladder, make_rc_mesh
from repro.units import ps

#: The two backends must agree to this tolerance (volts) on every case.
MAX_BACKEND_DV = 1e-9
#: Acceptance floor: sparse speedup on the 2000-node RC ladder transient.
MIN_SPEEDUP_2000 = 5.0

T_STOP = ps(500)
DT = ps(1)


def ladder_circuit(num_nodes):
    return make_driven_circuit(make_rc_ladder(num_nodes))


def mesh_circuit(side):
    return make_driven_circuit(make_rc_mesh(side, side))


def _time_run(factory, backend, repeats):
    """Best-of-``repeats`` wall-clock of one linear transient configuration."""
    best = math.inf
    result = None
    for _ in range(repeats):
        circuit = factory()
        start = time.perf_counter()
        result = transient(
            circuit, t_stop=T_STOP, dt=DT, solver="fast", backend=backend
        )
        best = min(best, time.perf_counter() - start)
    return best, result


def run_case(name, factory, *, repeats):
    """Benchmark one circuit under both forced backends."""
    t_dense, r_dense = _time_run(factory, "dense", repeats)
    t_sparse, r_sparse = _time_run(factory, "sparse", repeats)
    max_dv = float(np.max(np.abs(r_dense.solutions - r_sparse.solutions)))
    num_unknowns = int(r_sparse.solutions.shape[1])
    row = {
        "case": name,
        "num_unknowns": num_unknowns,
        "time_points": int(r_sparse.stats.num_time_points),
        "dense_seconds": t_dense,
        "sparse_seconds": t_sparse,
        "sparse_speedup": t_dense / t_sparse,
        "max_dv_sparse_vs_dense": max_dv,
        "auto_backend": "sparse" if num_unknowns >= SPARSE_AUTO_THRESHOLD else "dense",
        "lu_reuse_hits": int(r_sparse.stats.lu_reuse_hits),
        "matrix_factorizations": int(r_sparse.stats.matrix_factorizations),
    }
    print(
        f"{name:24s} n={num_unknowns:5d}  dense={t_dense * 1e3:8.1f} ms  "
        f"sparse={t_sparse * 1e3:7.1f} ms  speedup={row['sparse_speedup']:6.2f}x  "
        f"max|dV|={max_dv:.2e}"
    )
    return row


def run_smoke():
    """Sweep-smoke: a 1000-node ladder through the *auto* path, end to end."""
    circuit = make_driven_circuit(make_rc_ladder(1000))
    start = time.perf_counter()
    result = transient(circuit, t_stop=T_STOP, dt=DT)
    elapsed = time.perf_counter() - start
    reference = transient(
        make_driven_circuit(make_rc_ladder(1000)),
        t_stop=T_STOP,
        dt=DT,
        backend="dense",
    )
    max_dv = float(np.max(np.abs(result.solutions - reference.solutions)))
    print(
        f"1000-node ladder smoke: backend={result.stats.backend} "
        f"({elapsed * 1e3:.1f} ms), max|dV| vs dense = {max_dv:.2e}"
    )
    failures = []
    if result.stats.backend != "sparse":
        failures.append(
            f"auto backend picked '{result.stats.backend}' for a 1000-node ladder"
        )
    if not result.stats.fast_path:
        failures.append("the linear 1000-node ladder did not take the fast path")
    if not np.all(np.isfinite(result.solutions)):
        failures.append("smoke transient produced non-finite values")
    if max_dv > MAX_BACKEND_DV:
        failures.append(f"sparse deviates from dense by {max_dv:.2e} V")
    if failures:
        print("FAILED:\n  " + "\n  ".join(failures), file=sys.stderr)
        return 1
    print("OK: large-network smoke passed")
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small sweep for CI gate runs"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run only the 1000-node auto-backend smoke (no JSON record)",
    )
    parser.add_argument(
        "--output",
        default=os.path.join(os.path.dirname(__file__), "..", "BENCH_sparse.json"),
        help="path of the JSON report (default: repo-root BENCH_sparse.json)",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        return run_smoke()

    if args.quick:
        # The 2000-node acceptance case stays in quick mode: it is the row
        # the committed baseline and the CI gate are about.
        ladder_sizes, mesh_sides, repeats = [200, 1000, 2000], [32], 2
    else:
        ladder_sizes, mesh_sides, repeats = [100, 200, 500, 1000, 2000, 3000], [24, 40], 3

    rows = []
    print("--- RC ladders (tridiagonal structure) ---")
    for size in ladder_sizes:
        rows.append(
            run_case(f"rc_ladder_{size}", lambda s=size: ladder_circuit(s), repeats=repeats)
        )
    print("--- RC meshes (grid structure) ---")
    for side in mesh_sides:
        rows.append(
            run_case(f"rc_mesh_{side}x{side}", lambda s=side: mesh_circuit(s), repeats=repeats)
        )

    # The gate metric averages the cases the auto policy actually routes to
    # the sparse backend; the small cases document the dense side of the
    # crossover and are deliberately not gated (dense is *supposed* to win).
    gated = [row for row in rows if row["auto_backend"] == "sparse"]
    speedups = [row["sparse_speedup"] for row in gated]
    geomean = math.exp(sum(math.log(s) for s in speedups) / len(speedups))
    worst_dv = max(row["max_dv_sparse_vs_dense"] for row in rows)
    ladder_2000 = next(row for row in rows if row["case"] == "rc_ladder_2000")
    # Largest benchmarked size where dense still won: documents the measured
    # crossover relative to SPARSE_AUTO_THRESHOLD.
    dense_wins = [row["num_unknowns"] for row in rows if row["sparse_speedup"] < 1.0]
    summary = {
        "sparse_speedup_geomean": geomean,
        "sparse_speedup_2000_ladder": ladder_2000["sparse_speedup"],
        "max_dv_sparse_vs_dense": worst_dv,
        "auto_threshold_unknowns": SPARSE_AUTO_THRESHOLD,
        "largest_dense_win_unknowns": max(dense_wins) if dense_wins else 0,
    }
    report = {
        "benchmark": "bench_sparse_backend",
        "recorded_at": datetime.datetime.now(datetime.timezone.utc).isoformat(),
        "quick": args.quick,
        "t_stop_seconds": T_STOP,
        "dt_seconds": DT,
        "platform": platform.platform(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "results": rows,
        "summary": summary,
    }
    output = os.path.abspath(args.output)
    with open(output, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")

    print(
        f"\nsparse speedup: geomean {geomean:.1f}x over auto-sparse cases, "
        f"{ladder_2000['sparse_speedup']:.1f}x on the 2000-node ladder "
        f"(floor: {MIN_SPEEDUP_2000}x); sparse-vs-dense max|dV| = {worst_dv:.2e}"
    )
    print(f"wrote {output}")

    failures = []
    if ladder_2000["sparse_speedup"] < MIN_SPEEDUP_2000:
        failures.append(
            f"2000-node ladder sparse speedup {ladder_2000['sparse_speedup']:.2f}x "
            f"is below the {MIN_SPEEDUP_2000}x floor"
        )
    if worst_dv > MAX_BACKEND_DV:
        failures.append(
            f"sparse deviates from dense by {worst_dv:.2e} V (> {MAX_BACKEND_DV})"
        )
    if failures:
        print("FAILED:\n  " + "\n  ".join(failures), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
