#!/usr/bin/env python
"""Full-chip streaming ingest benchmark: throughput and memory flatness.

Drives the streaming SPEF path end to end on synthetic full-chip designs
(:class:`repro.sna.synth_design.SyntheticChip`): lazy ``*D_NET`` line
generation -> incremental parse -> bounded-window cluster extraction.  Three
phases, each with its own gate:

* **throughput** -- nets/second over the largest design of the mode (full
  mode ingests >= 1M nets); gated by the absolute ``MIN_NETS_PER_SECOND``
  floor here and by ``check_regression.py`` against the committed
  ``BENCH_fullchip.json`` in CI.
* **memory flatness** -- tracemalloc peak while ingesting a design and one
  4x larger; bounded-memory streaming means the peak must *not* scale with
  design size (``MAX_MEMORY_GROWTH``), and the rolling window high-water
  mark must stay within ``MAX_OPEN_NETS_FACTOR * bus_width``.
* **equivalence** -- on a small chip the streamed clusters must be
  bit-identical to the in-memory ``ClusterExtractor`` on a design annotated
  from the same SPEF text.

Usage::

    PYTHONPATH=src python benchmarks/bench_fullchip.py [--quick|--smoke]
"""

import argparse
import datetime
import json
import os
import platform
import sys
import time
import tracemalloc

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.sna import (  # noqa: E402
    ClusterExtractor,
    StreamingClusterExtractor,
    SyntheticChip,
    annotate_design,
)
from repro.technology import build_default_library  # noqa: E402

#: Absolute ingest floor (nets/second) on any supported machine; the CI
#: regression gate against the committed baseline is much tighter.
MIN_NETS_PER_SECOND = 1500.0
#: Peak traced memory on the 4x design may exceed the base design's by at
#: most this factor -- the bounded-window claim, as a hard number.
MAX_MEMORY_GROWTH = 1.5
#: The rolling window may hold at most this many times ``bus_width`` nets.
MAX_OPEN_NETS_FACTOR = 8

BUS_WIDTH = 8
SEED = 20260808


def make_chip(num_nets, *, driverless_every=97):
    return SyntheticChip(
        num_nets=num_nets,
        bus_width=BUS_WIDTH,
        topology="grid",
        seed=SEED,
        driverless_every=driverless_every,
    )


def ingest(chip, technology, *, max_open_nets=None):
    """One full streaming pass; returns (elapsed_seconds, extractor)."""
    extractor = StreamingClusterExtractor(chip, technology, max_open_nets=max_open_nets)
    start = time.perf_counter()
    count = 0
    for _ in extractor.extract(chip.spef_lines(technology, style="dnet")):
        count += 1
    elapsed = time.perf_counter() - start
    assert count == extractor.stats.clusters
    return elapsed, extractor


def run_throughput(num_nets, technology):
    chip = make_chip(num_nets)
    window_cap = MAX_OPEN_NETS_FACTOR * BUS_WIDTH
    elapsed, extractor = ingest(chip, technology, max_open_nets=window_cap)
    row = {
        "case": f"throughput_{num_nets}",
        "num_nets": num_nets,
        "num_couplings": extractor.stats.couplings_seen,
        "clusters": extractor.stats.clusters,
        "seconds": elapsed,
        "nets_per_second": num_nets / elapsed,
        "peak_open_nets": extractor.stats.peak_open_nets,
        "evictions": extractor.stats.evictions,
    }
    print(
        f"throughput: {num_nets:>9,} nets -> {row['clusters']:,} clusters in "
        f"{elapsed:7.1f} s = {row['nets_per_second']:8,.0f} nets/s  "
        f"(window peak {row['peak_open_nets']})"
    )
    return row


def run_memory(base_nets, technology):
    """Tracemalloc peaks at N and 4N nets: streaming must stay flat."""
    rows = []
    for num_nets in (base_nets, 4 * base_nets):
        chip = make_chip(num_nets)
        tracemalloc.start()
        _, extractor = ingest(chip, technology)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        rows.append(
            {
                "case": f"memory_{num_nets}",
                "num_nets": num_nets,
                "peak_traced_kb": peak / 1e3,
                "peak_open_nets": extractor.stats.peak_open_nets,
            }
        )
        print(
            f"memory:     {num_nets:>9,} nets -> peak {peak / 1e3:8.1f} KB traced, "
            f"window peak {extractor.stats.peak_open_nets}"
        )
    return rows


def run_equivalence(technology):
    """Streamed clusters == in-memory clusters on the same SPEF text."""
    library = build_default_library(technology)
    chip = SyntheticChip(
        num_nets=240, bus_width=6, topology="grid", seed=SEED, driverless_every=23
    )
    design = chip.build_design(library, connectivity_only=True)
    text = "\n".join(chip.spef_lines(technology, style="dnet"))
    annotate_design(design, text)
    in_memory = {
        item.victim_net: item for item in ClusterExtractor(design).extract_clusters()
    }
    streamed = {
        item.victim_net: item
        for item in StreamingClusterExtractor(chip, technology).extract(
            chip.spef_lines(technology, style="dnet")
        )
    }
    mismatches = []
    if set(in_memory) != set(streamed):
        mismatches.append(
            f"victim sets differ: {sorted(set(in_memory) ^ set(streamed))[:5]}"
        )
    else:
        for net, expected in in_memory.items():
            got = streamed[net]
            if expected.spec != got.spec:
                mismatches.append(f"spec differs for victim '{net}'")
            elif expected.skipped_aggressors != got.skipped_aggressors:
                mismatches.append(f"skipped-aggressor provenance differs for '{net}'")
    print(
        f"equivalence: {len(in_memory)} clusters, "
        f"{'IDENTICAL' if not mismatches else 'MISMATCH'}"
    )
    return {
        "case": "equivalence_240",
        "clusters": len(in_memory),
        "identical": not mismatches,
        "mismatches": mismatches[:10],
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="reduced sizes for local iteration"
    )
    parser.add_argument(
        "--smoke", action="store_true", help="smallest gated run for the CI job"
    )
    parser.add_argument(
        "--output",
        default=os.path.join(os.path.dirname(__file__), "..", "BENCH_fullchip.json"),
        help="path of the JSON report (default: repo-root BENCH_fullchip.json)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        throughput_nets, memory_base = 120_000, 25_000
    elif args.quick:
        throughput_nets, memory_base = 250_000, 25_000
    else:
        throughput_nets, memory_base = 1_000_000, 50_000

    library = build_default_library("cmos130")
    technology = library.technology

    throughput = run_throughput(throughput_nets, technology)
    memory_rows = run_memory(memory_base, technology)
    equivalence = run_equivalence(technology)
    rows = [throughput, *memory_rows, equivalence]

    growth = memory_rows[1]["peak_traced_kb"] / memory_rows[0]["peak_traced_kb"]
    summary = {
        "nets_per_second": throughput["nets_per_second"],
        "throughput_nets": throughput_nets,
        "memory_growth_ratio": growth,
        "memory_peak_kb": memory_rows[1]["peak_traced_kb"],
        "peak_open_nets": throughput["peak_open_nets"],
        "equivalence_identical": equivalence["identical"],
    }
    report = {
        "benchmark": "bench_fullchip",
        "recorded_at": datetime.datetime.now(datetime.timezone.utc).isoformat(),
        "quick": args.quick,
        "smoke": args.smoke,
        "platform": platform.platform(),
        "python": platform.python_version(),
        "results": rows,
        "summary": summary,
    }
    output = os.path.abspath(args.output)
    with open(output, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")

    print(
        f"\ningest {throughput['nets_per_second']:,.0f} nets/s "
        f"(floor {MIN_NETS_PER_SECOND:,.0f}); memory x{growth:.2f} on a 4x design "
        f"(bound {MAX_MEMORY_GROWTH}); window peak {summary['peak_open_nets']} "
        f"(bound {MAX_OPEN_NETS_FACTOR * BUS_WIDTH})"
    )
    print(f"wrote {output}")

    failures = []
    if throughput["nets_per_second"] < MIN_NETS_PER_SECOND:
        failures.append(
            f"ingest rate {throughput['nets_per_second']:,.0f} nets/s is below "
            f"the {MIN_NETS_PER_SECOND:,.0f} floor"
        )
    if growth > MAX_MEMORY_GROWTH:
        failures.append(
            f"peak memory grew {growth:.2f}x on a 4x design (> {MAX_MEMORY_GROWTH}x): "
            f"streaming is not bounded-memory"
        )
    for row in memory_rows:
        if row["peak_open_nets"] > MAX_OPEN_NETS_FACTOR * BUS_WIDTH:
            failures.append(
                f"window held {row['peak_open_nets']} nets at {row['num_nets']} nets "
                f"(> {MAX_OPEN_NETS_FACTOR * BUS_WIDTH})"
            )
    if not equivalence["identical"]:
        failures.append(
            "streamed clusters differ from in-memory extraction: "
            + "; ".join(equivalence["mismatches"])
        )
    if failures:
        print("FAILED:\n  " + "\n  ".join(failures), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
