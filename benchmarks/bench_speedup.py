"""Claim B -- ~20x speed-up of the macromodel over circuit simulation.

The paper reports "the speed-up obtained with our approach was about 20X with
respect to ELDO".  This benchmark measures, for a set of clusters, the
wall-clock time of the dedicated macromodel engine against the golden
transistor-level transient simulation of the same cluster (same time step,
same window), and reports the per-cluster and geometric-mean speed-ups.
"""

import math

import pytest

from repro.api import AnalysisConfig, NoiseAnalysisSession
from repro.experiments import speedup_clusters
from repro.golden import GoldenClusterAnalysis
from repro.units import ps

#: The reproduction target: clearly an order of magnitude, not necessarily 20.
MINIMUM_GEOMEAN_SPEEDUP = 8.0


@pytest.fixture(scope="module")
def cases():
    return speedup_clusters(quick=False)


def test_macromodel_speedup_over_golden(benchmark, library_cmos130, characterizer_cmos130, cases):
    golden_analysis = GoldenClusterAnalysis(library_cmos130)
    session = NoiseAnalysisSession(
        library_cmos130,
        AnalysisConfig(methods=("macromodel",), dt=ps(1), check_nrc=False),
        characterizer=characterizer_cmos130,
    )

    # Characterise everything up front (a one-off library cost, as in the paper).
    session.warm_characterization([case.spec for case in cases])

    rows = []

    def run_all_macromodels():
        rows.clear()
        reports = session.analyze_many([case.spec for case in cases])
        rows.extend(zip(cases, (report.primary for report in reports)))
        return rows

    benchmark.pedantic(run_all_macromodels, rounds=1, iterations=1)

    print("\n--- Claim B: macromodel speed-up over transistor-level simulation ---")
    print(f"{'cluster':58s} {'golden(ms)':>11s} {'macro(ms)':>10s} {'speedup':>8s}")
    speedups = []
    for case, macro in rows:
        golden = golden_analysis.analyze(case.spec, dt=ps(1))
        speedup = golden.runtime_seconds / macro.runtime_seconds
        speedups.append(speedup)
        print(
            f"{case.label:58s} {golden.runtime_seconds * 1e3:11.1f} "
            f"{macro.runtime_seconds * 1e3:10.1f} {speedup:8.1f}"
        )
    geomean = math.exp(sum(math.log(s) for s in speedups) / len(speedups))
    print(f"geometric-mean speed-up: {geomean:.1f}x   (paper: ~20x)")

    assert geomean > MINIMUM_GEOMEAN_SPEEDUP
    assert all(s > 3.0 for s in speedups)
