#!/usr/bin/env python
"""Batched linear transient benchmark: one factorization per topology class.

Two workload claims of the batched solver core are recorded and gated:

* **Monte-Carlo batching** -- 24 same-topology scenarios (identical RC
  chain, per-scenario drive amplitudes, i.e. the matrix is shared and only
  the right-hand side moves) solved by
  :class:`~repro.circuit.batched.BatchedTransientSolver` against the
  per-scenario sequential path.  The batched run factorises the base matrix
  once and steps all scenarios with stacked right-hand sides; the speedup
  must clear ``MIN_BATCHED_SPEEDUP`` and the waveforms must agree with the
  sequential reference to ``MAX_DV_BATCHED`` (batching must be numerically
  invisible).
* **Sparse end-to-end nonlinear Newton** -- the dedicated noise engine's
  table-VCCS Newton loop on a >= 500-unknown macromodel network with
  ``solver_backend="sparse"`` held end to end (rank-k Woodbury correction
  through the factorised linear base; no dense demotion).  Gated on the
  backend actually staying sparse, the Newton loop actually iterating, and
  agreement with the dense engine at ``MAX_DV_NONLINEAR``.

Results are written to ``BENCH_batched.json`` (see ``--output``); CI runs
``--quick`` and gates ``summary.batched_speedup`` against the committed
baseline with ``check_regression.py``.  ``--smoke`` runs a reduced pass of
both claims without writing JSON.

Usage::

    PYTHONPATH=src python benchmarks/bench_batched.py [--quick|--smoke]
"""

import argparse
import datetime
import json
import os
import platform
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import numpy as np

from repro.circuit import Circuit, SaturatedRamp, transient
from repro.circuit.batched import BatchedTransientSolver, TransientJob
from repro.noise import DedicatedNoiseEngine, MacromodelNetwork
from repro.units import fF, ps

#: Acceptance floor: batched over per-scenario sequential on the 24-scenario
#: Monte-Carlo group.
MIN_BATCHED_SPEEDUP = 3.0
#: Batched waveforms must agree with the sequential reference to this bound.
MAX_DV_BATCHED = 1e-12
#: Sparse and dense nonlinear Newton must agree to this bound.
MAX_DV_NONLINEAR = 1e-9

#: Monte-Carlo scenarios in the batched group.
MC_SCENARIOS = 24

T_STOP = ps(400)
DT = ps(4)


def mc_chain(num_nodes, amplitude):
    """One Monte-Carlo sample: fixed RC-chain topology, varied drive.

    Element values are deterministic functions of the node index, so every
    sample shares one COO pattern *and* one set of matrix values -- only the
    source amplitude (a pure right-hand-side quantity) moves.  The ramp
    timing is shared too, so every sample builds the same time axis and the
    whole family lands in one batch group.
    """
    circuit = Circuit(f"mc_chain_{amplitude:.6f}")
    circuit.add_voltage_source(
        "VTH", "drv", "0",
        SaturatedRamp(0.0, amplitude, delay=ps(40), transition=ps(60)),
    )
    circuit.add_resistor("RTH", "drv", "n0", 120.0)
    for i in range(num_nodes - 1):
        circuit.add_resistor(f"R{i}", f"n{i}", f"n{i + 1}", 60.0 + (i % 7) * 10.0)
        circuit.add_capacitor(
            f"C{i}", f"n{i + 1}", "0", (1.0 + (i % 5) * 0.4) * fF(1)
        )
    circuit.add_capacitor("CX", "n0", f"n{num_nodes - 1}", fF(2))
    circuit.add_resistor("RHOLD", f"n{num_nodes - 1}", "0", 5e4)
    return circuit


def run_batched_case(num_nodes, num_scenarios):
    """Time the Monte-Carlo group batched vs per-scenario sequential.

    Both paths start from rest (``uic=True`` -- exact here, since the ramp
    is zero until its 40 ps delay), so the comparison isolates the transient
    solve itself: per-scenario factorization + per-scenario triangular
    solves against one factorization + stacked solves.
    """
    amplitudes = [0.5 + 0.9 * (k + 1) / num_scenarios for k in range(num_scenarios)]

    # Kernel compilation is construction cost, identical on both paths;
    # compile outside the timers so the ratio measures the solves.
    sequential_circuits = [mc_chain(num_nodes, a) for a in amplitudes]
    batched_circuits = [mc_chain(num_nodes, a) for a in amplitudes]
    for circuit in sequential_circuits + batched_circuits:
        circuit.prepare()

    start = time.perf_counter()
    sequential = [
        transient(circuit, t_stop=T_STOP, dt=DT, backend="dense", uic=True)
        for circuit in sequential_circuits
    ]
    sequential_seconds = time.perf_counter() - start

    solver = BatchedTransientSolver(backend="dense")
    jobs = [
        TransientJob(circuit, t_stop=T_STOP, dt=DT, uic=True)
        for circuit in batched_circuits
    ]
    start = time.perf_counter()
    batched = solver.run(jobs)
    batched_seconds = time.perf_counter() - start

    max_dv = max(
        float(np.max(np.abs(b.solutions - s.solutions)))
        for b, s in zip(batched, sequential)
    )
    stats = solver.last_run
    row = {
        "case": f"mc_{num_scenarios}x{num_nodes}",
        "num_unknowns": int(batched[0].solutions.shape[1]),
        "num_scenarios": num_scenarios,
        "time_points": len(batched[0].times),
        "sequential_seconds": sequential_seconds,
        "batched_seconds": batched_seconds,
        "batched_speedup": sequential_seconds / batched_seconds,
        "batch_groups": stats.batch_groups,
        "batched_solves": stats.batched_solves,
        "factorizations_built": stats.factorizations_built,
        "factorizations_saved": stats.factorizations_saved,
        "max_dv": max_dv,
    }
    print(
        f"{row['case']:16s} n={row['num_unknowns']:4d}  "
        f"sequential={sequential_seconds * 1e3:8.1f} ms  "
        f"batched={batched_seconds * 1e3:7.1f} ms  "
        f"speedup={row['batched_speedup']:5.2f}x  "
        f"groups={stats.batch_groups}  saved={stats.factorizations_saved}  "
        f"max_dv={max_dv:.2e}"
    )
    return row


def nonlinear_network(num_nodes):
    """A >= 500-unknown RC macromodel with a table-VCCS-style load."""
    network = MacromodelNetwork(f"nl_{num_nodes}")
    for i in range(num_nodes - 1):
        network.add_resistance(f"m{i}", f"m{i + 1}", 80.0 + (i % 5) * 15.0)
        network.add_capacitance(f"m{i + 1}", "0", (1.0 + (i % 3)) * fF(1))
    network.add_resistance(f"m{num_nodes - 1}", "0", 1e4)
    peak = ps(150)

    def glitch(t):
        return 2e-4 * np.exp(-0.5 * ((t - peak) / ps(40)) ** 2)

    network.add_current_source("m0", glitch)
    mid = f"m{num_nodes // 2}"
    network.add_nonlinear_source(mid, lambda t, v: (2e-5 * v * abs(v), 4e-5 * abs(v)))
    return network


def run_nonlinear_case(num_nodes):
    """Time the sparse-held nonlinear Newton loop against the dense engine."""
    t_stop, dt = ps(400), ps(2)

    sparse_engine = DedicatedNoiseEngine(
        nonlinear_network(num_nodes), solver_backend="sparse"
    )
    start = time.perf_counter()
    sparse_waveforms = sparse_engine.simulate(t_stop, dt)
    sparse_seconds = time.perf_counter() - start

    dense_engine = DedicatedNoiseEngine(
        nonlinear_network(num_nodes), solver_backend="dense"
    )
    start = time.perf_counter()
    dense_waveforms = dense_engine.simulate(t_stop, dt)
    dense_seconds = time.perf_counter() - start

    max_dv = max(
        float(np.max(np.abs(sparse_waveforms[node].values - dense_waveforms[node].values)))
        for node in ("m0", f"m{num_nodes // 2}", f"m{num_nodes - 1}")
    )
    row = {
        "case": f"nonlinear_{num_nodes}",
        "num_unknowns": num_nodes,
        "resolved_backend": sparse_engine.resolved_backend,
        "newton_iterations": sparse_engine.statistics.newton_iterations,
        "sparse_seconds": sparse_seconds,
        "dense_seconds": dense_seconds,
        "sparse_speedup": dense_seconds / sparse_seconds,
        "max_dv_sparse_vs_dense": max_dv,
    }
    print(
        f"{row['case']:16s} n={num_nodes:4d}  backend={row['resolved_backend']}  "
        f"newton={row['newton_iterations']:5d}  "
        f"sparse={sparse_seconds * 1e3:7.1f} ms  dense={dense_seconds * 1e3:7.1f} ms  "
        f"max_dv={max_dv:.2e}"
    )
    return row


def gate(batched_row, nonlinear_row):
    """Self-gating acceptance checks; returns the failure list."""
    failures = []
    if batched_row["batched_speedup"] < MIN_BATCHED_SPEEDUP:
        failures.append(
            f"batched speedup {batched_row['batched_speedup']:.2f}x is below "
            f"the {MIN_BATCHED_SPEEDUP}x floor"
        )
    if batched_row["max_dv"] > MAX_DV_BATCHED:
        failures.append(
            f"batched deviates from sequential by {batched_row['max_dv']:.2e} "
            f"(> {MAX_DV_BATCHED})"
        )
    if batched_row["batch_groups"] != 1:
        failures.append(
            f"Monte-Carlo family split into {batched_row['batch_groups']} "
            "groups (expected 1)"
        )
    if nonlinear_row["resolved_backend"] != "sparse":
        failures.append(
            "nonlinear engine did not hold the sparse backend "
            f"(got {nonlinear_row['resolved_backend']!r})"
        )
    if nonlinear_row["newton_iterations"] <= 0:
        failures.append("nonlinear engine performed no Newton iterations")
    if nonlinear_row["max_dv_sparse_vs_dense"] > MAX_DV_NONLINEAR:
        failures.append(
            "sparse Newton deviates from dense by "
            f"{nonlinear_row['max_dv_sparse_vs_dense']:.2e} (> {MAX_DV_NONLINEAR})"
        )
    return failures


def run_smoke():
    """Reduced pass of both claims (no JSON record)."""
    batched_row = run_batched_case(num_nodes=120, num_scenarios=8)
    nonlinear_row = run_nonlinear_case(num_nodes=500)
    failures = [
        failure
        for failure in gate(batched_row, nonlinear_row)
        # The smoke gate checks correctness, not performance: tiny systems
        # under CI noise must not flake the speedup floor.
        if "speedup" not in failure
    ]
    if failures:
        print("FAILED:\n  " + "\n  ".join(failures), file=sys.stderr)
        return 1
    print("OK: batched smoke passed")
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="smaller systems for CI gate runs"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run a reduced correctness pass only (no JSON record)",
    )
    parser.add_argument(
        "--output",
        default=os.path.join(os.path.dirname(__file__), "..", "BENCH_batched.json"),
        help="path of the JSON report (default: repo-root BENCH_batched.json)",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        return run_smoke()

    # n=800 is the measured-stable regime for the batched ratio: large
    # enough that the 24->1 factorization saving dominates, small enough
    # that timings do not wander under machine noise.
    chain_nodes = 800 if args.quick else 1000
    nonlinear_nodes = 500 if args.quick else 700

    print(f"--- batched Monte-Carlo group ({MC_SCENARIOS} scenarios) ---")
    batched_row = run_batched_case(chain_nodes, MC_SCENARIOS)
    print("--- sparse end-to-end nonlinear Newton ---")
    nonlinear_row = run_nonlinear_case(nonlinear_nodes)

    summary = {
        "batched_speedup": batched_row["batched_speedup"],
        "batched_max_dv": batched_row["max_dv"],
        "batched_factorizations_saved": batched_row["factorizations_saved"],
        "sparse_nonlinear_speedup": nonlinear_row["sparse_speedup"],
        "sparse_nonlinear_unknowns": nonlinear_row["num_unknowns"],
        "sparse_newton_iterations": nonlinear_row["newton_iterations"],
        "max_dv_sparse_vs_dense": nonlinear_row["max_dv_sparse_vs_dense"],
    }
    report = {
        "benchmark": "bench_batched",
        "recorded_at": datetime.datetime.now(datetime.timezone.utc).isoformat(),
        "quick": args.quick,
        "t_stop_seconds": T_STOP,
        "dt_seconds": DT,
        "platform": platform.platform(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "results": [batched_row, nonlinear_row],
        "summary": summary,
    }
    output = os.path.abspath(args.output)
    with open(output, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")

    print(
        f"\nbatched speedup: {summary['batched_speedup']:.2f}x over "
        f"{MC_SCENARIOS} scenarios (floor: {MIN_BATCHED_SPEEDUP}x); "
        f"max_dv={summary['batched_max_dv']:.2e} (limit: {MAX_DV_BATCHED})"
    )
    print(f"wrote {output}")

    failures = gate(batched_row, nonlinear_row)
    if failures:
        print("FAILED:\n  " + "\n  ".join(failures), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
