"""Ablation benchmarks for the design choices called out in DESIGN.md.

* Ablation 1 -- interconnect representation inside the macromodel: the full
  distributed coupled RC network vs the moment-matched coupled pi (S-model)
  reduction (the paper uses the reduction; this quantifies what it costs).
* Ablation 2 -- VCCS load-surface grid resolution vs accuracy: how coarse the
  DC pre-characterisation can be before the macromodel accuracy degrades.
* Ablation 3 -- the iterative-Thevenin victim model of Zolotov et al. [4]:
  the paper cites peak errors around -18 % for that approach; this benchmark
  places it between plain superposition and the macromodel.
"""

import pytest

from repro.characterization import LibraryCharacterizer
from repro.experiments import table1_cluster
from repro.golden import GoldenClusterAnalysis
from repro.noise import (
    LinearSuperpositionAnalysis,
    MacromodelAnalysis,
    ZolotovIterativeAnalysis,
    compare_results,
)
from repro.units import ps


@pytest.fixture(scope="module")
def cluster():
    return table1_cluster()


@pytest.fixture(scope="module")
def golden_result(library_cmos130, cluster):
    return GoldenClusterAnalysis(library_cmos130).analyze(cluster, dt=ps(1))


def test_ablation_interconnect_reduction(benchmark, library_cmos130, characterizer_cmos130, cluster, golden_result):
    """Ablation 1: coupled-pi reduction vs full RC network in the macromodel."""
    macromodel_pi = MacromodelAnalysis(
        library_cmos130, characterizer=characterizer_cmos130, reduction="coupled_pi"
    )
    macromodel_full = MacromodelAnalysis(
        library_cmos130, characterizer=characterizer_cmos130, reduction="full"
    )
    macromodel_pi.analyze(cluster, dt=ps(1))
    result_full = macromodel_full.analyze(cluster, dt=ps(1))
    result_pi = benchmark(lambda: macromodel_pi.analyze(cluster, dt=ps(1)))

    errors_pi = compare_results(golden_result, result_pi)
    errors_full = compare_results(golden_result, result_full)
    print("\n--- Ablation 1: interconnect representation inside the macromodel ---")
    print(f"{'variant':12s} {'unknowns':>9s} {'peak err%':>10s} {'area err%':>10s} {'runtime(ms)':>12s}")
    for name, result, errors in (
        ("coupled_pi", result_pi, errors_pi),
        ("full RC", result_full, errors_full),
    ):
        print(
            f"{name:12s} {result.details['num_unknowns']:9d} {errors['peak_error_pct']:10.1f} "
            f"{errors['area_error_pct']:10.1f} {result.runtime_seconds * 1e3:12.1f}"
        )

    # The reduction keeps the accuracy while shrinking the model.
    assert result_pi.details["num_unknowns"] < result_full.details["num_unknowns"]
    assert abs(errors_pi["peak_error_pct"]) < 8.0
    assert abs(errors_pi["peak_error_pct"] - errors_full["peak_error_pct"]) < 6.0
    assert result_pi.runtime_seconds < result_full.runtime_seconds * 1.2


@pytest.mark.parametrize("grid", [5, 9, 17, 33])
def test_ablation_vccs_grid(benchmark, library_cmos130, cluster, golden_result, grid):
    """Ablation 2: VCCS table resolution vs macromodel accuracy."""
    characterizer = LibraryCharacterizer(library_cmos130, vccs_grid=grid)
    analysis = MacromodelAnalysis(
        library_cmos130, characterizer=characterizer, vccs_grid=grid
    )
    analysis.analyze(cluster, dt=ps(1))  # characterise outside the timed region
    result = benchmark(lambda: analysis.analyze(cluster, dt=ps(1)))
    errors = compare_results(golden_result, result)
    print(
        f"\nVCCS grid {grid:3d}x{grid:<3d}: peak err {errors['peak_error_pct']:+6.1f} %  "
        f"area err {errors['area_error_pct']:+6.1f} %"
    )
    # Even the coarse grids stay within the loose band; the fine grids must be
    # within the paper-like band.
    assert abs(errors["peak_error_pct"]) < 15.0
    if grid >= 17:
        assert abs(errors["peak_error_pct"]) < 8.0


def test_ablation_iterative_thevenin(benchmark, library_cmos130, characterizer_cmos130, cluster, golden_result):
    """Ablation 3: the iterative-Thevenin victim model of [4]."""
    zolotov = ZolotovIterativeAnalysis(library_cmos130, characterizer=characterizer_cmos130)
    superposition = LinearSuperpositionAnalysis(library_cmos130, characterizer=characterizer_cmos130)
    macromodel = MacromodelAnalysis(library_cmos130, characterizer=characterizer_cmos130)

    superposition_result = superposition.analyze(cluster, dt=ps(1))
    macromodel_result = macromodel.analyze(cluster, dt=ps(1))
    zolotov_result = benchmark(lambda: zolotov.analyze(cluster, dt=ps(1)))

    errors = {
        "superposition": compare_results(golden_result, superposition_result),
        "iterative_thevenin": compare_results(golden_result, zolotov_result),
        "macromodel": compare_results(golden_result, macromodel_result),
    }
    print("\n--- Ablation 3: victim-driver model comparison (Table-1 cluster) ---")
    print(f"{'victim model':20s} {'peak err%':>10s} {'area err%':>10s}")
    for name, error in errors.items():
        print(f"{name:20s} {error['peak_error_pct']:10.1f} {error['area_error_pct']:10.1f}")

    # Ordering of the three victim models (paper: superposition worst, [4]
    # intermediate, macromodel best).
    assert abs(errors["macromodel"]["peak_error_pct"]) < abs(errors["iterative_thevenin"]["peak_error_pct"])
    assert abs(errors["iterative_thevenin"]["peak_error_pct"]) < abs(errors["superposition"]["peak_error_pct"])
