"""Table 2 -- worst-case overlap of two in-phase aggressors and a glitch.

Regenerates the paper's Table 2: total noise peak and area for the cluster
where the victim wire runs between two aggressors that switch in phase while
a noise glitch propagates through the victim NAND2 driver, comparing the
macromodel against the golden transistor-level simulation.

Shape to reproduce (paper values): macromodel within a few percent of the
reference (+3.1 % peak, +2.5 % area).
"""

import pytest

from repro.experiments import table2_cluster
from repro.golden import GoldenClusterAnalysis
from repro.noise import MacromodelAnalysis, compare_results
from repro.units import ps


@pytest.fixture(scope="module")
def cluster():
    return table2_cluster()


@pytest.fixture(scope="module")
def golden_result(library_cmos130, cluster):
    return GoldenClusterAnalysis(library_cmos130).analyze(cluster, dt=ps(1))


def test_table2_macromodel_vs_golden(benchmark, library_cmos130, characterizer_cmos130, cluster, golden_result):
    analysis = MacromodelAnalysis(library_cmos130, characterizer=characterizer_cmos130)
    analysis.analyze(cluster, dt=ps(1))  # warm the characterisation cache
    result = benchmark(lambda: analysis.analyze(cluster, dt=ps(1)))
    errors = compare_results(golden_result, result)

    print("\n--- Table 2: two in-phase aggressors + propagating glitch ---")
    print(f"{'Noise':12s} {'golden':>10s} {'macromodel':>11s} {'err%':>7s}   (paper: +3.1% / +2.5%)")
    print(f"{'Peak (V)':12s} {golden_result.peak:10.3f} {result.peak:11.3f} {errors['peak_error_pct']:7.1f}")
    print(
        f"{'Area (V*ps)':12s} {golden_result.area_v_ps:10.1f} {result.area_v_ps:11.1f} "
        f"{errors['area_error_pct']:7.1f}"
    )
    print(f"speed-up vs golden: {golden_result.runtime_seconds / result.runtime_seconds:.1f}x")

    assert abs(errors["peak_error_pct"]) < 8.0
    assert abs(errors["area_error_pct"]) < 10.0
    # The combined two-aggressor worst case is a large glitch (most of the rail).
    assert golden_result.peak > 0.5 * library_cmos130.technology.vdd
