#!/usr/bin/env python
"""Reduced-order vs sparse transient benchmark: the macromodeling payoff.

Sweeps synthetic interconnect victims (fixed-wire RC ladders, meshes, trees
and coupled pairs from :mod:`repro.interconnect.synth`) at and beyond the
thousand-node mark, and compares a PRIMA-reduced transient
(:func:`repro.reduction.reduce_circuit`, projection time *included*) against
the sparse-backend linear fast path.  Every case is differentially gated:
the reduced receiver waveform must stay within ``MAX_REL_ERROR`` relative
error of the sparse reference, and the geometric-mean speedup over the
gated (>= 1000 unknowns) cases must clear ``MIN_SPEEDUP_GEOMEAN`` -- the
workload-class claim the reduction subsystem exists for.

All cases use fixed-wire scaling: the *total* wire resistance and
capacitance are held constant while the segment count grows, so a
5000-node ladder models the same physical wire -- same ~120 ps time
constant -- as a 100-node one, and the 500 ps analysis window exercises
the full waveform at every size.

Results are written to ``BENCH_reduction.json`` (see ``--output``); CI runs
``--quick`` and gates ``summary.reduction_speedup_geomean`` against the
committed baseline with ``check_regression.py``.  ``--smoke`` runs a single
1000-node ladder end to end for the sweep-smoke job.

Usage::

    PYTHONPATH=src python benchmarks/bench_reduction.py [--quick|--smoke]
"""

import argparse
import datetime
import json
import math
import os
import platform
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import numpy as np

from repro.circuit import transient
from repro.interconnect import (
    make_coupled_pair,
    make_driven_circuit,
    make_rc_ladder,
    make_rc_mesh,
    make_rc_tree,
    make_victim_aggressor_circuit,
)
from repro.reduction import DEFAULT_REDUCTION_ORDER, reduce_circuit
from repro.units import fF, ps

#: Reduced receiver waveform must stay within this relative error of the
#: sparse reference on every case (normalised by the reference peak).
MAX_REL_ERROR = 1e-3
#: Acceptance floor: geomean reduced-over-sparse speedup on the gated
#: (>= GATE_MIN_UNKNOWNS) cases, projection time included.
MIN_SPEEDUP_GEOMEAN = 5.0
#: Cases at or above this unknown count feed the gated geomean.
GATE_MIN_UNKNOWNS = 1000

#: A noise-analysis window: fine enough (0.5 ps) to resolve ps-scale
#: glitch peaks, long enough (1 ns) to cover injection plus settling.
T_STOP = ps(1000)
DT = ps(0.5)

#: Fixed wire budget shared by every case: ~120 ps distributed time
#: constant, fully developed inside the 500 ps window.
TOTAL_R = 1.2e3
TOTAL_C = fF(200)


def ladder_circuit(num_nodes):
    network = make_rc_ladder(
        num_nodes,
        segment_resistance=TOTAL_R / num_nodes,
        node_capacitance=TOTAL_C / num_nodes,
    )
    return network, make_driven_circuit(network), f"vic:{num_nodes}"


def mesh_circuit(side):
    # 2 * side segments on the corner-to-corner path; capacitance spread
    # over side^2 nodes.
    network = make_rc_mesh(
        side,
        side,
        segment_resistance=TOTAL_R / (2 * side),
        node_capacitance=TOTAL_C / (side * side),
    )
    return network, make_driven_circuit(network), f"mesh:{side - 1}.{side - 1}"


def tree_circuit(num_nodes, branching=3):
    network = make_rc_tree(
        num_nodes,
        branching=branching,
        segment_resistance=TOTAL_R / num_nodes,
        node_capacitance=TOTAL_C / num_nodes,
    )
    return network, make_driven_circuit(network), f"tree:{num_nodes}"


def pair_circuit(num_nodes):
    network = make_coupled_pair(
        num_nodes,
        segment_resistance=TOTAL_R / num_nodes,
        node_capacitance=TOTAL_C / num_nodes,
        coupling_capacitance=fF(100) / num_nodes,
    )
    return network, make_victim_aggressor_circuit(network), f"vic:{num_nodes}"


def run_case(name, factory, *, repeats, order=DEFAULT_REDUCTION_ORDER):
    """Benchmark one circuit: sparse reference vs reduced macromodel."""
    best_sparse = best_reduced = math.inf
    reference = reduced_result = None
    observe = None
    for _ in range(repeats):
        _, circuit, observe = factory()
        start = time.perf_counter()
        reference = transient(
            circuit, t_stop=T_STOP, dt=DT, solver="fast", backend="sparse"
        )
        best_sparse = min(best_sparse, time.perf_counter() - start)

        _, circuit, observe = factory()
        start = time.perf_counter()
        macromodel = reduce_circuit(circuit, order=order)
        reduced_result = macromodel.transient(T_STOP, DT)
        best_reduced = min(best_reduced, time.perf_counter() - start)

    ref_wave = reference.node_voltage(observe).values
    red_wave = reduced_result.node_voltage(observe)
    scale = float(np.max(np.abs(ref_wave)))
    rel_error = float(np.max(np.abs(red_wave - ref_wave)) / scale)
    stats = reduced_result.stats
    row = {
        "case": name,
        "num_unknowns": int(stats.num_unknowns),
        "reduced_order": int(stats.order),
        "time_points": int(stats.num_time_points),
        "sparse_seconds": best_sparse,
        "reduced_seconds": best_reduced,
        "reduction_setup_seconds": float(stats.setup_seconds),
        "reduction_speedup": best_sparse / best_reduced,
        "rel_error": rel_error,
        "gated": int(stats.num_unknowns) >= GATE_MIN_UNKNOWNS,
    }
    print(
        f"{name:24s} n={row['num_unknowns']:5d} q={row['reduced_order']:3d}  "
        f"sparse={best_sparse * 1e3:8.1f} ms  reduced={best_reduced * 1e3:7.1f} ms  "
        f"speedup={row['reduction_speedup']:6.2f}x  rel_err={rel_error:.2e}"
    )
    return row


def run_smoke():
    """Sweep-smoke: one 1000-node ladder through the reduction path."""
    _, circuit, observe = ladder_circuit(1000)
    start = time.perf_counter()
    macromodel = reduce_circuit(circuit)
    result = macromodel.transient(T_STOP, DT)
    elapsed = time.perf_counter() - start
    _, circuit, _ = ladder_circuit(1000)
    reference = transient(circuit, t_stop=T_STOP, dt=DT, solver="fast")
    ref_wave = reference.node_voltage(observe).values
    red_wave = result.node_voltage(observe)
    rel_error = float(
        np.max(np.abs(red_wave - ref_wave)) / np.max(np.abs(ref_wave))
    )
    print(
        f"1000-node ladder smoke: order {result.stats.order} of "
        f"{result.stats.num_unknowns} unknowns ({elapsed * 1e3:.1f} ms), "
        f"rel_err vs sparse = {rel_error:.2e}"
    )
    failures = []
    if result.stats.order >= result.stats.num_unknowns:
        failures.append("the projection did not reduce the system")
    if not np.all(np.isfinite(result.states)):
        failures.append("reduced transient produced non-finite states")
    if rel_error > MAX_REL_ERROR:
        failures.append(
            f"reduced deviates from the reference by {rel_error:.2e} "
            f"(> {MAX_REL_ERROR})"
        )
    if failures:
        print("FAILED:\n  " + "\n  ".join(failures), file=sys.stderr)
        return 1
    print("OK: reduction smoke passed")
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small sweep for CI gate runs"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run only the 1000-node reduction smoke (no JSON record)",
    )
    parser.add_argument(
        "--output",
        default=os.path.join(os.path.dirname(__file__), "..", "BENCH_reduction.json"),
        help="path of the JSON report (default: repo-root BENCH_reduction.json)",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        return run_smoke()

    cases = [
        ("rc_ladder_1000", lambda: ladder_circuit(1000)),
        ("rc_ladder_2000", lambda: ladder_circuit(2000)),
        ("rc_mesh_32x32", lambda: mesh_circuit(32)),
        ("coupled_pair_600", lambda: pair_circuit(600)),
    ]
    repeats = 2
    if not args.quick:
        cases += [
            ("rc_ladder_5000", lambda: ladder_circuit(5000)),
            ("rc_mesh_40x40", lambda: mesh_circuit(40)),
            ("rc_tree_2000", lambda: tree_circuit(2000)),
            ("coupled_pair_1000", lambda: pair_circuit(1000)),
        ]
        repeats = 3

    rows = []
    print(f"--- PRIMA order {DEFAULT_REDUCTION_ORDER} vs sparse fast path ---")
    for name, factory in cases:
        rows.append(run_case(name, factory, repeats=repeats))

    # The gate averages the >= 1000-unknown cases the subsystem targets; the
    # smaller ones document behaviour near the auto threshold and are
    # deliberately not gated.
    gated = [row for row in rows if row["gated"]]
    speedups = [row["reduction_speedup"] for row in gated]
    geomean = math.exp(sum(math.log(s) for s in speedups) / len(speedups))
    worst_error = max(row["rel_error"] for row in rows)
    summary = {
        "reduction_speedup_geomean": geomean,
        "reduction_max_rel_error": worst_error,
        "reduction_order": DEFAULT_REDUCTION_ORDER,
        "gate_min_unknowns": GATE_MIN_UNKNOWNS,
        "num_gated_cases": len(gated),
    }
    report = {
        "benchmark": "bench_reduction",
        "recorded_at": datetime.datetime.now(datetime.timezone.utc).isoformat(),
        "quick": args.quick,
        "t_stop_seconds": T_STOP,
        "dt_seconds": DT,
        "total_resistance_ohm": TOTAL_R,
        "total_capacitance_farad": TOTAL_C,
        "platform": platform.platform(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "results": rows,
        "summary": summary,
    }
    output = os.path.abspath(args.output)
    with open(output, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")

    print(
        f"\nreduction speedup: geomean {geomean:.1f}x over the "
        f"{len(gated)} gated cases (floor: {MIN_SPEEDUP_GEOMEAN}x); "
        f"max rel error = {worst_error:.2e} (limit: {MAX_REL_ERROR})"
    )
    print(f"wrote {output}")

    failures = []
    if geomean < MIN_SPEEDUP_GEOMEAN:
        failures.append(
            f"gated geomean speedup {geomean:.2f}x is below the "
            f"{MIN_SPEEDUP_GEOMEAN}x floor"
        )
    if worst_error > MAX_REL_ERROR:
        failures.append(
            f"reduced deviates from the sparse reference by {worst_error:.2e} "
            f"(> {MAX_REL_ERROR})"
        )
    if failures:
        print("FAILED:\n  " + "\n  ".join(failures), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
