"""Shared fixtures for the paper-reproduction benchmarks.

Every benchmark regenerates one table, figure or in-text claim of the paper.
The library and the per-cluster characterisation are session-scoped so the
timed sections measure only the analysis engines (as the paper does: the
characterisation is a one-off library cost).
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import pytest

from repro.characterization import LibraryCharacterizer
from repro.technology import build_default_library


@pytest.fixture(scope="session")
def library_cmos130():
    return build_default_library("cmos130")


@pytest.fixture(scope="session")
def library_cmos90():
    return build_default_library("cmos90")


@pytest.fixture(scope="session")
def characterizer_cmos130(library_cmos130):
    return LibraryCharacterizer(library_cmos130)


@pytest.fixture(scope="session")
def characterizer_cmos90(library_cmos90):
    return LibraryCharacterizer(library_cmos90)
