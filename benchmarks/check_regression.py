#!/usr/bin/env python
"""Perf-regression gate: compare a fresh benchmark record to the baseline.

Reads a metric (dotted path, higher-is-better) from a freshly produced
benchmark JSON record and from the committed baseline record, and fails --
exit status 1 -- when the current value has regressed by more than the
allowed fraction:

    current < baseline * (1 - max_regression)  ->  FAIL

CI runs this after the quick transient benchmark::

    python benchmarks/bench_transient_scaling.py --quick --output BENCH_current.json
    python benchmarks/check_regression.py \
        --baseline BENCH_transient.json --current BENCH_current.json \
        --metric summary.linear_speedup_geomean --max-regression 0.30

The gate is deliberately one-sided: faster-than-baseline runs always pass
(refresh the committed baseline to ratchet expectations upward).
"""

import argparse
import json
import sys


class MetricError(Exception):
    """A gated metric is missing or unusable in a benchmark record."""


def read_metric(path, dotted):
    """Read ``a.b.c`` from the JSON document at ``path``."""
    with open(path) as handle:
        document = json.load(handle)
    value = document
    for part in dotted.split("."):
        try:
            value = value[part]
        except (KeyError, TypeError):
            if isinstance(value, dict):
                available = ", ".join(sorted(value)) or "<empty object>"
            else:
                available = f"a {type(value).__name__}, not an object"
            raise MetricError(
                f"{path}: no metric {dotted!r} -- {part!r} not found "
                f"(available here: {available})"
            )
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise MetricError(f"{path}: metric {dotted!r} is not a number: {value!r}")
    return float(value)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True, help="committed baseline JSON")
    parser.add_argument("--current", required=True, help="freshly recorded JSON")
    parser.add_argument(
        "--metric",
        default="summary.linear_speedup_geomean",
        help="dotted path of the higher-is-better metric to compare",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.30,
        help="allowed fractional drop below the baseline (default: 0.30)",
    )
    args = parser.parse_args(argv)
    if not 0 <= args.max_regression < 1:
        parser.error("--max-regression must be in [0, 1)")

    try:
        baseline = read_metric(args.baseline, args.metric)
        current = read_metric(args.current, args.metric)
    except (OSError, json.JSONDecodeError, MetricError) as exc:
        print(f"ERROR: {exc}", file=sys.stderr)
        return 2

    floor = baseline * (1.0 - args.max_regression)
    change = 100.0 * (current - baseline) / baseline if baseline else float("nan")
    print(
        f"{args.metric}: baseline {baseline:.3f} -> current {current:.3f} "
        f"({change:+.1f}%); floor {floor:.3f} "
        f"(-{args.max_regression * 100:.0f}%)"
    )
    if current < floor:
        print(
            f"FAILED: {args.metric} regressed more than "
            f"{args.max_regression * 100:.0f}% below the committed baseline",
            file=sys.stderr,
        )
        return 1
    print("OK: within the regression budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
