#!/usr/bin/env python
"""Scenario-sweep scaling benchmark: workers x persistent cache.

Runs one corner + Monte-Carlo scenario space through the
:class:`repro.scenarios.SweepRunner` in four configurations --

* ``serial_cold``  -- 1 worker, empty persistent cache (every scenario pays
  its characterisation);
* ``serial_warm``  -- 1 worker, cache warmed by the cold run;
* ``workersN_warm`` -- N worker processes against the warm cache, for each
  requested worker count;
* ``workersN_cold`` -- the top worker count against a second empty cache
  directory (process parallelism without cache reuse);

-- and records scenarios/second for each, plus the cache hit/store counters
and the sweep's worst-case result.  Two gates protect the subsystem:

* determinism: the parallel-warm sweep must produce *identical* per-scenario
  peaks to the serial-cold sweep (same seed, any worker count);
* performance: the top-worker-count warm sweep must beat the serial cold
  sweep by ``MIN_PARALLEL_WARM_SPEEDUP``.

Results are written to ``BENCH_sweep.json``; run with ``--quick`` for the CI
smoke configuration.

Usage::

    PYTHONPATH=src python benchmarks/bench_sweep_scaling.py [--quick]
"""

import argparse
import datetime
import json
import os
import platform
import shutil
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import faults
from repro.api import AnalysisConfig
from repro.experiments import figure1_cluster
from repro.scenarios import (
    MonteCarloModel,
    ScenarioSpace,
    SweepRunner,
    reset_worker_sessions,
)

#: The warm parallel sweep must beat the cold serial sweep by this factor
#: (the acceptance criterion of the sweep subsystem).
MIN_PARALLEL_WARM_SPEEDUP = 2.0


def build_space(quick):
    """A corner x Monte-Carlo space over the paper's Figure-1 cluster."""
    if quick:
        corners, samples = ("tt", "ss"), 2
    else:
        corners, samples = ("tt", "ff", "ss"), 8
    return ScenarioSpace(
        base=figure1_cluster(length_um=300.0, num_segments=5),
        technology="cmos130",
        corners=corners,
        monte_carlo=MonteCarloModel(num_samples=samples, seed=2005),
    )


def run_phase(label, scenarios, config, num_workers):
    reset_worker_sessions()
    start = time.perf_counter()
    report = SweepRunner(config, num_workers=num_workers).run(scenarios)
    elapsed = time.perf_counter() - start
    row = {
        "phase": label,
        "num_workers": num_workers,
        "num_scenarios": len(report),
        "seconds": elapsed,
        "scenarios_per_second": len(report) / elapsed,
        "errors": len(report.errors),
        "cache": dict(report.cache_stats),
    }
    print(
        f"{label:16s} workers={num_workers}  {elapsed:7.2f} s  "
        f"{row['scenarios_per_second']:6.2f} scenarios/s  "
        f"(characterized {report.cache_stats.get('characterizations', 0)}, "
        f"disk hits {report.cache_stats.get('disk_hits', 0)})"
    )
    return row, report


def time_fault_overhead(scenarios, config):
    """Cost of the armed fault-tolerance machinery on a fault-free sweep.

    Times serial warm-cache sweeps (best of 2 each) with the machinery off
    (``degradation=False``, no fault plan) and on (degradation ladder armed
    plus an installed fault plan that never matches -- the honest worst
    case of idle fault hooks on the hot path).  The ratio is gated in CI:
    resilience must cost the fault-free path at most a few percent.
    """

    def best_of(repeats, run_config, plan=None):
        best = float("inf")
        for _ in range(repeats):
            reset_worker_sessions()
            start = time.perf_counter()
            if plan is not None:
                with faults.plan_active(plan):
                    SweepRunner(run_config).run(scenarios)
            else:
                SweepRunner(run_config).run(scenarios)
            best = min(best, time.perf_counter() - start)
        return best

    idle_plan = faults.FaultPlan(
        [
            faults.FaultSpec(
                site="solve", kind="singular", match="no-such-scenario/*"
            )
        ]
    )
    plain = best_of(2, config.replace(degradation=False))
    tolerant = best_of(2, config, plan=idle_plan)
    speedup = plain / tolerant
    print(
        f"fault overhead   plain={plain:.2f} s  armed={tolerant:.2f} s  "
        f"ratio={speedup:.3f} (1.0 = free)"
    )
    return {
        "plain_seconds": plain,
        "tolerant_seconds": tolerant,
        # Ratios above 1.0 are timing noise; cap the gated value so a lucky
        # baseline cannot make the CI regression gate stricter than the
        # intended "at most 5% slower than free".
        "fault_overhead_speedup": min(speedup, 1.0),
        "raw_ratio": speedup,
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI smoke configuration")
    parser.add_argument(
        "--workers",
        type=int,
        nargs="+",
        default=None,
        help="worker counts to benchmark warm (default: 2 4, quick: 2)",
    )
    parser.add_argument(
        "--output",
        default=os.path.join(os.path.dirname(__file__), "..", "BENCH_sweep.json"),
        help="path of the JSON report (default: repo-root BENCH_sweep.json)",
    )
    args = parser.parse_args(argv)
    worker_counts = args.workers or ([2] if args.quick else [2, 4])

    space = build_space(args.quick)
    scenarios = space.expand()
    print(space.describe())

    warm_dir = tempfile.mkdtemp(prefix="repro-bench-sweep-")
    cold_dir = tempfile.mkdtemp(prefix="repro-bench-sweep-cold-")
    try:
        config = AnalysisConfig(
            methods=("macromodel",), vccs_grid=9, check_nrc=True, cache_dir=warm_dir
        )
        rows = []
        row, baseline = run_phase("serial_cold", scenarios, config, 1)
        rows.append(row)
        row, _ = run_phase("serial_warm", scenarios, config, 1)
        rows.append(row)
        parallel_reports = {}
        for count in worker_counts:
            row, report = run_phase(f"workers{count}_warm", scenarios, config, count)
            rows.append(row)
            parallel_reports[count] = report
        top = max(worker_counts)
        cold_config = config.replace(cache_dir=cold_dir)
        row, _ = run_phase(f"workers{top}_cold", scenarios, cold_config, top)
        rows.append(row)
        overhead = time_fault_overhead(scenarios, config)
    finally:
        shutil.rmtree(warm_dir, ignore_errors=True)
        shutil.rmtree(cold_dir, ignore_errors=True)

    by_phase = {row["phase"]: row for row in rows}
    top_warm = by_phase[f"workers{max(worker_counts)}_warm"]
    warm_speedup = by_phase["serial_cold"]["seconds"] / top_warm["seconds"]

    failures = []
    top_report = parallel_reports[max(worker_counts)]
    for left, right in zip(baseline, top_report):
        if left.scenario_id != right.scenario_id or left.peaks != right.peaks:
            failures.append(
                f"non-deterministic sweep: {left.scenario_id} peaks differ "
                f"between serial and parallel runs"
            )
            break
    if warm_speedup < MIN_PARALLEL_WARM_SPEEDUP:
        failures.append(
            f"parallel warm sweep is only {warm_speedup:.2f}x faster than serial "
            f"cold (floor: {MIN_PARALLEL_WARM_SPEEDUP}x)"
        )

    worst = baseline.worst_case()
    summary = {
        "num_scenarios": len(scenarios),
        "parallel_warm_speedup_vs_serial_cold": warm_speedup,
        "serial_warm_speedup_vs_serial_cold": (
            by_phase["serial_cold"]["seconds"] / by_phase["serial_warm"]["seconds"]
        ),
        "deterministic": not any("non-deterministic" in f for f in failures),
        "fault_overhead": overhead,
        "fault_overhead_speedup": overhead["fault_overhead_speedup"],
        "worst_case": {
            "scenario_id": worst.scenario_id,
            "peak": worst.peaks["macromodel"],
        },
    }
    report = {
        "benchmark": "bench_sweep_scaling",
        "recorded_at": datetime.datetime.now(datetime.timezone.utc).isoformat(),
        "quick": args.quick,
        "platform": platform.platform(),
        "python": platform.python_version(),
        "space": space.describe(),
        "results": rows,
        "summary": summary,
    }
    output = os.path.abspath(args.output)
    with open(output, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")

    print(
        f"\nparallel warm vs serial cold: {warm_speedup:.1f}x "
        f"(floor: {MIN_PARALLEL_WARM_SPEEDUP}x); "
        f"worst case {worst.scenario_id} peak={worst.peaks['macromodel']:+.4f} V"
    )
    print(f"wrote {output}")
    if failures:
        print("FAILED:\n  " + "\n  ".join(failures), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
