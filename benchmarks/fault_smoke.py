#!/usr/bin/env python
"""CI fault-smoke: a worker pool under injected crashes, hangs and singulars.

Runs a five-corner sweep twice -- once fault-free and serial (the golden
numbers), once on two spawned worker processes under a deterministic
:mod:`repro.faults` plan that

* kills the worker (``os._exit``) on every attempt of one corner,
* wedges the worker on another (caught by the stall detector),
* kills the worker exactly once on a third (cross-process ledger budget),
* injects a budgeted singular dense factorisation on a fourth
  (absorbed by the in-core stepping or the degradation ladder),

and gates the fault-tolerance contract:

* the sweep completes without raising and loses zero scenarios;
* exactly the two unrecoverable corners are quarantined;
* every healthy scenario reproduces the fault-free peaks bit-identically;
* the report's ``SweepHealth`` actually records the recovery work.

Usage::

    PYTHONPATH=src python benchmarks/fault_smoke.py [--output report.json]
"""

import argparse
import json
import multiprocessing
import os
import shutil
import sys
import tempfile

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import faults
from repro.api import AnalysisConfig
from repro.experiments import figure1_cluster
from repro.scenarios import ScenarioSpace, SweepRunner, reset_worker_sessions

#: Corner -> injected fault (the other corners must come through untouched).
CRASH_ALWAYS = "ff"
HANG = "ss"
CRASH_ONCE = "sf"
SINGULAR = "tt"
CLEAN = "fs"


def build_plan(ledger_dir):
    return {
        "ledger_dir": ledger_dir,
        "faults": [
            {"site": "scenario", "kind": "crash", "match": f"*/{CRASH_ALWAYS}/*"},
            {
                "site": "scenario",
                "kind": "hang",
                "match": f"*/{HANG}/*",
                "hang_seconds": 300.0,
            },
            {
                "site": "scenario",
                "kind": "crash",
                "match": f"*/{CRASH_ONCE}/*",
                "max_trips": 1,
            },
            {
                "site": "solve",
                "kind": "singular",
                "match": f"*/{SINGULAR}/*",
                "max_trips": 2,
            },
        ],
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default=None, help="optional JSON report path")
    args = parser.parse_args(argv)

    space = ScenarioSpace(
        base=figure1_cluster(length_um=200.0, num_segments=3),
        technology="cmos130",
        corners=("tt", "ff", "ss", "fs", "sf"),
    )
    ids = [scenario.scenario_id for scenario in space.expand()]
    by_corner = {sid.split("/")[-2]: sid for sid in ids}

    cache_dir = tempfile.mkdtemp(prefix="repro-fault-smoke-")
    ledger_dir = tempfile.mkdtemp(prefix="repro-fault-ledger-")
    config = AnalysisConfig(
        methods=("macromodel",), vccs_grid=5, check_nrc=False, dt=4e-12,
        cache_dir=cache_dir,
    )
    failures = []
    try:
        reset_worker_sessions()
        baseline = SweepRunner(config).run(space)
        if baseline.errors:
            failures.append("fault-free baseline sweep has errors")

        os.environ[faults.FAULT_PLAN_ENV] = json.dumps(build_plan(ledger_dir))
        try:
            runner = SweepRunner(
                config,
                num_workers=2,
                shard_size=1,
                mp_context=multiprocessing.get_context("spawn"),
                max_retries=1,
                shard_timeout_s=10.0,
                retry_backoff_s=0.05,
            )
            report = runner.run(space)
        finally:
            del os.environ[faults.FAULT_PLAN_ENV]
            faults.clear_plan()
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)
        shutil.rmtree(ledger_dir, ignore_errors=True)

    print(report.text())
    health = report.health

    # Gate 1: zero lost scenarios, input order preserved.
    got = [result.scenario_id for result in report.results]
    if got != ids:
        failures.append(f"scenarios lost or reordered: expected {ids}, got {got}")

    # Gate 2: exactly the unrecoverable corners are quarantined.
    expected_quarantine = {by_corner[CRASH_ALWAYS], by_corner[HANG]}
    if set(health.quarantined) != expected_quarantine:
        failures.append(
            f"quarantine mismatch: expected {sorted(expected_quarantine)}, "
            f"got {sorted(health.quarantined)}"
        )

    # Gate 3: recovered and untouched scenarios are ok and bit-identical to
    # the fault-free run (the singular corner is allowed to be merely ok --
    # a degradation-ladder rung may legitimately produce different last-ulp
    # numbers on another backend).
    for corner in (CRASH_ONCE, CLEAN):
        sid = by_corner[corner]
        result = report.result(sid)
        if not result.ok:
            failures.append(f"{sid} failed under faults: {result.error}")
        elif result.peaks != baseline.result(sid).peaks:
            failures.append(f"{sid} peaks differ from the fault-free run")
    recovered = report.result(by_corner[CRASH_ONCE])
    if recovered.ok and recovered.attempts < 2:
        failures.append(
            f"{recovered.scenario_id} should have needed a retry "
            f"(attempts={recovered.attempts})"
        )
    singular = report.result(by_corner[SINGULAR])
    if not singular.ok:
        failures.append(
            f"{singular.scenario_id} did not survive the singular fault: "
            f"{singular.error}"
        )

    # Gate 4: the health record shows the machinery actually engaged.
    if health.worker_crashes < 1:
        failures.append("health.worker_crashes not recorded")
    if health.pool_rebuilds < 1:
        failures.append("health.pool_rebuilds not recorded")
    if health.timeouts < 1:
        failures.append("health.timeouts not recorded (stall detector idle)")
    if not health.events:
        failures.append("health.events is empty")
    if not health.faults_seen:
        failures.append("health.faults_seen is False despite injected faults")

    if args.output:
        with open(args.output, "w") as handle:
            json.dump(
                {
                    "benchmark": "fault_smoke",
                    "scenarios": ids,
                    "health": health.to_dict(),
                    "failures": failures,
                },
                handle,
                indent=2,
            )
            handle.write("\n")
        print(f"wrote {os.path.abspath(args.output)}")

    if failures:
        print("FAILED:\n  " + "\n  ".join(failures), file=sys.stderr)
        return 1
    print(
        f"fault smoke OK: {len(ids)} scenarios, "
        f"{len(health.quarantined)} quarantined, "
        f"{health.pool_rebuilds} pool rebuilds, {health.retries} retries"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
