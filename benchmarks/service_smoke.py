#!/usr/bin/env python
"""CI service-smoke: the analysis daemon on a real spawn pool, gated.

Boots :class:`repro.service.AnalysisServer` with two spawned worker
processes, runs a two-revision ECO loop through the synchronous client and
gates the service contract:

* zero lost jobs (``submitted == completed + failed``, nothing in limbo);
* revision 1 recomputes every cluster (cold store), an identical resubmit
  reuses every cluster, and the ECO revision recomputes *exactly* the one
  changed cluster;
* the dedup hit rate is strictly positive and matches the store counters;
* every reused cluster report is byte-identical to its first computation
  (provenance annotation aside).

Usage::

    PYTHONPATH=src python benchmarks/service_smoke.py [--output report.json]
"""

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.api import AnalysisConfig
from repro.experiments import figure1_cluster
from repro.service import ServiceClient, start_server_in_thread

LABELS = ("bus_short", "bus_mid", "bus_long")


def revision(eco=False):
    return {
        "bus_short": figure1_cluster(length_um=200.0, num_segments=3),
        "bus_mid": figure1_cluster(length_um=350.0 if eco else 300.0, num_segments=3),
        "bus_long": figure1_cluster(length_um=400.0, num_segments=3),
    }


def stripped(report):
    payload = report.to_json()
    payload["payload"]["fields"]["provenance"] = ""
    return json.dumps(payload, sort_keys=True)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default=None, help="optional JSON report path")
    parser.add_argument("--workers", type=int, default=2, help="worker processes")
    args = parser.parse_args(argv)

    config = AnalysisConfig(
        methods=("macromodel",), vccs_grid=5, check_nrc=False, dt=4e-12
    )
    failures = []
    handle = start_server_in_thread(config=config, num_workers=args.workers)
    try:
        with ServiceClient(handle.address) as client:
            rev1 = client.submit_design(revision(), design_name="smoke-rev1")
            resubmit = client.submit_design(revision(), design_name="smoke-rev1")
            rev2 = client.submit_design(revision(eco=True), design_name="smoke-rev2")
            status = client.status()
    finally:
        handle.stop()

    # Gate 1: no job and no cluster went missing.
    if status["jobs"]["lost"] != 0:
        failures.append(f"lost jobs: {status['jobs']}")
    if status["jobs"]["completed"] != 3 or status["jobs"]["failed"] != 0:
        failures.append(f"job accounting off: {status['jobs']}")
    for name, result in (("rev1", rev1), ("resubmit", resubmit), ("rev2", rev2)):
        if sorted(r.label for r in result.report) != sorted(LABELS):
            failures.append(f"{name} lost clusters: {[r.label for r in result.report]}")
        if result.failed:
            failures.append(f"{name} failed clusters: {result.failed}")

    # Gate 2: the fingerprint diff recomputes exactly what changed.
    if sorted(rev1.recomputed) != sorted(LABELS):
        failures.append(f"rev1 should recompute everything: {rev1.recomputed}")
    if resubmit.recomputed or sorted(resubmit.reused) != sorted(LABELS):
        failures.append(
            f"identical resubmit should reuse everything: "
            f"recomputed={resubmit.recomputed}"
        )
    if rev2.recomputed != ["bus_mid"]:
        failures.append(f"ECO should recompute exactly bus_mid: {rev2.recomputed}")
    if sorted(rev2.reused) != ["bus_long", "bus_short"]:
        failures.append(f"ECO reuse mismatch: {rev2.reused}")

    # Gate 3: dedup hit rate strictly positive (5 hits / 9 lookups here).
    dedup = status["dedup"]
    if not dedup["hit_rate"] > 0:
        failures.append(f"dedup hit rate not positive: {dedup}")
    if dedup["hits"] != 5 or dedup["entries"] != 4:
        failures.append(f"dedup counters off (expected 5 hits, 4 entries): {dedup}")

    # Gate 4: reused results are byte-identical to their first computation.
    for label in LABELS:
        if stripped(resubmit.report.cluster(label)) != stripped(rev1.report.cluster(label)):
            failures.append(f"resubmit result for {label} is not byte-identical")
    for label in ("bus_short", "bus_long"):
        if stripped(rev2.report.cluster(label)) != stripped(rev1.report.cluster(label)):
            failures.append(f"ECO reused result for {label} is not byte-identical")
    if stripped(rev2.report.cluster("bus_mid")) == stripped(rev1.report.cluster("bus_mid")):
        failures.append("ECO changed cluster bus_mid did not actually re-run")

    if args.output:
        with open(args.output, "w") as handle_:
            json.dump(
                {
                    "benchmark": "service_smoke",
                    "workers": args.workers,
                    "jobs": status["jobs"],
                    "dedup": dedup,
                    "cache_hit_rate": status["cache_hit_rate"],
                    "health": status["health"],
                    "rev2_recomputed": rev2.recomputed,
                    "rev2_reused": sorted(rev2.reused),
                    "failures": failures,
                },
                handle_,
                indent=2,
            )
            handle_.write("\n")
        print(f"wrote {os.path.abspath(args.output)}")

    if failures:
        print("FAILED:\n  " + "\n  ".join(failures), file=sys.stderr)
        return 1
    print(
        f"service smoke OK: {status['jobs']['completed']} jobs, "
        f"dedup hit rate {dedup['hit_rate']:.0%}, "
        f"ECO recomputed {rev2.recomputed} only"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
