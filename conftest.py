"""Pytest configuration: make the in-tree package importable.

The execution environment is offline and lacks the ``wheel`` package, so
``pip install -e .`` (PEP 660 editable install) cannot build its editable
wheel.  Adding ``src/`` to ``sys.path`` here keeps the test and benchmark
suites runnable from a plain checkout without any installation step.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(__file__), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
