"""Numerical degradation ladder for per-cluster analysis.

One pathological cluster must never cost a sweep its answer.  When a
cluster's analysis dies of a *numerical* failure -- a singular or
ill-conditioned factorisation, a Newton iteration that never converges --
or produces a result the screens reject (non-finite metrics, an unstable
or non-passive reduced model, methods that disagree wildly), this module
retries the cluster on progressively more conservative configurations
instead of giving up:

``reduced`` -> ``sparse`` -> ``dense``

* the **primary** rung is the session's own configuration;
* the **sparse** rung disables PRIMA projection (the most common source of
  instability at low orders) and forces the exact sparse direct solver;
* the **dense** rung additionally abandons sparse LU for dense LAPACK,
  the slowest but numerically sturdiest substrate in the repo.

Rung configs are *derived* from the session config -- the method list is
never changed, only how those methods evaluate -- so a report produced by a
lower rung keys its results exactly like a first-try report and downstream
aggregation needs no special cases.  Every attempt that fails is recorded
as a :class:`DegradationEvent` carrying the rung name and the trigger, so
reports show *why* a number came from a lower rung.

Infrastructure failures (a worker crash, a hang) are out of scope here --
the sweep runner's shard retry machinery owns those.  This module only
reacts to failures that re-running the same configuration would reproduce
deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Tuple

import numpy as np

from .api.config import AnalysisConfig
from .api.report import ClusterReport, exception_chain

if TYPE_CHECKING:
    from .api.session import NoiseAnalysisSession
    from .noise.cluster import NoiseClusterSpec

__all__ = [
    "DegradationEvent",
    "DegradationLog",
    "build_ladder",
    "is_numerical_failure",
    "resilient_analyze",
    "screen_report",
]

#: Reduction threshold that no realistic cluster reaches: "never project".
_NO_REDUCTION = 10**9

#: Methods disagreeing by more than this relative spread on the peak are
#: treated as a failed cross-check (one of them is numerically off).
DEFAULT_MAX_RELATIVE_SPREAD = 0.5


@dataclass(frozen=True)
class DegradationEvent:
    """One failed attempt on the ladder: which rung, why it was rejected."""

    rung: str
    trigger: str  #: "exception" or "screen"
    detail: str

    def describe(self) -> str:
        return f"{self.rung}: {self.trigger}: {self.detail}"


@dataclass
class DegradationLog:
    """Ordered record of every rejected attempt for one cluster."""

    events: List[DegradationEvent] = field(default_factory=list)
    #: Name of the rung that finally produced the accepted report.
    accepted_rung: str = ""

    def record(self, rung: str, trigger: str, detail: str) -> None:
        self.events.append(DegradationEvent(rung, trigger, detail))

    @property
    def degraded(self) -> bool:
        """True when the accepted result did not come from the first try."""
        return bool(self.events)

    def describe(self) -> Tuple[str, ...]:
        """Picklable one-line-per-event summary (rides on sweep results)."""
        return tuple(event.describe() for event in self.events)


def is_numerical_failure(exc: BaseException) -> bool:
    """Whether ``exc`` (or anything in its cause chain) is a numeric failure.

    Only these failures are worth a lower rung: a crash that is *not*
    numerical (a missing cell, a malformed spec) would reproduce identically
    on every configuration, so the ladder re-raises it immediately.
    """
    from .circuit.dc import ConvergenceError
    from .circuit.stamping import SingularMatrixError

    numeric_types = (
        SingularMatrixError,
        ConvergenceError,
        np.linalg.LinAlgError,
        FloatingPointError,
        ZeroDivisionError,
    )
    seen = set()
    current: Optional[BaseException] = exc
    while current is not None and id(current) not in seen:
        seen.add(id(current))
        if isinstance(current, numeric_types):
            return True
        current = current.__cause__ or current.__context__
    return False


def build_ladder(config: AnalysisConfig) -> List[Tuple[str, AnalysisConfig]]:
    """The (name, config) rungs the ladder tries, most capable first.

    Rungs whose derived config collapses onto an earlier one are dropped
    (e.g. a session already forcing the dense backend with no reduced
    method has a one-rung ladder), so every rung is a genuinely different
    evaluation.
    """
    uses_reduction = "reduced" in config.methods
    candidates = [("primary", config)]
    sparse_changes = {"solver_backend": "sparse"}
    dense_changes = {"solver_backend": "dense"}
    if uses_reduction:
        # Keep the method (and therefore the result keys) but push the
        # projection threshold out of reach: the "reduced" analysis then
        # hands every cluster to the direct engine.
        sparse_changes["reduction_threshold"] = _NO_REDUCTION
        dense_changes["reduction_threshold"] = _NO_REDUCTION
    candidates.append(("sparse", config.replace(**sparse_changes)))
    candidates.append(("dense", config.replace(**dense_changes)))

    ladder: List[Tuple[str, AnalysisConfig]] = []
    seen = set()
    for name, rung_config in candidates:
        if rung_config in seen:
            continue
        seen.add(rung_config)
        ladder.append((name, rung_config))
    return ladder


def screen_report(
    report: ClusterReport,
    *,
    max_relative_spread: float = DEFAULT_MAX_RELATIVE_SPREAD,
) -> Optional[str]:
    """Inspect a completed report for results that should not be trusted.

    Returns a human-readable trigger string when the report fails a screen
    (the ladder then retries on the next rung), ``None`` when it is sound.
    Screens, in order of severity:

    * any non-finite scalar metric (NaN/Inf peak, area or width);
    * a reduced-model :class:`~repro.reduction.prima.StabilityReport`
      (``details["stability"]``) flagging instability or passivity loss;
    * a relative peak spread across methods above ``max_relative_spread``
      (only evaluated when at least two methods ran and the largest peak
      is meaningfully non-zero).
    """
    peaks = {}
    for name, result in report.results.items():
        values = (result.peak, result.area_v_ps, result.width_ps)
        if not all(np.isfinite(v) for v in values):
            return (
                f"non-finite metrics from method '{name}' "
                f"(peak={result.peak!r}, area={result.area_v_ps!r}, "
                f"width={result.width_ps!r})"
            )
        peaks[name] = result.peak
        stability = result.details.get("stability")
        if stability is not None and not (stability.passive and stability.stable):
            return f"reduced model of method '{name}' failed: {stability.summary()}"

    if len(peaks) >= 2:
        largest = max(abs(p) for p in peaks.values())
        if largest > 1e-6:  # ignore spread between near-zero glitches
            spread = (max(peaks.values()) - min(peaks.values())) / largest
            if spread > max_relative_spread:
                pretty = ", ".join(f"{n}={p:+.4f}" for n, p in peaks.items())
                return (
                    f"method peaks disagree by {spread:.0%} "
                    f"(> {max_relative_spread:.0%}): {pretty}"
                )
    return None


def resilient_analyze(
    session: "NoiseAnalysisSession",
    spec: "NoiseClusterSpec",
    *,
    label: Optional[str] = None,
    dt: Optional[float] = None,
    t_stop: Optional[float] = None,
    check_nrc: Optional[bool] = None,
    max_relative_spread: float = DEFAULT_MAX_RELATIVE_SPREAD,
) -> Tuple[ClusterReport, DegradationLog]:
    """Analyse one cluster, walking the degradation ladder on failure.

    Lower rungs run in sessions *derived* from ``session`` -- same library,
    same (shared) characterizer, different :class:`AnalysisConfig` -- so a
    retry never pays for re-characterisation, only for re-simulation.

    Raises the original exception when the failure is not numerical, or
    when the last rung fails too.  A last-rung report that merely fails a
    *screen* is still returned (flagged in the log): a screened dense
    result is more useful to the sweep's error accounting than no result.
    """
    from .api.session import NoiseAnalysisSession

    ladder = build_ladder(session.config)
    log = DegradationLog()
    for position, (rung, rung_config) in enumerate(ladder):
        last = position == len(ladder) - 1
        rung_session = (
            session
            if rung_config is session.config
            else NoiseAnalysisSession(
                session.library, rung_config, characterizer=session.characterizer
            )
        )
        try:
            report = rung_session.analyze(
                spec, label=label, dt=dt, t_stop=t_stop, check_nrc=check_nrc
            )
        except Exception as exc:
            if last or not is_numerical_failure(exc):
                raise
            log.record(rung, "exception", " <- ".join(exception_chain(exc)))
            continue
        trigger = screen_report(report, max_relative_spread=max_relative_spread)
        if trigger is not None:
            log.record(rung, "screen", trigger)
            if not last:
                continue
        log.accepted_rung = rung
        report.degradation = log.describe()
        return report, log
    raise AssertionError("unreachable: the ladder always returns or raises")
