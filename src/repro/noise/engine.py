"""The dedicated noise-cluster macromodel engine.

The paper argues that because the cluster macromodel is "a simple circuit,
the total noise waveform can be accurately and efficiently computed by means
of a dedicated engine embedded into the noise analysis tool".  This module is
that engine: a small, node-voltage-only non-linear transient solver
specialised for the macromodel topology of Figure 1:

* linear conductances and capacitances (the reduced coupled interconnect and
  the receiver loads),
* Norton-transformed Thevenin aggressor drivers (a conductance plus a
  time-dependent current source),
* one or more non-linear current sources (the victim driver's table VCCS,
  whose input voltage is a known waveform).

Compared with the general-purpose MNA simulator in :mod:`repro.circuit`, this
engine has no branch currents, pre-assembles the constant part of the
Jacobian once per time step size, and evaluates only the few non-linear
sources per Newton iteration -- this is where the paper's reported speed-up
over full circuit simulation comes from.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import faults
from ..circuit.batched import FactorizationCache
from ..circuit.mna import solve_linear_system
from ..circuit.netlist import Circuit
from ..circuit.stamping import (
    LinearSolver,
    SingularMatrixError,
    SparseLinearSolver,
    resolve_backend,
)
from ..circuit.transient import _quantize_dt
from ..characterization.thevenin import TheveninDriverModel
from ..interconnect.rcnetwork import CoupledRCNetwork
from ..waveform import Waveform

__all__ = ["MacromodelNetwork", "DedicatedNoiseEngine", "EngineStatistics"]


#: Type of a non-linear source callback: ``func(t, v) -> (i_injected, di/dv)``.
NonlinearSource = Callable[[float, float], Tuple[float, float]]

#: Type of a time-dependent current source callback: ``func(t) -> i_injected``.
TimeSource = Callable[[float], float]


class MacromodelNetwork:
    """A node-voltage-only dynamic network (the macromodel of Figure 1)."""

    def __init__(self, name: str = "macromodel"):
        self.name = name
        self._node_names: List[str] = []
        self._node_index: Dict[str, int] = {}
        self._conductances: List[Tuple[int, int, float]] = []
        self._capacitances: List[Tuple[int, int, float]] = []
        #: time-dependent current sources: (node, func(t)) injecting into node.
        self._sources: List[Tuple[int, TimeSource]] = []
        #: non-linear sources: (node, func(t, v_node)) injecting into node.
        self._nonlinear: List[Tuple[int, NonlinearSource]] = []

    # ------------------------------------------------------------------ nodes

    def node(self, name: str) -> int:
        norm = Circuit.canonical_node_name(name)
        if norm == "0":
            return -1
        if norm not in self._node_index:
            self._node_index[norm] = len(self._node_names)
            self._node_names.append(norm)
        return self._node_index[norm]

    def node_index(self, name: str) -> int:
        norm = Circuit.canonical_node_name(name)
        if norm == "0":
            return -1
        return self._node_index[norm]

    @property
    def node_names(self) -> List[str]:
        return list(self._node_names)

    @property
    def num_nodes(self) -> int:
        return len(self._node_names)

    # ---------------------------------------------------------------- elements

    def add_conductance(self, a: str, b: str, conductance: float) -> None:
        if conductance < 0:
            raise ValueError("conductance must be non-negative")
        self._conductances.append((self.node(a), self.node(b), conductance))

    def add_resistance(self, a: str, b: str, resistance: float) -> None:
        if resistance <= 0:
            raise ValueError("resistance must be positive")
        self.add_conductance(a, b, 1.0 / resistance)

    def add_capacitance(self, a: str, b: str, capacitance: float) -> None:
        if capacitance < 0:
            raise ValueError("capacitance must be non-negative")
        if capacitance == 0.0:
            return
        self._capacitances.append((self.node(a), self.node(b), capacitance))

    def add_current_source(self, node: str, source: TimeSource) -> None:
        """A current source injecting ``source(t)`` amperes into ``node``."""
        self._sources.append((self.node(node), source))

    def add_nonlinear_source(self, node: str, source: NonlinearSource) -> None:
        """A non-linear source injecting ``source(t, v_node)[0]`` into ``node``."""
        self._nonlinear.append((self.node(node), source))

    def add_thevenin_driver(
        self,
        node: str,
        model: TheveninDriverModel,
        *,
        extra_delay: float = 0.0,
    ) -> None:
        """Attach a Thevenin (ramp + R) driver as its Norton equivalent."""
        conductance = 1.0 / model.resistance
        ramp = model.ramp(extra_delay)
        self.add_conductance(node, "0", conductance)
        self.add_current_source(node, lambda t, _r=ramp, _g=conductance: _r(t) * _g)

    def add_holding_resistor(self, node: str, resistance: float, level: float) -> None:
        """A linear holding driver: resistance to a fixed voltage ``level``."""
        conductance = 1.0 / resistance
        self.add_conductance(node, "0", conductance)
        if level != 0.0:
            self.add_current_source(node, lambda _t, _i=level * conductance: _i)

    def import_rc_network(self, network: CoupledRCNetwork) -> None:
        """Copy all R/C elements of a (possibly reduced) wiring network."""
        for element in network.elements:
            if element.kind == "R":
                self.add_resistance(element.node_a, element.node_b, element.value)
            else:
                self.add_capacitance(element.node_a, element.node_b, element.value)

    # ---------------------------------------------------------------- matrices

    @staticmethod
    def _nodal_coo(triples) -> Tuple[List[int], List[int], List[float]]:
        """Two-terminal nodal stamps of ``(a, b, value)`` triples as COO.

        The single authoritative expansion both the dense and the sparse
        matrix builders scatter from -- one edit changes both, so the
        backends cannot drift apart.
        """
        rows: List[int] = []
        cols: List[int] = []
        vals: List[float] = []
        for a, b, value in triples:
            if a >= 0:
                rows.append(a)
                cols.append(a)
                vals.append(value)
            if b >= 0:
                rows.append(b)
                cols.append(b)
                vals.append(value)
            if a >= 0 and b >= 0:
                rows.extend((a, b))
                cols.extend((b, a))
                vals.extend((-value, -value))
        return rows, cols, vals

    def build_matrices(self) -> Tuple[np.ndarray, np.ndarray]:
        """Assemble the nodal conductance and capacitance matrices."""
        n = self.num_nodes
        G = np.zeros((n, n))
        C = np.zeros((n, n))
        for matrix, triples in ((G, self._conductances), (C, self._capacitances)):
            rows, cols, vals = self._nodal_coo(triples)
            np.add.at(matrix, (rows, cols), vals)
        return G, C

    def build_matrices_sparse(self):
        """Sparse (CSC) twins of :meth:`build_matrices`.

        Assembled straight from the element triples -- the dense ``n x n``
        arrays are never materialised, which is what lets the engine's
        sparse backend handle ``reduction="full"`` macromodels with
        thousands of RC nodes.
        """
        from scipy import sparse

        n = self.num_nodes
        matrices = []
        for triples in (self._conductances, self._capacitances):
            rows, cols, vals = self._nodal_coo(triples)
            matrices.append(
                sparse.coo_matrix((vals, (rows, cols)), shape=(n, n)).tocsc()
            )
        return matrices[0], matrices[1]

    def fingerprint(self) -> str:
        """Content hash of the linear part: node count plus G/C triples.

        Sources (time-dependent and nonlinear) are deliberately excluded --
        they only enter the right-hand side and the rank-k Newton
        correction, never the factorised base matrix.  Two networks with
        equal fingerprints (and equal gmin) therefore produce bit-identical
        ``G``/``C`` matrices, which is what makes the fingerprint a safe
        :class:`~repro.circuit.batched.FactorizationCache` key.
        """
        digest = hashlib.sha1()
        digest.update(np.int64(self.num_nodes).tobytes())
        for triples in (self._conductances, self._capacitances):
            arr = np.array(triples, dtype=np.float64).reshape(-1, 3)
            digest.update(arr.tobytes())
            digest.update(b"|")
        return digest.hexdigest()

    def source_vector(self, t: float) -> np.ndarray:
        """Currents injected by the time-dependent sources at time ``t``."""
        vector = np.zeros(self.num_nodes)
        for node, source in self._sources:
            if node >= 0:
                vector[node] += source(t)
        return vector

    @property
    def time_sources(self) -> List[Tuple[int, TimeSource]]:
        """Node-index / callable pairs of the time-dependent current sources.

        This is the per-source view of :meth:`source_vector`; the reduced
        engine uses it to project each injection site onto its Krylov basis
        once instead of rebuilding an ``n``-sized vector every step.
        """
        return list(self._sources)

    @property
    def nonlinear_sources(self) -> List[Tuple[int, NonlinearSource]]:
        return list(self._nonlinear)

    def __repr__(self) -> str:
        return (
            f"MacromodelNetwork({self.name!r}, {self.num_nodes} nodes, "
            f"{len(self._conductances)} G, {len(self._capacitances)} C, "
            f"{len(self._sources)} sources, {len(self._nonlinear)} non-linear)"
        )


@dataclass
class EngineStatistics:
    """Bookkeeping of one engine run (used by the speed-up benchmark).

    Besides the classical time-point / Newton counters this carries the
    kernel-level perf counters introduced with the vectorized MNA assembly:
    how many full matrix assemblies were *avoided* (served from a cached
    base matrix or a constant Jacobian), how often an existing LU
    factorization was reused, and how many factorizations were computed.
    """

    num_time_points: int = 0
    newton_iterations: int = 0
    runtime_seconds: float = 0.0
    assemblies_avoided: int = 0
    lu_reuse_hits: int = 0
    matrix_factorizations: int = 0
    fast_path_runs: int = 0
    #: Factorizations answered by a shared session cache instead of computed.
    factorizations_saved: int = 0
    #: Stacked multi-RHS solves (the Newton basis columns are solved in one
    #: BLAS call instead of one call per nonlinear node).
    batched_solves: int = 0

    def merge(self, other: "EngineStatistics") -> "EngineStatistics":
        """Accumulate another run's counters into this one (returns self)."""
        self.num_time_points += other.num_time_points
        self.newton_iterations += other.newton_iterations
        self.runtime_seconds += other.runtime_seconds
        self.assemblies_avoided += other.assemblies_avoided
        self.lu_reuse_hits += other.lu_reuse_hits
        self.matrix_factorizations += other.matrix_factorizations
        self.fast_path_runs += other.fast_path_runs
        self.factorizations_saved += other.factorizations_saved
        self.batched_solves += other.batched_solves
        return self


class DedicatedNoiseEngine:
    """Fixed-step trapezoidal integrator specialised for macromodel networks."""

    def __init__(
        self,
        network: MacromodelNetwork,
        *,
        gmin: float = 1e-9,
        newton_tolerance: float = 1e-7,
        max_newton_iterations: int = 40,
        damping_limit: float = 1.0,
        solver_backend: str = "auto",
        solver_cache: Optional[FactorizationCache] = None,
    ):
        self.network = network
        self.gmin = gmin
        self.newton_tolerance = newton_tolerance
        self.max_newton_iterations = max_newton_iterations
        #: Maximum per-iteration change of any node voltage (volts); caps the
        #: Newton step so table-VCCS corners cannot throw the iterate far
        #: outside the characterised range.
        self.damping_limit = damping_limit
        #: Backend the engine actually runs.  On the sparse side G and C are
        #: assembled as CSC straight from the element triples (never a dense
        #: n x n array) and the constant systems factorise with scipy.sparse
        #: splu -- the win for reduction="full" macromodels that keep
        #: thousands of RC nodes.  The table-VCCS Newton loop holds the
        #: backend end to end: the nonlinear sources enter as a rank-k
        #: diagonal correction solved through the factorised linear base
        #: (Woodbury identity), so nonlinear networks no longer demote to
        #: dense.
        self.resolved_backend = resolve_backend(solver_backend, network.num_nodes)
        #: Optional session-shared :class:`FactorizationCache`; when present,
        #: structurally identical engines (Monte Carlo samples of one
        #: cluster) factorise their base matrices once per session.
        self.solver_cache = solver_cache
        self.statistics = EngineStatistics()
        n = network.num_nodes
        if self.resolved_backend == "sparse":
            from scipy import sparse

            G, C = network.build_matrices_sparse()
            self._G = (G + gmin * sparse.identity(n, format="csc")).tocsc()
            self._C = C
        else:
            self._G, self._C = network.build_matrices()
            self._G[np.arange(n), np.arange(n)] += gmin
        # Content hash of the matrices just built (the cache key component);
        # later network mutations do not reach _G/_C, so hash now, once.
        self._fingerprint = network.fingerprint()

    # ------------------------------------------------------- solver acquisition

    def _acquire_solver(self, matrix, dt_key: Optional[float]):
        """A factorization of ``matrix``, via the session cache when present.

        The injected-singular fault hook fires *before* the cache lookup
        (dense acquisitions only, matching the dense-factorisation semantics
        of the ``solve`` fault site), so a warm cache can never suppress a
        planned fault drill.
        """
        dense = isinstance(matrix, np.ndarray)
        if dense and faults.fire("solve") == "singular":
            raise SingularMatrixError("injected singular matrix [fault plan]")

        def build():
            return LinearSolver(matrix) if dense else SparseLinearSolver(matrix)

        if self.solver_cache is None:
            self.statistics.matrix_factorizations += 1
            return build()
        key = (
            "engine",
            self._fingerprint,
            dt_key,
            repr(self.gmin),
            self.resolved_backend,
        )
        solver, hit = self.solver_cache.solver(key, build)
        if hit:
            self.statistics.factorizations_saved += 1
        else:
            self.statistics.matrix_factorizations += 1
        return solver

    def _basis_columns(self, solver, nodes: np.ndarray) -> np.ndarray:
        """``A^-1 E`` for the identity columns at the nonlinear nodes.

        One stacked multi-RHS solve for all nonlinear nodes at once -- the
        per-iteration Woodbury correction then needs only a k x k solve.
        """
        n = self.network.num_nodes
        if not nodes.size:
            return np.zeros((n, 0))
        E = np.zeros((n, nodes.size))
        E[nodes, np.arange(nodes.size)] = 1.0
        W = np.asarray(solver.solve(E))
        self.statistics.batched_solves += 1
        if self.solver_cache is not None:
            self.solver_cache.record_stacked_solves()
        return W

    def _explicit_jacobian(self, base, nodes: np.ndarray, didv: np.ndarray):
        """``base`` minus the diagonal di/dv correction, assembled explicitly."""
        if isinstance(base, np.ndarray):
            jacobian = base.copy()
            jacobian[nodes, nodes] -= didv
            return jacobian
        from scipy import sparse

        delta = sparse.coo_matrix((-didv, (nodes, nodes)), shape=base.shape)
        return (base + delta).tocsc()

    def _corrected_solve(
        self,
        solver,
        W: np.ndarray,
        base,
        nodes: np.ndarray,
        didv: np.ndarray,
        rhs: np.ndarray,
    ) -> np.ndarray:
        """Solve ``(A - E diag(didv) E^T) x = rhs`` through ``A``'s factors.

        Woodbury identity in the form that tolerates ``didv = 0`` entries:
        with ``y = A^-1 rhs`` and ``W = A^-1 E``, solve the k x k system
        ``(I - diag(didv) W_kk) u = didv * y_k`` and return ``y + W u``.
        When the k x k system is itself singular (a table-VCCS corner can
        cancel the diagonal exactly), fall back to assembling the corrected
        Jacobian and solving it directly.
        """
        y = solver.solve(rhs)
        if not nodes.size or not np.any(didv):
            return y
        m = np.eye(nodes.size) - didv[:, np.newaxis] * W[nodes, :]
        try:
            u = np.linalg.solve(m, didv * y[nodes])
            x = y + W @ u
        except np.linalg.LinAlgError:
            x = None
        if x is not None and np.all(np.isfinite(x)):
            return x
        return solve_linear_system(self._explicit_jacobian(base, nodes, didv), rhs)

    @staticmethod
    def _nonlinear_support(nonlinear) -> Tuple[np.ndarray, Dict[int, int]]:
        """Distinct non-ground nonlinear nodes and their correction slots."""
        nodes = sorted({node for node, _ in nonlinear if node >= 0})
        return np.array(nodes, dtype=int), {node: i for i, node in enumerate(nodes)}

    # ---------------------------------------------------------------- DC solve

    def dc_solve(self, t: float = 0.0, v0: Optional[np.ndarray] = None) -> np.ndarray:
        """Quiescent operating point of the macromodel at time ``t``."""
        n = self.network.num_nodes
        v = np.zeros(n) if v0 is None else np.array(v0, dtype=float, copy=True)
        sources = self.network.source_vector(t)
        nonlinear = self.network.nonlinear_sources
        if not nonlinear:
            # Purely linear: the Jacobian is G itself; no factorization is
            # worth caching for the two iterations the loop needs.
            for _ in range(self.max_newton_iterations):
                residual = self._G @ v - sources
                dv = solve_linear_system(self._G, -residual)
                max_dv = float(np.max(np.abs(dv))) if dv.size else 0.0
                if max_dv > self.damping_limit:
                    dv *= self.damping_limit / max_dv
                v += dv
                self.statistics.newton_iterations += 1
                if max_dv < self.newton_tolerance:
                    break
            return v

        nodes, slot = self._nonlinear_support(nonlinear)
        solver = self._acquire_solver(self._G, None)
        W = self._basis_columns(solver, nodes)
        for _ in range(self.max_newton_iterations):
            residual = self._G @ v - sources
            didv_sum = np.zeros(nodes.size)
            for node, func in nonlinear:
                if node < 0:
                    continue
                current, didv = func(t, float(v[node]))
                residual[node] -= current
                didv_sum[slot[node]] += didv
            dv = self._corrected_solve(solver, W, self._G, nodes, didv_sum, -residual)
            max_dv = float(np.max(np.abs(dv))) if dv.size else 0.0
            if max_dv > self.damping_limit:
                dv *= self.damping_limit / max_dv
            v += dv
            self.statistics.newton_iterations += 1
            if max_dv < self.newton_tolerance:
                break
        return v

    # --------------------------------------------------------------- transient

    def simulate(
        self,
        t_stop: float,
        dt: float,
        *,
        v0: Optional[np.ndarray] = None,
        observe: Optional[Sequence[str]] = None,
    ) -> Dict[str, Waveform]:
        """Integrate the macromodel from 0 to ``t_stop`` with step ``dt``.

        Returns waveforms of the observed nodes (all nodes by default).
        The integration is trapezoidal with a Newton solve per time point;
        the constant part of the Jacobian ``G + (2/dt) C`` is assembled once.
        """
        if t_stop <= 0 or dt <= 0 or dt > t_stop:
            raise ValueError("invalid t_stop/dt combination")
        start_time = time.perf_counter()

        n = self.network.num_nodes
        num_steps = int(round(t_stop / dt))
        times = np.linspace(0.0, t_stop, num_steps + 1)

        v = self.dc_solve(0.0, v0)
        results = np.zeros((len(times), n))
        results[0] = v
        cap_current = np.zeros(n)  # C dv/dt, zero in the quiescent state

        a_const = self._G + (2.0 / dt) * self._C
        two_c_over_dt = (2.0 / dt) * self._C
        nonlinear = self.network.nonlinear_sources
        dt_key = _quantize_dt(dt)

        total_newton = 0
        # The trapezoidal system matrix G + (2/dt) C is constant for the
        # whole run on *both* paths: the linear path reduces every time point
        # to a back-substitution, and the Newton path folds the table-VCCS
        # sources into a rank-k diagonal correction solved through the same
        # factorization (see _corrected_solve) -- one factorization per run,
        # dense or sparse alike.
        linear_solver = None
        newton_solver = None
        W = np.zeros((n, 0))
        nodes = np.zeros(0, dtype=int)
        slot: Dict[int, int] = {}
        if not nonlinear:
            linear_solver = self._acquire_solver(a_const, dt_key)
            self.statistics.fast_path_runs += 1
        else:
            nodes, slot = self._nonlinear_support(nonlinear)
            newton_solver = self._acquire_solver(a_const, dt_key)
            W = self._basis_columns(newton_solver, nodes)

        for step in range(1, len(times)):
            t = float(times[step])
            rhs_const = two_c_over_dt @ v + cap_current + self.network.source_vector(t)
            if linear_solver is not None:
                v_new = linear_solver.solve(rhs_const)
                if step > 1:
                    # The first solve pays for the factorization; every later
                    # step reuses it (same convention as the circuit-level
                    # LinearTransientStepper).
                    self.statistics.lu_reuse_hits += 1
            else:
                v_new = v.copy()
                for _ in range(self.max_newton_iterations):
                    residual = a_const @ v_new - rhs_const
                    # The constant Jacobian base is never reassembled (nor
                    # even copied): each iteration only re-evaluates the few
                    # nonlinear sources and solves through the shared
                    # factorization.
                    self.statistics.assemblies_avoided += 1
                    didv_sum = np.zeros(nodes.size)
                    for node, func in nonlinear:
                        if node < 0:
                            continue
                        current, didv = func(t, float(v_new[node]))
                        residual[node] -= current
                        didv_sum[slot[node]] += didv
                    dv = self._corrected_solve(
                        newton_solver, W, a_const, nodes, didv_sum, -residual
                    )
                    max_dv = float(np.max(np.abs(dv))) if dv.size else 0.0
                    if max_dv > self.damping_limit:
                        dv *= self.damping_limit / max_dv
                    v_new += dv
                    total_newton += 1
                    if max_dv < self.newton_tolerance:
                        break
            cap_current = two_c_over_dt @ (v_new - v) - cap_current
            v = v_new
            results[step] = v

        self.statistics.num_time_points += len(times) - 1
        self.statistics.newton_iterations += total_newton
        self.statistics.runtime_seconds += time.perf_counter() - start_time

        names = self.network.node_names
        observe_set = set(Circuit.canonical_node_name(o) for o in observe) if observe else None
        waveforms: Dict[str, Waveform] = {}
        for index, name in enumerate(names):
            if observe_set is not None and name not in observe_set:
                continue
            waveforms[name] = Waveform(times, results[:, index])
        return waveforms
