"""The dedicated noise-cluster macromodel engine.

The paper argues that because the cluster macromodel is "a simple circuit,
the total noise waveform can be accurately and efficiently computed by means
of a dedicated engine embedded into the noise analysis tool".  This module is
that engine: a small, node-voltage-only non-linear transient solver
specialised for the macromodel topology of Figure 1:

* linear conductances and capacitances (the reduced coupled interconnect and
  the receiver loads),
* Norton-transformed Thevenin aggressor drivers (a conductance plus a
  time-dependent current source),
* one or more non-linear current sources (the victim driver's table VCCS,
  whose input voltage is a known waveform).

Compared with the general-purpose MNA simulator in :mod:`repro.circuit`, this
engine has no branch currents, pre-assembles the constant part of the
Jacobian once per time step size, and evaluates only the few non-linear
sources per Newton iteration -- this is where the paper's reported speed-up
over full circuit simulation comes from.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..circuit.mna import solve_linear_system
from ..circuit.netlist import Circuit
from ..circuit.stamping import LinearSolver, SparseLinearSolver, resolve_backend
from ..characterization.thevenin import TheveninDriverModel
from ..interconnect.rcnetwork import CoupledRCNetwork
from ..waveform import Waveform

__all__ = ["MacromodelNetwork", "DedicatedNoiseEngine", "EngineStatistics"]


#: Type of a non-linear source callback: ``func(t, v) -> (i_injected, di/dv)``.
NonlinearSource = Callable[[float, float], Tuple[float, float]]

#: Type of a time-dependent current source callback: ``func(t) -> i_injected``.
TimeSource = Callable[[float], float]


class MacromodelNetwork:
    """A node-voltage-only dynamic network (the macromodel of Figure 1)."""

    def __init__(self, name: str = "macromodel"):
        self.name = name
        self._node_names: List[str] = []
        self._node_index: Dict[str, int] = {}
        self._conductances: List[Tuple[int, int, float]] = []
        self._capacitances: List[Tuple[int, int, float]] = []
        #: time-dependent current sources: (node, func(t)) injecting into node.
        self._sources: List[Tuple[int, TimeSource]] = []
        #: non-linear sources: (node, func(t, v_node)) injecting into node.
        self._nonlinear: List[Tuple[int, NonlinearSource]] = []

    # ------------------------------------------------------------------ nodes

    def node(self, name: str) -> int:
        norm = Circuit.canonical_node_name(name)
        if norm == "0":
            return -1
        if norm not in self._node_index:
            self._node_index[norm] = len(self._node_names)
            self._node_names.append(norm)
        return self._node_index[norm]

    def node_index(self, name: str) -> int:
        norm = Circuit.canonical_node_name(name)
        if norm == "0":
            return -1
        return self._node_index[norm]

    @property
    def node_names(self) -> List[str]:
        return list(self._node_names)

    @property
    def num_nodes(self) -> int:
        return len(self._node_names)

    # ---------------------------------------------------------------- elements

    def add_conductance(self, a: str, b: str, conductance: float) -> None:
        if conductance < 0:
            raise ValueError("conductance must be non-negative")
        self._conductances.append((self.node(a), self.node(b), conductance))

    def add_resistance(self, a: str, b: str, resistance: float) -> None:
        if resistance <= 0:
            raise ValueError("resistance must be positive")
        self.add_conductance(a, b, 1.0 / resistance)

    def add_capacitance(self, a: str, b: str, capacitance: float) -> None:
        if capacitance < 0:
            raise ValueError("capacitance must be non-negative")
        if capacitance == 0.0:
            return
        self._capacitances.append((self.node(a), self.node(b), capacitance))

    def add_current_source(self, node: str, source: TimeSource) -> None:
        """A current source injecting ``source(t)`` amperes into ``node``."""
        self._sources.append((self.node(node), source))

    def add_nonlinear_source(self, node: str, source: NonlinearSource) -> None:
        """A non-linear source injecting ``source(t, v_node)[0]`` into ``node``."""
        self._nonlinear.append((self.node(node), source))

    def add_thevenin_driver(
        self,
        node: str,
        model: TheveninDriverModel,
        *,
        extra_delay: float = 0.0,
    ) -> None:
        """Attach a Thevenin (ramp + R) driver as its Norton equivalent."""
        conductance = 1.0 / model.resistance
        ramp = model.ramp(extra_delay)
        self.add_conductance(node, "0", conductance)
        self.add_current_source(node, lambda t, _r=ramp, _g=conductance: _r(t) * _g)

    def add_holding_resistor(self, node: str, resistance: float, level: float) -> None:
        """A linear holding driver: resistance to a fixed voltage ``level``."""
        conductance = 1.0 / resistance
        self.add_conductance(node, "0", conductance)
        if level != 0.0:
            self.add_current_source(node, lambda _t, _i=level * conductance: _i)

    def import_rc_network(self, network: CoupledRCNetwork) -> None:
        """Copy all R/C elements of a (possibly reduced) wiring network."""
        for element in network.elements:
            if element.kind == "R":
                self.add_resistance(element.node_a, element.node_b, element.value)
            else:
                self.add_capacitance(element.node_a, element.node_b, element.value)

    # ---------------------------------------------------------------- matrices

    @staticmethod
    def _nodal_coo(triples) -> Tuple[List[int], List[int], List[float]]:
        """Two-terminal nodal stamps of ``(a, b, value)`` triples as COO.

        The single authoritative expansion both the dense and the sparse
        matrix builders scatter from -- one edit changes both, so the
        backends cannot drift apart.
        """
        rows: List[int] = []
        cols: List[int] = []
        vals: List[float] = []
        for a, b, value in triples:
            if a >= 0:
                rows.append(a)
                cols.append(a)
                vals.append(value)
            if b >= 0:
                rows.append(b)
                cols.append(b)
                vals.append(value)
            if a >= 0 and b >= 0:
                rows.extend((a, b))
                cols.extend((b, a))
                vals.extend((-value, -value))
        return rows, cols, vals

    def build_matrices(self) -> Tuple[np.ndarray, np.ndarray]:
        """Assemble the nodal conductance and capacitance matrices."""
        n = self.num_nodes
        G = np.zeros((n, n))
        C = np.zeros((n, n))
        for matrix, triples in ((G, self._conductances), (C, self._capacitances)):
            rows, cols, vals = self._nodal_coo(triples)
            np.add.at(matrix, (rows, cols), vals)
        return G, C

    def build_matrices_sparse(self):
        """Sparse (CSC) twins of :meth:`build_matrices`.

        Assembled straight from the element triples -- the dense ``n x n``
        arrays are never materialised, which is what lets the engine's
        sparse backend handle ``reduction="full"`` macromodels with
        thousands of RC nodes.
        """
        from scipy import sparse

        n = self.num_nodes
        matrices = []
        for triples in (self._conductances, self._capacitances):
            rows, cols, vals = self._nodal_coo(triples)
            matrices.append(
                sparse.coo_matrix((vals, (rows, cols)), shape=(n, n)).tocsc()
            )
        return matrices[0], matrices[1]

    def source_vector(self, t: float) -> np.ndarray:
        """Currents injected by the time-dependent sources at time ``t``."""
        vector = np.zeros(self.num_nodes)
        for node, source in self._sources:
            if node >= 0:
                vector[node] += source(t)
        return vector

    @property
    def time_sources(self) -> List[Tuple[int, TimeSource]]:
        """Node-index / callable pairs of the time-dependent current sources.

        This is the per-source view of :meth:`source_vector`; the reduced
        engine uses it to project each injection site onto its Krylov basis
        once instead of rebuilding an ``n``-sized vector every step.
        """
        return list(self._sources)

    @property
    def nonlinear_sources(self) -> List[Tuple[int, NonlinearSource]]:
        return list(self._nonlinear)

    def __repr__(self) -> str:
        return (
            f"MacromodelNetwork({self.name!r}, {self.num_nodes} nodes, "
            f"{len(self._conductances)} G, {len(self._capacitances)} C, "
            f"{len(self._sources)} sources, {len(self._nonlinear)} non-linear)"
        )


@dataclass
class EngineStatistics:
    """Bookkeeping of one engine run (used by the speed-up benchmark).

    Besides the classical time-point / Newton counters this carries the
    kernel-level perf counters introduced with the vectorized MNA assembly:
    how many full matrix assemblies were *avoided* (served from a cached
    base matrix or a constant Jacobian), how often an existing LU
    factorization was reused, and how many factorizations were computed.
    """

    num_time_points: int = 0
    newton_iterations: int = 0
    runtime_seconds: float = 0.0
    assemblies_avoided: int = 0
    lu_reuse_hits: int = 0
    matrix_factorizations: int = 0
    fast_path_runs: int = 0

    def merge(self, other: "EngineStatistics") -> "EngineStatistics":
        """Accumulate another run's counters into this one (returns self)."""
        self.num_time_points += other.num_time_points
        self.newton_iterations += other.newton_iterations
        self.runtime_seconds += other.runtime_seconds
        self.assemblies_avoided += other.assemblies_avoided
        self.lu_reuse_hits += other.lu_reuse_hits
        self.matrix_factorizations += other.matrix_factorizations
        self.fast_path_runs += other.fast_path_runs
        return self


class DedicatedNoiseEngine:
    """Fixed-step trapezoidal integrator specialised for macromodel networks."""

    def __init__(
        self,
        network: MacromodelNetwork,
        *,
        gmin: float = 1e-9,
        newton_tolerance: float = 1e-7,
        max_newton_iterations: int = 40,
        damping_limit: float = 1.0,
        solver_backend: str = "auto",
    ):
        self.network = network
        self.gmin = gmin
        self.newton_tolerance = newton_tolerance
        self.max_newton_iterations = max_newton_iterations
        #: Maximum per-iteration change of any node voltage (volts); caps the
        #: Newton step so table-VCCS corners cannot throw the iterate far
        #: outside the characterised range.
        self.damping_limit = damping_limit
        requested = resolve_backend(solver_backend, network.num_nodes)
        #: Backend the engine actually runs.  On the sparse side G and C are
        #: assembled as CSC straight from the element triples (never a dense
        #: n x n array) and the constant trapezoidal system factorises with
        #: scipy.sparse splu -- the win for reduction="full" macromodels
        #: that keep thousands of RC nodes.  The Newton loop for table-VCCS
        #: macromodels is dense-only (those networks are reduced and small),
        #: so a network with nonlinear sources resolves to "dense" whatever
        #: was requested -- the reported backend never claims a substrate
        #: that did not run.
        self.resolved_backend = (
            "dense" if network.nonlinear_sources else requested
        )
        self.statistics = EngineStatistics()
        n = network.num_nodes
        if self.resolved_backend == "sparse":
            from scipy import sparse

            G, C = network.build_matrices_sparse()
            self._G = (G + gmin * sparse.identity(n, format="csc")).tocsc()
            self._C = C
        else:
            self._G, self._C = network.build_matrices()
            self._G[np.arange(n), np.arange(n)] += gmin

    def _ensure_dense_for_nonlinear(self) -> None:
        """Densify G/C when nonlinear sources appeared after construction.

        The engine's Newton loop (DC and transient) is dense-only; a
        sparse-built engine whose network gained nonlinear sources later
        falls back to dense matrices *before* any Newton work runs, and
        reports the demotion through ``resolved_backend``.
        """
        if self.network.nonlinear_sources and not isinstance(self._G, np.ndarray):
            self._G = self._G.toarray()
            self._C = self._C.toarray()
            self.resolved_backend = "dense"

    # ---------------------------------------------------------------- DC solve

    def dc_solve(self, t: float = 0.0, v0: Optional[np.ndarray] = None) -> np.ndarray:
        """Quiescent operating point of the macromodel at time ``t``."""
        self._ensure_dense_for_nonlinear()
        n = self.network.num_nodes
        v = np.zeros(n) if v0 is None else np.array(v0, dtype=float, copy=True)
        sources = self.network.source_vector(t)
        for _ in range(self.max_newton_iterations):
            residual = self._G @ v - sources
            jacobian = self._G.copy()
            for node, func in self.network.nonlinear_sources:
                if node < 0:
                    continue
                current, didv = func(t, float(v[node]))
                residual[node] -= current
                jacobian[node, node] -= didv
            dv = solve_linear_system(jacobian, -residual)
            max_dv = float(np.max(np.abs(dv))) if dv.size else 0.0
            if max_dv > self.damping_limit:
                dv *= self.damping_limit / max_dv
            v += dv
            self.statistics.newton_iterations += 1
            if max_dv < self.newton_tolerance:
                break
        return v

    # --------------------------------------------------------------- transient

    def simulate(
        self,
        t_stop: float,
        dt: float,
        *,
        v0: Optional[np.ndarray] = None,
        observe: Optional[Sequence[str]] = None,
    ) -> Dict[str, Waveform]:
        """Integrate the macromodel from 0 to ``t_stop`` with step ``dt``.

        Returns waveforms of the observed nodes (all nodes by default).
        The integration is trapezoidal with a Newton solve per time point;
        the constant part of the Jacobian ``G + (2/dt) C`` is assembled once.
        """
        if t_stop <= 0 or dt <= 0 or dt > t_stop:
            raise ValueError("invalid t_stop/dt combination")
        self._ensure_dense_for_nonlinear()
        start_time = time.perf_counter()

        n = self.network.num_nodes
        num_steps = int(round(t_stop / dt))
        times = np.linspace(0.0, t_stop, num_steps + 1)

        v = self.dc_solve(0.0, v0)
        results = np.zeros((len(times), n))
        results[0] = v
        cap_current = np.zeros(n)  # C dv/dt, zero in the quiescent state

        a_const = self._G + (2.0 / dt) * self._C
        two_c_over_dt = (2.0 / dt) * self._C
        nonlinear = self.network.nonlinear_sources

        total_newton = 0
        # Linear macromodel (no table VCCS attached): the trapezoidal system
        # matrix is constant for the whole run, so factorise it once and
        # reduce every time point to a back-substitution -- no Newton at all.
        linear_solver = None
        if not nonlinear:
            if isinstance(a_const, np.ndarray):
                linear_solver = LinearSolver(a_const)
            else:
                linear_solver = SparseLinearSolver(a_const)
            self.statistics.matrix_factorizations += 1
            self.statistics.fast_path_runs += 1

        for step in range(1, len(times)):
            t = float(times[step])
            rhs_const = two_c_over_dt @ v + cap_current + self.network.source_vector(t)
            if linear_solver is not None:
                v_new = linear_solver.solve(rhs_const)
                if step > 1:
                    # The first solve pays for the factorization; every later
                    # step reuses it (same convention as the circuit-level
                    # LinearTransientStepper).
                    self.statistics.lu_reuse_hits += 1
            else:
                v_new = v.copy()
                for _ in range(self.max_newton_iterations):
                    residual = a_const @ v_new - rhs_const
                    # Reusing the preassembled constant Jacobian avoids a full
                    # per-iteration reassembly of the linear network.
                    jacobian = a_const.copy()
                    self.statistics.assemblies_avoided += 1
                    for node, func in nonlinear:
                        if node < 0:
                            continue
                        current, didv = func(t, float(v_new[node]))
                        residual[node] -= current
                        jacobian[node, node] -= didv
                    dv = np.linalg.solve(jacobian, -residual)
                    max_dv = float(np.max(np.abs(dv))) if dv.size else 0.0
                    if max_dv > self.damping_limit:
                        dv *= self.damping_limit / max_dv
                    v_new += dv
                    total_newton += 1
                    if max_dv < self.newton_tolerance:
                        break
            cap_current = two_c_over_dt @ (v_new - v) - cap_current
            v = v_new
            results[step] = v

        self.statistics.num_time_points += len(times) - 1
        self.statistics.newton_iterations += total_newton
        self.statistics.runtime_seconds += time.perf_counter() - start_time

        names = self.network.node_names
        observe_set = set(Circuit.canonical_node_name(o) for o in observe) if observe else None
        waveforms: Dict[str, Waveform] = {}
        for index, name in enumerate(names):
            if observe_set is not None and name not in observe_set:
                continue
            waveforms[name] = Waveform(times, results[:, index])
        return waveforms
