"""The paper's noise-cluster macromodel analysis.

This is the primary contribution being reproduced: the victim driver is
replaced by the pre-characterised non-linear table VCCS ``I_DC = f(V_in,
V_out)``, the coupled interconnect is represented at the driving points by a
moment-matched coupled pi (S-model) network, the aggressor drivers by
saturated-ramp Thevenin equivalents and the receivers by their input
capacitances; the resulting "simple circuit" (Figure 1 of the paper) is
solved by the dedicated engine in :mod:`repro.noise.engine`.

The analysis reports the total noise waveform at the victim driving point and
its peak / area / width metrics, i.e. exactly the quantities of the paper's
Tables 1 and 2.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Dict, Optional

from ..characterization.characterizer import LibraryCharacterizer
from ..technology.library import CellLibrary
from .builder import ClusterModelBuilder
from .cluster import NoiseClusterSpec
from .engine import DedicatedNoiseEngine, MacromodelNetwork
from .results import NoiseAnalysisResult

if TYPE_CHECKING:
    from ..circuit.batched import FactorizationCache

__all__ = ["MacromodelAnalysis"]


class MacromodelAnalysis:
    """Noise analysis with the non-linear victim-driver macromodel."""

    method_name = "macromodel"

    def __init__(
        self,
        library: CellLibrary,
        *,
        characterizer: Optional[LibraryCharacterizer] = None,
        reduction: str = "coupled_pi",
        vccs_grid: int = 17,
        solver_backend: str = "auto",
        solver_cache: Optional["FactorizationCache"] = None,
    ):
        """
        Parameters
        ----------
        library:
            The characterised (or characterisable) cell library.
        characterizer:
            Optional shared :class:`LibraryCharacterizer`; characterisation
            results are cached there so repeated analyses are cheap.
        reduction:
            ``"coupled_pi"`` (default, the paper's driving-point reduction)
            or ``"full"`` to keep the complete distributed RC network inside
            the macromodel (used by the reduction ablation benchmark).
        vccs_grid:
            Grid resolution of the VCCS load-surface characterisation.
        solver_backend:
            Linear-algebra backend requested of the dedicated engine
            (``"auto"`` / ``"dense"`` / ``"sparse"``).  The backend holds
            end to end: the table-VCCS Newton loop solves through the
            factorised linear base (rank-k Woodbury correction), so
            nonlinear macromodels run sparse when sparse is selected --
            there is no dense demotion.  The result's
            ``details["solver_backend"]`` reports what ran.
        solver_cache:
            Optional shared :class:`~repro.circuit.batched.FactorizationCache`.
            Engines built for structurally identical macromodels (Monte
            Carlo samples of one cluster) then factorise their base
            matrices once per session; reuse is keyed by content hash, so
            results are unchanged.
        """
        self.library = library
        self.reduction = reduction
        self.characterizer = characterizer or LibraryCharacterizer(library, vccs_grid=vccs_grid)
        self.vccs_grid = vccs_grid
        self.solver_backend = solver_backend
        self.solver_cache = solver_cache

    # ------------------------------------------------------------------ build

    def build_network(self, builder: ClusterModelBuilder) -> MacromodelNetwork:
        """Assemble the macromodel network of Figure 1 for a cluster."""
        spec = builder.spec
        wiring = builder.wiring_network(self.reduction)
        network = MacromodelNetwork(f"{spec.name}_macromodel")
        network.import_rc_network(wiring)

        # Aggressor drivers: Thevenin equivalents at their driving points.
        for aggressor in spec.aggressors:
            thevenin = builder.aggressor_thevenin(aggressor)
            network.add_thevenin_driver(
                wiring.driver_nodes[aggressor.net],
                thevenin,
                extra_delay=aggressor.switch_time,
            )

        # Victim driver: the non-linear table VCCS at the victim driving point.
        vccs = builder.victim_vccs()
        victim_node = wiring.driver_nodes[spec.victim.net]
        network.add_nonlinear_source(victim_node, vccs.current)
        return network

    # ---------------------------------------------------------------- analyse

    def analyze(
        self,
        spec: NoiseClusterSpec,
        *,
        dt: Optional[float] = None,
        t_stop: Optional[float] = None,
        builder: Optional[ClusterModelBuilder] = None,
    ) -> NoiseAnalysisResult:
        """Run the macromodel analysis of one noise cluster.

        The runtime reported in the result covers only the model evaluation
        (the dedicated engine), not the one-off library characterisation --
        matching how the paper reports its 20x speed-up, since
        characterisation is shared across the whole design.
        """
        builder = builder or ClusterModelBuilder(
            self.library, spec, characterizer=self.characterizer, vccs_grid=self.vccs_grid
        )
        # Ensure characterisation is done before timing the engine.
        builder.victim_surface()
        for aggressor in spec.aggressors:
            builder.aggressor_thevenin(aggressor)
        wiring = builder.wiring_network(self.reduction)
        network = self.build_network(builder)

        default_t_stop, default_dt = builder.simulation_window(dt)
        t_stop = t_stop if t_stop is not None else default_t_stop
        dt = dt if dt is not None else default_dt

        victim_node = wiring.driver_nodes[spec.victim.net]
        receiver_node = wiring.receiver_nodes[spec.victim.net]

        start = time.perf_counter()
        engine = DedicatedNoiseEngine(
            network,
            solver_backend=self.solver_backend,
            solver_cache=self.solver_cache,
        )
        waveforms = engine.simulate(t_stop, dt)
        runtime = time.perf_counter() - start

        victim_waveform = waveforms[victim_node]
        metrics = victim_waveform.glitch_metrics(baseline=builder.victim_quiet_level())

        return NoiseAnalysisResult(
            method=f"{self.method_name}({self.reduction})",
            victim_waveform=victim_waveform,
            metrics=metrics,
            runtime_seconds=runtime,
            waveforms={
                "victim_driving_point": victim_waveform,
                "victim_receiver": waveforms.get(receiver_node, victim_waveform),
                **{
                    f"aggressor:{a.net}": waveforms[wiring.driver_nodes[a.net]]
                    for a in spec.aggressors
                    if wiring.driver_nodes[a.net] in waveforms
                },
            },
            details={
                "engine_statistics": engine.statistics,
                "solver_backend": engine.resolved_backend,
                "reduction": self.reduction,
                "num_unknowns": network.num_nodes,
                "dt": dt,
                "t_stop": t_stop,
            },
        )
