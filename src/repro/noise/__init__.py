"""Noise-cluster analysis: the paper's macromodel and its baselines.

* :class:`MacromodelAnalysis` -- the contribution being reproduced: victim
  driver as a table VCCS, reduced coupled interconnect, Thevenin aggressors,
  solved by a dedicated engine.
* :class:`LinearSuperpositionAnalysis` -- the conventional baseline that adds
  separately-computed injected and propagated noise.
* :class:`ZolotovIterativeAnalysis` -- the iterative linear-Thevenin victim
  model of reference [4].
* :class:`ClusterNoiseAnalyzer` -- facade running any of the above (plus the
  golden transistor-level simulation) on a :class:`NoiseClusterSpec`.
"""

from .analysis import ClusterNoiseAnalyzer, NRCCheck, check_against_nrc
from .builder import ClusterModelBuilder
from .cluster import AggressorSpec, InputGlitchSpec, NoiseClusterSpec, VictimSpec
from .engine import DedicatedNoiseEngine, EngineStatistics, MacromodelNetwork
from .injected import compute_injected_noise, compute_per_aggressor_noise
from .macromodel import MacromodelAnalysis
from .results import NoiseAnalysisResult, compare_results
from .superposition import LinearSuperpositionAnalysis
from .vccs import TableVCCS, victim_input_waveform
from .zolotov import ZolotovIterativeAnalysis

__all__ = [
    "NoiseClusterSpec",
    "VictimSpec",
    "AggressorSpec",
    "InputGlitchSpec",
    "ClusterModelBuilder",
    "TableVCCS",
    "victim_input_waveform",
    "MacromodelNetwork",
    "DedicatedNoiseEngine",
    "EngineStatistics",
    "MacromodelAnalysis",
    "LinearSuperpositionAnalysis",
    "ZolotovIterativeAnalysis",
    "ClusterNoiseAnalyzer",
    "NoiseAnalysisResult",
    "compare_results",
    "compute_injected_noise",
    "compute_per_aggressor_noise",
    "NRCCheck",
    "check_against_nrc",
]
