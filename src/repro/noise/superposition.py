"""The linear-superposition baseline the paper argues against.

Conventional SNA evaluates the crosstalk-injected noise and the propagated
noise *separately* and adds them:

* the injected glitch comes from a linear analysis of the cluster with the
  victim driver replaced by its holding resistance
  (:mod:`repro.noise.injected`);
* the propagated glitch comes from pre-characterised tables indexed by the
  input glitch height and width
  (:mod:`repro.characterization.propagation`);
* the two waveforms are summed, after aligning the propagated peak with the
  injected peak (the worst-case combination a table-based flow assumes).

Because the victim driver is strongly non-linear -- its holding current
saturates as the output is pushed away from the rail -- this sum
underestimates the real combined glitch, which is precisely the effect
quantified in Table 1 of the paper.
"""

from __future__ import annotations

import time
from typing import Optional

from ..characterization.characterizer import LibraryCharacterizer
from ..technology.library import CellLibrary
from ..waveform import Waveform
from .builder import ClusterModelBuilder
from .cluster import NoiseClusterSpec
from .injected import compute_injected_noise
from .results import NoiseAnalysisResult

__all__ = ["LinearSuperpositionAnalysis"]


class LinearSuperpositionAnalysis:
    """Injected + propagated noise combined by linear superposition."""

    method_name = "linear_superposition"

    def __init__(
        self,
        library: CellLibrary,
        *,
        characterizer: Optional[LibraryCharacterizer] = None,
        reduction: str = "coupled_pi",
        align_propagated_peak: bool = True,
        vccs_grid: int = 17,
    ):
        """
        Parameters
        ----------
        align_propagated_peak:
            When ``True`` (default, the worst-case assumption of table-based
            flows) the propagated glitch is time-shifted so its peak
            coincides with the injected-noise peak before summation.  When
            ``False`` the glitch keeps the timing implied by the cluster
            specification.
        """
        self.library = library
        self.characterizer = characterizer or LibraryCharacterizer(library, vccs_grid=vccs_grid)
        self.reduction = reduction
        self.align_propagated_peak = align_propagated_peak
        self.vccs_grid = vccs_grid

    def analyze(
        self,
        spec: NoiseClusterSpec,
        *,
        dt: Optional[float] = None,
        t_stop: Optional[float] = None,
        builder: Optional[ClusterModelBuilder] = None,
    ) -> NoiseAnalysisResult:
        builder = builder or ClusterModelBuilder(
            self.library, spec, characterizer=self.characterizer, vccs_grid=self.vccs_grid
        )
        # Characterisation (cached, excluded from the reported runtime).
        builder.victim_surface()
        for aggressor in spec.aggressors:
            builder.aggressor_thevenin(aggressor)
        propagation_table = None
        if spec.victim.input_glitch is not None:
            propagation_table = self.characterizer.propagation_table(
                spec.victim.driver_cell,
                builder.victim_arc,
                load_capacitance=builder.net_total_capacitance(spec.victim.net),
            )

        default_t_stop, default_dt = builder.simulation_window(dt)
        t_stop = t_stop if t_stop is not None else default_t_stop
        dt = dt if dt is not None else default_dt

        start = time.perf_counter()

        injected, _ = compute_injected_noise(
            builder, reduction=self.reduction, dt=dt, t_stop=t_stop
        )
        baseline = builder.victim_quiet_level()
        total = injected
        propagated: Optional[Waveform] = None

        if spec.victim.input_glitch is not None and propagation_table is not None:
            glitch = spec.victim.input_glitch
            propagated = propagation_table.propagated_waveform(
                glitch.height,
                glitch.width,
                start_time=glitch.start_time,
                baseline=baseline,
            )
            if self.align_propagated_peak:
                injected_metrics = injected.glitch_metrics(baseline=baseline)
                propagated_metrics = propagated.glitch_metrics(baseline=baseline)
                shift = injected_metrics.peak_time - propagated_metrics.peak_time
                propagated = propagated.shift(shift)
            # Superpose the excursions: total = injected + (propagated - baseline).
            total = injected + propagated.resample(injected.times) - baseline

        runtime = time.perf_counter() - start
        metrics = total.glitch_metrics(baseline=baseline)

        waveforms = {"victim_driving_point": total, "injected_component": injected}
        if propagated is not None:
            waveforms["propagated_component"] = propagated

        return NoiseAnalysisResult(
            method=self.method_name,
            victim_waveform=total,
            metrics=metrics,
            runtime_seconds=runtime,
            waveforms=waveforms,
            details={
                "injected_metrics": injected.glitch_metrics(baseline=baseline),
                "propagated_metrics": (
                    propagated.glitch_metrics(baseline=baseline) if propagated is not None else None
                ),
                "holding_resistance": builder.victim_holding_resistance(),
                "reduction": self.reduction,
                "aligned": self.align_propagated_peak,
            },
        )
