"""Crosstalk-injected noise with a linearised victim driver.

Conventional SNA computes the noise injected on a quiet victim net by its
switching aggressors with a *linear* model: the aggressor drivers are
Thevenin equivalents, the victim driver is reduced to its holding resistance
and the coupled interconnect is linear anyway.  This module performs that
computation (on either the full or the reduced wiring network) using the same
dedicated engine as the macromodel -- with the victim non-linearity removed,
every Newton solve converges in one iteration, so this is effectively a
linear solver.

It also provides the per-aggressor decomposition used when a tool aligns the
individual aggressor contributions for the worst case (linear superposition
across aggressors).
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

from ..waveform import Waveform
from .builder import ClusterModelBuilder
from .cluster import AggressorSpec
from .engine import DedicatedNoiseEngine, MacromodelNetwork

__all__ = ["compute_injected_noise", "compute_per_aggressor_noise"]


def _build_linear_network(
    builder: ClusterModelBuilder,
    *,
    reduction: str,
    active_aggressors: Optional[List[AggressorSpec]] = None,
    victim_resistance: Optional[float] = None,
) -> Tuple[MacromodelNetwork, str, str]:
    """Linear cluster network with the victim as a holding resistance.

    Aggressors not in ``active_aggressors`` are held at their quiescent level
    behind their Thevenin resistance (non-switching drivers still terminate
    their nets resistively).
    """
    spec = builder.spec
    wiring = builder.wiring_network(reduction)
    network = MacromodelNetwork(f"{spec.name}_linear")
    network.import_rc_network(wiring)

    active = active_aggressors if active_aggressors is not None else spec.aggressors
    active_nets = {a.net for a in active}

    for aggressor in spec.aggressors:
        node = wiring.driver_nodes[aggressor.net]
        thevenin = builder.aggressor_thevenin(aggressor)
        if aggressor.net in active_nets:
            network.add_thevenin_driver(node, thevenin, extra_delay=aggressor.switch_time)
        else:
            network.add_holding_resistor(
                node, thevenin.resistance, builder.aggressor_quiet_level(aggressor)
            )

    victim_node = wiring.driver_nodes[spec.victim.net]
    resistance = victim_resistance if victim_resistance is not None else builder.victim_holding_resistance()
    network.add_holding_resistor(victim_node, resistance, builder.victim_quiet_level())
    return network, victim_node, wiring.receiver_nodes[spec.victim.net]


def compute_injected_noise(
    builder: ClusterModelBuilder,
    *,
    reduction: str = "coupled_pi",
    dt: Optional[float] = None,
    t_stop: Optional[float] = None,
    victim_resistance: Optional[float] = None,
) -> Tuple[Waveform, float]:
    """Injected (crosstalk-only) noise at the victim driving point.

    Returns the waveform and the wall-clock runtime of the linear solve.
    All aggressors switch at the times given in the cluster specification.
    """
    network, victim_node, _receiver = _build_linear_network(
        builder, reduction=reduction, victim_resistance=victim_resistance
    )
    default_t_stop, default_dt = builder.simulation_window(dt)
    t_stop = t_stop if t_stop is not None else default_t_stop
    dt = dt if dt is not None else default_dt

    start = time.perf_counter()
    engine = DedicatedNoiseEngine(network)
    waveforms = engine.simulate(t_stop, dt, observe=[victim_node])
    runtime = time.perf_counter() - start
    return waveforms[victim_node], runtime


def compute_per_aggressor_noise(
    builder: ClusterModelBuilder,
    *,
    reduction: str = "coupled_pi",
    dt: Optional[float] = None,
    t_stop: Optional[float] = None,
    victim_resistance: Optional[float] = None,
) -> Dict[str, Waveform]:
    """Injected noise computed separately for every aggressor.

    The linearity of the cluster (once the victim is reduced to a holding
    resistance) lets conventional tools compute one response per aggressor
    and superpose them with the peak alignment that maximises the total --
    this decomposition is what makes that possible.
    """
    spec = builder.spec
    default_t_stop, default_dt = builder.simulation_window(dt)
    t_stop = t_stop if t_stop is not None else default_t_stop
    dt = dt if dt is not None else default_dt

    results: Dict[str, Waveform] = {}
    for aggressor in spec.aggressors:
        network, victim_node, _receiver = _build_linear_network(
            builder,
            reduction=reduction,
            active_aggressors=[aggressor],
            victim_resistance=victim_resistance,
        )
        engine = DedicatedNoiseEngine(network)
        waveforms = engine.simulate(t_stop, dt, observe=[victim_node])
        results[aggressor.net] = waveforms[victim_node]
    return results
