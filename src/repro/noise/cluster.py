"""Noise-cluster specification.

A *noise cluster* (the paper's term) is a victim net together with the
neighbouring aggressor nets that couple to it.  The
:class:`NoiseClusterSpec` captures everything the different analysis methods
need to build their models of the same physical situation:

* the victim: driver cell, quiescent output level, the sensitised input arc
  and (optionally) the noise glitch arriving at the victim driver's input
  (the *propagated* noise component);
* the aggressors: driver cell, switching direction, input transition and
  switching instant (phase alignment);
* the receivers loading the far end of every net;
* the wiring geometry (a parallel bus on some metal layer) and its
  discretisation.

The golden transistor-level simulation, the paper's macromodel and the
baselines are all constructed from this single specification, which is what
makes the accuracy comparisons meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Tuple

from ..interconnect.geometry import ParallelBusGeometry, WireSpec
from ..technology.cells import NoiseArc, StandardCell
from ..technology.library import CellLibrary
from ..units import ps

__all__ = ["InputGlitchSpec", "VictimSpec", "AggressorSpec", "NoiseClusterSpec"]


@dataclass(frozen=True)
class InputGlitchSpec:
    """A triangular noise glitch arriving at the victim driver's input.

    ``height`` is the excursion magnitude (volts) away from the quiescent
    input level; the direction is determined by the victim's sensitised arc
    (a pin quiet at VDD receives a falling glitch and vice versa).
    """

    height: float
    width: float
    start_time: float

    def __post_init__(self):
        if self.height < 0:
            raise ValueError("glitch height is a magnitude and must be non-negative")
        if self.width <= 0:
            raise ValueError("glitch width must be positive")


@dataclass(frozen=True)
class VictimSpec:
    """The victim net of a noise cluster."""

    net: str = "victim"
    driver_cell: str = "NAND2_X1"
    #: Quiescent logic level of the victim net (False = held low, the common
    #: worst case for rising aggressors).
    output_high: bool = False
    #: Input pin the propagated glitch arrives on (None = first sensitised arc).
    noisy_input_pin: Optional[str] = None
    #: Propagated-noise glitch at the driver input (None = crosstalk only).
    input_glitch: Optional[InputGlitchSpec] = None
    receiver_cell: str = "INV_X1"
    receiver_pin: str = "A"

    def arc(self, cell: StandardCell) -> NoiseArc:
        """The sensitised noise arc of the victim driver for this spec."""
        arcs = cell.noise_arcs(output_high=self.output_high)
        if not arcs:
            raise ValueError(
                f"victim driver {cell.name} has no sensitised arc with output "
                f"{'high' if self.output_high else 'low'}"
            )
        if self.noisy_input_pin is None:
            return arcs[0]
        for arc in arcs:
            if arc.input_pin == self.noisy_input_pin:
                return arc
        raise ValueError(
            f"victim driver {cell.name} has no sensitised arc on pin "
            f"'{self.noisy_input_pin}' with output {'high' if self.output_high else 'low'}"
        )


@dataclass(frozen=True)
class AggressorSpec:
    """One aggressor net of a noise cluster."""

    net: str = "aggressor"
    driver_cell: str = "INV_X1"
    #: Direction of the aggressor *output* transition.  Rising aggressors
    #: inject positive noise on a victim held low.
    rising: bool = True
    #: Transition time of the ramp applied to the aggressor driver's input.
    input_transition: float = ps(30)
    #: Time at which the aggressor driver's input starts switching.
    switch_time: float = ps(200)
    receiver_cell: str = "INV_X1"
    receiver_pin: str = "A"
    #: Input pin of the aggressor driver that switches.
    input_pin: Optional[str] = None

    def with_switch_time(self, switch_time: float) -> "AggressorSpec":
        return replace(self, switch_time=switch_time)


@dataclass
class NoiseClusterSpec:
    """A complete victim + aggressors noise cluster."""

    victim: VictimSpec
    aggressors: List[AggressorSpec]
    geometry: ParallelBusGeometry
    num_segments: int = 10
    name: str = "cluster"

    def __post_init__(self):
        nets = {w.name for w in self.geometry.wires}
        if self.victim.net not in nets:
            raise ValueError(
                f"victim net '{self.victim.net}' is not part of the geometry ({sorted(nets)})"
            )
        for aggressor in self.aggressors:
            if aggressor.net not in nets:
                raise ValueError(
                    f"aggressor net '{aggressor.net}' is not part of the geometry ({sorted(nets)})"
                )
        aggressor_nets = [a.net for a in self.aggressors]
        if len(set(aggressor_nets)) != len(aggressor_nets):
            raise ValueError("aggressor nets must be unique")
        if self.victim.net in aggressor_nets:
            raise ValueError("the victim net cannot also be an aggressor")

    @property
    def num_aggressors(self) -> int:
        return len(self.aggressors)

    def aggressor(self, net: str) -> AggressorSpec:
        for a in self.aggressors:
            if a.net == net:
                return a
        raise KeyError(f"cluster has no aggressor net '{net}'")

    def simulation_window(self) -> Tuple[float, float]:
        """A reasonable ``(t_stop, dt)`` suggestion for this cluster.

        The window covers the latest stimulus plus a settling margin; callers
        are free to override it.
        """
        latest = 0.0
        for aggressor in self.aggressors:
            latest = max(latest, aggressor.switch_time + aggressor.input_transition)
        if self.victim.input_glitch is not None:
            g = self.victim.input_glitch
            latest = max(latest, g.start_time + g.width)
        t_stop = latest + ps(400)
        return t_stop, ps(1)

    def describe(self) -> str:
        lines = [f"NoiseClusterSpec '{self.name}':"]
        lines.append(
            f"  victim: net={self.victim.net}, driver={self.victim.driver_cell}, "
            f"quiet {'high' if self.victim.output_high else 'low'}, "
            f"receiver={self.victim.receiver_cell}"
        )
        if self.victim.input_glitch is not None:
            g = self.victim.input_glitch
            lines.append(
                f"    propagated input glitch: {g.height:.3f} V x {g.width / ps(1):.0f} ps "
                f"@ {g.start_time / ps(1):.0f} ps"
            )
        for a in self.aggressors:
            lines.append(
                f"  aggressor: net={a.net}, driver={a.driver_cell}, "
                f"{'rising' if a.rising else 'falling'}, switch @ {a.switch_time / ps(1):.0f} ps"
            )
        lines.append(
            f"  wiring: {self.geometry.num_wires} wires on M{self.geometry.layer_index}, "
            f"{self.geometry.wires[0].length_um:.0f} um, {self.num_segments} segments"
        )
        return "\n".join(lines)
