"""Per-cluster NRC checking plus the deprecated analyzer facade.

:class:`NRCCheck` / :func:`check_against_nrc` implement the pass/fail
criterion of the SNA flow: the total noise glitch against the receiver's
Noise Rejection Curve.

:class:`ClusterNoiseAnalyzer` is kept as a deprecation shim over the unified
session API (:class:`repro.api.NoiseAnalysisSession`); method dispatch goes
through the pluggable registry in :mod:`repro.api.registry` instead of the
old hard-coded string comparison.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from ..characterization.nrc import NoiseRejectionCurve
from ..technology.library import CellLibrary
from .cluster import NoiseClusterSpec
from .results import NoiseAnalysisResult, format_comparison_table

__all__ = ["NRCCheck", "check_against_nrc", "ClusterNoiseAnalyzer"]


@dataclass(frozen=True)
class NRCCheck:
    """Outcome of comparing a noise glitch with a noise rejection curve."""

    fails: bool
    height: float
    width: float
    failure_height: float
    margin: float
    receiver_cell: str = ""

    def describe(self) -> str:
        status = "FAIL" if self.fails else "pass"
        return (
            f"[{status}] glitch {abs(self.height):.3f} V x {self.width * 1e12:.0f} ps vs "
            f"NRC limit {self.failure_height:.3f} V (margin {self.margin:+.3f} V) "
            f"at {self.receiver_cell}"
        )


def check_against_nrc(result: NoiseAnalysisResult, nrc: NoiseRejectionCurve) -> NRCCheck:
    """Check an analysis result's glitch against a noise rejection curve."""
    height = result.metrics.peak
    width = result.metrics.width
    failure_height = nrc.failure_height(width)
    return NRCCheck(
        fails=nrc.fails(height, width),
        height=height,
        width=width,
        failure_height=failure_height,
        margin=nrc.margin(height, width),
        receiver_cell=nrc.cell_name,
    )


class ClusterNoiseAnalyzer:
    """Deprecated facade: run and compare analysis methods on one cluster.

    .. deprecated::
        Use :class:`repro.api.NoiseAnalysisSession` -- it adds batch
        execution, NRC policy and a pluggable method registry.  This shim
        delegates to a private session so old call sites keep returning
        identical results.
    """

    #: Historic built-in method names (kept for back-compat; the authoritative
    #: list is ``repro.api.list_methods()``, which includes plugins).
    AVAILABLE_METHODS = ("golden", "macromodel", "superposition", "iterative_thevenin")

    def __init__(
        self,
        library: CellLibrary,
        *,
        reduction: str = "coupled_pi",
        vccs_grid: int = 17,
    ):
        # Imported here (not at module level): repro.api imports this module
        # for the NRC types, so a top-level import would be circular.
        from ..api.config import AnalysisConfig
        from ..api.session import NoiseAnalysisSession

        self.library = library
        self.reduction = reduction
        self.vccs_grid = vccs_grid
        self._session = NoiseAnalysisSession(
            library, AnalysisConfig(reduction=reduction, vccs_grid=vccs_grid, check_nrc=False)
        )
        self.characterizer = self._session.characterizer

    def analyze(
        self,
        spec: NoiseClusterSpec,
        methods: Sequence[str] = ("golden", "macromodel", "superposition"),
        *,
        dt: Optional[float] = None,
        t_stop: Optional[float] = None,
    ) -> Dict[str, NoiseAnalysisResult]:
        """Run the requested methods on the cluster and return their results.

        .. deprecated:: use :meth:`repro.api.NoiseAnalysisSession.analyze`.
        """
        warnings.warn(
            "ClusterNoiseAnalyzer.analyze() is deprecated; use "
            "repro.api.NoiseAnalysisSession.analyze() instead",
            DeprecationWarning,
            stacklevel=2,
        )
        report = self._session.analyze(
            spec, methods=methods, dt=dt, t_stop=t_stop, check_nrc=False
        )
        return report.results

    # --------------------------------------------------------------- reporting

    @staticmethod
    def comparison_table(results: Dict[str, NoiseAnalysisResult], reference: str = "golden") -> str:
        """Human-readable comparison of all results against a reference."""
        return format_comparison_table(results, reference)

    def nrc_check(
        self,
        spec: NoiseClusterSpec,
        result: NoiseAnalysisResult,
        *,
        widths: Optional[Sequence[float]] = None,
    ) -> NRCCheck:
        """Check a result against the victim receiver's noise rejection curve."""
        receiver = spec.victim.receiver_cell
        nrc = self.characterizer.noise_rejection_curve(receiver, widths=widths)
        return check_against_nrc(result, nrc)
