"""Per-cluster NRC checking plus the retired analyzer facade.

:class:`NRCCheck` / :func:`check_against_nrc` implement the pass/fail
criterion of the SNA flow: the total noise glitch against the receiver's
Noise Rejection Curve.

:class:`ClusterNoiseAnalyzer`, the 0.1-era per-cluster facade, completed
its deprecation cycle and was removed in 0.3.0: constructing one now
raises :class:`~repro.api.errors.RemovedAPIError` naming the
:class:`repro.api.NoiseAnalysisSession` replacement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from ..characterization.nrc import NoiseRejectionCurve
from ..technology.library import CellLibrary
from .cluster import NoiseClusterSpec
from .results import NoiseAnalysisResult, format_comparison_table

__all__ = ["NRCCheck", "check_against_nrc", "ClusterNoiseAnalyzer"]


@dataclass(frozen=True)
class NRCCheck:
    """Outcome of comparing a noise glitch with a noise rejection curve."""

    fails: bool
    height: float
    width: float
    failure_height: float
    margin: float
    receiver_cell: str = ""

    def describe(self) -> str:
        status = "FAIL" if self.fails else "pass"
        return (
            f"[{status}] glitch {abs(self.height):.3f} V x {self.width * 1e12:.0f} ps vs "
            f"NRC limit {self.failure_height:.3f} V (margin {self.margin:+.3f} V) "
            f"at {self.receiver_cell}"
        )


def check_against_nrc(result: NoiseAnalysisResult, nrc: NoiseRejectionCurve) -> NRCCheck:
    """Check an analysis result's glitch against a noise rejection curve."""
    height = result.metrics.peak
    width = result.metrics.width
    failure_height = nrc.failure_height(width)
    return NRCCheck(
        fails=nrc.fails(height, width),
        height=height,
        width=width,
        failure_height=failure_height,
        margin=nrc.margin(height, width),
        receiver_cell=nrc.cell_name,
    )


class ClusterNoiseAnalyzer:
    """Removed 0.1-era facade; construct a ``NoiseAnalysisSession`` instead.

    .. deprecated:: 0.2.0
    .. versionremoved:: 0.3.0
        Instantiating this class raises
        :class:`~repro.api.errors.RemovedAPIError`.  Migrate::

            session = NoiseAnalysisSession(
                library, AnalysisConfig(reduction=..., vccs_grid=..., check_nrc=False)
            )
            results = session.analyze(spec, methods=..., dt=...).results
    """

    #: Historic built-in method names (kept for back-compat; the authoritative
    #: list is ``repro.api.list_methods()``, which includes plugins).
    AVAILABLE_METHODS = ("golden", "macromodel", "superposition", "iterative_thevenin")

    def __init__(
        self,
        library: CellLibrary,
        *,
        reduction: str = "coupled_pi",
        vccs_grid: int = 17,
    ):
        # Imported here (not at module level): repro.api imports this module
        # for the NRC types, so a top-level import would be circular.
        from ..api.errors import RemovedAPIError

        raise RemovedAPIError(
            "ClusterNoiseAnalyzer",
            "repro.api.NoiseAnalysisSession",
            "session.analyze(spec).results returns the same per-method dict",
        )

    # --------------------------------------------------------------- reporting

    @staticmethod
    def comparison_table(results: Dict[str, NoiseAnalysisResult], reference: str = "golden") -> str:
        """Human-readable comparison of all results against a reference."""
        return format_comparison_table(results, reference)

    def nrc_check(
        self,
        spec: NoiseClusterSpec,
        result: NoiseAnalysisResult,
        *,
        widths: Optional[Sequence[float]] = None,
    ) -> NRCCheck:
        """Unreachable (the constructor raises); kept for documentation."""
        raise NotImplementedError
