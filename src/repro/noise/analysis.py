"""High-level noise analysis facade.

:class:`ClusterNoiseAnalyzer` runs any combination of analysis methods
(golden, macromodel, linear superposition, iterative Thevenin) on one noise
cluster, shares the characterisation work between them, compares the results
against the golden reference and checks the total noise against the
receiver's Noise Rejection Curve -- i.e. the complete per-cluster SNA step
the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..characterization.characterizer import LibraryCharacterizer
from ..characterization.nrc import NoiseRejectionCurve
from ..technology.library import CellLibrary
from .builder import ClusterModelBuilder
from .cluster import NoiseClusterSpec
from .macromodel import MacromodelAnalysis
from .results import NoiseAnalysisResult, compare_results
from .superposition import LinearSuperpositionAnalysis
from .zolotov import ZolotovIterativeAnalysis

__all__ = ["NRCCheck", "check_against_nrc", "ClusterNoiseAnalyzer"]


@dataclass(frozen=True)
class NRCCheck:
    """Outcome of comparing a noise glitch with a noise rejection curve."""

    fails: bool
    height: float
    width: float
    failure_height: float
    margin: float
    receiver_cell: str = ""

    def describe(self) -> str:
        status = "FAIL" if self.fails else "pass"
        return (
            f"[{status}] glitch {abs(self.height):.3f} V x {self.width * 1e12:.0f} ps vs "
            f"NRC limit {self.failure_height:.3f} V (margin {self.margin:+.3f} V) "
            f"at {self.receiver_cell}"
        )


def check_against_nrc(result: NoiseAnalysisResult, nrc: NoiseRejectionCurve) -> NRCCheck:
    """Check an analysis result's glitch against a noise rejection curve."""
    height = result.metrics.peak
    width = result.metrics.width
    failure_height = nrc.failure_height(width)
    return NRCCheck(
        fails=nrc.fails(height, width),
        height=height,
        width=width,
        failure_height=failure_height,
        margin=nrc.margin(height, width),
        receiver_cell=nrc.cell_name,
    )


class ClusterNoiseAnalyzer:
    """Run and compare several noise analysis methods on one cluster."""

    #: Methods understood by :meth:`analyze`.
    AVAILABLE_METHODS = ("golden", "macromodel", "superposition", "iterative_thevenin")

    def __init__(
        self,
        library: CellLibrary,
        *,
        reduction: str = "coupled_pi",
        vccs_grid: int = 17,
    ):
        # Imported here (not at module level) because repro.golden depends on
        # this package's builder: a top-level import would be circular.
        from ..golden.cluster_sim import GoldenClusterAnalysis

        self.library = library
        self.characterizer = LibraryCharacterizer(library, vccs_grid=vccs_grid)
        self.reduction = reduction
        self.vccs_grid = vccs_grid
        self._golden = GoldenClusterAnalysis(library)
        self._macromodel = MacromodelAnalysis(
            library, characterizer=self.characterizer, reduction=reduction, vccs_grid=vccs_grid
        )
        self._superposition = LinearSuperpositionAnalysis(
            library, characterizer=self.characterizer, reduction=reduction, vccs_grid=vccs_grid
        )
        self._zolotov = ZolotovIterativeAnalysis(
            library, characterizer=self.characterizer, reduction=reduction, vccs_grid=vccs_grid
        )

    def analyze(
        self,
        spec: NoiseClusterSpec,
        methods: Sequence[str] = ("golden", "macromodel", "superposition"),
        *,
        dt: Optional[float] = None,
        t_stop: Optional[float] = None,
    ) -> Dict[str, NoiseAnalysisResult]:
        """Run the requested methods on the cluster and return their results."""
        unknown = set(methods) - set(self.AVAILABLE_METHODS)
        if unknown:
            raise ValueError(f"unknown methods {sorted(unknown)}; available: {self.AVAILABLE_METHODS}")

        builder = ClusterModelBuilder(
            self.library, spec, characterizer=self.characterizer, vccs_grid=self.vccs_grid
        )
        results: Dict[str, NoiseAnalysisResult] = {}
        for method in methods:
            if method == "golden":
                results[method] = self._golden.analyze(spec, dt=dt, t_stop=t_stop, builder=builder)
            elif method == "macromodel":
                results[method] = self._macromodel.analyze(spec, dt=dt, t_stop=t_stop, builder=builder)
            elif method == "superposition":
                results[method] = self._superposition.analyze(spec, dt=dt, t_stop=t_stop, builder=builder)
            elif method == "iterative_thevenin":
                results[method] = self._zolotov.analyze(spec, dt=dt, t_stop=t_stop, builder=builder)
        return results

    # --------------------------------------------------------------- reporting

    @staticmethod
    def comparison_table(results: Dict[str, NoiseAnalysisResult], reference: str = "golden") -> str:
        """Human-readable comparison of all results against a reference.

        The rows mirror the paper's tables: peak (V), area (V*ps) and the
        percentage errors of each method with respect to the reference.
        """
        if reference not in results:
            raise KeyError(f"reference method '{reference}' not in results")
        ref = results[reference]
        lines = [
            f"{'method':28s} {'peak (V)':>10s} {'area (V*ps)':>12s} {'peak err%':>10s} "
            f"{'area err%':>10s} {'runtime (ms)':>13s}"
        ]
        for name, result in results.items():
            if name == reference:
                peak_err = area_err = 0.0
            else:
                comparison = compare_results(ref, result)
                peak_err = comparison["peak_error_pct"]
                area_err = comparison["area_error_pct"]
            lines.append(
                f"{result.method:28s} {result.peak:10.4f} {result.area_v_ps:12.2f} "
                f"{peak_err:10.1f} {area_err:10.1f} {result.runtime_seconds * 1e3:13.2f}"
            )
        return "\n".join(lines)

    def nrc_check(
        self,
        spec: NoiseClusterSpec,
        result: NoiseAnalysisResult,
        *,
        widths: Optional[Sequence[float]] = None,
    ) -> NRCCheck:
        """Check a result against the victim receiver's noise rejection curve."""
        receiver = spec.victim.receiver_cell
        nrc = self.characterizer.noise_rejection_curve(receiver, widths=widths)
        return check_against_nrc(result, nrc)
