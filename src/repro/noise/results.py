"""Result containers for noise analyses.

Every analysis method (golden transistor-level simulation, the paper's
macromodel, linear superposition, iterative Thevenin) returns a
:class:`NoiseAnalysisResult` holding the victim driving-point waveform, the
glitch metrics used in the paper's tables (peak, area, width), the method
name and the wall-clock runtime, so benchmarks and reports can compare the
methods uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..waveform import GlitchMetrics, Waveform

__all__ = ["NoiseAnalysisResult", "compare_results", "format_comparison_table"]


@dataclass
class NoiseAnalysisResult:
    """Outcome of one noise analysis of a cluster."""

    method: str
    victim_waveform: Waveform
    metrics: GlitchMetrics
    runtime_seconds: float = 0.0
    #: Waveforms of other observed nodes (receiver input, aggressor nets, ...).
    waveforms: Dict[str, Waveform] = field(default_factory=dict)
    #: Free-form extra data (component breakdowns, iteration counts, ...).
    details: Dict[str, object] = field(default_factory=dict)

    @property
    def peak(self) -> float:
        """Noise glitch peak in volts (signed)."""
        return self.metrics.peak

    @property
    def area_v_ps(self) -> float:
        """Noise glitch area in V*ps (the paper's unit)."""
        return self.metrics.area_v_ps

    @property
    def width_ps(self) -> float:
        """Noise glitch width (FWHM) in picoseconds."""
        return self.metrics.width_ps

    def summary(self) -> str:
        return (
            f"{self.method:24s} peak={self.peak:+.4f} V  "
            f"area={self.area_v_ps:8.2f} V*ps  width={self.width_ps:7.1f} ps  "
            f"({self.runtime_seconds * 1e3:.1f} ms)"
        )


def compare_results(
    reference: NoiseAnalysisResult, candidate: NoiseAnalysisResult
) -> Dict[str, float]:
    """Relative errors of ``candidate`` with respect to ``reference``.

    Returns a dictionary with ``peak_error_pct`` and ``area_error_pct`` --
    the two error columns of the paper's tables -- plus the runtime speed-up.
    """
    peak_ref = reference.peak
    area_ref = reference.metrics.area
    peak_err = 100.0 * (candidate.peak - peak_ref) / peak_ref if peak_ref else float("nan")
    area_err = 100.0 * (candidate.metrics.area - area_ref) / area_ref if area_ref else float("nan")
    speedup = (
        reference.runtime_seconds / candidate.runtime_seconds
        if candidate.runtime_seconds > 0
        else float("inf")
    )
    return {
        "peak_error_pct": peak_err,
        "area_error_pct": area_err,
        "speedup": speedup,
    }


def format_comparison_table(
    results: Dict[str, NoiseAnalysisResult], reference: str = "golden"
) -> str:
    """Human-readable comparison of all results against a reference method.

    The rows mirror the paper's tables: peak (V), area (V*ps) and the
    percentage errors of each method with respect to the reference.
    """
    if reference not in results:
        raise KeyError(f"reference method '{reference}' not in results")
    ref = results[reference]
    lines = [
        f"{'method':28s} {'peak (V)':>10s} {'area (V*ps)':>12s} {'peak err%':>10s} "
        f"{'area err%':>10s} {'runtime (ms)':>13s}"
    ]
    for name, result in results.items():
        if name == reference:
            peak_err = area_err = 0.0
        else:
            comparison = compare_results(ref, result)
            peak_err = comparison["peak_error_pct"]
            area_err = comparison["area_error_pct"]
        lines.append(
            f"{result.method:28s} {result.peak:10.4f} {result.area_v_ps:12.2f} "
            f"{peak_err:10.1f} {area_err:10.1f} {result.runtime_seconds * 1e3:13.2f}"
        )
    return "\n".join(lines)
