"""Shared model construction for the noise analysis methods.

The golden simulation, the paper's macromodel, the linear-superposition
baseline and the iterative-Thevenin baseline all analyse the *same*
:class:`~repro.noise.cluster.NoiseClusterSpec`.  The
:class:`ClusterModelBuilder` centralises everything they share -- the
characterised victim VCCS surface, the aggressor Thevenin models, receiver
input capacitances and the (full or reduced) wiring network -- so the methods
differ only in how they model the victim driver and combine the noise, which
is exactly the comparison the paper makes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..characterization.characterizer import LibraryCharacterizer
from ..characterization.loadsurface import VCCSLoadSurface
from ..characterization.thevenin import TheveninDriverModel
from ..interconnect.pimodel import CoupledPiModel, reduce_to_coupled_pi
from ..interconnect.rcnetwork import CoupledRCNetwork, build_coupled_rc_network
from ..technology.cells import NoiseArc, StandardCell
from ..technology.library import CellLibrary
from .cluster import AggressorSpec, NoiseClusterSpec
from .vccs import TableVCCS, victim_input_waveform

__all__ = ["ClusterModelBuilder"]


class ClusterModelBuilder:
    """Builds and caches the characterised pieces of one noise cluster."""

    def __init__(
        self,
        library: CellLibrary,
        spec: NoiseClusterSpec,
        *,
        characterizer: Optional[LibraryCharacterizer] = None,
        vccs_grid: int = 17,
        coupling_switching_factor: float = 0.5,
    ):
        """
        Parameters
        ----------
        coupling_switching_factor:
            Fraction of the net-to-net coupling capacitance included in the
            *effective load* used to fit the aggressor Thevenin drivers.  The
            weakly-held victim moves in the same direction as a switching
            aggressor, so the aggressor does not see the full coupling
            capacitance during its transition; 0.5 is the classical Miller
            switching-factor assumption and keeps the fitted drivers accurate
            for weak and strong aggressors alike.  The wiring network itself
            always keeps the full coupling capacitance.
        """
        self.library = library
        self.technology = library.technology
        self.spec = spec
        self.characterizer = characterizer or LibraryCharacterizer(library, vccs_grid=vccs_grid)
        self.coupling_switching_factor = coupling_switching_factor
        self._full_network: Optional[CoupledRCNetwork] = None
        self._reduced_model: Optional[CoupledPiModel] = None
        self._reduced_network: Optional[CoupledRCNetwork] = None

    # ------------------------------------------------------------------ victim

    @property
    def victim_cell(self) -> StandardCell:
        return self.library.cell(self.spec.victim.driver_cell)

    @property
    def victim_arc(self) -> NoiseArc:
        return self.spec.victim.arc(self.victim_cell)

    def victim_quiet_level(self) -> float:
        """Quiescent voltage of the victim net (0 V when held low, VDD when high)."""
        return self.technology.vdd if self.spec.victim.output_high else 0.0

    def victim_surface(self) -> VCCSLoadSurface:
        """The characterised VCCS load surface of the victim driver arc."""
        return self.characterizer.load_surface(self.spec.victim.driver_cell, self.victim_arc)

    def victim_vccs(self) -> TableVCCS:
        """The victim driver as a table VCCS with its input glitch waveform."""
        arc = self.victim_arc
        quiet_input = self.technology.vdd if not arc.glitch_rising else 0.0
        waveform = victim_input_waveform(quiet_input, arc.glitch_rising, self.spec.victim.input_glitch)
        return TableVCCS(self.victim_surface(), waveform)

    def victim_holding_resistance(self) -> float:
        """Linear holding resistance of the quiet victim driver.

        This is the victim model of the conventional (linear-superposition)
        flow: the small-signal output resistance at the quiescent bias.
        """
        surface = self.victim_surface()
        arc = self.victim_arc
        vin_quiet = self.technology.vdd if not arc.glitch_rising else 0.0
        vout_quiet = surface.quiet_output_voltage(vin_quiet)
        return surface.holding_resistance(vin_quiet, vout_quiet)

    # --------------------------------------------------------------- receivers

    def receiver_capacitance(self, net: str) -> float:
        """Input capacitance loading the far end of ``net``."""
        if net == self.spec.victim.net:
            cell = self.library.cell(self.spec.victim.receiver_cell)
            return cell.input_capacitance(self.technology, self.spec.victim.receiver_pin)
        aggressor = self.spec.aggressor(net)
        cell = self.library.cell(aggressor.receiver_cell)
        return cell.input_capacitance(self.technology, aggressor.receiver_pin)

    # ------------------------------------------------------------------ wiring

    def full_network(self) -> CoupledRCNetwork:
        """The distributed coupled RC network, with receiver caps attached."""
        if self._full_network is None:
            network = build_coupled_rc_network(
                self.spec.geometry, self.technology, self.spec.num_segments
            )
            for net in network.net_names:
                receiver_node = network.receiver_nodes[net]
                network.add_capacitor(receiver_node, "0", self.receiver_capacitance(net), net=net)
            self._full_network = network
        return self._full_network

    def reduced_model(self) -> CoupledPiModel:
        """The coupled pi (S-model) reduction of the wiring + receiver loads."""
        if self._reduced_model is None:
            self._reduced_model = reduce_to_coupled_pi(self.full_network())
        return self._reduced_model

    def reduced_network(self) -> CoupledRCNetwork:
        """The realised reduced network (driving-point accurate)."""
        if self._reduced_network is None:
            self._reduced_network = self.reduced_model().realize(
                name=f"{self.spec.name}_reduced"
            )
        return self._reduced_network

    def wiring_network(self, reduction: str = "coupled_pi") -> CoupledRCNetwork:
        """The wiring model requested by an analysis (``"coupled_pi"``/``"full"``)."""
        if reduction == "full":
            return self.full_network()
        if reduction in ("coupled_pi", "pi", "reduced"):
            return self.reduced_network()
        raise ValueError(f"unknown reduction '{reduction}' (use 'coupled_pi' or 'full')")

    # --------------------------------------------------------------- aggressors

    def net_total_capacitance(self, net: str, coupling_factor: float = 1.0) -> float:
        """Total capacitance attached to ``net``.

        ``coupling_factor`` scales the net-to-net coupling contribution (1.0
        counts it fully; the aggressor Thevenin fit uses the builder's
        ``coupling_switching_factor`` instead).  The receiver input
        capacitance is already folded into the network's ground capacitance.
        """
        network = self.full_network()
        return network.total_ground_cap(net) + coupling_factor * sum(
            network.total_coupling_cap(net, other)
            for other in network.net_names
            if other != net
        )

    def aggressor_thevenin(self, aggressor: AggressorSpec) -> TheveninDriverModel:
        """The fitted Thevenin model of an aggressor driver."""
        load = self.net_total_capacitance(
            aggressor.net, coupling_factor=self.coupling_switching_factor
        )
        return self.characterizer.thevenin_driver(
            aggressor.driver_cell,
            rising=aggressor.rising,
            input_pin=aggressor.input_pin,
            load_capacitance=load,
            input_transition=aggressor.input_transition,
        )

    def aggressor_quiet_level(self, aggressor: AggressorSpec) -> float:
        """Pre-switch (quiescent) voltage of an aggressor net."""
        return 0.0 if aggressor.rising else self.technology.vdd

    # ------------------------------------------------------------ time window

    def simulation_window(self, dt: Optional[float] = None) -> Tuple[float, float]:
        t_stop, default_dt = self.spec.simulation_window()
        return t_stop, (dt if dt is not None else default_dt)
