"""The table-based non-linear VCCS of the victim driver.

:class:`TableVCCS` adapts a characterised
:class:`~repro.characterization.loadsurface.VCCSLoadSurface` for use by the
noise engines:

* as a time-dependent non-linear current source ``i(t, v_out)`` for the
  dedicated macromodel engine -- the input voltage ``V_in(t)`` is a *known*
  waveform (the noise glitch arriving at the victim driver's input), so at
  analysis time the VCCS only depends on the unknown output voltage;
* as a :class:`~repro.circuit.elements.BehavioralCurrentSource` plus an input
  voltage source for embedding into the general circuit simulator (used by
  tests to cross-check the dedicated engine against the reference solver).
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

from ..characterization.loadsurface import VCCSLoadSurface
from ..circuit.netlist import Circuit
from ..circuit.sources import DCValue, SourceWaveform, TriangularGlitch
from .cluster import InputGlitchSpec

__all__ = ["TableVCCS", "victim_input_waveform"]


def victim_input_waveform(
    quiet_level: float,
    glitch_rising: bool,
    glitch: Optional[InputGlitchSpec],
) -> SourceWaveform:
    """The victim driver's input voltage waveform.

    With no propagated glitch the input simply sits at its quiescent level;
    otherwise it is a triangular glitch of the specified height/width in the
    direction dictated by the sensitised arc.
    """
    if glitch is None:
        return DCValue(quiet_level)
    direction = 1.0 if glitch_rising else -1.0
    return TriangularGlitch(
        baseline=quiet_level,
        height=direction * glitch.height,
        delay=glitch.start_time,
        rise=0.5 * glitch.width,
        fall=0.5 * glitch.width,
    )


class TableVCCS:
    """The victim driver as a time-dependent table VCCS ``I_DC(t, V_out)``."""

    def __init__(
        self,
        surface: VCCSLoadSurface,
        input_waveform: SourceWaveform,
    ):
        self.surface = surface
        self.input_waveform = input_waveform

    # ------------------------------------------------------- engine interface

    def current(self, time: float, v_out: float) -> Tuple[float, float]:
        """Injected current and its derivative w.r.t. the output voltage."""
        vin = self.input_waveform(time)
        i, _didvin, didvout = self.surface.evaluate(vin, v_out)
        return i, didvout

    def input_voltage(self, time: float) -> float:
        return self.input_waveform(time)

    def quiet_output_conductance(self) -> float:
        """Output conductance at the quiescent bias (t -> -inf, V_out at rail)."""
        vin0 = self.input_waveform.dc_value()
        vout0 = self.surface.quiet_output_voltage(vin0)
        return self.surface.output_conductance(vin0, vout0)

    def quiet_output_voltage(self) -> float:
        vin0 = self.input_waveform.dc_value()
        return self.surface.quiet_output_voltage(vin0)

    # --------------------------------------------- general-simulator interface

    def attach_to_circuit(
        self,
        circuit: Circuit,
        name: str,
        output_node: str,
        *,
        input_node: Optional[str] = None,
        gnd_node: str = "0",
    ) -> None:
        """Embed the VCCS into a general :class:`~repro.circuit.Circuit`.

        A voltage source drives the (possibly private) input node with the
        victim driver's input waveform and a behavioural current source
        injects ``f(V_in, V_out)`` into ``output_node``.  Used by tests and by
        macromodel variants that keep the full RC network inside the general
        simulator.
        """
        in_node = input_node or f"{name}.vin"
        circuit.add_voltage_source(f"{name}.VIN", in_node, gnd_node, self.input_waveform)

        surface = self.surface

        def func(v_controls):
            vin, vout = v_controls
            i, didvin, didvout = surface.evaluate(vin, vout)
            return i, (didvin, didvout)

        # The behavioural source's current flows from its first node to its
        # second; to *inject* f into the output node the source is connected
        # from ground to the output node.
        circuit.add_behavioral_current_source(
            f"{name}.IDC", gnd_node, output_node, [in_node, output_node], func
        )

    def __repr__(self) -> str:
        return f"TableVCCS({self.surface.cell_name}/{self.surface.input_pin})"
