"""Iterative-Thevenin victim model (the approach of Zolotov et al., ref. [4]).

The paper contrasts its macromodel with the earlier approach of [4], which
keeps the analysis linear by representing the victim driver with a Thevenin
equivalent -- a *pulsed* voltage source (the driver's own response to the
propagated input glitch) behind a resistance -- and iterates the resistance
so the linear model tracks the non-linear driver as well as a linear model
can.  The paper reports that this still underestimates the total noise peak
by up to 18 % and the width by 20 %.

Implementation outline (one analysis):

1. Simulate the victim driver alone (non-linear table VCCS, aggressors held
   quiet) to obtain its response to the propagated input glitch; this
   waveform becomes the pulsed Thevenin source ``V_pulse(t)``.
2. Linearise the driver at its quiescent point to get the initial Thevenin
   resistance.
3. Solve the *linear* cluster (aggressors switching) with the pulsed
   Thevenin victim and record the total noise.
4. Re-linearise the VCCS around the midpoint of the observed excursion and
   repeat step 3 until the peak stops changing.
"""

from __future__ import annotations

import time
from typing import Optional

from ..characterization.characterizer import LibraryCharacterizer
from ..technology.library import CellLibrary
from ..waveform import Waveform
from .builder import ClusterModelBuilder
from .cluster import NoiseClusterSpec
from .engine import DedicatedNoiseEngine, MacromodelNetwork
from .results import NoiseAnalysisResult

__all__ = ["ZolotovIterativeAnalysis"]


class ZolotovIterativeAnalysis:
    """Linear cluster analysis with an iteratively linearised victim driver."""

    method_name = "iterative_thevenin"

    def __init__(
        self,
        library: CellLibrary,
        *,
        characterizer: Optional[LibraryCharacterizer] = None,
        reduction: str = "coupled_pi",
        max_iterations: int = 5,
        peak_tolerance: float = 0.01,
        vccs_grid: int = 17,
    ):
        self.library = library
        self.characterizer = characterizer or LibraryCharacterizer(library, vccs_grid=vccs_grid)
        self.reduction = reduction
        self.max_iterations = max_iterations
        self.peak_tolerance = peak_tolerance
        self.vccs_grid = vccs_grid

    # ------------------------------------------------------------------ pieces

    def _victim_pulse_response(
        self, builder: ClusterModelBuilder, dt: float, t_stop: float
    ) -> Waveform:
        """Victim driving-point response to the input glitch, aggressors quiet."""
        spec = builder.spec
        wiring = builder.wiring_network(self.reduction)
        network = MacromodelNetwork(f"{spec.name}_victim_only")
        network.import_rc_network(wiring)
        for aggressor in spec.aggressors:
            thevenin = builder.aggressor_thevenin(aggressor)
            network.add_holding_resistor(
                wiring.driver_nodes[aggressor.net],
                thevenin.resistance,
                builder.aggressor_quiet_level(aggressor),
            )
        vccs = builder.victim_vccs()
        victim_node = wiring.driver_nodes[spec.victim.net]
        network.add_nonlinear_source(victim_node, vccs.current)
        engine = DedicatedNoiseEngine(network)
        waveforms = engine.simulate(t_stop, dt, observe=[victim_node])
        return waveforms[victim_node]

    def _linear_cluster_solve(
        self,
        builder: ClusterModelBuilder,
        pulse: Waveform,
        victim_resistance: float,
        dt: float,
        t_stop: float,
    ) -> Waveform:
        """Linear cluster solve with the pulsed-Thevenin victim model."""
        spec = builder.spec
        wiring = builder.wiring_network(self.reduction)
        network = MacromodelNetwork(f"{spec.name}_zolotov")
        network.import_rc_network(wiring)
        for aggressor in spec.aggressors:
            thevenin = builder.aggressor_thevenin(aggressor)
            network.add_thevenin_driver(
                wiring.driver_nodes[aggressor.net], thevenin, extra_delay=aggressor.switch_time
            )
        victim_node = wiring.driver_nodes[spec.victim.net]
        conductance = 1.0 / victim_resistance
        network.add_conductance(victim_node, "0", conductance)
        network.add_current_source(victim_node, lambda t: pulse(t) * conductance)
        engine = DedicatedNoiseEngine(network)
        waveforms = engine.simulate(t_stop, dt, observe=[victim_node])
        return waveforms[victim_node]

    # ----------------------------------------------------------------- analyse

    def analyze(
        self,
        spec: NoiseClusterSpec,
        *,
        dt: Optional[float] = None,
        t_stop: Optional[float] = None,
        builder: Optional[ClusterModelBuilder] = None,
    ) -> NoiseAnalysisResult:
        builder = builder or ClusterModelBuilder(
            self.library, spec, characterizer=self.characterizer, vccs_grid=self.vccs_grid
        )
        builder.victim_surface()
        for aggressor in spec.aggressors:
            builder.aggressor_thevenin(aggressor)

        default_t_stop, default_dt = builder.simulation_window(dt)
        t_stop = t_stop if t_stop is not None else default_t_stop
        dt = dt if dt is not None else default_dt
        baseline = builder.victim_quiet_level()

        start = time.perf_counter()

        pulse = self._victim_pulse_response(builder, dt, t_stop)
        surface = builder.victim_surface()
        arc = builder.victim_arc
        vin_quiet = self.library.technology.vdd if not arc.glitch_rising else 0.0
        resistance = builder.victim_holding_resistance()

        total: Optional[Waveform] = None
        previous_peak = None
        iterations = 0
        for iterations in range(1, self.max_iterations + 1):
            total = self._linear_cluster_solve(builder, pulse, resistance, dt, t_stop)
            metrics = total.glitch_metrics(baseline=baseline)
            if previous_peak is not None and abs(metrics.peak) > 0:
                if abs(metrics.peak - previous_peak) <= self.peak_tolerance * abs(metrics.peak):
                    break
            previous_peak = metrics.peak
            # Re-linearise the driver halfway up the observed excursion, at
            # the input voltage present when the total noise peaks.
            vin_at_peak = builder.victim_vccs().input_voltage(metrics.peak_time)
            vout_mid = baseline + 0.5 * metrics.peak
            resistance = surface.holding_resistance(vin_at_peak, vout_mid)
            if not (resistance > 0) or resistance == float("inf"):
                resistance = builder.victim_holding_resistance()

        runtime = time.perf_counter() - start
        metrics = total.glitch_metrics(baseline=baseline)

        return NoiseAnalysisResult(
            method=self.method_name,
            victim_waveform=total,
            metrics=metrics,
            runtime_seconds=runtime,
            waveforms={"victim_driving_point": total, "victim_pulse_response": pulse},
            details={
                "iterations": iterations,
                "final_resistance": resistance,
                "initial_resistance": builder.victim_holding_resistance(),
                "quiet_input_voltage": vin_quiet,
                "reduction": self.reduction,
            },
        )
