"""DC operating-point analysis.

The solver is a damped Newton-Raphson iteration on the MNA equations with two
classical continuation fall-backs when plain Newton fails to converge:

* **gmin stepping** -- solve a sequence of problems with a large conductance
  to ground added at every node, progressively reduced to the target value;
* **source stepping** -- ramp all independent sources from zero to their full
  value, using each converged solution as the initial guess of the next.

These are the same strategies production SPICE engines use; for the CMOS
noise-cluster circuits in this library plain Newton almost always converges
in a handful of iterations, but the fall-backs make the characterisation
sweeps (which visit unusual bias points) dependable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from .elements import GROUND, StampContext, VoltageSource
from .mna import SingularMatrixError, solve_linear_system
from .netlist import Circuit
from .stamping import resolve_backend

__all__ = ["DCSolution", "ConvergenceError", "dc_operating_point", "newton_solve"]


class ConvergenceError(RuntimeError):
    """Raised when the non-linear solver fails to converge."""


@dataclass
class DCSolution:
    """Result of a DC operating-point analysis."""

    circuit: Circuit
    x: np.ndarray
    iterations: int
    gmin: float
    #: Which strategy converged: "newton" (plain), "gmin-stepping" or
    #: "source-stepping" -- surfaces *how hard* the operating point was,
    #: which the degradation ladder and reports use as a conditioning hint.
    strategy: str = "newton"

    def voltage(self, node_name: str) -> float:
        """Voltage of the named node (0.0 for ground)."""
        idx = self.circuit.node_index(node_name)
        if idx == GROUND:
            return 0.0
        return float(self.x[idx])

    def voltages(self) -> Dict[str, float]:
        """Dictionary of all node voltages."""
        return {name: float(self.x[i]) for i, name in enumerate(self.circuit.node_names)}

    def source_current(self, source_name: str) -> float:
        """Branch current of a voltage source (positive from + to - inside)."""
        element = self.circuit[source_name]
        if not isinstance(element, VoltageSource):
            raise TypeError(f"'{source_name}' is not a voltage source")
        return element.branch_current(self.x)

    def __getitem__(self, node_name: str) -> float:
        return self.voltage(node_name)


def newton_solve(
    circuit: Circuit,
    x0: np.ndarray,
    *,
    gmin: float,
    source_scale: float = 1.0,
    max_iterations: int = 100,
    vtol: float = 1e-6,
    itol: float = 1e-9,
    damping_limit: float = 1.0,
    time: float = 0.0,
    dt: Optional[float] = None,
    method: str = "trap",
    prev_x: Optional[np.ndarray] = None,
    prev_state: Optional[dict] = None,
    assembler=None,
    backend: str = "auto",
) -> tuple:
    """Damped Newton iteration; returns ``(x, iterations)``.

    ``damping_limit`` caps the per-iteration change of any unknown, which is
    a cheap but effective globalisation for MOSFET circuits.

    The circuit must already be prepared; the default assembly path starts
    every iteration from the kernel's cached base matrix and the linear
    right-hand side computed once per call (it is constant over the Newton
    iterations -- only nonlinear companion stamps depend on the iterate).
    ``assembler`` overrides assembly with a ``(circuit, ctx) -> (A, z)``
    callable (used by benchmarks to time the legacy full rebuild).
    ``backend`` selects the matrix substrate (``"auto"``/``"dense"``/
    ``"sparse"``, see :func:`repro.circuit.stamping.resolve_backend`); large
    sparse systems factorise with ``scipy.sparse.linalg.splu`` instead of
    dense LAPACK.
    """
    kernel = circuit.kernel  # asserts the circuit is prepared
    x = np.array(x0, dtype=float, copy=True)
    n_unknowns = kernel.n
    if x.shape != (n_unknowns,):
        raise ValueError(f"initial guess has wrong size {x.shape}, expected {n_unknowns}")
    backend = resolve_backend(backend, n_unknowns)

    # Damping is a globalisation aid for non-linear circuits; a purely linear
    # circuit converges in a single full Newton step, which damping would
    # needlessly truncate (e.g. high-voltage linear nodes).
    apply_damping = circuit.is_nonlinear()
    point = None

    for iteration in range(1, max_iterations + 1):
        ctx = StampContext(
            x=x,
            prev_x=prev_x,
            time=time,
            dt=dt,
            method=method,
            gmin=gmin,
            source_scale=source_scale,
            prev_state=prev_state or {},
        )
        if assembler is not None:
            A, z = assembler(circuit, ctx)
        else:
            # Base matrix, cache key and linear RHS are constant over the
            # Newton iterations of this point -- compute them once.
            if point is None:
                point = kernel.point(ctx, backend=backend)
            A, z = point.assemble(ctx)
        residual = A @ x - z
        x_new = solve_linear_system(A, z)
        dx = x_new - x

        max_dx = float(np.max(np.abs(dx))) if dx.size else 0.0
        if apply_damping and max_dx > damping_limit:
            dx *= damping_limit / max_dx
            x = x + dx
        else:
            x = x_new

        num_nodes = circuit.num_nodes
        max_residual = float(np.max(np.abs(residual[:num_nodes]))) if num_nodes else 0.0
        if max_dx < vtol and max_residual < max(itol, 1e-6 * (1.0 + max_residual)):
            return x, iteration
        if max_dx < vtol and iteration > 1:
            return x, iteration

    raise ConvergenceError(
        f"Newton did not converge in {max_iterations} iterations "
        f"(last max dV = {max_dx:.3e})"
    )


def dc_operating_point(
    circuit: Circuit,
    x0: Optional[np.ndarray] = None,
    *,
    max_iterations: int = 100,
    vtol: float = 1e-6,
    gmin: Optional[float] = None,
    use_gmin_stepping: bool = True,
    use_source_stepping: bool = True,
    backend: str = "auto",
) -> DCSolution:
    """Compute the DC operating point of ``circuit``.

    Parameters
    ----------
    circuit:
        The circuit to solve.
    x0:
        Optional initial guess for the unknown vector.
    max_iterations:
        Newton iteration budget per continuation step.
    vtol:
        Convergence tolerance on the node-voltage update (volts).
    gmin:
        Target minimum conductance (defaults to the circuit's ``gmin``).
    use_gmin_stepping / use_source_stepping:
        Enable/disable the continuation fall-backs.
    backend:
        Solver backend (``"auto"``/``"dense"``/``"sparse"``); forwarded to
        every Newton call, continuation steps included.
    """
    circuit.prepare()
    target_gmin = circuit.gmin if gmin is None else gmin
    n = circuit.num_unknowns
    if x0 is None:
        x0 = np.zeros(n)

    # 1. Plain Newton.
    try:
        x, iterations = newton_solve(
            circuit, x0, gmin=target_gmin, max_iterations=max_iterations, vtol=vtol,
            backend=backend,
        )
        return DCSolution(circuit, x, iterations, target_gmin)
    except (ConvergenceError, SingularMatrixError):
        pass

    # 2. gmin stepping.
    if use_gmin_stepping:
        try:
            x = np.array(x0, copy=True)
            total_iterations = 0
            gmin_value = 1e-2
            while gmin_value >= target_gmin * 0.99:
                x, iters = newton_solve(
                    circuit, x, gmin=gmin_value, max_iterations=max_iterations, vtol=vtol,
                    backend=backend,
                )
                total_iterations += iters
                if gmin_value <= target_gmin:
                    break
                gmin_value = max(gmin_value / 10.0, target_gmin)
            return DCSolution(
                circuit, x, total_iterations, target_gmin, strategy="gmin-stepping"
            )
        except (ConvergenceError, SingularMatrixError):
            pass

    # 3. Source stepping.
    if use_source_stepping:
        try:
            x = np.array(x0, copy=True)
            total_iterations = 0
            for scale in np.linspace(0.1, 1.0, 10):
                x, iters = newton_solve(
                    circuit,
                    x,
                    gmin=target_gmin,
                    source_scale=float(scale),
                    max_iterations=max_iterations,
                    vtol=vtol,
                    backend=backend,
                )
                total_iterations += iters
            return DCSolution(
                circuit, x, total_iterations, target_gmin, strategy="source-stepping"
            )
        except (ConvergenceError, SingularMatrixError):
            pass

    raise ConvergenceError(
        f"DC operating point of '{circuit.name}' did not converge "
        "(Newton, gmin stepping and source stepping all failed)"
    )
