"""A small SPICE-class circuit simulator.

This package is the "golden reference" substrate of the reproduction: a
Modified Nodal Analysis engine with Newton-Raphson non-linear solution, DC
operating-point and transient analyses, level-1 / alpha-power MOSFET models
and a SPICE-like netlist parser.  It plays the role ELDO(TM) plays in the
paper's experiments.
"""

from .batched import (
    BATCHING_MODES,
    BatchedTransientSolver,
    BatchRunStats,
    FactorizationCache,
    TransientJob,
)
from .dc import ConvergenceError, DCSolution, dc_operating_point
from .elements import (
    GROUND,
    BehavioralCurrentSource,
    Capacitor,
    CurrentSource,
    Diode,
    Element,
    Inductor,
    Resistor,
    StampContext,
    VCCS,
    VCVS,
    VoltageSource,
)
from .mna import SingularMatrixError, assemble, assemble_legacy, solve_linear_system
from .mosfet import AlphaPowerModel, Level1Model, MOSFET, MOSFETParams
from .netlist import Circuit
from .stamping import (
    SOLVER_BACKENDS,
    SPARSE_AUTO_THRESHOLD,
    CompiledKernel,
    DescriptorSystem,
    KernelStats,
    LinearSolver,
    SparseLinearSolver,
    resolve_backend,
)
from .parser import NetlistError, ParsedNetlist, parse_netlist, parse_value
from .sources import (
    DCValue,
    ExponentialGlitch,
    PiecewiseLinear,
    PulseWaveform,
    SaturatedRamp,
    SineWaveform,
    SourceWaveform,
    TriangularGlitch,
)
from .transient import TransientResult, TransientStats, build_time_axis, transient

__all__ = [
    "GROUND",
    "Circuit",
    "Element",
    "Resistor",
    "Capacitor",
    "Inductor",
    "CurrentSource",
    "VoltageSource",
    "VCCS",
    "VCVS",
    "BehavioralCurrentSource",
    "Diode",
    "MOSFET",
    "MOSFETParams",
    "Level1Model",
    "AlphaPowerModel",
    "StampContext",
    "DCValue",
    "PulseWaveform",
    "PiecewiseLinear",
    "SaturatedRamp",
    "SineWaveform",
    "TriangularGlitch",
    "ExponentialGlitch",
    "SourceWaveform",
    "dc_operating_point",
    "DCSolution",
    "ConvergenceError",
    "transient",
    "build_time_axis",
    "TransientResult",
    "TransientStats",
    "BATCHING_MODES",
    "BatchedTransientSolver",
    "BatchRunStats",
    "FactorizationCache",
    "TransientJob",
    "DescriptorSystem",
    "assemble",
    "assemble_legacy",
    "solve_linear_system",
    "SingularMatrixError",
    "CompiledKernel",
    "KernelStats",
    "LinearSolver",
    "SparseLinearSolver",
    "SOLVER_BACKENDS",
    "SPARSE_AUTO_THRESHOLD",
    "resolve_backend",
    "parse_netlist",
    "ParsedNetlist",
    "NetlistError",
    "parse_value",
]
