"""MOSFET device models.

Two static I-V models are provided:

* :class:`Level1Model` -- the classical Shichman-Hodges (SPICE level-1) square
  law with channel-length modulation.  Simple, smooth enough for Newton, and
  adequate to reproduce the qualitative non-linearity of a library cell's
  holding transistor that the paper exploits.
* :class:`AlphaPowerModel` -- the Sakurai-Newton alpha-power law, which models
  the weaker gate-overdrive dependence (velocity saturation) of short-channel
  devices.  Used for the 90 nm technology preset.

The transistor element itself (:class:`MOSFET`) is a three/four terminal
non-linear element; its drain-source current is stamped as a linearised
Norton companion at every Newton iteration.  Device capacitances are not part
of the static model -- the cell generators in :mod:`repro.technology` add
explicit gate / diffusion capacitors, which keeps the device model simple and
the capacitive loading visible in the netlist.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import List, Optional, Tuple

import numpy as np

from .elements import Element, StampContext, stamp_nonlinear_current

__all__ = ["MOSFETParams", "Level1Model", "AlphaPowerModel", "MOSFET"]


@dataclass(frozen=True)
class MOSFETParams:
    """Technology parameters of a MOSFET model card.

    Attributes
    ----------
    polarity:
        ``"n"`` for NMOS, ``"p"`` for PMOS.
    vto:
        Zero-bias threshold voltage (positive number for both polarities).
    kp:
        Transconductance parameter ``mu * Cox`` in A/V^2.
    lambda_:
        Channel-length modulation coefficient in 1/V.
    alpha:
        Velocity-saturation exponent for the alpha-power model
        (2.0 reproduces the square law).
    vdsat_coeff:
        Coefficient of the saturation drain voltage in the alpha-power model:
        ``Vdsat = vdsat_coeff * (Vgs - Vth) ** (alpha / 2)``.
    cox:
        Gate-oxide capacitance per area (F/m^2), used by the cell generators
        to compute explicit gate capacitances.
    cj:
        Junction (diffusion) capacitance per area (F/m^2).
    cjsw:
        Junction sidewall capacitance per length (F/m).
    cgdo:
        Gate-drain overlap capacitance per width (F/m).
    l_nominal:
        Nominal (minimum) channel length of the technology (m).
    """

    polarity: str
    vto: float
    kp: float
    lambda_: float = 0.05
    alpha: float = 2.0
    vdsat_coeff: float = 1.0
    cox: float = 8e-3
    cj: float = 1e-3
    cjsw: float = 1e-10
    cgdo: float = 3e-10
    l_nominal: float = 0.13e-6

    def __post_init__(self):
        if self.polarity not in ("n", "p"):
            raise ValueError("polarity must be 'n' or 'p'")
        if self.vto <= 0:
            raise ValueError("vto is specified as a positive magnitude")
        if self.kp <= 0:
            raise ValueError("kp must be positive")

    def scaled(self, **kwargs) -> "MOSFETParams":
        """Return a copy with selected parameters replaced."""
        return replace(self, **kwargs)


class _StaticModel:
    """Interface of a static MOSFET I-V model.

    ``ids(vgs, vds)`` must accept ``vds >= 0`` and return
    ``(ids, gm, gds)`` -- the drain current and its partial derivatives with
    respect to ``vgs`` and ``vds``.
    """

    def __init__(self, params: MOSFETParams):
        self.params = params

    def ids(self, vgs: float, vds: float) -> Tuple[float, float, float]:
        raise NotImplementedError


class Level1Model(_StaticModel):
    """Shichman-Hodges square-law model with channel-length modulation."""

    def __init__(self, params: MOSFETParams, w: float, l: float):
        super().__init__(params)
        self.beta = params.kp * w / l

    def ids(self, vgs: float, vds: float) -> Tuple[float, float, float]:
        p = self.params
        vov = vgs - p.vto
        if vov <= 0.0:
            return 0.0, 0.0, 0.0
        lam = p.lambda_
        clm = 1.0 + lam * vds
        if vds < vov:
            # Triode (linear) region.
            ids = self.beta * (vov * vds - 0.5 * vds * vds) * clm
            gm = self.beta * vds * clm
            gds = self.beta * (vov - vds) * clm + self.beta * (vov * vds - 0.5 * vds * vds) * lam
        else:
            # Saturation region.
            ids = 0.5 * self.beta * vov * vov * clm
            gm = self.beta * vov * clm
            gds = 0.5 * self.beta * vov * vov * lam
        return ids, gm, gds


class AlphaPowerModel(_StaticModel):
    """Sakurai-Newton alpha-power-law model for short-channel devices."""

    def __init__(self, params: MOSFETParams, w: float, l: float):
        super().__init__(params)
        self.w_over_l = w / l
        # Scale the current factor so that alpha = 2 coincides with level 1.
        self.b = 0.5 * params.kp * self.w_over_l

    def ids(self, vgs: float, vds: float) -> Tuple[float, float, float]:
        p = self.params
        vov = vgs - p.vto
        if vov <= 0.0:
            return 0.0, 0.0, 0.0
        alpha = p.alpha
        lam = p.lambda_
        clm = 1.0 + lam * vds
        i_sat = self.b * vov ** alpha
        di_sat_dvgs = self.b * alpha * vov ** (alpha - 1.0)
        vdsat = p.vdsat_coeff * vov ** (alpha / 2.0)
        dvdsat_dvgs = p.vdsat_coeff * (alpha / 2.0) * vov ** (alpha / 2.0 - 1.0)
        if vds >= vdsat:
            ids = i_sat * clm
            gm = di_sat_dvgs * clm
            gds = i_sat * lam
            return ids, gm, gds
        # Triode region: quadratic interpolation that matches the saturation
        # current and its slope at vds = vdsat (Sakurai-Newton form).
        u = vds / vdsat
        shape = u * (2.0 - u)
        ids = i_sat * shape * clm
        dshape_dvds = (2.0 - 2.0 * u) / vdsat
        dshape_dvdsat = -u * (2.0 - 2.0 * u) / vdsat
        gm = (di_sat_dvgs * shape + i_sat * dshape_dvdsat * dvdsat_dvgs) * clm
        gds = i_sat * dshape_dvds * clm + i_sat * shape * lam
        return ids, gm, gds


def make_model(params: MOSFETParams, w: float, l: float, model: str = "auto") -> _StaticModel:
    """Instantiate the static model named ``model`` for the given geometry."""
    if model == "auto":
        model = "alpha" if abs(params.alpha - 2.0) > 1e-9 else "level1"
    if model == "level1":
        return Level1Model(params, w, l)
    if model == "alpha":
        return AlphaPowerModel(params, w, l)
    raise ValueError(f"unknown MOSFET model '{model}'")


class MOSFET(Element):
    """A MOSFET instance (drain, gate, source[, bulk]).

    The bulk terminal is accepted for netlist compatibility but the body
    effect is not modelled; the device is electrically symmetric, so source
    and drain are swapped internally when ``Vds < 0``.
    """

    def __init__(
        self,
        name: str,
        drain: str,
        gate: str,
        source: str,
        params: MOSFETParams,
        w: float,
        l: Optional[float] = None,
        bulk: Optional[str] = None,
        model: str = "auto",
    ):
        super().__init__(name)
        self.drain = drain
        self.gate = gate
        self.source = source
        self.bulk = bulk if bulk is not None else source
        self.params = params
        self.w = float(w)
        self.l = float(l) if l is not None else params.l_nominal
        if self.w <= 0 or self.l <= 0:
            raise ValueError(f"MOSFET {name}: W and L must be positive")
        self.model_name = model
        self._model = make_model(params, self.w, self.l, model)
        #: Small minimum output conductance added for Newton robustness.
        self.gds_min = 1e-9

    def node_names(self) -> List[str]:
        return [self.drain, self.gate, self.source, self.bulk]

    def is_nonlinear(self) -> bool:
        return True

    # -- static evaluation ----------------------------------------------------

    def drain_current(self, vd: float, vg: float, vs: float) -> float:
        """Drain current (flowing into the drain terminal) at the given biases."""
        i, _, _, _ = self._evaluate(vd, vg, vs)
        return i

    def _evaluate(self, vd: float, vg: float, vs: float) -> Tuple[float, float, float, float]:
        """Return ``(id, dId/dVd, dId/dVg, dId/dVs)`` at the given node voltages.

        ``id`` is the current flowing from the drain node, through the
        channel, to the source node (positive for a conducting NMOS with
        ``Vds > 0``; negative values appear for PMOS pull-ups, where the
        physical current flows source-to-drain).
        """
        if self.params.polarity == "p":
            # Evaluate the complementary NMOS with mirrored voltages and
            # mirror the current back.
            i, did_vd, did_vg, did_vs = self._evaluate_nmos(-vd, -vg, -vs)
            return -i, did_vd, did_vg, did_vs
        return self._evaluate_nmos(vd, vg, vs)

    def _evaluate_nmos(self, vd: float, vg: float, vs: float) -> Tuple[float, float, float, float]:
        swapped = vd < vs
        if swapped:
            vd, vs = vs, vd
        vgs = vg - vs
        vds = vd - vs
        ids, gm, gds = self._model.ids(vgs, vds)
        gds = gds + self.gds_min
        # Partial derivatives with respect to the terminal voltages.
        did_vg = gm
        did_vd = gds
        did_vs = -(gm + gds)
        if swapped:
            # The current we computed flows from the (swapped) drain to the
            # (swapped) source, i.e. from the original source to the original
            # drain: flip the sign and swap the drain/source derivatives.
            return -ids, -did_vs, -did_vg, -did_vd
        return ids, did_vd, did_vg, did_vs

    # -- stamping ---------------------------------------------------------------

    def stamp(self, A: np.ndarray, z: np.ndarray, ctx: StampContext) -> None:
        nd, ng, ns, _nb = self.nodes
        vd, vg, vs = ctx.v(nd), ctx.v(ng), ctx.v(ns)
        i0, did_vd, did_vg, did_vs = self._evaluate(vd, vg, vs)
        gradients = [(nd, did_vd), (ng, did_vg), (ns, did_vs)]
        # The channel current flows from drain to source.
        stamp_nonlinear_current(A, z, nd, ns, i0, gradients, ctx)

    # -- capacitance estimates (used by the cell generators) --------------------

    def gate_capacitance(self) -> float:
        """Total gate capacitance estimate: C_ox * W * L plus overlaps."""
        p = self.params
        return p.cox * self.w * self.l + 2.0 * p.cgdo * self.w

    def diffusion_capacitance(self, diffusion_length: Optional[float] = None) -> float:
        """Drain/source diffusion capacitance estimate.

        ``diffusion_length`` defaults to 2.5 drawn gate lengths, a typical
        layout assumption for standard cells.
        """
        p = self.params
        ld = diffusion_length if diffusion_length is not None else 2.5 * self.l
        area = self.w * ld
        perimeter = 2.0 * (self.w + ld)
        return p.cj * area + p.cjsw * perimeter

    def overlap_capacitance(self) -> float:
        """Gate-drain (Miller) overlap capacitance."""
        return self.params.cgdo * self.w

    def __repr__(self) -> str:
        return (
            f"MOSFET({self.name}, {self.params.polarity}, W={self.w * 1e6:.3f}um, "
            f"L={self.l * 1e6:.3f}um)"
        )
