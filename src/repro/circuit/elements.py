"""Circuit elements and their MNA stamps.

The simulator follows the classical Modified Nodal Analysis (MNA)
formulation.  The unknown vector is ``x = [node voltages, branch currents]``
where a branch current is allocated for every element that imposes a voltage
(independent voltage sources and controlled voltage sources).

Every element implements :meth:`Element.stamp`, which adds its contribution to
the system matrix ``A`` and right-hand side ``z`` given a
:class:`StampContext` describing the current Newton iterate, the integration
method and the previous time-step state.  Non-linear elements stamp their
Norton companion model (linearised around the current iterate), dynamic
elements stamp their integration companion model (backward Euler or
trapezoidal).

Sign conventions
----------------
* KCL rows are written as "sum of currents *leaving* the node = 0".
* A current ``i`` flowing from node ``a`` to node ``b`` therefore adds ``+i``
  to row ``a`` and ``-i`` to row ``b``.
* Independent sources follow the SPICE convention: positive source current
  flows from the ``+`` terminal *through the source* to the ``-`` terminal.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .sources import DCValue, SourceWaveform

__all__ = [
    "GROUND",
    "StampContext",
    "Element",
    "Resistor",
    "Capacitor",
    "Inductor",
    "CurrentSource",
    "VoltageSource",
    "VCCS",
    "VCVS",
    "BehavioralCurrentSource",
    "Diode",
]

#: Node index used for the reference (ground) node.  Ground rows/columns are
#: simply skipped when stamping.
GROUND = -1


class StampContext:
    """Bundle of data every element needs while stamping.

    Attributes
    ----------
    x:
        Current Newton iterate of the full unknown vector.
    prev_x:
        Accepted solution of the previous time point (``None`` for DC).
    time:
        Absolute time of the point being solved (0.0 for DC).
    dt:
        Time step (``None`` for DC analysis).
    method:
        Integration method, ``"be"`` (backward Euler) or ``"trap"``.
    gmin:
        Minimum conductance added from every node to ground for convergence.
    source_scale:
        Scaling factor applied to independent sources (used by the
        source-stepping continuation method).
    state / prev_state:
        Per-element mutable dictionaries where dynamic elements store
        auxiliary quantities (e.g. capacitor current for trapezoidal
        integration).  ``state`` is written during the step being computed and
        becomes ``prev_state`` once the step is accepted.
    """

    __slots__ = (
        "x",
        "prev_x",
        "time",
        "dt",
        "method",
        "gmin",
        "source_scale",
        "state",
        "prev_state",
    )

    def __init__(
        self,
        x: np.ndarray,
        prev_x: Optional[np.ndarray] = None,
        time: float = 0.0,
        dt: Optional[float] = None,
        method: str = "trap",
        gmin: float = 1e-12,
        source_scale: float = 1.0,
        state: Optional[Dict] = None,
        prev_state: Optional[Dict] = None,
    ):
        self.x = x
        self.prev_x = prev_x
        self.time = time
        self.dt = dt
        self.method = method
        self.gmin = gmin
        self.source_scale = source_scale
        self.state = state if state is not None else {}
        self.prev_state = prev_state if prev_state is not None else {}

    # -- voltage accessors ---------------------------------------------------

    def v(self, node: int) -> float:
        """Voltage of ``node`` in the current iterate (0 for ground)."""
        if node == GROUND:
            return 0.0
        return float(self.x[node])

    def v_prev(self, node: int) -> float:
        """Voltage of ``node`` at the previous accepted time point."""
        if node == GROUND or self.prev_x is None:
            return 0.0
        return float(self.prev_x[node])

    @property
    def is_dc(self) -> bool:
        return self.dt is None


# ---------------------------------------------------------------------------
# Stamping helpers
# ---------------------------------------------------------------------------

def _add(A: np.ndarray, row: int, col: int, value: float) -> None:
    if row == GROUND or col == GROUND:
        return
    A[row, col] += value


def _add_rhs(z: np.ndarray, row: int, value: float) -> None:
    if row == GROUND:
        return
    z[row] += value


def stamp_conductance(A: np.ndarray, a: int, b: int, g: float) -> None:
    """Stamp a conductance ``g`` between nodes ``a`` and ``b``."""
    _add(A, a, a, g)
    _add(A, b, b, g)
    _add(A, a, b, -g)
    _add(A, b, a, -g)


def stamp_current_source(z: np.ndarray, a: int, b: int, current: float) -> None:
    """Stamp an independent current ``current`` flowing from ``a`` to ``b``.

    The current leaves node ``a`` and enters node ``b``; in the ``A x = z``
    form this corresponds to injecting ``-current`` into ``a`` and
    ``+current`` into ``b``.
    """
    _add_rhs(z, a, -current)
    _add_rhs(z, b, current)


def stamp_vccs(A: np.ndarray, out_p: int, out_n: int, ctl_p: int, ctl_n: int, gm: float) -> None:
    """Stamp a linear transconductance: ``i(out_p -> out_n) = gm * (V_ctl_p - V_ctl_n)``."""
    _add(A, out_p, ctl_p, gm)
    _add(A, out_p, ctl_n, -gm)
    _add(A, out_n, ctl_p, -gm)
    _add(A, out_n, ctl_n, gm)


def stamp_nonlinear_current(
    A: np.ndarray,
    z: np.ndarray,
    a: int,
    b: int,
    i0: float,
    gradients: Sequence[Tuple[int, float]],
    ctx: StampContext,
) -> None:
    """Stamp a linearised non-linear current flowing from ``a`` to ``b``.

    The current is ``i = i0 + sum_j g_j (v_j - v_j0)`` where ``v_j0`` are the
    controlling voltages at the current iterate.  The Jacobian terms go into
    ``A`` and the affine part ``ieq = i0 - sum_j g_j v_j0`` is treated as an
    independent current source from ``a`` to ``b``.
    """
    ieq = i0
    for node, g in gradients:
        _add(A, a, node, g)
        _add(A, b, node, -g)
        ieq -= g * ctx.v(node)
    stamp_current_source(z, a, b, ieq)


# ---------------------------------------------------------------------------
# Element base class
# ---------------------------------------------------------------------------

class Element:
    """Base class of all circuit elements."""

    #: Number of extra MNA unknowns (branch currents) the element needs.
    num_branches: int = 0

    def __init__(self, name: str):
        self.name = name
        #: Indices of the element's branch unknowns, assigned by the circuit.
        self.branch_indices: List[int] = []
        #: The circuit this element was added to (set by ``Circuit.add``);
        #: used to invalidate the compiled kernel when a linear value is
        #: mutated after preparation.
        self._owner = None

    def _invalidate_owner(self) -> None:
        if self._owner is not None:
            self._owner.invalidate()

    # The circuit assigns node indices by calling ``bind``.
    def node_names(self) -> List[str]:
        """Names of the nodes this element connects to (order matters)."""
        raise NotImplementedError

    def bind(self, node_indices: List[int], branch_indices: List[int]) -> None:
        """Store the node/branch indices assigned by the circuit."""
        self._nodes = list(node_indices)
        self.branch_indices = list(branch_indices)

    @property
    def nodes(self) -> List[int]:
        return self._nodes

    def stamp(self, A: np.ndarray, z: np.ndarray, ctx: StampContext) -> None:
        raise NotImplementedError

    def update_state(self, ctx: StampContext) -> None:
        """Save per-step state after a time point has been accepted."""

    def is_nonlinear(self) -> bool:
        return False

    def partition(self) -> str:
        """Assembly partition the compiled kernel places this element in.

        * ``"static"`` -- matrix stamps are constant, no right-hand side
          (resistors, linear controlled sources);
        * ``"source"`` -- matrix stamps are constant, right-hand side varies
          with time / source scaling (independent sources);
        * ``"dynamic"`` -- matrix stamps depend on ``(dt, method, state)``
          through an integration companion model (capacitors, inductors);
        * ``"nonlinear"`` -- must be re-stamped on every Newton iteration.

        The base class defaults to ``"nonlinear"``, which is always correct:
        a subclass may only declare a cheaper partition when its stamps
        genuinely satisfy the invariants above.
        """
        return "nonlinear"

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name})"


# ---------------------------------------------------------------------------
# Linear passives
# ---------------------------------------------------------------------------

class Resistor(Element):
    """A linear resistor between two nodes."""

    def __init__(self, name: str, a: str, b: str, resistance: float):
        super().__init__(name)
        if resistance <= 0:
            raise ValueError(f"resistor {name}: resistance must be positive")
        self.a = a
        self.b = b
        self.resistance = float(resistance)

    @property
    def resistance(self) -> float:
        return self._resistance

    @resistance.setter
    def resistance(self, value: float) -> None:
        # Linear values are compiled into the stamping kernel, so mutating
        # one after preparation must drop the owning circuit's kernel.
        self._resistance = float(value)
        self._invalidate_owner()

    def node_names(self) -> List[str]:
        return [self.a, self.b]

    def partition(self) -> str:
        return "static"

    def stamp(self, A: np.ndarray, z: np.ndarray, ctx: StampContext) -> None:
        na, nb = self.nodes
        stamp_conductance(A, na, nb, 1.0 / self.resistance)


class Capacitor(Element):
    """A linear capacitor between two nodes (also used for coupling caps)."""

    def __init__(self, name: str, a: str, b: str, capacitance: float, ic: Optional[float] = None):
        super().__init__(name)
        if capacitance < 0:
            raise ValueError(f"capacitor {name}: capacitance must be non-negative")
        self.a = a
        self.b = b
        self.capacitance = float(capacitance)
        #: Optional initial voltage across the capacitor (a -> b).
        self.ic = ic

    @property
    def capacitance(self) -> float:
        return self._capacitance

    @capacitance.setter
    def capacitance(self, value: float) -> None:
        self._capacitance = float(value)
        self._invalidate_owner()

    def node_names(self) -> List[str]:
        return [self.a, self.b]

    def partition(self) -> str:
        return "dynamic"

    def stamp(self, A: np.ndarray, z: np.ndarray, ctx: StampContext) -> None:
        na, nb = self.nodes
        c = self.capacitance
        if ctx.is_dc or c == 0.0:
            # Open circuit at DC; add a tiny conductance for matrix conditioning.
            stamp_conductance(A, na, nb, ctx.gmin)
            return
        dt = ctx.dt
        v_prev = ctx.v_prev(na) - ctx.v_prev(nb)
        if ctx.method == "trap":
            i_prev = ctx.prev_state.get(self.name, {}).get("i", None)
            if i_prev is None:
                # First transient step: fall back to backward Euler.
                geq = c / dt
                ieq_into_a = geq * v_prev
            else:
                geq = 2.0 * c / dt
                ieq_into_a = geq * v_prev + i_prev
        else:  # backward Euler
            geq = c / dt
            ieq_into_a = geq * v_prev
        stamp_conductance(A, na, nb, geq)
        # The companion current source injects ieq into node a (and removes it
        # from node b), i.e. a source of value ieq flowing from b to a.
        stamp_current_source(z, nb, na, ieq_into_a)

    def update_state(self, ctx: StampContext) -> None:
        if ctx.is_dc or self.capacitance == 0.0:
            ctx.state[self.name] = {"i": 0.0}
            return
        na, nb = self.nodes
        dt = ctx.dt
        c = self.capacitance
        v_new = ctx.v(na) - ctx.v(nb)
        v_prev = ctx.v_prev(na) - ctx.v_prev(nb)
        i_prev = ctx.prev_state.get(self.name, {}).get("i", None)
        if ctx.method == "trap" and i_prev is not None:
            i_new = (2.0 * c / dt) * (v_new - v_prev) - i_prev
        else:
            i_new = (c / dt) * (v_new - v_prev)
        ctx.state[self.name] = {"i": i_new}

    def current(self, ctx: StampContext) -> float:
        """Capacitor current (a -> b) stored for the last accepted step."""
        return ctx.state.get(self.name, {}).get("i", 0.0)


class Inductor(Element):
    """A linear inductor between two nodes.

    Inductors are rarely needed for on-chip noise clusters but are included
    for completeness of the simulator substrate (e.g. package models).  The
    inductor uses a branch current unknown so that zero-resistance loops do
    not break the MNA formulation.
    """

    num_branches = 1

    def __init__(self, name: str, a: str, b: str, inductance: float):
        super().__init__(name)
        if inductance <= 0:
            raise ValueError(f"inductor {name}: inductance must be positive")
        self.a = a
        self.b = b
        self.inductance = float(inductance)

    @property
    def inductance(self) -> float:
        return self._inductance

    @inductance.setter
    def inductance(self, value: float) -> None:
        self._inductance = float(value)
        self._invalidate_owner()

    def node_names(self) -> List[str]:
        return [self.a, self.b]

    def partition(self) -> str:
        return "dynamic"

    def stamp(self, A: np.ndarray, z: np.ndarray, ctx: StampContext) -> None:
        na, nb = self.nodes
        k = self.branch_indices[0]
        # Branch current i flows from a to b.
        _add(A, na, k, 1.0)
        _add(A, nb, k, -1.0)
        _add(A, k, na, 1.0)
        _add(A, k, nb, -1.0)
        if ctx.is_dc:
            # V = 0 across the inductor at DC.
            return
        dt = ctx.dt
        L = self.inductance
        i_prev = ctx.prev_state.get(self.name, {}).get("i", 0.0)
        v_prev = ctx.prev_state.get(self.name, {}).get("v", 0.0)
        if ctx.method == "trap" and self.name in ctx.prev_state:
            req = 2.0 * L / dt
            veq = req * i_prev + v_prev
        else:
            req = L / dt
            veq = req * i_prev
        _add(A, k, k, -req)
        _add_rhs(z, k, -veq)

    def update_state(self, ctx: StampContext) -> None:
        na, nb = self.nodes
        k = self.branch_indices[0]
        i_new = float(ctx.x[k])
        v_new = ctx.v(na) - ctx.v(nb)
        ctx.state[self.name] = {"i": i_new, "v": v_new}


# ---------------------------------------------------------------------------
# Independent sources
# ---------------------------------------------------------------------------

def _as_waveform(value) -> SourceWaveform:
    if isinstance(value, SourceWaveform):
        return value
    return DCValue(float(value))


class CurrentSource(Element):
    """Independent current source; positive current flows from ``a`` to ``b``."""

    def __init__(self, name: str, a: str, b: str, waveform):
        super().__init__(name)
        self.a = a
        self.b = b
        self.waveform = _as_waveform(waveform)

    def node_names(self) -> List[str]:
        return [self.a, self.b]

    def partition(self) -> str:
        return "source"

    def value(self, ctx: StampContext) -> float:
        if ctx.is_dc:
            return self.waveform.dc_value() * ctx.source_scale
        return self.waveform(ctx.time) * ctx.source_scale

    def stamp(self, A: np.ndarray, z: np.ndarray, ctx: StampContext) -> None:
        na, nb = self.nodes
        stamp_current_source(z, na, nb, self.value(ctx))


class VoltageSource(Element):
    """Independent voltage source with a branch current unknown.

    The branch current is positive when flowing from the ``+`` terminal
    through the source to the ``-`` terminal (SPICE convention).
    """

    num_branches = 1

    def __init__(self, name: str, plus: str, minus: str, waveform):
        super().__init__(name)
        self.plus = plus
        self.minus = minus
        self.waveform = _as_waveform(waveform)

    def node_names(self) -> List[str]:
        return [self.plus, self.minus]

    def partition(self) -> str:
        return "source"

    def value(self, ctx: StampContext) -> float:
        if ctx.is_dc:
            return self.waveform.dc_value() * ctx.source_scale
        return self.waveform(ctx.time) * ctx.source_scale

    def stamp(self, A: np.ndarray, z: np.ndarray, ctx: StampContext) -> None:
        np_, nm = self.nodes
        k = self.branch_indices[0]
        _add(A, np_, k, 1.0)
        _add(A, nm, k, -1.0)
        _add(A, k, np_, 1.0)
        _add(A, k, nm, -1.0)
        _add_rhs(z, k, self.value(ctx))

    def branch_current(self, x: np.ndarray) -> float:
        """Current through the source given a solved unknown vector."""
        return float(x[self.branch_indices[0]])


# ---------------------------------------------------------------------------
# Controlled sources
# ---------------------------------------------------------------------------

class VCCS(Element):
    """Linear voltage-controlled current source (SPICE ``G`` element).

    ``i(out_p -> out_n) = gm * (V(ctl_p) - V(ctl_n))``
    """

    def __init__(self, name: str, out_p: str, out_n: str, ctl_p: str, ctl_n: str, gm: float):
        super().__init__(name)
        self.out_p = out_p
        self.out_n = out_n
        self.ctl_p = ctl_p
        self.ctl_n = ctl_n
        self.gm = float(gm)

    @property
    def gm(self) -> float:
        return self._gm

    @gm.setter
    def gm(self, value: float) -> None:
        self._gm = float(value)
        self._invalidate_owner()

    def node_names(self) -> List[str]:
        return [self.out_p, self.out_n, self.ctl_p, self.ctl_n]

    def partition(self) -> str:
        return "static"

    def stamp(self, A: np.ndarray, z: np.ndarray, ctx: StampContext) -> None:
        op, on, cp, cn = self.nodes
        stamp_vccs(A, op, on, cp, cn, self.gm)


class VCVS(Element):
    """Linear voltage-controlled voltage source (SPICE ``E`` element)."""

    num_branches = 1

    def __init__(self, name: str, out_p: str, out_n: str, ctl_p: str, ctl_n: str, gain: float):
        super().__init__(name)
        self.out_p = out_p
        self.out_n = out_n
        self.ctl_p = ctl_p
        self.ctl_n = ctl_n
        self.gain = float(gain)

    @property
    def gain(self) -> float:
        return self._gain

    @gain.setter
    def gain(self, value: float) -> None:
        self._gain = float(value)
        self._invalidate_owner()

    def node_names(self) -> List[str]:
        return [self.out_p, self.out_n, self.ctl_p, self.ctl_n]

    def partition(self) -> str:
        return "static"

    def stamp(self, A: np.ndarray, z: np.ndarray, ctx: StampContext) -> None:
        op, on, cp, cn = self.nodes
        k = self.branch_indices[0]
        _add(A, op, k, 1.0)
        _add(A, on, k, -1.0)
        _add(A, k, op, 1.0)
        _add(A, k, on, -1.0)
        _add(A, k, cp, -self.gain)
        _add(A, k, cn, self.gain)


class BehavioralCurrentSource(Element):
    """A non-linear current source controlled by arbitrary node voltages.

    The current flows from ``out_p`` to ``out_n`` and is computed by
    ``func(v_controls) -> (i, gradient)`` where ``v_controls`` is the list of
    controlling node voltages and ``gradient`` is the list of partial
    derivatives ``di/dv_control``.  This element is the generic mechanism used
    to embed the paper's table-based VCCS ``I_DC = f(V_in, V_out)`` into a
    circuit.
    """

    def __init__(
        self,
        name: str,
        out_p: str,
        out_n: str,
        control_nodes: Sequence[str],
        func: Callable[[Sequence[float]], Tuple[float, Sequence[float]]],
    ):
        super().__init__(name)
        self.out_p = out_p
        self.out_n = out_n
        self.control_nodes = list(control_nodes)
        self.func = func

    def node_names(self) -> List[str]:
        return [self.out_p, self.out_n, *self.control_nodes]

    def is_nonlinear(self) -> bool:
        return True

    def stamp(self, A: np.ndarray, z: np.ndarray, ctx: StampContext) -> None:
        out_p, out_n = self.nodes[0], self.nodes[1]
        control = self.nodes[2:]
        v_ctl = [ctx.v(n) for n in control]
        i0, grads = self.func(v_ctl)
        gradients = list(zip(control, grads))
        stamp_nonlinear_current(A, z, out_p, out_n, float(i0), gradients, ctx)

    def current(self, x: np.ndarray) -> float:
        """Current for a solved vector ``x`` (useful for reporting)."""
        control = self.nodes[2:]
        v_ctl = [0.0 if n == GROUND else float(x[n]) for n in control]
        i0, _ = self.func(v_ctl)
        return float(i0)


class Diode(Element):
    """An ideal-exponential junction diode (used for clamp/antenna models).

    ``i = i_s * (exp(v/(n*vt)) - 1)`` with a simple current limit to keep the
    Newton iteration stable.
    """

    def __init__(
        self,
        name: str,
        anode: str,
        cathode: str,
        i_s: float = 1e-14,
        n: float = 1.0,
        vt: float = 0.02585,
    ):
        super().__init__(name)
        self.anode = anode
        self.cathode = cathode
        self.i_s = float(i_s)
        self.n = float(n)
        self.vt = float(vt)

    def node_names(self) -> List[str]:
        return [self.anode, self.cathode]

    def is_nonlinear(self) -> bool:
        return True

    def _iv(self, v: float) -> Tuple[float, float]:
        nvt = self.n * self.vt
        v_crit = nvt * math.log(nvt / (self.i_s * math.sqrt(2.0)))
        # Limit the exponent to avoid overflow; linearise beyond v_crit.
        if v > v_crit:
            i_crit = self.i_s * (math.exp(v_crit / nvt) - 1.0)
            g_crit = self.i_s / nvt * math.exp(v_crit / nvt)
            return i_crit + g_crit * (v - v_crit), g_crit
        i = self.i_s * (math.exp(v / nvt) - 1.0)
        g = self.i_s / nvt * math.exp(v / nvt)
        return i, g

    def stamp(self, A: np.ndarray, z: np.ndarray, ctx: StampContext) -> None:
        na, nc = self.nodes
        v = ctx.v(na) - ctx.v(nc)
        i0, g = self._iv(v)
        gradients = [(na, g), (nc, -g)]
        stamp_nonlinear_current(A, z, na, nc, i0, gradients, ctx)
