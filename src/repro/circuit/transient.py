"""Transient (time-domain) analysis.

The integrator uses the companion-model formulation implemented by the
elements themselves: backward Euler for the first step (and optionally
throughout) and trapezoidal integration afterwards.

Two execution paths share the same time axis and companion models:

* **linear fast path** -- circuits with no nonlinear element skip Newton
  entirely: each unique time step size is LU-factorised once
  (:class:`~repro.circuit.stamping.LinearTransientStepper`) and every time
  point is a single right-hand-side rebuild plus a back-substitution.  A
  uniform-``dt`` grid therefore pays for exactly one factorization over the
  whole run.  This is the hot path of the characterisation and cluster
  workloads, which are dominated by RC / Thevenin circuits.
* **Newton path** -- nonlinear circuits run the damped Newton iteration from
  :mod:`repro.circuit.dc`; each iteration starts from the kernel's cached
  base matrix and only the nonlinear elements are re-stamped.

The default time step is fixed, which keeps results deterministic and easy to
compare across the golden simulation, the macromodel engine and the linear
baselines.  Both paths agree to solver precision (well below 1e-9) on linear
circuits; ``solver="legacy"`` reproduces the original per-iteration full
Python assembly for benchmarking.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..waveform import Waveform
from .dc import ConvergenceError, dc_operating_point, newton_solve
from .elements import GROUND, StampContext, VoltageSource
from .mna import assemble_legacy
from .netlist import Circuit
from .stamping import LinearTransientStepper, resolve_backend

__all__ = ["TransientResult", "TransientStats", "build_time_axis", "transient"]

_SOLVERS = ("auto", "fast", "newton", "legacy")


@dataclass
class TransientStats:
    """Execution counters of one transient run (perf observability).

    ``assemblies_avoided`` counts Newton iterations served from the cached
    base matrix instead of a full element-by-element rebuild;
    ``lu_reuse_hits`` counts fast-path time steps solved with an already
    computed LU factorization.
    """

    solver: str = "newton"
    #: Resolved linear-algebra backend ("dense" or "sparse").
    backend: str = "dense"
    fast_path: bool = False
    num_time_points: int = 0
    newton_iterations: int = 0
    assemblies_avoided: int = 0
    lu_reuse_hits: int = 0
    matrix_factorizations: int = 0
    rhs_builds: int = 0
    #: Same-matrix batch groups this run participated in (0 = not batched).
    batch_groups: int = 0
    #: Stacked multi-RHS solves this run's steps were folded into.
    batched_solves: int = 0
    #: Factorizations the batch shared instead of recomputing for this run.
    factorizations_saved: int = 0
    #: One entry per time point rescued by a retry rung (backward Euler,
    #: then damped backward Euler), e.g. ``"t=1.2e-10: be"`` -- the
    #: transient-level analogue of DC gmin/source stepping.
    recoveries: List[str] = field(default_factory=list)


def _quantize_dt(dt: float) -> float:
    """Round a step size to 12 significant digits.

    ``np.linspace`` grids produce step sizes that differ in the last ulp;
    quantizing makes every uniform-grid step hit the same base-matrix / LU
    cache key while perturbing companion conductances by a relative 1e-12 at
    most (far below integration error).
    """
    return float(f"{dt:.12e}")


@dataclass
class TransientResult:
    """Result of a transient analysis.

    Node voltages are accessed by name and returned as
    :class:`~repro.waveform.Waveform` objects.
    """

    circuit: Circuit
    times: np.ndarray
    solutions: np.ndarray  # shape (n_times, n_unknowns)
    newton_iterations: int = 0
    stats: TransientStats = field(default_factory=TransientStats)

    def node_voltage(self, node_name: str) -> Waveform:
        """Voltage waveform of the named node.

        Ground aliases (``0``, ``gnd``, ``vss``...) return an exactly-zero
        waveform; an unknown node name raises :class:`KeyError`.
        """
        if not self.circuit.has_node(node_name):
            raise KeyError(
                f"unknown node '{node_name}' in circuit '{self.circuit.name}' "
                f"(known nodes: {', '.join(sorted(self.circuit.node_names)) or 'none'})"
            )
        idx = self.circuit.node_index(node_name)
        if idx == GROUND:
            values = np.zeros_like(self.times)
        else:
            values = self.solutions[:, idx]
        return Waveform(self.times, values)

    def __getitem__(self, node_name: str) -> Waveform:
        return self.node_voltage(node_name)

    def branch_current(self, source_name: str) -> Waveform:
        """Current waveform through a voltage source."""
        element = self.circuit[source_name]
        if not isinstance(element, VoltageSource):
            raise TypeError(f"'{source_name}' is not a voltage source")
        idx = element.branch_indices[0]
        return Waveform(self.times, self.solutions[:, idx])

    def final_voltages(self) -> Dict[str, float]:
        """Node voltages at the final time point."""
        return {
            name: float(self.solutions[-1, i])
            for i, name in enumerate(self.circuit.node_names)
        }

    def voltage_at(self, node_name: str, t: float) -> float:
        """Interpolated node voltage at time ``t``."""
        return self.node_voltage(node_name).value_at(t)

    @property
    def num_steps(self) -> int:
        return len(self.times) - 1


def _collect_breakpoints(circuit: Circuit, t_stop: float) -> List[float]:
    """Source breakpoints inside the simulation window (informational)."""
    points = set()
    for element in circuit.elements:
        waveform = getattr(element, "waveform", None)
        if waveform is None:
            continue
        for t in waveform.t_interesting():
            if 0.0 < t < t_stop:
                points.add(float(t))
    return sorted(points)


def build_time_axis(
    circuit: Circuit,
    t_stop: float,
    dt: float,
    *,
    include_breakpoints: bool = True,
) -> np.ndarray:
    """The simulation time axis: a uniform grid plus source breakpoints.

    Shared between :func:`transient` and the reduced-order transient driver
    (:mod:`repro.reduction.circuit`), so full and reduced runs of the same
    circuit integrate over identical time points and can be compared
    point-for-point.
    """
    num_steps = int(round(t_stop / dt))
    times = list(np.linspace(0.0, t_stop, num_steps + 1))
    if include_breakpoints:
        breakpoints = _collect_breakpoints(circuit, t_stop)
        if breakpoints:
            merged = np.unique(np.concatenate([np.array(times), np.array(breakpoints)]))
            # Drop points that are pathologically close to an existing one.
            keep = [merged[0]]
            for t in merged[1:]:
                if t - keep[-1] > dt * 1e-6:
                    keep.append(t)
            times = keep
    return np.asarray(times, dtype=float)


def transient(
    circuit: Circuit,
    t_stop: float,
    dt: float,
    *,
    method: str = "trap",
    x0: Optional[np.ndarray] = None,
    initial_conditions: Optional[Dict[str, float]] = None,
    uic: bool = False,
    max_newton: int = 50,
    vtol: float = 1e-6,
    include_breakpoints: bool = True,
    solver: str = "auto",
    backend: str = "auto",
) -> TransientResult:
    """Run a transient analysis from ``t = 0`` to ``t_stop``.

    Parameters
    ----------
    circuit:
        The circuit to simulate.
    t_stop:
        Final simulation time (seconds).
    dt:
        Base time step (seconds).  Source breakpoints are inserted as extra
        time points so sharp ramps are not stepped over.
    method:
        ``"trap"`` (default) or ``"be"``.
    x0:
        Optional full initial unknown vector; overrides the DC operating
        point.
    initial_conditions:
        Optional ``{node_name: voltage}`` dictionary.  With ``uic=True`` the
        DC operating point is skipped and these values (0 V for unspecified
        nodes) are used directly.
    uic:
        "Use initial conditions": skip the DC operating point.
    max_newton:
        Newton iteration budget per time point.
    vtol:
        Newton convergence tolerance (volts).
    include_breakpoints:
        Insert source breakpoints into the time axis.
    solver:
        ``"auto"`` (default) takes the Newton-free LU-reuse fast path when
        the circuit is linear and the Newton path otherwise; ``"fast"``
        forces the fast path (raises :class:`ValueError` on nonlinear
        circuits); ``"newton"`` forces the Newton path; ``"legacy"`` forces
        the Newton path with the original per-iteration full Python assembly
        (benchmark baseline).
    """
    if t_stop <= 0:
        raise ValueError("t_stop must be positive")
    if dt <= 0 or dt > t_stop:
        raise ValueError("dt must be positive and smaller than t_stop")
    if method not in ("trap", "be"):
        raise ValueError("method must be 'trap' or 'be'")
    if solver not in _SOLVERS:
        raise ValueError(f"solver must be one of {_SOLVERS}, got '{solver}'")

    circuit.prepare()
    kernel = circuit.kernel
    n = kernel.n
    resolved_backend = resolve_backend(backend, n)
    if solver == "legacy":
        # The legacy baseline is dense end to end -- initial DC operating
        # point included -- so benchmark comparisons against it never hide
        # sparse solves inside the "legacy" timing.
        resolved_backend = "dense"

    # Dispatch on the kernel's partitioning, not ``circuit.is_nonlinear()``:
    # a custom Element subclass may keep the conservative default partition
    # ("nonlinear", re-stamped per iteration) while reporting
    # ``is_nonlinear() == False`` -- such circuits must take the Newton path.
    nonlinear = kernel.has_nonlinear
    if solver == "fast" and nonlinear:
        raise ValueError(
            f"circuit '{circuit.name}' contains nonlinear (per-iteration) "
            "elements; the LU-reuse fast path only applies to linear circuits"
        )
    use_fast = solver == "fast" or (solver == "auto" and not nonlinear)

    # --- time axis ----------------------------------------------------------
    times = build_time_axis(
        circuit, t_stop, dt, include_breakpoints=include_breakpoints
    )

    # --- initial condition ----------------------------------------------------
    if x0 is not None:
        x = np.array(x0, dtype=float, copy=True)
        if x.shape != (n,):
            raise ValueError(f"x0 has shape {x.shape}, expected ({n},)")
    elif uic:
        x = np.zeros(n)
        for name, value in (initial_conditions or {}).items():
            idx = circuit.node_index(name)
            if idx != GROUND:
                x[idx] = value
    else:
        dc = dc_operating_point(circuit, backend=resolved_backend)
        x = np.array(dc.x, copy=True)
        for name, value in (initial_conditions or {}).items():
            idx = circuit.node_index(name)
            if idx != GROUND:
                x[idx] = value

    solutions = np.zeros((len(times), n))
    solutions[0] = x

    if use_fast:
        stats = _run_fast_path(
            circuit, times, x, solutions, method=method, backend=resolved_backend
        )
    else:
        stats = _run_newton_path(
            circuit,
            times,
            x,
            solutions,
            method=method,
            max_newton=max_newton,
            vtol=vtol,
            legacy=solver == "legacy",
            backend=resolved_backend,
        )
    stats.solver = solver
    stats.backend = resolved_backend
    stats.num_time_points = len(times) - 1
    return TransientResult(
        circuit, times, solutions, newton_iterations=stats.newton_iterations, stats=stats
    )


def _run_fast_path(
    circuit: Circuit,
    times: np.ndarray,
    x: np.ndarray,
    solutions: np.ndarray,
    *,
    method: str,
    backend: str = "dense",
) -> TransientStats:
    """Newton-free stepping for linear circuits (one LU per unique dt)."""
    kernel = circuit.kernel
    rhs_before = kernel.stats.rhs_builds
    stepper = LinearTransientStepper(
        kernel, method=method, gmin=circuit.gmin, backend=backend
    )
    stepper.initialize(x)
    prev_x = x
    for step_index in range(1, len(times)):
        t = float(times[step_index])
        step_dt = _quantize_dt(float(times[step_index] - times[step_index - 1]))
        x_new = stepper.step(t, step_dt, prev_x)
        solutions[step_index] = x_new
        prev_x = x_new
    return TransientStats(
        fast_path=True,
        newton_iterations=0,
        lu_reuse_hits=stepper.lu_reuse_hits,
        matrix_factorizations=stepper.lu_factorizations,
        # No Newton iterations run at all on this path, so there are no
        # cache-served assemblies to count; ``lu_reuse_hits`` carries the
        # reuse story here.  Only measured counters are reported.
        assemblies_avoided=0,
        rhs_builds=kernel.stats.rhs_builds - rhs_before,
    )


def _run_newton_path(
    circuit: Circuit,
    times: np.ndarray,
    x: np.ndarray,
    solutions: np.ndarray,
    *,
    method: str,
    max_newton: int,
    vtol: float,
    legacy: bool,
    backend: str = "dense",
) -> TransientStats:
    """Damped-Newton stepping (nonlinear circuits, and forced baselines)."""
    kernel = circuit.kernel
    kernel_before = kernel.stats.snapshot()
    assembler = assemble_legacy if legacy else None

    # Initialise the per-element dynamic state at t = 0.
    state0: Dict = {}
    ctx0 = StampContext(
        x=x, prev_x=x, time=0.0, dt=None, method=method, gmin=circuit.gmin, state=state0
    )
    for element in circuit.elements:
        element.update_state(ctx0)
    prev_state = state0
    prev_x = x
    total_newton = 0
    recoveries: List[str] = []

    # Per-point retry rungs after plain (trapezoidal) Newton fails:
    # backward Euler is more forgiving near sharp transitions, and a
    # heavily damped backward Euler with a larger budget globalises the
    # iteration when full steps oscillate.
    retry_rungs = (
        ("be", 2, 1.0),
        ("be-damped", 4, 0.1),
    )

    for step_index in range(1, len(times)):
        t = float(times[step_index])
        step_dt = _quantize_dt(float(times[step_index] - times[step_index - 1]))
        # Trapezoidal integration needs the previous element currents; the
        # elements fall back to backward Euler automatically when that state
        # is missing (i.e. for the first step).
        step_method = method

        try:
            x_new, iters = newton_solve(
                circuit,
                prev_x,
                gmin=circuit.gmin,
                max_iterations=max_newton,
                vtol=vtol,
                time=t,
                dt=step_dt,
                method=step_method,
                prev_x=prev_x,
                prev_state=prev_state,
                assembler=assembler,
                backend=backend,
            )
        except ConvergenceError:
            for rung_index, (rung, budget_scale, damping) in enumerate(retry_rungs):
                try:
                    x_new, iters = newton_solve(
                        circuit,
                        prev_x,
                        gmin=circuit.gmin,
                        max_iterations=max_newton * budget_scale,
                        vtol=vtol,
                        damping_limit=damping,
                        time=t,
                        dt=step_dt,
                        method="be",
                        prev_x=prev_x,
                        prev_state=prev_state,
                        assembler=assembler,
                        backend=backend,
                    )
                except ConvergenceError:
                    if rung_index == len(retry_rungs) - 1:
                        raise
                    continue
                recoveries.append(f"t={t:.4e}: {rung}")
                break
            step_method = "be"
        total_newton += iters

        # Accept the step: save per-element dynamic state.
        new_state: Dict = {}
        ctx_accept = StampContext(
            x=x_new,
            prev_x=prev_x,
            time=t,
            dt=step_dt,
            method=step_method,
            gmin=circuit.gmin,
            state=new_state,
            prev_state=prev_state,
        )
        for element in circuit.elements:
            element.update_state(ctx_accept)

        solutions[step_index] = x_new
        prev_x = x_new
        prev_state = new_state

    delta = kernel.stats.delta_since(kernel_before)
    return TransientStats(
        fast_path=False,
        newton_iterations=total_newton,
        assemblies_avoided=delta.base_hits,
        matrix_factorizations=total_newton,  # one dense solve per iteration
        rhs_builds=delta.rhs_builds,
        recoveries=recoveries,
    )
