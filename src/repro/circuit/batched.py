"""Batched linear transient core: one factorization per topology class.

Sweep workloads are dominated by *structurally identical* linear transients:
24 Monte Carlo samples of the same cluster share one MNA sparsity pattern,
one time axis and (when only sources vary) one base matrix.  The sequential
path still pays one LU factorization per scenario; this module amortizes it.

Two cooperating pieces:

* :class:`FactorizationCache` -- a thread-safe, content-addressed LRU of
  base-matrix factorizations, keyed by (structure, values, dt, method, gmin,
  backend).  A long-lived session owns one and shares it across every
  analysis it runs, so the *second* scenario with the same matrix never
  factorises at all.  Because a cached factorization of an identical matrix
  is bit-identical to a fresh one, cache hits cannot perturb results -- the
  sweep determinism guarantees (same results at any worker count) survive.
* :class:`BatchedTransientSolver` -- groups a list of :class:`TransientJob`
  by a structural fingerprint (unknown count + COO pattern hash + values +
  time axis + method + gmin + backend), factors the base matrix once per
  group, and steps all members in lockstep with stacked right-hand sides:
  ``lu_solve(lu, RHS_stack)`` is one BLAS triangular solve for N scenarios
  instead of N calls.  Nonlinear circuits (and ``batching="off"``) fall back
  to the sequential :func:`~repro.circuit.transient.transient` path
  unchanged, so the solver accepts arbitrary mixed job lists.

Per-member results are returned in input order and agree with the
sequential path to at most a few ulp (the stacked triangular solve is the
same LAPACK routine applied column by column); the differential test suite
pins the agreement at 1e-12.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from .dc import dc_operating_point
from .elements import GROUND
from .netlist import Circuit
from .stamping import (
    _BASE_CACHE_SIZE,
    LinearSolver,
    LinearTransientStepper,
    SparseLinearSolver,
    resolve_backend,
)
from .transient import (
    TransientResult,
    TransientStats,
    _quantize_dt,
    build_time_axis,
    transient,
)

__all__ = [
    "BATCHING_MODES",
    "TransientJob",
    "BatchRunStats",
    "FactorizationCache",
    "BatchedTransientSolver",
]

#: Valid values of every ``batching=`` parameter.
BATCHING_MODES = ("auto", "off")


@dataclass
class TransientJob:
    """One transient analysis request, batchable with others.

    Mirrors the keyword surface of :func:`~repro.circuit.transient.transient`
    for the linear fast path; ``label`` is carried through for reporting.
    """

    circuit: Circuit
    t_stop: float
    dt: float
    method: str = "trap"
    x0: Optional[np.ndarray] = None
    initial_conditions: Optional[Dict[str, float]] = None
    uic: bool = False
    include_breakpoints: bool = True
    label: str = ""


@dataclass
class BatchRunStats:
    """What one :meth:`BatchedTransientSolver.run` call actually did."""

    #: Same-matrix groups that went through the lockstep stepping loop.
    batch_groups: int = 0
    #: Jobs solved inside a batch group (including single-member groups).
    batched_jobs: int = 0
    #: Jobs that fell back to the sequential path (nonlinear, or batching off).
    sequential_jobs: int = 0
    #: Stacked multi-RHS solves performed (one per time step per group >= 2).
    batched_solves: int = 0
    #: Base-matrix factorizations actually computed.
    factorizations_built: int = 0
    #: Factorizations avoided -- group sharing plus session-cache hits.
    factorizations_saved: int = 0


class FactorizationCache:
    """Thread-safe content-addressed LRU of linear-system factorizations.

    Keys are value-level fingerprints (structure hash, value hash, dt,
    method, gmin, backend), so a hit is guaranteed to be a factorization of
    a bit-identical matrix -- reuse can never change results.  A session
    owns one instance and threads it through every engine and batched
    solver it creates; sweep workers expose the counters through
    ``SweepHealth``.
    """

    def __init__(self, max_entries: int = _BASE_CACHE_SIZE):
        self.max_entries = max_entries
        self._entries: "OrderedDict[tuple, object]" = OrderedDict()
        self._lock = threading.Lock()
        #: Factorizations built and admitted (one per distinct matrix seen).
        self.entries_created = 0
        #: Lookups answered without factorising.
        self.hits = 0
        #: Stacked multi-RHS solves recorded against this cache.
        self.stacked_solves = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def solver(self, key: tuple, build: Callable[[], object]) -> Tuple[object, bool]:
        """The cached solver for ``key``, building (and admitting) on miss.

        Returns ``(solver, hit)``; ``hit`` is True when the factorization
        was served from the cache.
        """
        with self._lock:
            solver = self._entries.get(key)
            if solver is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                return solver, True
            solver = build()
            self._entries[key] = solver
            if len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
            self.entries_created += 1
            return solver, False

    def record_stacked_solves(self, count: int = 1) -> None:
        with self._lock:
            self.stacked_solves += count

    def counters(self) -> Dict[str, int]:
        """Counter snapshot under the sweep-telemetry names."""
        with self._lock:
            return {
                "batch_groups": self.entries_created,
                "batched_solves": self.stacked_solves,
                "factorizations_saved": self.hits,
            }


# ---------------------------------------------------------------------------
# Fingerprints
# ---------------------------------------------------------------------------


def _structure_fingerprint(kernel) -> str:
    """Hash of the compiled COO pattern: positions, not values."""
    digest = hashlib.sha1()
    digest.update(np.array([kernel.n, kernel.num_nodes], dtype=np.int64).tobytes())
    for arr in (kernel._static_rows, kernel._static_cols, kernel._cap_a, kernel._cap_b):
        digest.update(np.asarray(arr, dtype=np.int64).tobytes())
        digest.update(b"|")
    for element in kernel.inductors:
        digest.update(
            f"{element.nodes}:{element.branch_indices}".encode("ascii", "replace")
        )
    return digest.hexdigest()


def _value_fingerprint(kernel) -> str:
    """Hash of the linear stamp values (resistances, capacitances, ...)."""
    digest = hashlib.sha1()
    for arr in (kernel._static_vals, kernel._cap_c):
        digest.update(np.asarray(arr, dtype=np.float64).tobytes())
        digest.update(b"|")
    inductances = np.array([e.inductance for e in kernel.inductors], dtype=np.float64)
    digest.update(inductances.tobytes())
    return digest.hexdigest()


def _axis_fingerprint(times: np.ndarray) -> str:
    return hashlib.sha1(np.asarray(times, dtype=np.float64).tobytes()).hexdigest()


# ---------------------------------------------------------------------------
# The batched solver
# ---------------------------------------------------------------------------


@dataclass
class _Member:
    index: int
    job: TransientJob
    kernel: object
    times: np.ndarray
    backend: str


class BatchedTransientSolver:
    """Group same-matrix linear transients and solve them in lockstep.

    ``backend`` follows :func:`~repro.circuit.stamping.resolve_backend`
    semantics per job; ``batching="off"`` disables grouping (every job runs
    through the sequential path -- the differential-testing baseline); an
    optional :class:`FactorizationCache` adds cross-call factorization reuse
    inside a long-lived session.
    """

    def __init__(
        self,
        *,
        backend: str = "auto",
        batching: str = "auto",
        cache: Optional[FactorizationCache] = None,
    ):
        if batching not in BATCHING_MODES:
            raise ValueError(
                f"batching must be one of {BATCHING_MODES}, got '{batching}'"
            )
        self.backend = backend
        self.batching = batching
        self.cache = cache
        #: Statistics of the most recent :meth:`run` call.
        self.last_run = BatchRunStats()

    # ------------------------------------------------------------------ run

    def run(self, jobs: List[TransientJob]) -> List[TransientResult]:
        """Solve every job, returning results in input order."""
        stats = BatchRunStats()
        self.last_run = stats
        results: List[Optional[TransientResult]] = [None] * len(jobs)

        groups: "OrderedDict[tuple, List[_Member]]" = OrderedDict()
        for index, job in enumerate(jobs):
            self._validate(job)
            job.circuit.prepare()
            kernel = job.circuit.kernel
            backend = resolve_backend(self.backend, kernel.n)
            if self.batching == "off" or kernel.has_nonlinear:
                results[index] = self._run_sequential(job)
                stats.sequential_jobs += 1
                continue
            times = build_time_axis(
                job.circuit,
                job.t_stop,
                job.dt,
                include_breakpoints=job.include_breakpoints,
            )
            key = (
                _structure_fingerprint(kernel),
                _value_fingerprint(kernel),
                _axis_fingerprint(times),
                job.method,
                repr(job.circuit.gmin),
                backend,
            )
            groups.setdefault(key, []).append(
                _Member(index, job, kernel, times, backend)
            )

        for key, members in groups.items():
            stats.batch_groups += 1
            stats.batched_jobs += len(members)
            for member, result in zip(members, self._run_group(key, members, stats)):
                results[member.index] = result
        # Every index was filled by exactly one of the two paths above.
        return [result for result in results if result is not None]

    # ------------------------------------------------------------- internals

    @staticmethod
    def _validate(job: TransientJob) -> None:
        if job.t_stop <= 0:
            raise ValueError("t_stop must be positive")
        if job.dt <= 0 or job.dt > job.t_stop:
            raise ValueError("dt must be positive and smaller than t_stop")
        if job.method not in ("trap", "be"):
            raise ValueError("method must be 'trap' or 'be'")

    def _run_sequential(self, job: TransientJob) -> TransientResult:
        return transient(
            job.circuit,
            job.t_stop,
            job.dt,
            method=job.method,
            x0=job.x0,
            initial_conditions=job.initial_conditions,
            uic=job.uic,
            include_breakpoints=job.include_breakpoints,
            backend=self.backend,
        )

    @staticmethod
    def _initial_state(job: TransientJob, kernel, backend: str) -> np.ndarray:
        """Replicates the initial-condition logic of :func:`transient`."""
        n = kernel.n
        if job.x0 is not None:
            x = np.array(job.x0, dtype=float, copy=True)
            if x.shape != (n,):
                raise ValueError(f"x0 has shape {x.shape}, expected ({n},)")
            return x
        if job.uic:
            x = np.zeros(n)
            for name, value in (job.initial_conditions or {}).items():
                idx = job.circuit.node_index(name)
                if idx != GROUND:
                    x[idx] = value
            return x
        dc = dc_operating_point(job.circuit, backend=backend)
        x = np.array(dc.x, copy=True)
        for name, value in (job.initial_conditions or {}).items():
            idx = job.circuit.node_index(name)
            if idx != GROUND:
                x[idx] = value
        return x

    def _run_group(
        self, key: tuple, members: List[_Member], stats: BatchRunStats
    ) -> List[TransientResult]:
        lead = members[0]
        kernel = lead.kernel
        times = lead.times
        backend = lead.backend
        method = lead.job.method
        gmin = lead.job.circuit.gmin
        n = kernel.n
        k = len(members)
        num_steps = len(times) - 1

        steppers = [
            LinearTransientStepper(
                member.kernel, method=method, gmin=gmin, backend=backend
            )
            for member in members
        ]
        x_inits = [
            self._initial_state(member.job, member.kernel, backend)
            for member in members
        ]
        for stepper, x in zip(steppers, x_inits):
            stepper.initialize(x)

        all_solutions = [np.zeros((len(times), n)) for _ in members]
        for solutions, x in zip(all_solutions, x_inits):
            solutions[0] = x

        # One factorization per unique quantized dt, shared by the whole
        # group; the optional session cache extends the sharing across runs.
        local_solvers: Dict[float, object] = {}
        built = 0
        cache_hits = 0

        def acquire(step_dt: float):
            nonlocal built, cache_hits
            solver = local_solvers.get(step_dt)
            if solver is not None:
                return solver

            def build():
                base_key = (step_dt, method, gmin, steppers[0]._signature())
                if backend == "sparse":
                    return SparseLinearSolver(
                        kernel.base_matrix_sparse_for_key(base_key)
                    )
                return LinearSolver(kernel.base_matrix_for_key(base_key))

            if self.cache is not None:
                # The matrix is fully determined by (structure, values, dt,
                # method, gmin, backend) -- the time axis drops out.
                cache_key = key[:2] + (step_dt, method, key[4], backend)
                solver, hit = self.cache.solver(cache_key, build)
                if hit:
                    cache_hits += 1
                else:
                    built += 1
            else:
                solver = build()
                built += 1
            local_solvers[step_dt] = solver
            return solver

        prev_columns = [np.asarray(x, dtype=float) for x in x_inits]
        stacked_solves = 0
        for step_index in range(1, len(times)):
            t = float(times[step_index])
            step_dt = _quantize_dt(float(times[step_index] - times[step_index - 1]))
            solver = acquire(step_dt)
            if k == 1:
                z = steppers[0].build_rhs(t, step_dt, prev_columns[0])
                x_new = solver.solve(z)
                steppers[0].accept(x_new, step_dt, prev_columns[0])
                all_solutions[0][step_index] = x_new
                prev_columns[0] = x_new
            else:
                Z = np.empty((n, k))
                for m, stepper in enumerate(steppers):
                    Z[:, m] = stepper.build_rhs(t, step_dt, prev_columns[m])
                X = solver.solve(Z)
                stacked_solves += 1
                for m, stepper in enumerate(steppers):
                    x_new = np.ascontiguousarray(X[:, m])
                    stepper.accept(x_new, step_dt, prev_columns[m])
                    all_solutions[m][step_index] = x_new
                    prev_columns[m] = x_new

        if self.cache is not None and stacked_solves:
            self.cache.record_stacked_solves(stacked_solves)
        unique_dts = len(local_solvers)
        stats.batched_solves += stacked_solves
        stats.factorizations_built += built
        stats.factorizations_saved += cache_hits + unique_dts * (k - 1)

        results = []
        for m, member in enumerate(members):
            member_stats = TransientStats(
                solver="auto",
                backend=backend,
                fast_path=True,
                num_time_points=num_steps,
                newton_iterations=0,
                lu_reuse_hits=(num_steps - unique_dts) if m == 0 else 0,
                matrix_factorizations=built if m == 0 else 0,
                rhs_builds=num_steps,
                batch_groups=1,
                batched_solves=stacked_solves,
                factorizations_saved=cache_hits if m == 0 else unique_dts,
            )
            results.append(
                TransientResult(
                    member.job.circuit,
                    times.copy(),
                    all_solutions[m],
                    newton_iterations=0,
                    stats=member_stats,
                )
            )
        return results
