"""Modified Nodal Analysis system assembly.

The assembly is deliberately simple: for every solver iteration the full
dense matrix is rebuilt from the element stamps.  The circuits handled by the
noise flow are small (tens to a few hundreds of unknowns) so dense linear
algebra with NumPy/LAPACK is both fast and robust; sparse assembly would add
complexity without a measurable benefit at this scale.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .elements import StampContext
from .netlist import Circuit

__all__ = ["assemble", "solve_linear_system", "SingularMatrixError"]


class SingularMatrixError(RuntimeError):
    """Raised when the MNA matrix cannot be factorised."""


def assemble(circuit: Circuit, ctx: StampContext) -> Tuple[np.ndarray, np.ndarray]:
    """Assemble the MNA matrix ``A`` and right-hand side ``z`` for ``ctx``."""
    circuit.prepare()
    n = circuit.num_unknowns
    A = np.zeros((n, n))
    z = np.zeros(n)
    for element in circuit.elements:
        element.stamp(A, z, ctx)
    # Minimum conductance from every node to ground: keeps the matrix
    # non-singular when nodes are floating (e.g. gate nodes driven only by
    # capacitors at DC).
    gmin = ctx.gmin
    if gmin > 0.0:
        num_nodes = circuit.num_nodes
        idx = np.arange(num_nodes)
        A[idx, idx] += gmin
    return A, z


def solve_linear_system(A: np.ndarray, z: np.ndarray) -> np.ndarray:
    """Solve ``A x = z``, raising :class:`SingularMatrixError` when singular."""
    try:
        x = np.linalg.solve(A, z)
    except np.linalg.LinAlgError as exc:
        raise SingularMatrixError(str(exc)) from exc
    if not np.all(np.isfinite(x)):
        raise SingularMatrixError("solution contains non-finite values")
    return x


def residual(circuit: Circuit, ctx: StampContext) -> np.ndarray:
    """KCL/branch residual ``A(x) x - z(x)`` at the iterate stored in ``ctx``.

    Because non-linear elements stamp exact Norton companions, the residual of
    the linearised system evaluated at the linearisation point equals the true
    non-linear residual, which makes this a valid convergence check.
    """
    A, z = assemble(circuit, ctx)
    return A @ ctx.x - z
