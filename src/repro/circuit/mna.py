"""Modified Nodal Analysis system assembly.

Assembly is delegated to the circuit's compiled stamping kernel
(:mod:`repro.circuit.stamping`): constant (static-linear) stamps and
``(dt, method)``-dependent companion stamps are precompiled into flat COO
arrays and cached as *base matrices*, so a Newton iteration only copies the
cached base and stamps the nonlinear elements.  The paper's noise clusters
are small (tens to a few hundreds of unknowns) and stay on dense
NumPy/LAPACK linear algebra; large interconnect clusters (thousands of RC
nodes) assemble the same COO triples into scipy.sparse CSC matrices instead
-- see :func:`repro.circuit.stamping.resolve_backend` for the auto-selection
policy.

:func:`assemble_legacy` keeps the original element-by-element rebuild both
as the reference oracle for the kernel's correctness tests and as the
pre-optimization baseline for the transient benchmarks.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .. import faults
from .elements import StampContext
from .netlist import Circuit
from .stamping import SingularMatrixError

__all__ = [
    "assemble",
    "assemble_legacy",
    "solve_linear_system",
    "SingularMatrixError",
]


def assemble(circuit: Circuit, ctx: StampContext) -> Tuple[np.ndarray, np.ndarray]:
    """Assemble the MNA matrix ``A`` and right-hand side ``z`` for ``ctx``.

    The circuit must already be prepared (``Circuit.prepare()``); solver
    entry points prepare once and the per-iteration hot path only asserts.
    """
    return circuit.kernel.assemble(ctx)


def assemble_legacy(circuit: Circuit, ctx: StampContext) -> Tuple[np.ndarray, np.ndarray]:
    """Reference assembly: rebuild the full dense system element by element.

    This is the pre-kernel behaviour (including the per-call ``prepare()``
    guard).  It is kept as the correctness oracle the compiled kernel is
    tested against and as the ``solver="legacy"`` baseline of
    ``benchmarks/bench_transient_scaling.py``.
    """
    circuit.prepare()
    n = circuit.num_unknowns
    A = np.zeros((n, n))
    z = np.zeros(n)
    for element in circuit.elements:
        element.stamp(A, z, ctx)
    # Minimum conductance from every node to ground: keeps the matrix
    # non-singular when nodes are floating (e.g. gate nodes driven only by
    # capacitors at DC).
    gmin = ctx.gmin
    if gmin > 0.0:
        num_nodes = circuit.num_nodes
        idx = np.arange(num_nodes)
        A[idx, idx] += gmin
    return A, z


def solve_linear_system(A, z: np.ndarray) -> np.ndarray:
    """Solve ``A x = z``, raising :class:`SingularMatrixError` when singular.

    ``A`` may be a dense ndarray (LAPACK ``np.linalg.solve``) or a
    scipy.sparse matrix (``scipy.sparse.linalg.splu`` through
    :class:`~repro.circuit.stamping.SparseLinearSolver`) -- Newton loops
    stay backend-agnostic by calling this on whatever ``assemble`` produced.
    ``z`` may be one right-hand side (1-D) or a stack of them (``(n, k)``);
    the batched transient core relies on the stacked form to amortise one
    factorization over many scenarios.
    """
    if not isinstance(A, np.ndarray):
        from .stamping import SparseLinearSolver

        return SparseLinearSolver(A).solve(z)
    # Injected "singular" faults emulate a failing *dense* factorisation
    # (the sparse backend's pivoting survives the same system), which is
    # exactly the situation the degradation ladder's sparse rung recovers
    # from end to end.
    if faults.fire("solve") == "singular":
        raise SingularMatrixError("injected singular matrix [fault plan]")
    try:
        x = np.linalg.solve(A, z)
    except np.linalg.LinAlgError as exc:
        raise SingularMatrixError(str(exc)) from exc
    if not np.all(np.isfinite(x)):
        raise SingularMatrixError("solution contains non-finite values")
    return x


def residual(circuit: Circuit, ctx: StampContext) -> np.ndarray:
    """KCL/branch residual ``A(x) x - z(x)`` at the iterate stored in ``ctx``.

    Because non-linear elements stamp exact Norton companions, the residual of
    the linearised system evaluated at the linearisation point equals the true
    non-linear residual, which makes this a valid convergence check.
    """
    A, z = assemble(circuit, ctx)
    return A @ ctx.x - z
