"""SPICE-like netlist parser.

The parser accepts the small, well-defined subset of SPICE syntax that the
library needs to describe noise clusters and characterisation decks:

* element cards: ``R``, ``C``, ``L``, ``V``, ``I``, ``G`` (linear VCCS),
  ``E`` (linear VCVS), ``D``, ``M`` (MOSFET) and ``X`` (sub-circuit instance);
* control cards: ``.model`` (nmos/pmos), ``.subckt``/``.ends``, ``.tran``,
  ``.dc``, ``.ic``, ``.end``;
* value suffixes ``f p n u m k meg g t`` and engineering notation;
* ``*`` comments, ``$``/``;`` trailing comments and ``+`` continuation lines.

Source values can be a DC number, ``DC <v>``, ``PULSE(...)``, ``PWL(...)`` or
``SIN(...)``.

The parser produces a :class:`ParsedNetlist` with a flat :class:`Circuit`
(sub-circuits are expanded inline) plus the requested analyses so that simple
decks can be run end-to-end::

    parsed = parse_netlist(text)
    result = parsed.run()          # runs the first .tran / .dc card
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .elements import Capacitor, Inductor, Resistor
from .mosfet import MOSFETParams
from .netlist import Circuit
from .sources import (
    DCValue,
    PiecewiseLinear,
    PulseWaveform,
    SineWaveform,
    SourceWaveform,
)

__all__ = ["NetlistError", "ParsedNetlist", "parse_netlist", "parse_value"]


class NetlistError(ValueError):
    """Raised for syntax or semantic errors in a netlist."""


_SUFFIXES = {
    "t": 1e12,
    "g": 1e9,
    "meg": 1e6,
    "k": 1e3,
    "m": 1e-3,
    "u": 1e-6,
    "n": 1e-9,
    "p": 1e-12,
    "f": 1e-15,
}

_VALUE_RE = re.compile(
    r"^([+-]?\d*\.?\d+(?:[eE][+-]?\d+)?)(meg|[tgkmunpf])?[a-z]*$", re.IGNORECASE
)


def parse_value(token: str) -> float:
    """Parse a SPICE value with optional engineering suffix (``2.5k``, ``10f``)."""
    token = token.strip()
    match = _VALUE_RE.match(token)
    if not match:
        raise NetlistError(f"cannot parse value '{token}'")
    number = float(match.group(1))
    suffix = match.group(2)
    if suffix:
        number *= _SUFFIXES[suffix.lower()]
    return number


def _strip_comment(line: str) -> str:
    for marker in ("$", ";"):
        pos = line.find(marker)
        if pos >= 0:
            line = line[:pos]
    return line.rstrip()


def _join_continuations(lines: Sequence[str]) -> List[str]:
    joined: List[str] = []
    for raw in lines:
        line = _strip_comment(raw.rstrip("\n"))
        if not line.strip():
            continue
        if line.lstrip().startswith("*"):
            continue
        if line.startswith("+"):
            if not joined:
                raise NetlistError("continuation line with nothing to continue")
            joined[-1] += " " + line[1:].strip()
        else:
            joined.append(line.strip())
    return joined


def _split_params(tokens: Sequence[str]) -> Tuple[List[str], Dict[str, str]]:
    """Split tokens into positional arguments and ``key=value`` parameters."""
    positional: List[str] = []
    params: Dict[str, str] = {}
    for token in tokens:
        if "=" in token:
            key, value = token.split("=", 1)
            params[key.lower()] = value
        else:
            positional.append(token)
    return positional, params


_FUNC_SOURCE_RE = re.compile(r"(pulse|pwl|sin)\s*\((.*)\)", re.IGNORECASE | re.DOTALL)


def _parse_source_spec(spec: str) -> SourceWaveform:
    spec = spec.strip()
    match = _FUNC_SOURCE_RE.search(spec)
    if match:
        kind = match.group(1).lower()
        args = [parse_value(tok) for tok in match.group(2).replace(",", " ").split()]
        if kind == "pulse":
            defaults = [0.0, 0.0, 0.0, 1e-12, 1e-12, 1e-9, 0.0]
            args = args + defaults[len(args):]
            return PulseWaveform(*args[:7])
        if kind == "sin":
            defaults = [0.0, 0.0, 1e6, 0.0, 0.0]
            args = args + defaults[len(args):]
            return SineWaveform(*args[:5])
        if kind == "pwl":
            if len(args) % 2 != 0 or len(args) < 2:
                raise NetlistError(f"PWL needs an even number of values: '{spec}'")
            points = tuple((args[i], args[i + 1]) for i in range(0, len(args), 2))
            return PiecewiseLinear(points)
    tokens = spec.split()
    if tokens and tokens[0].lower() == "dc":
        tokens = tokens[1:]
    if not tokens:
        return DCValue(0.0)
    return DCValue(parse_value(tokens[0]))


@dataclass
class Analysis:
    """A requested analysis (``.tran`` or ``.dc``)."""

    kind: str
    params: Dict[str, float] = field(default_factory=dict)


@dataclass
class SubcircuitDef:
    name: str
    ports: List[str]
    body: List[str]


@dataclass
class ParsedNetlist:
    """The result of parsing a netlist: circuit, models and analyses."""

    title: str
    circuit: Circuit
    models: Dict[str, MOSFETParams]
    analyses: List[Analysis]
    initial_conditions: Dict[str, float]

    def run(self):
        """Run the first requested analysis and return its result."""
        from .dc import dc_operating_point
        from .transient import transient

        if not self.analyses:
            raise NetlistError("netlist contains no .tran or .dc analysis")
        analysis = self.analyses[0]
        if analysis.kind == "tran":
            return transient(
                self.circuit,
                t_stop=analysis.params["t_stop"],
                dt=analysis.params["dt"],
                initial_conditions=self.initial_conditions or None,
            )
        if analysis.kind == "dc":
            return dc_operating_point(self.circuit)
        raise NetlistError(f"unsupported analysis '{analysis.kind}'")


_DEFAULT_MODEL_PARAMS = {
    "n": dict(vto=0.35, kp=3.0e-4, lambda_=0.06),
    "p": dict(vto=0.35, kp=1.2e-4, lambda_=0.08),
}


def _parse_model_card(tokens: List[str]) -> Tuple[str, MOSFETParams]:
    if len(tokens) < 3:
        raise NetlistError(f".model card needs a name and a type: {' '.join(tokens)}")
    name = tokens[1].lower()
    mtype = tokens[2].lower()
    if mtype not in ("nmos", "pmos"):
        raise NetlistError(f"unsupported model type '{mtype}' (only nmos/pmos)")
    polarity = "n" if mtype == "nmos" else "p"
    _, params = _split_params(tokens[3:])
    kwargs = dict(_DEFAULT_MODEL_PARAMS[polarity])
    mapping = {
        "vto": "vto",
        "kp": "kp",
        "lambda": "lambda_",
        "alpha": "alpha",
        "cox": "cox",
        "cj": "cj",
        "cjsw": "cjsw",
        "cgdo": "cgdo",
        "l": "l_nominal",
    }
    for key, value in params.items():
        if key in mapping:
            kwargs[mapping[key]] = parse_value(value)
    kwargs["vto"] = abs(kwargs["vto"])
    return name, MOSFETParams(polarity=polarity, **kwargs)


class _NetlistBuilder:
    """Stateful helper that expands sub-circuits and builds the flat circuit."""

    def __init__(self, title: str):
        self.title = title
        self.circuit = Circuit(title or "netlist")
        self.models: Dict[str, MOSFETParams] = {}
        self.subckts: Dict[str, SubcircuitDef] = {}
        self.analyses: List[Analysis] = []
        self.initial_conditions: Dict[str, float] = {}

    # -- element cards -------------------------------------------------------

    def add_element_card(self, line: str, prefix: str = "", node_map: Optional[Dict[str, str]] = None):
        node_map = node_map or {}
        tokens = line.split()
        name = tokens[0]
        kind = name[0].upper()
        full_name = prefix + name

        def node(n: str) -> str:
            norm = Circuit.canonical_node_name(n)
            if norm == "0":
                return "0"
            if norm in node_map:
                return node_map[norm]
            return prefix + norm if prefix else norm

        if kind == "R":
            self.circuit.add_resistor(full_name, node(tokens[1]), node(tokens[2]), parse_value(tokens[3]))
        elif kind == "C":
            self.circuit.add_capacitor(full_name, node(tokens[1]), node(tokens[2]), parse_value(tokens[3]))
        elif kind == "L":
            self.circuit.add_inductor(full_name, node(tokens[1]), node(tokens[2]), parse_value(tokens[3]))
        elif kind == "V":
            spec = " ".join(tokens[3:])
            self.circuit.add_voltage_source(full_name, node(tokens[1]), node(tokens[2]), _parse_source_spec(spec))
        elif kind == "I":
            spec = " ".join(tokens[3:])
            self.circuit.add_current_source(full_name, node(tokens[1]), node(tokens[2]), _parse_source_spec(spec))
        elif kind == "G":
            self.circuit.add_vccs(
                full_name, node(tokens[1]), node(tokens[2]), node(tokens[3]), node(tokens[4]),
                parse_value(tokens[5]),
            )
        elif kind == "E":
            self.circuit.add_vcvs(
                full_name, node(tokens[1]), node(tokens[2]), node(tokens[3]), node(tokens[4]),
                parse_value(tokens[5]),
            )
        elif kind == "D":
            self.circuit.add_diode(full_name, node(tokens[1]), node(tokens[2]))
        elif kind == "M":
            positional, params = _split_params(tokens[1:])
            if len(positional) < 5:
                raise NetlistError(f"MOSFET card needs d g s b and a model: {line}")
            d, g, s, b, model_name = positional[:5]
            model_name = model_name.lower()
            if model_name not in self.models:
                raise NetlistError(f"unknown MOSFET model '{model_name}'")
            model = self.models[model_name]
            w = parse_value(params.get("w", "1u"))
            l = parse_value(params.get("l", str(model.l_nominal)))
            self.circuit.add_mosfet(
                full_name, node(d), node(g), node(s), model, w=w, l=l, bulk=node(b)
            )
        elif kind == "X":
            positional, _ = _split_params(tokens[1:])
            subckt_name = positional[-1].lower()
            instance_nodes = positional[:-1]
            if subckt_name not in self.subckts:
                raise NetlistError(f"unknown sub-circuit '{subckt_name}'")
            definition = self.subckts[subckt_name]
            if len(instance_nodes) != len(definition.ports):
                raise NetlistError(
                    f"sub-circuit '{subckt_name}' expects {len(definition.ports)} ports, "
                    f"got {len(instance_nodes)}"
                )
            inner_map = {
                Circuit.canonical_node_name(port): node(n)
                for port, n in zip(definition.ports, instance_nodes)
            }
            inner_prefix = f"{full_name}."
            for body_line in definition.body:
                self.add_element_card(body_line, prefix=inner_prefix, node_map=inner_map)
        else:
            raise NetlistError(f"unsupported element card: {line}")

    # -- control cards ---------------------------------------------------------

    def add_control_card(self, line: str):
        tokens = line.split()
        card = tokens[0].lower()
        if card == ".model":
            name, params = _parse_model_card(tokens)
            self.models[name] = params
        elif card == ".tran":
            if len(tokens) < 3:
                raise NetlistError(".tran needs a step and a stop time")
            self.analyses.append(
                Analysis("tran", {"dt": parse_value(tokens[1]), "t_stop": parse_value(tokens[2])})
            )
        elif card == ".dc" or card == ".op":
            self.analyses.append(Analysis("dc"))
        elif card == ".ic":
            _, params = _split_params(tokens[1:])
            for key, value in params.items():
                if key.startswith("v(") and key.endswith(")"):
                    node_name = key[2:-1]
                else:
                    node_name = key
                self.initial_conditions[node_name] = parse_value(value)
        elif card in (".end", ".ends", ".options", ".option", ".temp", ".probe", ".print"):
            pass
        else:
            raise NetlistError(f"unsupported control card: {line}")


def parse_netlist(text: str, *, title_line: bool = True) -> ParsedNetlist:
    """Parse a SPICE-like netlist into a :class:`ParsedNetlist`.

    Parameters
    ----------
    text:
        Netlist source.
    title_line:
        If ``True`` (SPICE convention) the first non-blank line is treated as
        the title, not as an element card.
    """
    raw_lines = text.splitlines()
    lines = _join_continuations(raw_lines)
    if not lines:
        raise NetlistError("empty netlist")

    title = ""
    if title_line and lines and not lines[0].startswith("."):
        first = lines[0].split()
        looks_like_element = first[0][0].upper() in "RCLVIGEDMX" and len(first) >= 3
        if not looks_like_element:
            title = lines[0]
            lines = lines[1:]

    builder = _NetlistBuilder(title)

    # First pass: collect .model cards and sub-circuit definitions so forward
    # references work.
    body_lines: List[str] = []
    i = 0
    while i < len(lines):
        line = lines[i]
        lower = line.lower()
        if lower.startswith(".model"):
            builder.add_control_card(line)
        elif lower.startswith(".subckt"):
            tokens = line.split()
            if len(tokens) < 3:
                raise NetlistError(f"malformed .subckt card: {line}")
            sub_name = tokens[1].lower()
            ports = tokens[2:]
            body: List[str] = []
            i += 1
            while i < len(lines) and not lines[i].lower().startswith(".ends"):
                body.append(lines[i])
                i += 1
            if i >= len(lines):
                raise NetlistError(f"sub-circuit '{sub_name}' is missing .ends")
            builder.subckts[sub_name] = SubcircuitDef(sub_name, ports, body)
        else:
            body_lines.append(line)
        i += 1

    # Second pass: element and analysis cards.
    for line in body_lines:
        if line.startswith("."):
            builder.add_control_card(line)
        else:
            builder.add_element_card(line)

    return ParsedNetlist(
        title=builder.title,
        circuit=builder.circuit,
        models=builder.models,
        analyses=builder.analyses,
        initial_conditions=builder.initial_conditions,
    )
