"""Compiled, vectorized MNA stamping kernel.

The historical assembly path rebuilt the full dense MNA matrix
element-by-element (pure Python) on every Newton iteration of every time
point.  For the circuits this library simulates -- RC wiring, Thevenin
drivers and a handful of transistors -- almost all of those stamps are
identical from one iteration to the next: resistors, controlled sources and
source topologies never change, and capacitor/inductor companion models only
change when the time step or integration method changes.

This module compiles a :class:`Circuit` once (at ``Circuit.prepare()``) into
a :class:`CompiledKernel` that exploits exactly that structure:

* **static** stamps (``Resistor``, ``VCCS``, ``VCVS`` and the topology rows
  of ``VoltageSource``) are captured once into flat COO index/value arrays
  and scattered into a dense matrix in one ``np.add.at`` shot;
* **dynamic** stamps (``Capacitor`` / ``Inductor`` companion models) are
  captured per ``(dt, method, gmin, state-signature)`` key and the resulting
  *base matrix* is cached, so a fixed-step transient builds it once and every
  further Newton iteration starts from a cheap ``ndarray.copy()``;
* **nonlinear** elements (``MOSFET``, ``Diode``, ``BehavioralCurrentSource``
  and any future :class:`~repro.circuit.elements.Element` subclass that does
  not declare a linear partition) are the only ones stamped per iteration;
* the right-hand side is rebuilt once per *time point* (not per iteration):
  independent sources are evaluated directly and capacitor companion
  currents are gathered and scattered with vectorized NumPy operations.

For circuits with no nonlinear element at all, :class:`LinearTransientStepper`
skips Newton entirely: one LU factorization per unique ``(dt, method)`` is
reused across all time steps with only right-hand-side updates, so a
uniform-``dt`` grid pays for a single factorization over the whole run.

Two interchangeable linear-algebra backends share all of the machinery above:

* **dense** -- NumPy arrays factorised with ``scipy.linalg.lu_factor``; the
  right substrate for the paper's noise clusters (tens to a few hundred
  unknowns), where LAPACK's dense kernels beat any sparse bookkeeping;
* **sparse** -- the same COO stamp capture assembled into
  ``scipy.sparse`` CSC matrices and factorised with
  ``scipy.sparse.linalg.splu``.  Extracted RC interconnect is near-tree
  (a handful of nonzeros per row), so factorisation and solves scale
  roughly linearly with node count instead of O(n^3)/O(n^2) -- this is what
  opens the multi-thousand-node workload class.

:func:`resolve_backend` implements the ``"auto"`` policy: circuits at or
above :data:`SPARSE_AUTO_THRESHOLD` unknowns take the sparse backend, the
dense oracle keeps everything below it.  Both backends run the same stamps,
the same companion models and the same caches, so they agree to solver
precision (the differential suite in ``tests/circuit/test_sparse_backend.py``
pins sparse-vs-dense agreement at 1e-9).

The capture mechanism runs each element's *existing* ``stamp()`` method
against duck-typed accumulators, so there is exactly one authoritative
implementation of every stamp and the compiled kernel cannot drift from the
reference Python assembly (``repro.circuit.mna.assemble_legacy``).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

from .elements import (
    Capacitor,
    CurrentSource,
    Element,
    GROUND,
    Inductor,
    StampContext,
    VoltageSource,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle (netlist builds the kernel)
    from .netlist import Circuit

__all__ = [
    "SingularMatrixError",
    "KernelStats",
    "CompiledKernel",
    "DescriptorSystem",
    "AssembledPoint",
    "LinearSolver",
    "SparseLinearSolver",
    "LinearTransientStepper",
    "SPARSE_AUTO_THRESHOLD",
    "SOLVER_BACKENDS",
    "resolve_backend",
]

#: Maximum number of cached base matrices per kernel (gmin stepping can visit
#: a dozen keys; anything beyond that is evicted least-recently-used).
_BASE_CACHE_SIZE = 32

#: Valid values of every ``backend=`` / ``solver_backend=`` parameter.
SOLVER_BACKENDS = ("auto", "dense", "sparse")

#: Unknown count at which ``backend="auto"`` switches to the sparse backend.
#: Measured on the RC-ladder workloads of ``benchmarks/bench_sparse_backend.py``:
#: below a few hundred unknowns LAPACK's dense kernels win, above it the
#: near-tree sparsity of extracted interconnect makes ``splu`` pull away.
SPARSE_AUTO_THRESHOLD = 500

try:  # SciPy is optional: fall back to a cached inverse when missing.
    from scipy.linalg import lu_factor as _lu_factor, lu_solve as _lu_solve

    _HAVE_SCIPY_LU = True
except ImportError:  # pragma: no cover - exercised only on scipy-less installs
    _lu_factor = _lu_solve = None
    _HAVE_SCIPY_LU = False

try:  # The sparse backend needs scipy.sparse; "auto" degrades to dense.
    from scipy import sparse as _sparse
    from scipy.sparse.linalg import splu as _splu

    _HAVE_SCIPY_SPARSE = True
except ImportError:  # pragma: no cover - exercised only on scipy-less installs
    _sparse = _splu = None
    _HAVE_SCIPY_SPARSE = False


def resolve_backend(backend: str, num_unknowns: int) -> str:
    """Resolve a requested solver backend to ``"dense"`` or ``"sparse"``.

    ``"auto"`` picks sparse at or above :data:`SPARSE_AUTO_THRESHOLD`
    unknowns (when scipy.sparse is importable), dense below it.  Forcing
    ``"sparse"`` without scipy raises -- silently substituting the dense
    backend would defeat the point of forcing.
    """
    if backend not in SOLVER_BACKENDS:
        raise ValueError(
            f"backend must be one of {SOLVER_BACKENDS}, got '{backend}'"
        )
    if backend == "sparse":
        if not _HAVE_SCIPY_SPARSE:  # pragma: no cover - scipy-less installs
            raise RuntimeError(
                "the sparse solver backend requires scipy.sparse, which is "
                "not importable in this environment"
            )
        return "sparse"
    if backend == "dense":
        return "dense"
    if _HAVE_SCIPY_SPARSE and num_unknowns >= SPARSE_AUTO_THRESHOLD:
        return "sparse"
    return "dense"


class SingularMatrixError(RuntimeError):
    """Raised when the MNA matrix cannot be factorised."""


# ---------------------------------------------------------------------------
# Stamp-capture accumulators
# ---------------------------------------------------------------------------

class _COOMatrix:
    """Duck-typed matrix that records ``A[r, c] += v`` as COO triples."""

    __slots__ = ("rows", "cols", "vals")

    def __init__(self):
        self.rows: List[int] = []
        self.cols: List[int] = []
        self.vals: List[float] = []

    def __getitem__(self, key) -> float:
        return 0.0

    def __setitem__(self, key, value) -> None:
        row, col = key
        self.rows.append(row)
        self.cols.append(col)
        self.vals.append(value)


class _NullSink:
    """Duck-typed array that silently discards all reads and writes."""

    __slots__ = ()

    def __getitem__(self, key) -> float:
        return 0.0

    def __setitem__(self, key, value) -> None:
        pass


_NULL_SINK = _NullSink()


# ---------------------------------------------------------------------------
# Factor-once / solve-many linear solver
# ---------------------------------------------------------------------------

class LinearSolver:
    """An ``A x = z`` solver that factorises once and solves many times.

    Uses ``scipy.linalg.lu_factor`` when SciPy is available; otherwise caches
    ``numpy.linalg.inv(A)`` so repeated solves stay :math:`O(n^2)`.
    """

    __slots__ = ("_lu", "_inv")

    def __init__(self, A: np.ndarray):
        self._lu = None
        self._inv = None
        try:
            if _HAVE_SCIPY_LU:
                self._lu = _lu_factor(A)
            else:
                self._inv = np.linalg.inv(A)
        except (np.linalg.LinAlgError, ValueError) as exc:
            raise SingularMatrixError(str(exc)) from exc

    def solve(self, z: np.ndarray) -> np.ndarray:
        """Solve for one right-hand side (1-D) or a stacked block (n x k).

        A 2-D ``z`` is solved column-by-column inside one LAPACK call --
        the primitive the batched transient core builds on.
        """
        if self._lu is not None:
            # The factors were validated at factor time and the solution is
            # checked below; re-scanning the n^2 factor block every solve
            # (check_finite's default) would cost as much as the solve.
            x = _lu_solve(self._lu, z, check_finite=False)
        else:
            x = self._inv @ z
        if not np.all(np.isfinite(x)):
            raise SingularMatrixError("solution contains non-finite values")
        return x


class SparseLinearSolver:
    """Sparse ``A x = z`` solver: one ``splu`` factorisation, many solves.

    The sparse twin of :class:`LinearSolver`; accepts any scipy.sparse
    matrix (converted to CSC, the format ``splu`` factorises in place).
    """

    __slots__ = ("_lu",)

    def __init__(self, A):
        if not _HAVE_SCIPY_SPARSE:  # pragma: no cover - scipy-less installs
            raise RuntimeError("scipy.sparse is required for SparseLinearSolver")
        try:
            self._lu = _splu(_sparse.csc_matrix(A))
        except (RuntimeError, ValueError) as exc:
            raise SingularMatrixError(str(exc)) from exc

    def solve(self, z: np.ndarray) -> np.ndarray:
        """Solve for one right-hand side (1-D) or a stacked block (n x k)."""
        x = self._lu.solve(z)
        if not np.all(np.isfinite(x)):
            raise SingularMatrixError("solution contains non-finite values")
        return x


# ---------------------------------------------------------------------------
# Kernel statistics
# ---------------------------------------------------------------------------

@dataclass
class KernelStats:
    """Counters of what the compiled kernel did (and did not) recompute."""

    #: Base matrices built from scratch (compile + np.add.at scatter).
    base_builds: int = 0
    #: Assemblies answered from the base-matrix cache -- each one is a full
    #: element-by-element reassembly the legacy path would have performed.
    base_hits: int = 0
    #: Right-hand-side rebuilds (one per time point, not per iteration).
    rhs_builds: int = 0
    #: Individual nonlinear-element stamp calls.
    nonlinear_stamps: int = 0

    def snapshot(self) -> "KernelStats":
        return KernelStats(
            self.base_builds, self.base_hits, self.rhs_builds, self.nonlinear_stamps
        )

    def delta_since(self, earlier: "KernelStats") -> "KernelStats":
        return KernelStats(
            self.base_builds - earlier.base_builds,
            self.base_hits - earlier.base_hits,
            self.rhs_builds - earlier.rhs_builds,
            self.nonlinear_stamps - earlier.nonlinear_stamps,
        )


@dataclass
class DescriptorSystem:
    """Linear MNA descriptor form ``G x + C dx/dt = B u(t)`` of one kernel.

    ``G`` and ``C`` are scipy.sparse CSC matrices over the full unknown
    vector (node voltages plus source branch currents), assembled straight
    from the compiled COO stamps -- the dense ``n x n`` arrays are never
    materialised.  ``B`` maps the independent sources onto the equations
    (one column per source) and :meth:`input_vector` evaluates their values
    at a time point, so ``B @ input_vector(t)`` reproduces the kernel's
    linear right-hand side exactly.  This is the handoff format of the
    model-order-reduction subsystem (:mod:`repro.reduction`).
    """

    G: object
    C: object
    B: np.ndarray
    sources: List[Element]
    num_unknowns: int
    num_nodes: int
    gmin: float

    @property
    def num_inputs(self) -> int:
        return self.B.shape[1]

    def input_vector(
        self, t: float, *, dt: Optional[float] = None, method: str = "trap"
    ) -> np.ndarray:
        """Source values ``u(t)``; ``dt=None`` evaluates the DC values."""
        ctx = StampContext(
            x=np.zeros(0), time=t, dt=dt, method=method, gmin=self.gmin
        )
        return np.array([element.value(ctx) for element in self.sources])


def _defining_class(cls: type, name: str) -> Optional[type]:
    """The most-derived class in ``cls``'s MRO that defines ``name``."""
    for klass in cls.__mro__:
        if name in vars(klass):
            return klass
    return None


def _effective_partition(element: Element) -> str:
    """The partition the kernel may safely compile ``element`` under.

    A subclass that overrides ``stamp`` (or ``update_state``) without also
    overriding ``partition`` inherits a partition claim that describes the
    *parent's* stamps, not its own -- compiling it would silently freeze or
    bypass the override.  Such elements are demoted to ``"nonlinear"``, the
    always-correct per-iteration treatment (and they keep the Newton path,
    because the fast-path dispatch checks ``kernel.has_nonlinear``).
    """
    partition = element.partition()
    if partition == "nonlinear":
        return partition
    part_cls = _defining_class(type(element), "partition")
    # Any behaviour-defining method overridden *below* the class that made
    # the partition claim invalidates that claim: stamp/update_state change
    # the stamps themselves, value() changes how sources are evaluated, and
    # an is_nonlinear() override signals iterate-dependent behaviour.
    for method in ("stamp", "update_state", "value", "is_nonlinear"):
        method_cls = _defining_class(type(element), method)
        if (
            method_cls is not None
            and part_cls is not None
            and method_cls is not part_cls
            and issubclass(method_cls, part_cls)
        ):
            return "nonlinear"
    return partition


# ---------------------------------------------------------------------------
# The compiled kernel
# ---------------------------------------------------------------------------

class CompiledKernel:
    """Precompiled vectorized assembly for one prepared :class:`Circuit`.

    The kernel is built by ``Circuit.prepare()`` and invalidated whenever an
    element or node is added, or a compiled linear value (``resistance``,
    ``capacitance``, ``inductance``, ``gm``, ``gain``) is mutated -- the
    value setters notify the owning circuit.  Mutating a source's
    ``waveform`` does not invalidate (and need not): source values are read
    live on every right-hand-side rebuild.
    """

    def __init__(self, circuit: "Circuit"):
        # Built from inside ``Circuit.prepare()`` (after branch assignment),
        # so sizes are read directly rather than through the auto-preparing
        # ``num_unknowns`` property.
        self.circuit = circuit
        self.num_nodes = circuit.num_nodes
        self.n = circuit.num_nodes + circuit._num_branches

        self.static_elements: List[Element] = []
        self.source_elements: List[Element] = []
        self.dynamic_elements: List[Element] = []
        self.nonlinear_elements: List[Element] = []
        for element in circuit.elements:
            partition = _effective_partition(element)
            if partition == "static":
                self.static_elements.append(element)
            elif partition == "source":
                self.source_elements.append(element)
            elif partition == "dynamic":
                self.dynamic_elements.append(element)
            elif partition == "nonlinear":
                self.nonlinear_elements.append(element)
            else:  # pragma: no cover - partition() contract violation
                raise ValueError(
                    f"element {element!r} declares unknown partition '{partition}'"
                )

        # Dynamic capacitors with a companion model (C > 0); their right-hand
        # side is rebuilt vectorized every time point.
        self._caps: List[Capacitor] = [
            e for e in self.dynamic_elements
            if isinstance(e, Capacitor) and e.capacitance > 0.0
        ]
        n = self.n
        # Node indices with GROUND mapped onto a scratch slot ``n`` so gathers
        # and scatters work on (n+1)-vectors without branching.
        self._cap_a = np.array(
            [e.nodes[0] if e.nodes[0] != GROUND else n for e in self._caps], dtype=int
        )
        self._cap_b = np.array(
            [e.nodes[1] if e.nodes[1] != GROUND else n for e in self._caps], dtype=int
        )
        self._cap_c = np.array([e.capacitance for e in self._caps], dtype=float)

        self._inductors: List[Inductor] = [
            e for e in self.dynamic_elements if isinstance(e, Inductor)
        ]
        # Any dynamic element that is neither a compiled capacitor nor an
        # inductor (zero-value caps have no RHS; future types fall back to
        # their own stamp against a null matrix).
        compiled = set(id(e) for e in self._caps) | set(id(e) for e in self._inductors)
        self._other_dynamic = [
            e for e in self.dynamic_elements
            if id(e) not in compiled and not isinstance(e, Capacitor)
        ]

        # --- static COO compile (one shot, reused by every base matrix) -----
        coo = _COOMatrix()
        probe = StampContext(x=np.zeros(n), dt=None, gmin=0.0)
        for element in self.static_elements:
            element.stamp(coo, _NULL_SINK, probe)
        for element in self.source_elements:
            element.stamp(coo, _NULL_SINK, probe)
        self._static_rows = np.array(coo.rows, dtype=int)
        self._static_cols = np.array(coo.cols, dtype=int)
        self._static_flat = self._static_rows * n + self._static_cols
        self._static_vals = np.array(coo.vals, dtype=float)

        self._base_cache: "OrderedDict[tuple, np.ndarray]" = OrderedDict()
        # Sparse (CSC) twins of the dense base matrices, cached under the
        # same keys.  Both caches live on the kernel, so Circuit.invalidate()
        # -- triggered by topology changes *and* by linear-value setters --
        # drops dense and sparse factorisation inputs together.
        self._sparse_base_cache: "OrderedDict[tuple, object]" = OrderedDict()
        self.stats = KernelStats()

    # ------------------------------------------------------------ properties

    @property
    def has_nonlinear(self) -> bool:
        return bool(self.nonlinear_elements)

    @property
    def capacitors(self) -> List[Capacitor]:
        return list(self._caps)

    @property
    def inductors(self) -> List[Inductor]:
        return list(self._inductors)

    # ----------------------------------------------------------- base matrix

    def signature(self, ctx: StampContext) -> Tuple[bool, ...]:
        """Per-dynamic-element effective integration coefficient.

        ``True`` means the element stamps its trapezoidal companion (method
        is ``"trap"`` *and* its previous-step state is available), ``False``
        means backward Euler.  Mirrors the fallback logic inside
        ``Capacitor.stamp`` / ``Inductor.stamp`` exactly.
        """
        if ctx.dt is None:
            return ()
        trap = ctx.method == "trap"
        prev_state = ctx.prev_state
        bits = []
        for element in self.dynamic_elements:
            if isinstance(element, Capacitor):
                state = prev_state.get(element.name)
                bits.append(trap and state is not None and state.get("i") is not None)
            else:
                bits.append(trap and element.name in prev_state)
        return tuple(bits)

    def base_key(self, ctx: StampContext) -> tuple:
        return (ctx.dt, ctx.method, ctx.gmin, self.signature(ctx))

    def base_matrix(self, ctx: StampContext) -> np.ndarray:
        """The cached linear-part matrix for ``ctx`` (gmin diagonal included).

        The returned array is shared -- callers must ``copy()`` before
        stamping into it.
        """
        return self.base_matrix_for_key(self.base_key(ctx))

    def _dynamic_coo(self, key: tuple) -> _COOMatrix:
        """COO triples of the dynamic (companion-model) stamps for ``key``.

        Re-runs the dynamic stamps against a COO accumulator with a
        synthetic context that reproduces the key: the companion
        conductances depend only on (dt, method, gmin, state presence),
        never on the state *values*.
        """
        dt, method, gmin, sig = key
        coo = _COOMatrix()
        if not self.dynamic_elements:
            return coo
        n = self.n
        prev_state: Dict = {}
        for element, has_state in zip(self.dynamic_elements, sig or ()):
            if has_state:
                prev_state[element.name] = {"i": 0.0, "v": 0.0}
        probe = StampContext(
            x=np.zeros(n),
            prev_x=np.zeros(n),
            dt=dt,
            method=method,
            gmin=gmin,
            prev_state=prev_state,
        )
        for element in self.dynamic_elements:
            element.stamp(coo, _NULL_SINK, probe)
        return coo

    def base_matrix_for_key(self, key: tuple) -> np.ndarray:
        cached = self._base_cache.get(key)
        if cached is not None:
            self._base_cache.move_to_end(key)
            self.stats.base_hits += 1
            return cached

        dt, method, gmin, sig = key
        n = self.n
        A = np.zeros(n * n)
        if self._static_flat.size:
            np.add.at(A, self._static_flat, self._static_vals)

        coo = self._dynamic_coo(key)
        if coo.rows:
            flat = np.array(coo.rows, dtype=int) * n + np.array(coo.cols, dtype=int)
            np.add.at(A, flat, np.array(coo.vals, dtype=float))

        A = A.reshape(n, n)
        if gmin > 0.0 and self.num_nodes:
            idx = np.arange(self.num_nodes)
            A[idx, idx] += gmin

        self._base_cache[key] = A
        if len(self._base_cache) > _BASE_CACHE_SIZE:
            self._base_cache.popitem(last=False)
        self.stats.base_builds += 1
        return A

    # ---------------------------------------------------------- sparse matrix

    def base_matrix_sparse(self, ctx: StampContext):
        """Sparse (CSC) twin of :meth:`base_matrix` -- shared, do not mutate."""
        return self.base_matrix_sparse_for_key(self.base_key(ctx))

    def base_matrix_sparse_for_key(self, key: tuple):
        """The cached sparse base matrix for ``key`` (gmin diagonal included).

        Assembled straight from the compiled COO triples -- the dense
        ``n x n`` array is never materialised, which is what keeps
        multi-thousand-node clusters inside memory.
        """
        if not _HAVE_SCIPY_SPARSE:  # pragma: no cover - scipy-less installs
            raise RuntimeError("scipy.sparse is required for the sparse backend")
        cached = self._sparse_base_cache.get(key)
        if cached is not None:
            self._sparse_base_cache.move_to_end(key)
            self.stats.base_hits += 1
            return cached

        _dt, _method, gmin, _sig = key
        n = self.n
        rows = [self._static_rows]
        cols = [self._static_cols]
        vals = [self._static_vals]
        coo = self._dynamic_coo(key)
        if coo.rows:
            rows.append(np.array(coo.rows, dtype=int))
            cols.append(np.array(coo.cols, dtype=int))
            vals.append(np.array(coo.vals, dtype=float))
        if gmin > 0.0 and self.num_nodes:
            idx = np.arange(self.num_nodes)
            rows.append(idx)
            cols.append(idx)
            vals.append(np.full(self.num_nodes, gmin))
        A = _sparse.coo_matrix(
            (np.concatenate(vals), (np.concatenate(rows), np.concatenate(cols))),
            shape=(n, n),
        ).tocsc()

        self._sparse_base_cache[key] = A
        if len(self._sparse_base_cache) > _BASE_CACHE_SIZE:
            self._sparse_base_cache.popitem(last=False)
        self.stats.base_builds += 1
        return A

    # -------------------------------------------------------- right-hand side

    def rhs(
        self,
        ctx: StampContext,
        *,
        cap_i_prev: Optional[np.ndarray] = None,
        cap_trap: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Linear-part right-hand side at ``ctx`` (constant over Newton).

        ``cap_i_prev`` / ``cap_trap`` let the linear fast path supply the
        capacitor companion state as arrays; otherwise the per-element state
        dictionaries of ``ctx.prev_state`` are gathered.
        """
        n = self.n
        z = np.zeros(n)
        self.stats.rhs_builds += 1

        for element in self.source_elements:
            if isinstance(element, VoltageSource):
                z[element.branch_indices[0]] += element.value(ctx)
            elif isinstance(element, CurrentSource):
                a, b = element.nodes
                value = element.value(ctx)
                if a != GROUND:
                    z[a] -= value
                if b != GROUND:
                    z[b] += value
            else:
                element.stamp(_NULL_SINK, z, ctx)

        if ctx.dt is None:
            return z
        dt = ctx.dt

        if self._caps:
            if cap_i_prev is None:
                trap = ctx.method == "trap"
                i_prev = np.zeros(len(self._caps))
                trap_mask = np.zeros(len(self._caps), dtype=bool)
                for index, element in enumerate(self._caps):
                    state = ctx.prev_state.get(element.name)
                    value = None if state is None else state.get("i")
                    if trap and value is not None:
                        trap_mask[index] = True
                        i_prev[index] = value
            else:
                i_prev = cap_i_prev
                trap_mask = cap_trap

            prev_ext = np.zeros(n + 1)
            if ctx.prev_x is not None:
                prev_ext[:n] = ctx.prev_x
            v_prev = prev_ext[self._cap_a] - prev_ext[self._cap_b]
            geq = np.where(trap_mask, 2.0, 1.0) * self._cap_c / dt
            ieq = geq * v_prev + np.where(trap_mask, i_prev, 0.0)
            z_ext = np.zeros(n + 1)
            np.add.at(z_ext, self._cap_a, ieq)
            np.add.at(z_ext, self._cap_b, -ieq)
            z += z_ext[:n]

        for element in self._inductors:
            element.stamp(_NULL_SINK, z, ctx)
        for element in self._other_dynamic:
            element.stamp(_NULL_SINK, z, ctx)
        return z

    # --------------------------------------------------------------- assembly

    def point(self, ctx: StampContext, backend: str = "dense") -> "AssembledPoint":
        """Precompute the iteration-invariant parts of one solve point.

        The base matrix, its cache key/signature and the linear right-hand
        side are all constant over the Newton iterations of a time point;
        Newton loops build one :class:`AssembledPoint` per point and call its
        :meth:`~AssembledPoint.assemble` per iteration.  ``backend`` selects
        the matrix representation the point assembles (``"dense"`` or
        ``"sparse"``, already resolved by :func:`resolve_backend`).
        """
        return AssembledPoint(self, ctx, backend=backend)

    def assemble(
        self,
        ctx: StampContext,
        *,
        z_base: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Full ``(A, z)`` at ``ctx``: cached base + nonlinear stamps.

        ``z_base`` (from :meth:`rhs`) can be passed to avoid rebuilding the
        linear right-hand side; iterating callers should prefer
        :meth:`point`, which also hoists the base-key computation.
        """
        A = self.base_matrix(ctx).copy()
        z = self.rhs(ctx) if z_base is None else z_base.copy()
        return self.stamp_nonlinear(A, z, ctx)

    def stamp_nonlinear(
        self, A: np.ndarray, z: np.ndarray, ctx: StampContext
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Stamp the per-iteration (nonlinear) elements into ``(A, z)``."""
        for element in self.nonlinear_elements:
            element.stamp(A, z, ctx)
            self.stats.nonlinear_stamps += 1
        return A, z

    def stamp_nonlinear_sparse(
        self, base, z: np.ndarray, ctx: StampContext
    ) -> Tuple[object, np.ndarray]:
        """Sparse-base variant of :meth:`stamp_nonlinear`.

        The nonlinear stamps are captured as COO triples (each element's
        ``stamp`` runs unmodified against the duck-typed accumulator) and
        added to the shared sparse base, which is never mutated.
        """
        coo = _COOMatrix()
        for element in self.nonlinear_elements:
            element.stamp(coo, z, ctx)
            self.stats.nonlinear_stamps += 1
        if not coo.rows:
            return base, z
        delta = _sparse.coo_matrix(
            (np.array(coo.vals, dtype=float),
             (np.array(coo.rows, dtype=int), np.array(coo.cols, dtype=int))),
            shape=base.shape,
        )
        return (base + delta.tocsc()), z

    # ----------------------------------------------------------- descriptor

    def descriptor_system(self, *, gmin: float = 0.0) -> DescriptorSystem:
        """Export the kernel as a sparse ``G x + C dx/dt = B u(t)`` system.

        Only strictly linear RC(+sources) circuits have this form: ``G``
        carries the static stamps (resistors, controlled sources, voltage
        source topology rows) plus the ``gmin`` node diagonal, ``C`` the
        capacitor stamps, and ``B`` one column per independent source.
        Nonlinear elements, inductors and custom dynamic elements have no
        descriptor representation here and raise :class:`ValueError` with
        the offending element names.
        """
        if not _HAVE_SCIPY_SPARSE:  # pragma: no cover - scipy-less installs
            raise RuntimeError("scipy.sparse is required for descriptor export")
        offending = list(self.nonlinear_elements) + list(self._inductors) + list(
            self._other_dynamic
        )
        if offending:
            names = ", ".join(e.name for e in offending[:5])
            raise ValueError(
                f"circuit '{self.circuit.name}' has no linear RC descriptor "
                f"form: unsupported elements {names}"
            )
        for element in self.source_elements:
            if not isinstance(element, (VoltageSource, CurrentSource)):
                raise ValueError(
                    f"source element '{element.name}' "
                    f"({type(element).__name__}) cannot be mapped onto a "
                    "descriptor input column"
                )

        n = self.n
        rows = [self._static_rows]
        cols = [self._static_cols]
        vals = [self._static_vals]
        if gmin > 0.0 and self.num_nodes:
            idx = np.arange(self.num_nodes)
            rows.append(idx)
            cols.append(idx)
            vals.append(np.full(self.num_nodes, gmin))
        G = _sparse.coo_matrix(
            (np.concatenate(vals), (np.concatenate(rows), np.concatenate(cols))),
            shape=(n, n),
        ).tocsc()

        # Capacitor stamps from the compiled flat arrays; entries on the
        # ground scratch slot ``n`` are dropped (ground row/col elimination).
        a, b, c = self._cap_a, self._cap_b, self._cap_c
        crows = np.concatenate([a, b, a, b])
        ccols = np.concatenate([a, b, b, a])
        cvals = np.concatenate([c, c, -c, -c])
        keep = (crows < n) & (ccols < n)
        C = _sparse.coo_matrix(
            (cvals[keep], (crows[keep], ccols[keep])), shape=(n, n)
        ).tocsc()

        B = np.zeros((n, len(self.source_elements)))
        for j, element in enumerate(self.source_elements):
            if isinstance(element, VoltageSource):
                B[element.branch_indices[0], j] = 1.0
            else:
                na, nb = element.nodes
                if na != GROUND:
                    B[na, j] -= 1.0
                if nb != GROUND:
                    B[nb, j] += 1.0
        return DescriptorSystem(
            G=G,
            C=C,
            B=B,
            sources=list(self.source_elements),
            num_unknowns=n,
            num_nodes=self.num_nodes,
            gmin=gmin,
        )


class AssembledPoint:
    """Iteration-invariant assembly state of one time/DC point."""

    __slots__ = ("_kernel", "_base", "_z_base", "_first", "_backend")

    def __init__(self, kernel: CompiledKernel, ctx: StampContext, backend: str = "dense"):
        if backend not in ("dense", "sparse"):
            raise ValueError(
                f"AssembledPoint backend must be 'dense' or 'sparse', got '{backend}'"
            )
        self._kernel = kernel
        self._backend = backend
        if backend == "sparse":
            self._base = kernel.base_matrix_sparse(ctx)
        else:
            self._base = kernel.base_matrix(ctx)
        self._z_base = kernel.rhs(ctx)
        self._first = True

    def assemble(self, ctx: StampContext) -> Tuple[np.ndarray, np.ndarray]:
        """``(A, z)`` at the current iterate, from the precomputed bases."""
        if self._first:
            self._first = False
        else:
            # Every further iteration reuses the precomputed base without
            # even a cache lookup; keep the avoided-assembly accounting
            # identical to per-iteration base_matrix() calls.
            self._kernel.stats.base_hits += 1
        z = self._z_base.copy()
        if self._backend == "sparse":
            return self._kernel.stamp_nonlinear_sparse(self._base, z, ctx)
        return self._kernel.stamp_nonlinear(self._base.copy(), z, ctx)


# ---------------------------------------------------------------------------
# Linear transient fast path
# ---------------------------------------------------------------------------

class LinearTransientStepper:
    """Newton-free time stepper for circuits with no nonlinear element.

    Each step solves ``A(dt) x = z`` directly with an LU factorization that
    is cached per ``(dt, method)`` -- a uniform time grid factorises exactly
    once for the whole run.  Companion-model state (capacitor currents,
    inductor current/voltage) is kept in flat arrays and updated vectorized,
    mirroring ``Capacitor.update_state`` / ``Inductor.update_state``.

    ``backend`` selects the factorisation substrate per unique ``(dt,
    method)`` key: ``"dense"`` (``scipy.linalg.lu_factor``) or ``"sparse"``
    (``scipy.sparse.linalg.splu`` on the kernel's CSC base matrix).  The
    stepping loop, companion-state updates and reuse accounting are
    identical for both.

    The solver cache is LRU-bounded at :data:`_BASE_CACHE_SIZE` entries
    (matching the kernel's base-matrix caches), so a long-lived stepper
    swept across many distinct ``dt`` values cannot accumulate unbounded
    factorisations.  ``shared_solvers`` lets several steppers over
    *identical* matrices (the batched transient core's same-value groups)
    share one cache, so the whole group factorises each unique ``dt``
    exactly once.
    """

    def __init__(
        self,
        kernel: CompiledKernel,
        *,
        method: str,
        gmin: float,
        backend: str = "dense",
        shared_solvers: Optional["OrderedDict"] = None,
    ):
        if kernel.has_nonlinear:
            raise ValueError(
                "the linear fast path cannot simulate nonlinear circuits"
            )
        if backend not in ("dense", "sparse"):
            raise ValueError(
                f"stepper backend must be 'dense' or 'sparse', got '{backend}'"
            )
        self.kernel = kernel
        self.method = method
        self.gmin = gmin
        self.backend = backend
        self._solvers: "OrderedDict[tuple, LinearSolver]" = (
            OrderedDict() if shared_solvers is None else shared_solvers
        )
        self.lu_factorizations = 0
        self.lu_reuse_hits = 0

        n = kernel.n
        self._ncaps = len(kernel._caps)
        self._cap_i = np.zeros(self._ncaps)
        self._trap_mask = np.full(self._ncaps, method == "trap", dtype=bool)
        self._ind_branch = np.array(
            [e.branch_indices[0] for e in kernel._inductors], dtype=int
        )
        self._ind_a = np.array(
            [e.nodes[0] if e.nodes[0] != GROUND else n for e in kernel._inductors],
            dtype=int,
        )
        self._ind_b = np.array(
            [e.nodes[1] if e.nodes[1] != GROUND else n for e in kernel._inductors],
            dtype=int,
        )
        self._ind_L = np.array([e.inductance for e in kernel._inductors], dtype=float)
        self._ind_i = np.zeros(len(kernel._inductors))
        self._ind_v = np.zeros(len(kernel._inductors))

    def initialize(self, x0: np.ndarray) -> None:
        """Mirror the t = 0 ``update_state`` pass of the generic integrator."""
        x_ext = np.append(np.asarray(x0, dtype=float), 0.0)
        self._cap_i[:] = 0.0
        if self._ind_branch.size:
            self._ind_i = x_ext[self._ind_branch].copy()
            self._ind_v = x_ext[self._ind_a] - x_ext[self._ind_b]

    def _solver(self, dt: float) -> LinearSolver:
        key = (dt, self.method)
        solver = self._solvers.get(key)
        if solver is None:
            base_key = (dt, self.method, self.gmin, self._signature())
            if self.backend == "sparse":
                solver = SparseLinearSolver(
                    self.kernel.base_matrix_sparse_for_key(base_key)
                )
            else:
                solver = LinearSolver(self.kernel.base_matrix_for_key(base_key))
            self._solvers[key] = solver
            if len(self._solvers) > _BASE_CACHE_SIZE:
                self._solvers.popitem(last=False)
            self.lu_factorizations += 1
        else:
            self._solvers.move_to_end(key)
            self.lu_reuse_hits += 1
        return solver

    def _signature(self) -> Tuple[bool, ...]:
        # After ``initialize`` every dynamic element has state, so the
        # signature is uniform: trapezoidal iff the method is "trap".
        trap = self.method == "trap"
        return tuple(trap for _ in self.kernel.dynamic_elements)

    def build_rhs(self, t: float, dt: float, prev_x: np.ndarray) -> np.ndarray:
        """The right-hand side of the step system at ``(t, dt)``.

        Solving ``A(dt) x = build_rhs(...)`` and passing ``x`` to
        :meth:`accept` is exactly one :meth:`step`; the batched transient
        core uses this split to stack the right-hand sides of a whole
        same-matrix group into one multi-column solve.
        """
        ctx = StampContext(
            x=prev_x,
            prev_x=prev_x,
            time=t,
            dt=dt,
            method=self.method,
            gmin=self.gmin,
            prev_state=self._inductor_state_view(),
        )
        return self.kernel.rhs(ctx, cap_i_prev=self._cap_i, cap_trap=self._trap_mask)

    def accept(self, x_new: np.ndarray, dt: float, prev_x: np.ndarray) -> None:
        """Commit a solved step: vectorized companion-state update."""
        kernel = self.kernel
        x_ext = np.append(x_new, 0.0)
        prev_ext = np.append(prev_x, 0.0)
        if self._ncaps:
            dv = (x_ext[kernel._cap_a] - x_ext[kernel._cap_b]) - (
                prev_ext[kernel._cap_a] - prev_ext[kernel._cap_b]
            )
            coeff = np.where(self._trap_mask, 2.0, 1.0) * kernel._cap_c / dt
            i_new = coeff * dv - np.where(self._trap_mask, self._cap_i, 0.0)
            self._cap_i = i_new
        if self._ind_branch.size:
            self._ind_i = x_ext[self._ind_branch].copy()
            self._ind_v = x_ext[self._ind_a] - x_ext[self._ind_b]

    def step(self, t: float, dt: float, prev_x: np.ndarray) -> np.ndarray:
        """Advance one time point and update the companion state."""
        solver = self._solver(dt)
        z = self.build_rhs(t, dt, prev_x)
        x_new = solver.solve(z)
        self.accept(x_new, dt, prev_x)
        return x_new

    def _inductor_state_view(self) -> Dict:
        """Per-element state dicts for the (rare, loop-stamped) inductors."""
        if not self.kernel._inductors:
            return {}
        return {
            element.name: {"i": float(self._ind_i[index]), "v": float(self._ind_v[index])}
            for index, element in enumerate(self.kernel._inductors)
        }
