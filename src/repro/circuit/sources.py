"""Time-domain source waveform descriptors.

These small value objects describe the excitation applied by independent
voltage and current sources.  They are deliberately independent of the
circuit elements so that the same descriptions can be reused by the noise
macromodel engine (e.g. the saturated-ramp Thevenin source of an aggressor
driver) and by the SPICE-netlist parser.

Every descriptor is a callable ``value(t)`` returning the instantaneous value
in SI units, and exposes ``t_interesting()`` with a list of time points where
the waveform has breakpoints (used by simulators to refine time steps).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

__all__ = [
    "SourceWaveform",
    "DCValue",
    "PulseWaveform",
    "PiecewiseLinear",
    "SaturatedRamp",
    "SineWaveform",
    "TriangularGlitch",
    "ExponentialGlitch",
]


class SourceWaveform:
    """Base class for source waveforms (callable ``v(t)``)."""

    def __call__(self, t: float) -> float:
        raise NotImplementedError

    def t_interesting(self) -> List[float]:
        """Breakpoint times the integrator should not step across blindly."""
        return []

    def dc_value(self) -> float:
        """Value used for the DC operating point (t = 0)."""
        return self(0.0)


@dataclass(frozen=True)
class DCValue(SourceWaveform):
    """A constant source."""

    value: float = 0.0

    def __call__(self, t: float) -> float:
        return self.value


@dataclass(frozen=True)
class PulseWaveform(SourceWaveform):
    """SPICE-style PULSE(v1 v2 td tr tf pw per) waveform."""

    v1: float
    v2: float
    delay: float = 0.0
    rise: float = 1e-12
    fall: float = 1e-12
    width: float = 1e-9
    period: float = 0.0

    def __call__(self, t: float) -> float:
        if t < self.delay:
            return self.v1
        tl = t - self.delay
        if self.period > 0.0:
            tl = math.fmod(tl, self.period)
        rise = max(self.rise, 1e-18)
        fall = max(self.fall, 1e-18)
        if tl < rise:
            return self.v1 + (self.v2 - self.v1) * tl / rise
        tl -= rise
        if tl < self.width:
            return self.v2
        tl -= self.width
        if tl < fall:
            return self.v2 + (self.v1 - self.v2) * tl / fall
        return self.v1

    def t_interesting(self) -> List[float]:
        base = [
            self.delay,
            self.delay + self.rise,
            self.delay + self.rise + self.width,
            self.delay + self.rise + self.width + self.fall,
        ]
        return base

    def dc_value(self) -> float:
        return self.v1


@dataclass(frozen=True)
class PiecewiseLinear(SourceWaveform):
    """SPICE-style PWL waveform from a sequence of ``(t, v)`` points."""

    points: Tuple[Tuple[float, float], ...]

    def __post_init__(self):
        pts = tuple((float(t), float(v)) for t, v in self.points)
        if len(pts) < 1:
            raise ValueError("PWL needs at least one point")
        for (t0, _), (t1, _) in zip(pts, pts[1:]):
            if t1 <= t0:
                raise ValueError("PWL time points must be strictly increasing")
        object.__setattr__(self, "points", pts)

    def __call__(self, t: float) -> float:
        pts = self.points
        if t <= pts[0][0]:
            return pts[0][1]
        if t >= pts[-1][0]:
            return pts[-1][1]
        for (t0, v0), (t1, v1) in zip(pts, pts[1:]):
            if t0 <= t <= t1:
                return v0 + (v1 - v0) * (t - t0) / (t1 - t0)
        return pts[-1][1]

    def t_interesting(self) -> List[float]:
        return [t for t, _ in self.points]

    def dc_value(self) -> float:
        return self.points[0][1]


@dataclass(frozen=True)
class SaturatedRamp(SourceWaveform):
    """The saturated-ramp Thevenin voltage used to model switching drivers.

    ``v(t)`` stays at ``v_start`` until ``delay``, ramps linearly to
    ``v_end`` over ``transition`` seconds, then stays at ``v_end``.  This is
    the classical Dartu--Pileggi aggressor-driver model referenced by the
    paper ([7]).
    """

    v_start: float
    v_end: float
    delay: float
    transition: float

    def __post_init__(self):
        if self.transition <= 0:
            raise ValueError("transition must be positive")

    def __call__(self, t: float) -> float:
        if t <= self.delay:
            return self.v_start
        if t >= self.delay + self.transition:
            return self.v_end
        frac = (t - self.delay) / self.transition
        return self.v_start + (self.v_end - self.v_start) * frac

    def t_interesting(self) -> List[float]:
        return [self.delay, self.delay + self.transition]

    def dc_value(self) -> float:
        return self.v_start

    @property
    def slew(self) -> float:
        """Full-swing transition time of the ramp (seconds)."""
        return self.transition

    def reversed(self) -> "SaturatedRamp":
        """The same ramp switching in the opposite direction."""
        return SaturatedRamp(self.v_end, self.v_start, self.delay, self.transition)


@dataclass(frozen=True)
class SineWaveform(SourceWaveform):
    """SPICE-style SIN(vo va freq td theta) waveform."""

    offset: float
    amplitude: float
    frequency: float
    delay: float = 0.0
    damping: float = 0.0

    def __call__(self, t: float) -> float:
        if t < self.delay:
            return self.offset
        tl = t - self.delay
        return self.offset + self.amplitude * math.exp(-self.damping * tl) * math.sin(
            2.0 * math.pi * self.frequency * tl
        )

    def dc_value(self) -> float:
        return self.offset


@dataclass(frozen=True)
class TriangularGlitch(SourceWaveform):
    """A triangular noise glitch on top of a quiescent level.

    Used to inject a propagated-noise glitch at the input of the victim
    driver: the waveform sits at ``baseline``, rises linearly to
    ``baseline + height`` over ``rise`` seconds starting at ``delay``, then
    falls back over ``fall`` seconds.
    """

    baseline: float
    height: float
    delay: float
    rise: float
    fall: float

    def __post_init__(self):
        if self.rise <= 0 or self.fall <= 0:
            raise ValueError("rise and fall must be positive")

    def __call__(self, t: float) -> float:
        if t <= self.delay:
            return self.baseline
        tl = t - self.delay
        if tl < self.rise:
            return self.baseline + self.height * tl / self.rise
        tl -= self.rise
        if tl < self.fall:
            return self.baseline + self.height * (1.0 - tl / self.fall)
        return self.baseline

    def t_interesting(self) -> List[float]:
        return [self.delay, self.delay + self.rise, self.delay + self.rise + self.fall]

    def dc_value(self) -> float:
        return self.baseline

    @property
    def width(self) -> float:
        """Base width of the triangle (seconds)."""
        return self.rise + self.fall

    @property
    def area(self) -> float:
        """Area of the triangle above the baseline (V*s)."""
        return 0.5 * self.height * self.width


@dataclass(frozen=True)
class ExponentialGlitch(SourceWaveform):
    """A double-exponential glitch, a common analytical crosstalk template.

    ``v(t) = baseline + height * (exp(-(t-d)/tau_fall) - exp(-(t-d)/tau_rise))``
    normalised so that its maximum equals ``height``.
    """

    baseline: float
    height: float
    delay: float
    tau_rise: float
    tau_fall: float

    def __post_init__(self):
        if self.tau_rise <= 0 or self.tau_fall <= 0:
            raise ValueError("time constants must be positive")
        if self.tau_rise >= self.tau_fall:
            raise ValueError("tau_rise must be smaller than tau_fall")

    def _peak_normaliser(self) -> float:
        tr, tf = self.tau_rise, self.tau_fall
        t_peak = (tr * tf / (tf - tr)) * math.log(tf / tr)
        return math.exp(-t_peak / tf) - math.exp(-t_peak / tr)

    def __call__(self, t: float) -> float:
        if t <= self.delay:
            return self.baseline
        tl = t - self.delay
        raw = math.exp(-tl / self.tau_fall) - math.exp(-tl / self.tau_rise)
        return self.baseline + self.height * raw / self._peak_normaliser()

    def t_interesting(self) -> List[float]:
        tr, tf = self.tau_rise, self.tau_fall
        t_peak = (tr * tf / (tf - tr)) * math.log(tf / tr)
        return [self.delay, self.delay + t_peak, self.delay + 5.0 * tf]

    def dc_value(self) -> float:
        return self.baseline
