"""The :class:`Circuit` container: nodes, elements and convenience builders.

A circuit is a flat collection of elements connected by named nodes.  Node
names are case-insensitive; ``0``, ``gnd`` and ``vss`` are aliases of the
reference (ground) node.  Elements are bound to integer node indices when they
are added, and to branch-current indices when the circuit is prepared for
analysis (:meth:`Circuit.prepare`).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from .elements import (
    GROUND,
    BehavioralCurrentSource,
    Capacitor,
    CurrentSource,
    Diode,
    Element,
    Inductor,
    Resistor,
    VCCS,
    VCVS,
    VoltageSource,
)
from .mosfet import MOSFET, MOSFETParams
from .sources import SourceWaveform
from .stamping import CompiledKernel

__all__ = ["Circuit", "GROUND_NAMES"]

#: Node names (lower-case) treated as the reference node.
GROUND_NAMES = {"0", "gnd", "vss", "gnd!", "vss!"}


class Circuit:
    """A flat netlist of elements connected by named nodes."""

    def __init__(self, name: str = "circuit", gmin: float = 1e-12):
        self.name = name
        self.gmin = gmin
        self._node_index: Dict[str, int] = {}
        self._node_names: List[str] = []
        self._elements: List[Element] = []
        self._element_by_name: Dict[str, Element] = {}
        self._prepared = False
        self._num_branches = 0
        self._kernel: Optional[CompiledKernel] = None

    # ------------------------------------------------------------------ nodes

    @staticmethod
    def canonical_node_name(name: str) -> str:
        """Normalise a node name (case-insensitive, ground aliases to ``0``)."""
        norm = str(name).strip().lower()
        if norm in GROUND_NAMES:
            return "0"
        return norm

    def node(self, name: str) -> int:
        """Return the index of node ``name``, creating it if necessary."""
        norm = self.canonical_node_name(name)
        if norm == "0":
            return GROUND
        if norm not in self._node_index:
            self._node_index[norm] = len(self._node_names)
            self._node_names.append(norm)
            self.invalidate()
        return self._node_index[norm]

    def has_node(self, name: str) -> bool:
        norm = self.canonical_node_name(name)
        return norm == "0" or norm in self._node_index

    def node_index(self, name: str) -> int:
        """Index of an *existing* node (raises ``KeyError`` if unknown)."""
        norm = self.canonical_node_name(name)
        if norm == "0":
            return GROUND
        return self._node_index[norm]

    @property
    def node_names(self) -> List[str]:
        """Names of all non-ground nodes, in index order."""
        return list(self._node_names)

    @property
    def num_nodes(self) -> int:
        """Number of non-ground nodes."""
        return len(self._node_names)

    # --------------------------------------------------------------- elements

    def add(self, element: Element) -> Element:
        """Add an element, binding it to node indices."""
        if element.name in self._element_by_name:
            raise ValueError(f"duplicate element name '{element.name}'")
        node_indices = [self.node(n) for n in element.node_names()]
        element.bind(node_indices, [])
        element._owner = self
        self._elements.append(element)
        self._element_by_name[element.name] = element
        self.invalidate()
        return element

    def __contains__(self, name: str) -> bool:
        return name in self._element_by_name

    def __getitem__(self, name: str) -> Element:
        return self._element_by_name[name]

    def get(self, name: str, default=None) -> Optional[Element]:
        return self._element_by_name.get(name, default)

    @property
    def elements(self) -> List[Element]:
        return list(self._elements)

    def elements_of_type(self, cls) -> List[Element]:
        return [e for e in self._elements if isinstance(e, cls)]

    def is_nonlinear(self) -> bool:
        """True if the circuit contains at least one non-linear element."""
        return any(e.is_nonlinear() for e in self._elements)

    # ------------------------------------------------------------ preparation

    def prepare(self) -> None:
        """Assign branch indices and compile the stamping kernel.

        Runs once per topology: adding elements or nodes invalidates the
        preparation (see :meth:`invalidate`) and the next analysis entry
        point re-prepares.  The solver loops themselves never re-prepare --
        they assert the circuit is prepared and use the compiled kernel.
        """
        if self.is_prepared:
            return
        next_branch = self.num_nodes
        for element in self._elements:
            branches = list(range(next_branch, next_branch + element.num_branches))
            element.bind(element.nodes, branches)
            next_branch += element.num_branches
        self._num_branches = next_branch - self.num_nodes
        self._kernel = CompiledKernel(self)
        self._prepared = True

    def invalidate(self) -> None:
        """Drop the compiled kernel (topology changed); re-run ``prepare``."""
        self._prepared = False
        self._kernel = None

    @property
    def is_prepared(self) -> bool:
        return self._prepared and self._kernel is not None

    @property
    def kernel(self) -> CompiledKernel:
        """The compiled stamping kernel (asserts the circuit is prepared)."""
        if not self.is_prepared:
            raise RuntimeError(
                f"circuit '{self.name}' is not prepared: call Circuit.prepare() "
                "before assembling or solving (elements were added since the "
                "last preparation)"
            )
        return self._kernel

    @property
    def num_branches(self) -> int:
        self.prepare()
        return self._num_branches

    @property
    def num_unknowns(self) -> int:
        """Size of the MNA unknown vector (node voltages + branch currents)."""
        self.prepare()
        return self.num_nodes + self._num_branches

    # ------------------------------------------------------ convenience adders

    def add_resistor(self, name: str, a: str, b: str, resistance: float) -> Resistor:
        return self.add(Resistor(name, a, b, resistance))

    def add_capacitor(
        self, name: str, a: str, b: str, capacitance: float, ic: Optional[float] = None
    ) -> Capacitor:
        return self.add(Capacitor(name, a, b, capacitance, ic=ic))

    def add_inductor(self, name: str, a: str, b: str, inductance: float) -> Inductor:
        return self.add(Inductor(name, a, b, inductance))

    def add_voltage_source(
        self, name: str, plus: str, minus: str, waveform: Union[float, SourceWaveform]
    ) -> VoltageSource:
        return self.add(VoltageSource(name, plus, minus, waveform))

    def add_current_source(
        self, name: str, a: str, b: str, waveform: Union[float, SourceWaveform]
    ) -> CurrentSource:
        return self.add(CurrentSource(name, a, b, waveform))

    def add_vccs(self, name: str, out_p: str, out_n: str, ctl_p: str, ctl_n: str, gm: float) -> VCCS:
        return self.add(VCCS(name, out_p, out_n, ctl_p, ctl_n, gm))

    def add_vcvs(self, name: str, out_p: str, out_n: str, ctl_p: str, ctl_n: str, gain: float) -> VCVS:
        return self.add(VCVS(name, out_p, out_n, ctl_p, ctl_n, gain))

    def add_behavioral_current_source(
        self,
        name: str,
        out_p: str,
        out_n: str,
        control_nodes: Sequence[str],
        func,
    ) -> BehavioralCurrentSource:
        return self.add(BehavioralCurrentSource(name, out_p, out_n, control_nodes, func))

    def add_diode(self, name: str, anode: str, cathode: str, **kwargs) -> Diode:
        return self.add(Diode(name, anode, cathode, **kwargs))

    def add_mosfet(
        self,
        name: str,
        drain: str,
        gate: str,
        source: str,
        params: MOSFETParams,
        w: float,
        l: Optional[float] = None,
        bulk: Optional[str] = None,
        model: str = "auto",
    ) -> MOSFET:
        return self.add(MOSFET(name, drain, gate, source, params, w, l=l, bulk=bulk, model=model))

    # --------------------------------------------------------------- utilities

    def merge(self, other: "Circuit", prefix: str = "", node_map: Optional[Dict[str, str]] = None) -> None:
        """Copy all elements of ``other`` into this circuit.

        ``node_map`` maps node names of ``other`` onto node names of this
        circuit (used to connect the merged sub-circuit); unmapped nodes are
        prefixed with ``prefix`` to keep them unique.
        """
        node_map = {self.canonical_node_name(k): v for k, v in (node_map or {}).items()}

        def translate(node_name: str) -> str:
            norm = self.canonical_node_name(node_name)
            if norm == "0":
                return "0"
            if norm in node_map:
                return node_map[norm]
            return f"{prefix}{norm}" if prefix else norm

        for element in other.elements:
            clone = _clone_element(element, prefix, translate)
            self.add(clone)

    def summary(self) -> str:
        """One-line human-readable summary of the circuit contents."""
        kinds: Dict[str, int] = {}
        for e in self._elements:
            kinds[type(e).__name__] = kinds.get(type(e).__name__, 0) + 1
        parts = ", ".join(f"{count} {kind}" for kind, count in sorted(kinds.items()))
        return f"Circuit '{self.name}': {self.num_nodes} nodes, {len(self._elements)} elements ({parts})"

    def __repr__(self) -> str:
        return self.summary()


def _clone_element(element: Element, prefix: str, translate) -> Element:
    """Create a renamed copy of ``element`` with translated node names."""
    name = f"{prefix}{element.name}" if prefix else element.name
    if isinstance(element, Resistor):
        return Resistor(name, translate(element.a), translate(element.b), element.resistance)
    if isinstance(element, Capacitor):
        return Capacitor(name, translate(element.a), translate(element.b), element.capacitance, ic=element.ic)
    if isinstance(element, Inductor):
        return Inductor(name, translate(element.a), translate(element.b), element.inductance)
    if isinstance(element, VoltageSource):
        return VoltageSource(name, translate(element.plus), translate(element.minus), element.waveform)
    if isinstance(element, CurrentSource):
        return CurrentSource(name, translate(element.a), translate(element.b), element.waveform)
    if isinstance(element, VCCS):
        return VCCS(
            name,
            translate(element.out_p),
            translate(element.out_n),
            translate(element.ctl_p),
            translate(element.ctl_n),
            element.gm,
        )
    if isinstance(element, VCVS):
        return VCVS(
            name,
            translate(element.out_p),
            translate(element.out_n),
            translate(element.ctl_p),
            translate(element.ctl_n),
            element.gain,
        )
    if isinstance(element, BehavioralCurrentSource):
        return BehavioralCurrentSource(
            name,
            translate(element.out_p),
            translate(element.out_n),
            [translate(n) for n in element.control_nodes],
            element.func,
        )
    if isinstance(element, Diode):
        return Diode(name, translate(element.anode), translate(element.cathode),
                     i_s=element.i_s, n=element.n, vt=element.vt)
    if isinstance(element, MOSFET):
        return MOSFET(
            name,
            translate(element.drain),
            translate(element.gate),
            translate(element.source),
            element.params,
            element.w,
            l=element.l,
            bulk=translate(element.bulk),
            model=element.model_name,
        )
    raise TypeError(f"cannot clone element of type {type(element).__name__}")
