"""Reduced-order macromodel engine with nonlinear victim feedback.

:class:`ReducedOrderEngine` is the projection-side twin of
:class:`repro.noise.engine.DedicatedNoiseEngine`: it takes the same
:class:`~repro.noise.engine.MacromodelNetwork` (coupled interconnect,
Norton aggressor drivers, holding resistors, table-VCCS victim driver) but
integrates a PRIMA-projected state vector of a few dozen entries instead of
the full node-voltage vector.

The construction projects the network's nodal ``(G, C)`` onto the block
Krylov space seeded by the injection sites (every time-dependent and
nonlinear current source), so the reduced model matches the transfer from
each source to every node up to the chosen moment count.  Nonlinear sources
stay exact: at each Newton iteration the victim node voltage is lifted
through its basis row (``v_k = V[k] @ x``), the table VCCS is evaluated on
it, and its current/derivative are folded back as a rank-one update of the
reduced Jacobian.  The stepping scheme -- fixed-step trapezoidal companion
integration with a factor-once linear fast path -- mirrors the dedicated
engine line for line so the two are differential-testable against each
other.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..circuit.netlist import Circuit
from ..circuit.stamping import LinearSolver
from ..noise.engine import EngineStatistics, MacromodelNetwork
from ..waveform import Waveform
from .prima import DEFAULT_REDUCTION_ORDER, ReducedSystem, prima_reduce_system

__all__ = ["ReducedOrderEngine"]


class ReducedOrderEngine:
    """Trapezoidal integrator on a PRIMA projection of a macromodel network.

    Parameters mirror :class:`~repro.noise.engine.DedicatedNoiseEngine`;
    ``reduction_order`` is the number of block-Arnoldi iterations (matched
    moments per injection site).  Newton damping and convergence use the
    2-norm of the reduced update, which upper-bounds the largest node
    voltage change (the basis is orthonormal), so the criteria are
    conservative relative to the dedicated engine's ``max |dv|``.
    """

    def __init__(
        self,
        network: MacromodelNetwork,
        *,
        reduction_order: int = DEFAULT_REDUCTION_ORDER,
        gmin: float = 1e-9,
        newton_tolerance: float = 1e-7,
        max_newton_iterations: int = 40,
        damping_limit: float = 1.0,
        s0: float = 0.0,
    ):
        self.network = network
        self.gmin = gmin
        self.newton_tolerance = newton_tolerance
        self.max_newton_iterations = max_newton_iterations
        self.damping_limit = damping_limit
        self.statistics = EngineStatistics()

        n = network.num_nodes
        sources = [(node, src) for node, src in network.time_sources if node >= 0]
        nonlinear = [(node, src) for node, src in network.nonlinear_sources if node >= 0]

        # One descriptor input column per distinct injection site.
        input_nodes: List[int] = []
        seen = set()
        for node, _ in sources + nonlinear:
            if node not in seen:
                seen.add(node)
                input_nodes.append(node)
        if not input_nodes:
            raise ValueError(
                f"macromodel network '{network.name}' has no current injection "
                "site to seed the Krylov basis"
            )

        setup_start = time.perf_counter()
        try:
            from scipy import sparse

            G, C = network.build_matrices_sparse()
            G = (G + gmin * sparse.identity(n, format="csc")).tocsc()
        except ImportError:  # pragma: no cover - scipy-less installs
            G, C = network.build_matrices()
            G[np.arange(n), np.arange(n)] += gmin

        B = np.zeros((n, len(input_nodes)))
        for column, node in enumerate(input_nodes):
            B[node, column] = 1.0
        self.reduced: ReducedSystem = prima_reduce_system(
            G, C, B, order=reduction_order, s0=s0
        )
        self.setup_seconds = time.perf_counter() - setup_start
        self.statistics.matrix_factorizations += 1  # the Krylov factorization

        V = self.reduced.projection
        # Per-source reduced injection rows: b_r(t) = sum_j u_j(t) * rows[j].
        self._sources = sources
        self._source_rows = (
            np.stack([V[node] for node, _ in sources]) if sources else np.zeros((0, V.shape[1]))
        )
        self._nonlinear = [(node, V[node], src) for node, src in nonlinear]

    # ------------------------------------------------------------------ helpers

    @property
    def order(self) -> int:
        return self.reduced.order

    @property
    def num_unknowns(self) -> int:
        """Node count of the *unreduced* network."""
        return self.reduced.num_unknowns

    def _reduced_source(self, t: float) -> np.ndarray:
        b = np.zeros(self.reduced.order)
        if self._sources:
            u = np.array([source(t) for _, source in self._sources])
            b = self._source_rows.T @ u
        return b

    # ---------------------------------------------------------------- DC solve

    def dc_solve(self, t: float = 0.0, x0: Optional[np.ndarray] = None) -> np.ndarray:
        """Quiescent reduced state at time ``t`` (Newton on the table VCCS)."""
        Gr = self.reduced.Gr
        x = (
            np.zeros(self.reduced.order)
            if x0 is None
            else np.array(x0, dtype=float, copy=True)
        )
        b = self._reduced_source(t)
        for _ in range(self.max_newton_iterations):
            residual = Gr @ x - b
            jacobian = Gr.copy()
            for _node, row, func in self._nonlinear:
                current, didv = func(t, float(row @ x))
                residual -= current * row
                jacobian -= didv * np.outer(row, row)
            dx = np.linalg.solve(jacobian, -residual)
            step = float(np.linalg.norm(dx)) if dx.size else 0.0
            if step > self.damping_limit:
                dx *= self.damping_limit / step
            x += dx
            self.statistics.newton_iterations += 1
            if step < self.newton_tolerance:
                break
        return x

    # --------------------------------------------------------------- transient

    def simulate(
        self,
        t_stop: float,
        dt: float,
        *,
        v0: Optional[np.ndarray] = None,
        observe: Optional[Sequence[str]] = None,
    ) -> Dict[str, Waveform]:
        """Integrate the reduced macromodel from 0 to ``t_stop``.

        ``v0`` is an optional initial *node-voltage* vector (as for the
        dedicated engine); it is projected onto the basis.  Returns lifted
        waveforms of the observed nodes (all nodes by default).
        """
        if t_stop <= 0 or dt <= 0 or dt > t_stop:
            raise ValueError("invalid t_stop/dt combination")
        start_time = time.perf_counter()

        q = self.reduced.order
        num_steps = int(round(t_stop / dt))
        times = np.linspace(0.0, t_stop, num_steps + 1)

        x0 = None
        if v0 is not None:
            v0 = np.asarray(v0, dtype=float)
            if v0.shape != (self.num_unknowns,):
                raise ValueError(
                    f"v0 has shape {v0.shape}, expected ({self.num_unknowns},)"
                )
            x0 = self.reduced.projection.T @ v0
        x = self.dc_solve(0.0, x0)
        states = np.zeros((len(times), q))
        states[0] = x
        cap_current = np.zeros(q)  # Cr dx/dt, zero in the quiescent state

        Gr, Cr = self.reduced.Gr, self.reduced.Cr
        a_const = Gr + (2.0 / dt) * Cr
        two_c_over_dt = (2.0 / dt) * Cr

        total_newton = 0
        linear_solver = None
        if not self._nonlinear:
            linear_solver = LinearSolver(a_const)
            self.statistics.matrix_factorizations += 1
            self.statistics.fast_path_runs += 1

        for step in range(1, len(times)):
            t = float(times[step])
            rhs_const = two_c_over_dt @ x + cap_current + self._reduced_source(t)
            if linear_solver is not None:
                x_new = linear_solver.solve(rhs_const)
                if step > 1:
                    self.statistics.lu_reuse_hits += 1
            else:
                x_new = x.copy()
                for _ in range(self.max_newton_iterations):
                    residual = a_const @ x_new - rhs_const
                    jacobian = a_const.copy()
                    self.statistics.assemblies_avoided += 1
                    for _node, row, func in self._nonlinear:
                        current, didv = func(t, float(row @ x_new))
                        residual -= current * row
                        jacobian -= didv * np.outer(row, row)
                    dx = np.linalg.solve(jacobian, -residual)
                    step_norm = float(np.linalg.norm(dx)) if dx.size else 0.0
                    if step_norm > self.damping_limit:
                        dx *= self.damping_limit / step_norm
                    x_new += dx
                    total_newton += 1
                    if step_norm < self.newton_tolerance:
                        break
            cap_current = two_c_over_dt @ (x_new - x) - cap_current
            x = x_new
            states[step] = x

        self.statistics.num_time_points += len(times) - 1
        self.statistics.newton_iterations += total_newton
        self.statistics.runtime_seconds += time.perf_counter() - start_time

        names = self.network.node_names
        observe_set = (
            set(Circuit.canonical_node_name(o) for o in observe) if observe else None
        )
        V = self.reduced.projection
        waveforms: Dict[str, Waveform] = {}
        for index, name in enumerate(names):
            if observe_set is not None and name not in observe_set:
                continue
            waveforms[name] = Waveform(times, states @ V[index])
        return waveforms
