"""Block-Arnoldi / PRIMA congruence projection -- the reduction core.

Every reduction path in this package (circuit-level descriptor systems,
macromodel networks, port-driven multiports) funnels through the same two
functions:

* :func:`prima_project` -- build an orthonormal Krylov basis ``V`` of the
  moment space of ``(G + s0 C)^{-1} C`` seeded with ``(G + s0 C)^{-1} B``;
* :func:`prima_reduce_system` -- congruence-project ``(G, C, B)`` onto that
  basis: ``Gr = V' G V``, ``Cr = V' C V``, ``Br = V' B``.

For ``q`` block iterations the reduced transfer function to *any* state
(not just the inputs) matches the first ``q`` Taylor moments of the full
system about ``s0``, because the moment vectors of the state response are
exactly the Krylov vectors kept in ``V``.  When ``G`` and ``C`` are the
symmetric positive semi-definite matrices of an RC network, congruence
additionally preserves passivity -- :func:`check_reduced_system` verifies
both properties numerically and reports the reduced pole spectrum.

``G`` and ``C`` may be dense ndarrays or scipy.sparse matrices; the shifted
matrix is factorised exactly once (``splu`` / ``lu_factor``), so the cost of
a reduction is one sparse factorisation plus ``q`` block back-substitutions
-- far below a single transient run of the unreduced system.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from ..circuit.stamping import SingularMatrixError

__all__ = [
    "DEFAULT_REDUCTION_ORDER",
    "REDUCTION_AUTO_THRESHOLD",
    "ReducedSystem",
    "StabilityReport",
    "check_reduced_system",
    "default_shift",
    "prima_project",
    "prima_reduce_system",
]

#: Default number of block-Arnoldi iterations (matched moments per input).
#: On the synthetic ladder/mesh/tree workloads of
#: ``benchmarks/bench_reduction.py`` this order keeps the relative
#: noise-metric error below 1e-3 while collapsing thousands of RC nodes
#: into a few dozen states.
DEFAULT_REDUCTION_ORDER = 12

#: Cluster size (nodes) at which the reduced analysis path starts
#: projecting.  Below it the dedicated engine solves the macromodel
#: directly -- for paper-sized clusters (tens of nodes) a dense factor-once
#: transient is already cheaper than building a Krylov basis.  Mirrors the
#: role of :data:`repro.circuit.stamping.SPARSE_AUTO_THRESHOLD`.
REDUCTION_AUTO_THRESHOLD = 200

try:
    from scipy import sparse as _sparse
    from scipy.sparse.linalg import splu as _splu

    _HAVE_SCIPY_SPARSE = True
except ImportError:  # pragma: no cover - exercised only on scipy-less installs
    _sparse = _splu = None
    _HAVE_SCIPY_SPARSE = False

try:
    from scipy.linalg import lu_factor as _lu_factor, lu_solve as _lu_solve

    _HAVE_SCIPY_LU = True
except ImportError:  # pragma: no cover - exercised only on scipy-less installs
    _lu_factor = _lu_solve = None
    _HAVE_SCIPY_LU = False

#: Columns whose norm falls below this fraction of the block's largest
#: column norm are deflated (they add no new Krylov direction).
_DEFLATION_TOL = 1e-12


@dataclass
class ReducedSystem:
    """A congruence-projected descriptor system ``Gr x + Cr dx/dt = Br u``.

    ``projection`` is the orthonormal ``(n, q)`` basis; row ``i`` maps the
    reduced state back to unknown ``i`` of the original system, so any node
    voltage is recovered as ``projection[i] @ x_reduced``.
    """

    Gr: np.ndarray
    Cr: np.ndarray
    Br: np.ndarray
    projection: np.ndarray
    s0: float

    @property
    def order(self) -> int:
        """Number of reduced states ``q``."""
        return self.Gr.shape[0]

    @property
    def num_unknowns(self) -> int:
        """Size ``n`` of the original system."""
        return self.projection.shape[0]

    @property
    def num_inputs(self) -> int:
        return self.Br.shape[1]

    def output_rows(self, indices) -> np.ndarray:
        """Projection rows of the given original-unknown indices."""
        return self.projection[np.asarray(indices, dtype=int), :]


@dataclass
class StabilityReport:
    """Numerical passivity/stability diagnostics of a reduced system.

    ``passive`` checks the PRIMA positive-real condition: the symmetric
    parts of ``Gr`` and ``Cr`` must be positive semi-definite.  Congruence
    guarantees it whenever the original matrices satisfy it -- symmetric RC
    matrices, but also the skew-bordered ``[[G, E], [-E', 0]]`` MNA form
    produced by :func:`repro.reduction.circuit.reduce_circuit`.  Poles are
    the finite generalized eigenvalues of ``(-Gr, Cr)``; a stable reduced
    model keeps them in the left half plane.
    """

    symmetric: bool  #: were the reduced matrices (numerically) symmetric?
    g_min_eigenvalue: float
    c_min_eigenvalue: float
    max_pole_real_part: float
    num_finite_poles: int
    passive: bool
    stable: bool

    def summary(self) -> str:
        return (
            f"order-{self.num_finite_poles} reduced model: "
            f"passive={self.passive} (min eig G={self.g_min_eigenvalue:.2e}, "
            f"C={self.c_min_eigenvalue:.2e}), stable={self.stable} "
            f"(max Re(pole)={self.max_pole_real_part:.3e} rad/s)"
        )


def _is_sparse(matrix) -> bool:
    return _HAVE_SCIPY_SPARSE and _sparse.issparse(matrix)


def _factorize(shifted) -> Callable[[np.ndarray], np.ndarray]:
    """Factor the shifted matrix once; return a dense-block solver."""
    if _is_sparse(shifted):
        try:
            lu = _splu(shifted.tocsc())
        except (RuntimeError, ValueError) as exc:
            raise SingularMatrixError(str(exc)) from exc
        return lu.solve
    dense = np.asarray(shifted, dtype=float)
    try:
        if _HAVE_SCIPY_LU:
            import warnings

            with warnings.catch_warnings():
                # lu_factor only *warns* on an exactly singular matrix; the
                # zero-pivot check below turns that into the error the
                # shifted-expansion fallback needs.
                warnings.simplefilter("ignore")
                lu = _lu_factor(dense)
            pivots = np.abs(np.diag(lu[0]))
            if not np.all(np.isfinite(lu[0])) or (pivots.size and pivots.min() == 0.0):
                raise SingularMatrixError("zero pivot in LU factorization")
            return lambda block: _lu_solve(lu, block)
        inverse = np.linalg.inv(dense)
    except (np.linalg.LinAlgError, ValueError) as exc:
        raise SingularMatrixError(str(exc)) from exc
    return lambda block: inverse @ block


def default_shift(G, C) -> float:
    """A representative ``1/tau`` when the unshifted ``G`` is singular.

    The trace ratio of ``G`` and ``C`` estimates the segment-scale corner
    frequency of the network; it only has to land within a few orders of
    magnitude to make ``G + s0 C`` invertible and well scaled.  Shared by
    the Krylov projection and the reduced transient's DC-initialisation
    fallback (:mod:`repro.reduction.circuit`), so every shifted-expansion
    retry in the reduction stack picks the same expansion point.
    """
    trace_g = float(np.abs(G.diagonal()).sum())
    trace_c = float(np.abs(C.diagonal()).sum())
    if trace_c <= 0.0:
        return 0.0
    return max(trace_g, 1e-30) / trace_c


#: Backwards-compatible private alias (pre-export name).
_default_shift = default_shift


def prima_project(
    G,
    C,
    B: np.ndarray,
    *,
    order: int,
    s0: float = 0.0,
) -> np.ndarray:
    """Orthonormal block-Krylov basis ``V`` of ``span{A^k R}, k < order``.

    ``A = (G + s0 C)^{-1} C`` and ``R = (G + s0 C)^{-1} B``.  Deflation
    drops linearly dependent columns, and the iteration stops early once
    the basis spans the full space, so ``order`` larger than necessary
    yields an exact (square orthonormal) projection.
    """
    if order < 1:
        raise ValueError(f"reduction order must be at least 1, got {order}")
    B = np.atleast_2d(np.asarray(B, dtype=float))
    n = B.shape[0]
    if B.size == 0 or not np.any(B):
        raise ValueError("the input matrix B has no nonzero column")

    def _seed(solve) -> np.ndarray:
        r = np.atleast_2d(solve(B))
        if r.shape != B.shape:  # splu.solve flattens single-column blocks
            r = r.reshape(B.shape)
        if not np.all(np.isfinite(r)):
            raise SingularMatrixError("non-finite Krylov seed block")
        return r

    shifted = G + s0 * C if s0 != 0.0 else G
    try:
        solve = _factorize(shifted)
        r = _seed(solve)
    except SingularMatrixError:
        if s0 != 0.0:
            raise
        # G alone is singular (e.g. a floating net): retry about a
        # representative corner frequency instead of DC.
        s0 = default_shift(G, C)
        solve = _factorize(G + s0 * C)
        r = _seed(solve)

    blocks: List[np.ndarray] = []
    total = 0
    for _ in range(order):
        # Normalise the incoming columns first: each application of
        # ``(G + s0 C)^{-1} C`` scales norms by roughly the network time
        # constant (femtoseconds * ohms), and the deflation test below must
        # measure *direction* loss, not that absolute scale.
        pre_norms = np.linalg.norm(r, axis=0)
        alive = pre_norms > 0.0
        if not np.any(alive):
            break
        r = r[:, alive] / pre_norms[alive]
        # Orthogonalise against everything kept so far (two MGS passes for
        # numerical hygiene), then against the block's own columns via QR.
        for _pass in range(2):
            for previous in blocks:
                r = r - previous @ (previous.T @ r)
        # A unit column whose orthogonal remainder is negligible was already
        # in the span -- deflate it.
        norms = np.linalg.norm(r, axis=0)
        keep = norms > _DEFLATION_TOL
        if not np.any(keep):
            break
        q_block, rfac = np.linalg.qr(r[:, keep])
        # QR can still return near-null columns when the kept columns are
        # mutually dependent; drop them by the diagonal of R.
        diag = np.abs(np.diag(rfac))
        solid = diag > _DEFLATION_TOL * max(diag.max(), 1.0)
        q_block = q_block[:, solid]
        if q_block.shape[1] == 0:
            break
        blocks.append(q_block)
        total += q_block.shape[1]
        if total >= n:
            break
        r = np.atleast_2d(solve(C @ q_block))
        if r.ndim == 1 or r.shape[0] != n:
            r = r.reshape(n, -1)

    if not blocks:  # pragma: no cover - only on a fully degenerate system
        raise SingularMatrixError("Krylov iteration produced no basis vectors")
    V = np.hstack(blocks)
    # A final orthonormalisation pass; trims the basis to at most n columns.
    V, _ = np.linalg.qr(V)
    return V[:, :n]


def prima_reduce_system(
    G,
    C,
    B: np.ndarray,
    *,
    order: int = DEFAULT_REDUCTION_ORDER,
    s0: float = 0.0,
    projection: Optional[np.ndarray] = None,
) -> ReducedSystem:
    """Congruence-project ``(G, C, B)`` onto its PRIMA basis."""
    V = (
        projection
        if projection is not None
        else prima_project(G, C, B, order=order, s0=s0)
    )
    GV = G @ V
    CV = C @ V
    return ReducedSystem(
        Gr=np.asarray(V.T @ GV),
        Cr=np.asarray(V.T @ CV),
        Br=np.asarray(V.T @ np.asarray(B, dtype=float)),
        projection=V,
        s0=s0,
    )


def check_reduced_system(
    reduced: ReducedSystem, *, symmetric: Optional[bool] = None, tol: float = 1e-9
) -> StabilityReport:
    """Numerical passivity/stability diagnostics of a reduced system.

    ``symmetric`` should state whether the original ``(G, C)`` were
    symmetric (congruence guarantees passivity only then); when omitted it
    is inferred from the reduced matrices.
    """
    Gr, Cr = reduced.Gr, reduced.Cr
    if symmetric is None:
        scale_g = max(float(np.abs(Gr).max()), 1e-30)
        scale_c = max(float(np.abs(Cr).max()), 1e-30)
        symmetric = bool(
            np.allclose(Gr, Gr.T, atol=1e-9 * scale_g)
            and np.allclose(Cr, Cr.T, atol=1e-9 * scale_c)
        )
    g_eigs = np.linalg.eigvalsh((Gr + Gr.T) / 2.0)
    c_eigs = np.linalg.eigvalsh((Cr + Cr.T) / 2.0)
    g_min = float(g_eigs.min()) if g_eigs.size else 0.0
    c_min = float(c_eigs.min()) if c_eigs.size else 0.0
    g_tol = tol * max(float(g_eigs.max()), 1.0) if g_eigs.size else tol
    c_tol = tol * max(float(c_eigs.max()), 1.0) if c_eigs.size else tol
    passive = g_min >= -g_tol and c_min >= -c_tol

    # Poles: finite generalized eigenvalues of lambda Cr x = -Gr x.
    from scipy.linalg import eig as _geig

    alphas, betas = _geig(-Gr, Cr, right=False, homogeneous_eigvals=True)
    alphas = np.asarray(alphas).ravel()
    betas = np.asarray(betas).ravel()
    finite = np.abs(betas) > 1e-12 * max(float(np.abs(betas).max()), 1.0)
    poles = alphas[finite] / betas[finite]
    max_real = float(poles.real.max()) if poles.size else -np.inf
    pole_scale = float(np.abs(poles).max()) if poles.size else 1.0
    stable = max_real <= tol * max(pole_scale, 1.0)
    return StabilityReport(
        symmetric=symmetric,
        g_min_eigenvalue=g_min,
        c_min_eigenvalue=c_min,
        max_pole_real_part=max_real,
        num_finite_poles=int(poles.size),
        passive=passive,
        stable=stable,
    )
