"""Port-driven PRIMA multiports for coupled RC wiring networks.

This is the network-level front end of the reduction core: a
:class:`~repro.interconnect.rcnetwork.CoupledRCNetwork` with driving-point
ports is written in the port-voltage-driven bordered MNA form

    A0 x + A1 dx/dt = P e(t),     i(t) = P' x

with ``x = [node voltages; port currents]``, ``e`` the port voltages and
``i`` the port currents (the same formulation as
:mod:`repro.interconnect.moments`), and congruence-projected with
:func:`~repro.reduction.prima.prima_project`.  The reduced model is kept as
a descriptor multiport that can be queried for admittance moments and
frequency response -- the "network reduction for crosstalk analysis"
substrate cited by the paper ([5], [8]).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..interconnect.rcnetwork import CoupledRCNetwork
from .prima import prima_project

__all__ = ["ReducedMultiport", "prima_reduce"]


@dataclass
class ReducedMultiport:
    """A reduced port-voltage-driven descriptor multiport."""

    a0: np.ndarray
    a1: np.ndarray
    p: np.ndarray
    ports: List[str]
    s0: float
    projection: np.ndarray

    @property
    def order(self) -> int:
        return self.a0.shape[0]

    @property
    def num_ports(self) -> int:
        return self.p.shape[1]

    def admittance(self, s: complex) -> np.ndarray:
        """Port admittance matrix ``Y(s)`` of the reduced model."""
        solve = np.linalg.solve(self.a0 + s * self.a1, self.p)
        return self.p.T @ solve

    def admittance_moments(self, num_moments: int = 4) -> List[np.ndarray]:
        """Taylor moments of ``Y(s)`` about ``s = 0``."""
        moments = []
        lu = np.linalg.inv(self.a0)
        x = lu @ self.p
        moments.append(self.p.T @ x)
        for _ in range(1, num_moments):
            x = -lu @ (self.a1 @ x)
            moments.append(self.p.T @ x)
        return moments


def _bordered(network: CoupledRCNetwork) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    G, C, _nodes = network.matrices()
    B = network.port_incidence()
    n = G.shape[0]
    p = B.shape[1]
    A0 = np.zeros((n + p, n + p))
    A1 = np.zeros((n + p, n + p))
    P = np.zeros((n + p, p))
    A0[:n, :n] = G
    A0[:n, n:] = -B
    A0[n:, :n] = B.T
    A1[:n, :n] = C
    P[n:, :] = np.eye(p)
    return A0, A1, P


def prima_reduce(
    network: CoupledRCNetwork,
    num_block_iterations: int = 3,
    s0: Optional[float] = None,
) -> ReducedMultiport:
    """Reduce a coupled RC network to a PRIMA-style multiport.

    Parameters
    ----------
    network:
        The wiring network with its driving-point ports.
    num_block_iterations:
        Number of block Arnoldi iterations ``q``; the reduced order is at
        most ``q * num_ports``.
    s0:
        Expansion point in rad/s.  Defaults to the reciprocal of the largest
        port RC time constant estimate, which keeps the shifted matrix well
        conditioned for floating RC nets.
    """
    A0, A1, P = _bordered(network)

    if s0 is None:
        # Rough time-constant estimate: total resistance * total capacitance.
        total_r = sum(e.value for e in network.elements if e.kind == "R")
        total_c = sum(e.value for e in network.elements if e.kind == "C")
        tau = max(total_r * total_c, 1e-15)
        s0 = 1.0 / tau

    V = prima_project(A0, A1, P, order=num_block_iterations, s0=s0)
    return ReducedMultiport(
        a0=V.T @ A0 @ V,
        a1=V.T @ A1 @ V,
        p=V.T @ P,
        ports=network.port_nodes(),
        s0=s0,
        projection=V,
    )
