"""Model-order reduction as a first-class analysis path.

PRIMA/Krylov macromodels for large RC interconnect clusters: a block-Arnoldi
congruence projector (:mod:`~repro.reduction.prima`), a reduced transient
path for linear circuits (:mod:`~repro.reduction.circuit`), a reduced-order
macromodel engine with nonlinear victim feedback
(:mod:`~repro.reduction.engine`), the ``method="reduced"`` noise analysis
(:mod:`~repro.reduction.analysis`) and the port-driven multiport front end
(:mod:`~repro.reduction.multiport`).
"""

from .prima import (
    DEFAULT_REDUCTION_ORDER,
    REDUCTION_AUTO_THRESHOLD,
    ReducedSystem,
    StabilityReport,
    check_reduced_system,
    default_shift,
    prima_project,
    prima_reduce_system,
)
from .circuit import (
    ReducedLinearCircuit,
    ReducedTransientResult,
    ReductionStats,
    reduce_circuit,
)
from .engine import ReducedOrderEngine
from .analysis import ReducedClusterAnalysis
from .multiport import ReducedMultiport, prima_reduce

__all__ = [
    "ReducedOrderEngine",
    "ReducedClusterAnalysis",
    "DEFAULT_REDUCTION_ORDER",
    "REDUCTION_AUTO_THRESHOLD",
    "ReducedSystem",
    "StabilityReport",
    "check_reduced_system",
    "default_shift",
    "prima_project",
    "prima_reduce_system",
    "ReducedLinearCircuit",
    "ReducedTransientResult",
    "ReductionStats",
    "reduce_circuit",
    "ReducedMultiport",
    "prima_reduce",
]
