"""Reduced-order transient analysis of linear RC circuits.

:func:`reduce_circuit` exports a :class:`~repro.circuit.Circuit`'s compiled
kernel as a sparse descriptor system ``G x + C dx/dt = B u(t)`` (one column
of ``B`` per independent source), PRIMA-projects it, and wraps the result in
a :class:`ReducedLinearCircuit` whose :meth:`~ReducedLinearCircuit.transient`
mirrors the full simulator's linear fast path: the same quantized-``dt``
trapezoidal companion stepping, the same breakpoint-merged time axis (via
:func:`repro.circuit.build_time_axis`), and a DC initial condition.  With
``order`` at least the number of unknowns the projection is square and the
reduced run reproduces ``transient(solver="fast")`` to solver precision;
at paper-default orders it collapses thousand-node interconnect clusters
into a few dozen states.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..circuit.netlist import Circuit
from ..circuit.elements import GROUND
from ..circuit.stamping import LinearSolver
from ..circuit.transient import build_time_axis, _quantize_dt
from .prima import (
    DEFAULT_REDUCTION_ORDER,
    ReducedSystem,
    default_shift,
    prima_reduce_system,
)


def _sparse_diag(values: np.ndarray):
    from scipy import sparse

    return sparse.diags(values).tocsc()

__all__ = [
    "ReducedLinearCircuit",
    "ReducedTransientResult",
    "ReductionStats",
    "reduce_circuit",
]


@dataclass
class ReductionStats:
    """Bookkeeping of one reduced-order transient run."""

    order: int = 0
    num_unknowns: int = 0
    num_inputs: int = 0
    setup_seconds: float = 0.0
    runtime_seconds: float = 0.0
    num_time_points: int = 0
    matrix_factorizations: int = 0
    lu_reuse_hits: int = 0
    #: Numerical fallbacks taken during the run (e.g. the shifted-expansion
    #: DC initialisation when ``Gr`` alone is singular).
    recoveries: List[str] = field(default_factory=list)


@dataclass
class ReducedTransientResult:
    """Reduced states over time plus the basis to lift them back to nodes."""

    circuit: Circuit
    times: np.ndarray
    states: np.ndarray  # (num_times, order)
    projection: np.ndarray  # (num_unknowns, order)
    stats: ReductionStats
    _cache: Dict[str, np.ndarray] = field(default_factory=dict, repr=False)

    def node_voltage(self, name: str) -> np.ndarray:
        """Waveform of one node, lifted through the projection basis."""
        cached = self._cache.get(name)
        if cached is not None:
            return cached
        index = self.circuit.node_index(name)
        if index == GROUND:
            waveform = np.zeros(len(self.times))
        else:
            waveform = self.states @ self.projection[index]
        self._cache[name] = waveform
        return waveform

    def voltages(self, names: Sequence[str]) -> Dict[str, np.ndarray]:
        return {name: self.node_voltage(name) for name in names}


class ReducedLinearCircuit:
    """A PRIMA macromodel of one linear RC circuit, ready to simulate.

    Holds the congruence-projected ``(Gr, Cr, Br)`` plus the per-source
    evaluation hooks needed to rebuild ``u(t)`` at every step, so a
    transient run never touches the original ``n``-sized matrices.
    """

    def __init__(
        self,
        circuit: Circuit,
        reduced: ReducedSystem,
        *,
        setup_seconds: float = 0.0,
    ):
        self.circuit = circuit
        self.reduced = reduced
        self.setup_seconds = setup_seconds
        self._descriptor = None  # set by reduce_circuit

    @property
    def order(self) -> int:
        return self.reduced.order

    @property
    def num_unknowns(self) -> int:
        return self.reduced.num_unknowns

    def transient(
        self,
        t_stop: float,
        dt: float,
        *,
        include_breakpoints: bool = True,
    ) -> ReducedTransientResult:
        """Trapezoidal transient of the reduced model.

        Mirrors the full fast path step for step: quantized per-step ``dt``,
        one ``order x order`` LU per unique ``dt``, and a DC solve for the
        initial state.  The companion-current trapezoidal update is folded
        into a precomputed two-term recurrence -- substituting the KCL
        identity ``i_{k-1} = Br u_{k-1} - Gr x_{k-1}`` into the companion
        step gives

            (Gr + 2/dt Cr) x_k = Br (u_k + u_{k-1}) + (2/dt Cr - Gr) x_{k-1}

        so each step is one ``order x order`` mat-vec against a precomputed
        transition matrix instead of assembling and solving a fresh
        right-hand side.
        """
        descriptor = self._descriptor
        if descriptor is None:  # pragma: no cover - defensive
            raise RuntimeError("ReducedLinearCircuit was not built by reduce_circuit")
        start = _time.perf_counter()
        reduced = self.reduced
        Gr, Cr, Br = reduced.Gr, reduced.Cr, reduced.Br

        times = build_time_axis(
            self.circuit, t_stop, dt, include_breakpoints=include_breakpoints
        )
        num_steps = len(times) - 1

        # DC initial condition in reduced coordinates: Gr x = Br u_dc.
        # (With it, the capacitor companion current starts at exactly zero,
        # which the two-term recurrence relies on for its induction base.)
        u_dc = descriptor.input_vector(0.0, dt=None)
        recoveries: List[str] = []
        try:
            x_hat = np.linalg.solve(Gr, Br @ u_dc)
            if not np.all(np.isfinite(x_hat)):
                raise np.linalg.LinAlgError("non-finite reduced DC solution")
        except np.linalg.LinAlgError:
            # The PRIMA shift fallback, generalized to the transient path:
            # a floating reduced net leaves Gr singular at DC, but the
            # shifted pencil about the network's corner frequency is
            # invertible and its solution limits to the right quasi-static
            # initial state as the shift stays far below 1/dt.
            s_dc = default_shift(Gr, Cr)
            x_hat = np.linalg.solve(Gr + s_dc * Cr, Br @ u_dc)
            recoveries.append(f"dc-init: shifted expansion at s0={s_dc:.3e}")

        # Source values at every step (same dt-aware evaluation the full
        # simulator uses), then the per-step drive term in reduced coords.
        step_dts = [
            _quantize_dt(float(times[k + 1] - times[k])) for k in range(num_steps)
        ]
        inputs = np.empty((len(times), reduced.num_inputs))
        inputs[0] = u_dc
        for k in range(num_steps):
            inputs[k + 1] = descriptor.input_vector(
                float(times[k + 1]), dt=step_dts[k]
            )

        # One LU per unique dt: transition matrix M = S^{-1}(2/dt Cr - Gr)
        # and the batched drive rows S^{-1} Br (u_k + u_{k-1}).
        groups: Dict[float, List[int]] = {}
        for k, step_dt in enumerate(step_dts):
            groups.setdefault(step_dt, []).append(k + 1)
        transition: Dict[float, np.ndarray] = {}
        drive = np.empty((len(times), reduced.order))
        for step_dt, step_indices in groups.items():
            solver = LinearSolver(Gr + (2.0 / step_dt) * Cr)
            transition[step_dt] = solver.solve((2.0 / step_dt) * Cr - Gr)
            forced = solver.solve(Br)
            indices = np.asarray(step_indices)
            drive[indices] = (inputs[indices] + inputs[indices - 1]) @ forced.T

        states = np.zeros((len(times), reduced.order))
        states[0] = x_hat
        for k in range(num_steps):
            x_hat = transition[step_dts[k]] @ x_hat + drive[k + 1]
            states[k + 1] = x_hat
        factorizations = len(groups) if num_steps else 0
        reuse_hits = num_steps - factorizations if num_steps else 0

        stats = ReductionStats(
            order=reduced.order,
            num_unknowns=reduced.num_unknowns,
            num_inputs=reduced.num_inputs,
            setup_seconds=self.setup_seconds,
            runtime_seconds=_time.perf_counter() - start,
            num_time_points=len(times) - 1,
            matrix_factorizations=factorizations,
            lu_reuse_hits=reuse_hits,
            recoveries=recoveries,
        )
        return ReducedTransientResult(
            circuit=self.circuit,
            times=times,
            states=states,
            projection=reduced.projection,
            stats=stats,
        )


def reduce_circuit(
    circuit: Circuit,
    *,
    order: int = DEFAULT_REDUCTION_ORDER,
    s0: float = 0.0,
    keep_nodes: Optional[List[str]] = None,
) -> ReducedLinearCircuit:
    """PRIMA-reduce a linear RC circuit into a :class:`ReducedLinearCircuit`.

    ``keep_nodes`` is accepted for interface symmetry with observation-aware
    reducers; the congruence basis already preserves the transfer to every
    node up to the matched moment count, so it only validates the names.
    """
    circuit.prepare()
    for name in keep_nodes or []:
        circuit.node_index(name)  # raises KeyError on unknown nodes
    start = _time.perf_counter()
    descriptor = circuit.kernel.descriptor_system(gmin=circuit.gmin)

    # PRIMA passivity form: negate the voltage-source branch rows so the
    # symmetric part of G becomes positive semi-definite
    # (``[[G, E], [-E', 0]]``).  The equations are merely rescaled by -1, so
    # the descriptor solutions -- and the congruence-projected transfer --
    # are unchanged, but low-order reduced models stay stable.
    num_branches = descriptor.num_unknowns - descriptor.num_nodes
    G, B = descriptor.G, descriptor.B
    if num_branches:
        signs = np.ones(descriptor.num_unknowns)
        signs[descriptor.num_nodes :] = -1.0
        G = _sparse_diag(signs) @ G
        B = signs[:, None] * B

    reduced = prima_reduce_system(G, descriptor.C, B, order=order, s0=s0)
    macromodel = ReducedLinearCircuit(
        circuit, reduced, setup_seconds=_time.perf_counter() - start
    )
    macromodel._descriptor = descriptor
    return macromodel
