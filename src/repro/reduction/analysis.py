"""The ``method="reduced"`` noise analysis: PRIMA macromodels end to end.

Large noise clusters keep their full distributed RC wiring (no coupled-pi
collapse), but the resulting thousand-node macromodel is PRIMA-projected
before simulation: the linear interconnect shrinks to a few dozen reduced
states while the nonlinear victim-driver table VCCS is evaluated exactly
through its basis row (see :mod:`repro.reduction.engine`).  Small clusters
are not worth a Krylov factorisation -- below ``reduction_threshold`` nodes
the analysis hands the unreduced network to the dedicated engine, mirroring
the sparse backend's auto-threshold policy.
"""

from __future__ import annotations

import time
from typing import Optional

from ..characterization.characterizer import LibraryCharacterizer
from ..noise.builder import ClusterModelBuilder
from ..noise.cluster import NoiseClusterSpec
from ..noise.engine import DedicatedNoiseEngine, MacromodelNetwork
from ..noise.results import NoiseAnalysisResult
from ..technology.library import CellLibrary
from .engine import ReducedOrderEngine
from .prima import (
    DEFAULT_REDUCTION_ORDER,
    REDUCTION_AUTO_THRESHOLD,
    check_reduced_system,
)

__all__ = ["ReducedClusterAnalysis"]


class ReducedClusterAnalysis:
    """Noise analysis of full-wiring clusters through PRIMA reduction."""

    method_name = "reduced"

    def __init__(
        self,
        library: CellLibrary,
        *,
        characterizer: Optional[LibraryCharacterizer] = None,
        vccs_grid: int = 17,
        solver_backend: str = "auto",
        reduction_order: int = DEFAULT_REDUCTION_ORDER,
        reduction_threshold: Optional[int] = None,
    ):
        """
        Parameters
        ----------
        library / characterizer / vccs_grid:
            As for :class:`~repro.noise.macromodel.MacromodelAnalysis`.
        solver_backend:
            Backend handed to the dedicated engine when a cluster falls
            below the reduction threshold (the reduced path itself works on
            dense order-sized matrices).
        reduction_order:
            Block-Arnoldi iterations; the reduced state count is at most
            ``reduction_order`` times the number of injection sites.
        reduction_threshold:
            Macromodel node count at which projection starts to pay for
            itself; ``None`` selects :data:`REDUCTION_AUTO_THRESHOLD`, and
            ``0`` forces reduction for every cluster (used by the
            differential test-suite).
        """
        self.library = library
        self.characterizer = characterizer or LibraryCharacterizer(
            library, vccs_grid=vccs_grid
        )
        self.vccs_grid = vccs_grid
        self.solver_backend = solver_backend
        self.reduction_order = reduction_order
        self.reduction_threshold = (
            REDUCTION_AUTO_THRESHOLD if reduction_threshold is None else reduction_threshold
        )

    # ------------------------------------------------------------------ build

    def build_network(self, builder: ClusterModelBuilder) -> MacromodelNetwork:
        """Assemble the full-wiring macromodel network for a cluster."""
        spec = builder.spec
        wiring = builder.wiring_network("full")
        network = MacromodelNetwork(f"{spec.name}_reduced")
        network.import_rc_network(wiring)
        for aggressor in spec.aggressors:
            thevenin = builder.aggressor_thevenin(aggressor)
            network.add_thevenin_driver(
                wiring.driver_nodes[aggressor.net],
                thevenin,
                extra_delay=aggressor.switch_time,
            )
        vccs = builder.victim_vccs()
        victim_node = wiring.driver_nodes[spec.victim.net]
        network.add_nonlinear_source(victim_node, vccs.current)
        return network

    # ---------------------------------------------------------------- analyse

    def analyze(
        self,
        spec: NoiseClusterSpec,
        *,
        dt: Optional[float] = None,
        t_stop: Optional[float] = None,
        builder: Optional[ClusterModelBuilder] = None,
    ) -> NoiseAnalysisResult:
        """Run the reduced-order analysis of one noise cluster.

        As in the macromodel analysis, the reported runtime covers only the
        model evaluation -- including the Krylov projection, which is paid
        per cluster -- and not the shared library characterisation.
        """
        builder = builder or ClusterModelBuilder(
            self.library, spec, characterizer=self.characterizer, vccs_grid=self.vccs_grid
        )
        builder.victim_surface()
        for aggressor in spec.aggressors:
            builder.aggressor_thevenin(aggressor)
        wiring = builder.wiring_network("full")
        network = self.build_network(builder)

        default_t_stop, default_dt = builder.simulation_window(dt)
        t_stop = t_stop if t_stop is not None else default_t_stop
        dt = dt if dt is not None else default_dt

        victim_node = wiring.driver_nodes[spec.victim.net]
        receiver_node = wiring.receiver_nodes[spec.victim.net]
        observe = [victim_node, receiver_node] + [
            wiring.driver_nodes[a.net] for a in spec.aggressors
        ]

        reduce = network.num_nodes >= self.reduction_threshold
        stability = None
        start = time.perf_counter()
        if reduce:
            engine = ReducedOrderEngine(network, reduction_order=self.reduction_order)
            # Passivity/stability diagnostics of the projected model; the
            # degradation ladder screens on this (an unstable reduced model
            # triggers the sparse-direct fallback) and reports surface it.
            stability = check_reduced_system(engine.reduced)
            waveforms = engine.simulate(t_stop, dt, observe=observe)
            order = engine.order
            backend = "reduced"
        else:
            engine = DedicatedNoiseEngine(network, solver_backend=self.solver_backend)
            waveforms = engine.simulate(t_stop, dt, observe=observe)
            order = network.num_nodes
            backend = engine.resolved_backend
        runtime = time.perf_counter() - start

        victim_waveform = waveforms[victim_node]
        metrics = victim_waveform.glitch_metrics(baseline=builder.victim_quiet_level())

        label = f"order={order}" if reduce else "direct"
        return NoiseAnalysisResult(
            method=f"{self.method_name}({label})",
            victim_waveform=victim_waveform,
            metrics=metrics,
            runtime_seconds=runtime,
            waveforms={
                "victim_driving_point": victim_waveform,
                "victim_receiver": waveforms.get(receiver_node, victim_waveform),
                **{
                    f"aggressor:{a.net}": waveforms[wiring.driver_nodes[a.net]]
                    for a in spec.aggressors
                    if wiring.driver_nodes[a.net] in waveforms
                },
            },
            details={
                "engine_statistics": engine.statistics,
                "solver_backend": backend,
                "stability": stability,
                "reduced": reduce,
                "reduction_order": self.reduction_order,
                "num_states": order if reduce else network.num_nodes,
                "num_unknowns": network.num_nodes,
                "dt": dt,
                "t_stop": t_stop,
            },
        )
