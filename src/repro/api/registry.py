"""Pluggable analysis-method registry.

Every noise analysis backend (the golden transistor-level simulation, the
paper's macromodel, the linear-superposition and iterative-Thevenin
baselines, and any future engine) is published here under a short name.  A
backend is registered by decorating a *factory* -- a callable that receives a
:class:`MethodContext` (library, shared characterizer, session configuration)
and returns an object satisfying the :class:`AnalysisMethod` protocol::

    from repro.api import register_method, MethodContext

    @register_method("my_engine", description="My experimental engine")
    def _build(context: MethodContext):
        return MyEngineAnalysis(context.library, characterizer=context.characterizer)

Sessions resolve names through :func:`create_method`, so registered backends
are immediately usable from :class:`~repro.api.session.NoiseAnalysisSession`,
the deprecated facades and every example/benchmark driver without touching
any dispatch code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Protocol, runtime_checkable

if TYPE_CHECKING:  # avoid import cycles: these are annotations only
    from ..characterization.characterizer import LibraryCharacterizer
    from ..circuit.batched import FactorizationCache
    from ..noise.builder import ClusterModelBuilder
    from ..noise.cluster import NoiseClusterSpec
    from ..noise.results import NoiseAnalysisResult
    from ..technology.library import CellLibrary
    from .config import AnalysisConfig

__all__ = [
    "AnalysisMethod",
    "MethodContext",
    "UnknownMethodError",
    "DuplicateMethodError",
    "register_method",
    "unregister_method",
    "list_methods",
    "method_descriptions",
    "create_method",
]


class UnknownMethodError(ValueError):
    """Raised when an analysis-method name is not in the registry."""

    def __init__(self, name: str, available: List[str]):
        self.name = name
        self.available = list(available)
        super().__init__(
            f"unknown analysis method {name!r}; registered methods: {self.available}"
        )


class DuplicateMethodError(ValueError):
    """Raised when a method name is registered twice without ``replace=True``."""

    def __init__(self, name: str):
        self.name = name
        super().__init__(
            f"analysis method {name!r} is already registered; "
            f"pass replace=True to override it"
        )


@runtime_checkable
class AnalysisMethod(Protocol):
    """What a registered analysis backend must provide."""

    #: Name reported in results (may differ from the registry name).
    method_name: str

    def analyze(
        self,
        spec: "NoiseClusterSpec",
        *,
        dt: Optional[float] = None,
        t_stop: Optional[float] = None,
        builder: Optional["ClusterModelBuilder"] = None,
    ) -> "NoiseAnalysisResult":
        """Analyse one noise cluster and return its result."""
        ...


@dataclass(frozen=True)
class MethodContext:
    """Everything a method factory may need to build its backend."""

    library: "CellLibrary"
    characterizer: "LibraryCharacterizer"
    config: "AnalysisConfig"
    #: Session-shared factorization cache (``config.batching == "auto"``);
    #: ``None`` when batching is off or the context predates the session API.
    solver_cache: Optional["FactorizationCache"] = None


#: Factory signature registered under each method name.
MethodFactory = Callable[[MethodContext], AnalysisMethod]


@dataclass(frozen=True)
class _Registration:
    name: str
    factory: MethodFactory
    description: str = ""


_REGISTRY: Dict[str, _Registration] = {}
_builtins_loaded = False


def _ensure_builtins() -> None:
    """Load the built-in method registrations exactly once."""
    global _builtins_loaded
    if not _builtins_loaded:
        _builtins_loaded = True
        from . import methods  # noqa: F401  (importing registers the builtins)


def register_method(
    name: str,
    *,
    description: str = "",
    replace: bool = False,
) -> Callable[[MethodFactory], MethodFactory]:
    """Decorator registering a method factory under ``name``.

    Raises :class:`DuplicateMethodError` if ``name`` is taken and ``replace``
    is ``False``.  Returns the factory unchanged so it stays importable.
    """
    if not name or not isinstance(name, str):
        raise ValueError("method name must be a non-empty string")

    def decorator(factory: MethodFactory) -> MethodFactory:
        # Load the builtins first so an early user registration cannot
        # silently take a builtin name (and blow up later when the builtin
        # registers itself).  No-op while the builtin module itself loads.
        _ensure_builtins()
        if name in _REGISTRY and not replace:
            raise DuplicateMethodError(name)
        doc = description
        if not doc and factory.__doc__:
            doc = factory.__doc__.strip().splitlines()[0]
        _REGISTRY[name] = _Registration(name=name, factory=factory, description=doc)
        return factory

    return decorator


def unregister_method(name: str) -> None:
    """Remove a registered method (mainly for tests and plugin teardown)."""
    _ensure_builtins()
    if name not in _REGISTRY:
        raise UnknownMethodError(name, list(_REGISTRY))
    del _REGISTRY[name]


def list_methods() -> List[str]:
    """Names of all registered analysis methods, in registration order."""
    _ensure_builtins()
    return list(_REGISTRY)


def method_descriptions() -> Dict[str, str]:
    """Mapping of registered method name to its one-line description."""
    _ensure_builtins()
    return {name: registration.description for name, registration in _REGISTRY.items()}


def create_method(name: str, context: MethodContext) -> AnalysisMethod:
    """Instantiate the backend registered under ``name``."""
    _ensure_builtins()
    if name not in _REGISTRY:
        raise UnknownMethodError(name, list(_REGISTRY))
    return _REGISTRY[name].factory(context)
