"""Errors raised by the public API surface."""

from __future__ import annotations

__all__ = ["RemovedAPIError"]


class RemovedAPIError(RuntimeError):
    """A pre-0.3 API was called after its removal.

    The 0.1-era facades (``ClusterNoiseAnalyzer``,
    ``StaticNoiseAnalysisFlow.run``) went through a deprecation cycle in
    0.2 and were retired in 0.3.  This error names the removed entry point
    and the :class:`repro.api.NoiseAnalysisSession` replacement, so a stale
    call site fails with its migration path in hand instead of an
    ``AttributeError``.
    """

    def __init__(self, removed: str, replacement: str, hint: str = ""):
        message = (
            f"{removed} was removed in repro 0.3.0; use {replacement} instead"
        )
        if hint:
            message += f" ({hint})"
        message += ". See the migration table in API.md."
        super().__init__(message)
        self.removed = removed
        self.replacement = replacement
