"""The unified analysis session -- the one front door to every analysis.

:class:`NoiseAnalysisSession` binds a cell library, a shared (cached)
:class:`~repro.characterization.characterizer.LibraryCharacterizer` and a
frozen :class:`~repro.api.config.AnalysisConfig`, and exposes the three
entry points every driver in the repo now goes through:

* :meth:`analyze` -- one noise cluster, any registered methods;
* :meth:`analyze_many` -- a batch of clusters, optionally thread-parallel,
  with the characterisation warmed up front so each distinct cell arc is
  characterised exactly once per session;
* :meth:`run_design` -- cluster extraction over an annotated design plus
  per-cluster analysis and NRC checking (subsumes the old
  ``StaticNoiseAnalysisFlow``).

Analysis backends are resolved by name through the pluggable registry
(:mod:`repro.api.registry`), so new engines plug into every entry point --
and every example/benchmark driver -- by registering a factory.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Tuple

from ..characterization.characterizer import LibraryCharacterizer
from ..characterization.diskcache import PersistentCharacterizationCache
from ..circuit.batched import FactorizationCache
from ..noise.analysis import check_against_nrc
from ..noise.builder import ClusterModelBuilder
from ..noise.cluster import NoiseClusterSpec
from ..noise.results import NoiseAnalysisResult
from ..technology.library import CellLibrary
from .config import AnalysisConfig
from .registry import AnalysisMethod, MethodContext, UnknownMethodError, create_method, list_methods
from .report import ClusterError, ClusterReport, SessionReport

if TYPE_CHECKING:
    from ..sna.design import Design
    from ..sna.extraction import ClusterExtraction, ClusterExtractor, ExtractionConfig

__all__ = ["NoiseAnalysisSession"]


def _chunked(items: Iterable, size: int) -> Iterable[list]:
    """Batch an iterable into lists of ``size`` without materialising it."""
    chunk: list = []
    for item in items:
        chunk.append(item)
        if len(chunk) >= size:
            yield chunk
            chunk = []
    if chunk:
        yield chunk


class NoiseAnalysisSession:
    """Configured, cache-sharing front end to all registered noise analyses."""

    def __init__(
        self,
        library: CellLibrary,
        config: Optional[AnalysisConfig] = None,
        *,
        characterizer: Optional[LibraryCharacterizer] = None,
    ):
        self.library = library
        self.config = config or AnalysisConfig()
        if characterizer is None:
            cache_dir = self.config.resolve_cache_dir()
            disk_cache = (
                PersistentCharacterizationCache(cache_dir) if cache_dir else None
            )
            characterizer = LibraryCharacterizer(
                library, vccs_grid=self.config.vccs_grid, disk_cache=disk_cache
            )
        self.characterizer = characterizer
        #: Session-shared factorization cache (``config.batching == "auto"``):
        #: engines built by this session's methods factorise each distinct
        #: macromodel base matrix once per session -- Monte Carlo samples of
        #: one cluster take cache hits.  Thread-safe, so ``analyze_many``
        #: workers share it directly.
        self.solver_cache: Optional[FactorizationCache] = (
            FactorizationCache() if self.config.batching == "auto" else None
        )
        self._instances: Dict[str, AnalysisMethod] = {}

    # ------------------------------------------------------------- resolution

    def method(self, name: str) -> AnalysisMethod:
        """The (session-cached) backend instance registered under ``name``."""
        if name not in self._instances:
            context = MethodContext(
                library=self.library,
                characterizer=self.characterizer,
                config=self.config,
                solver_cache=self.solver_cache,
            )
            self._instances[name] = create_method(name, context)
        return self._instances[name]

    def _resolve_methods(self, methods: Optional[Sequence[str]]) -> Tuple[str, ...]:
        """Validate the requested method names against the registry up front."""
        names = self.config.methods if methods is None else AnalysisConfig._as_name_tuple(methods)
        if not names:
            raise ValueError("at least one analysis method must be requested")
        registered = list_methods()
        for name in names:
            if name not in registered:
                raise UnknownMethodError(name, registered)
        return names

    def _builder(self, spec: NoiseClusterSpec) -> ClusterModelBuilder:
        return ClusterModelBuilder(
            self.library,
            spec,
            characterizer=self.characterizer,
            vccs_grid=self.config.vccs_grid,
        )

    # ---------------------------------------------------------------- analyse

    def analyze(
        self,
        spec: NoiseClusterSpec,
        *,
        methods: Optional[Sequence[str]] = None,
        dt: Optional[float] = None,
        t_stop: Optional[float] = None,
        check_nrc: Optional[bool] = None,
        label: Optional[str] = None,
    ) -> ClusterReport:
        """Run the configured (or given) methods on one cluster.

        All methods share one :class:`ClusterModelBuilder` -- and through it
        the session characterizer -- so the cluster is characterised once no
        matter how many methods run on it.
        """
        names = self._resolve_methods(methods)
        dt = dt if dt is not None else self.config.dt
        t_stop = t_stop if t_stop is not None else self.config.t_stop
        do_nrc = self.config.check_nrc if check_nrc is None else check_nrc

        builder = self._builder(spec)
        start = time.perf_counter()
        results: Dict[str, NoiseAnalysisResult] = {}
        for name in names:
            try:
                results[name] = self.method(name).analyze(
                    spec, dt=dt, t_stop=t_stop, builder=builder
                )
            except Exception as exc:
                # Tag the failure with the active method so batch error
                # collection can report *where* the cluster died.
                exc._repro_active_method = name  # type: ignore[attr-defined]
                raise

        nrc_checks = {}
        if do_nrc and spec.victim.receiver_cell:
            nrc = self.characterizer.noise_rejection_curve(
                spec.victim.receiver_cell, widths=self.config.nrc_widths
            )
            nrc_checks = {name: check_against_nrc(result, nrc) for name, result in results.items()}

        runtime = time.perf_counter() - start
        return ClusterReport(
            label=label or spec.name,
            spec=spec,
            results=results,
            nrc_checks=nrc_checks,
            runtime_seconds=runtime,
        )

    def analyze_resilient(
        self,
        spec: NoiseClusterSpec,
        *,
        dt: Optional[float] = None,
        t_stop: Optional[float] = None,
        check_nrc: Optional[bool] = None,
        label: Optional[str] = None,
    ) -> ClusterReport:
        """:meth:`analyze` behind the numerical degradation ladder.

        A cluster that dies of a numerical failure (singular factorisation,
        non-convergent Newton) or fails a result screen is retried on
        progressively more conservative configurations
        (``reduced -> sparse -> dense``, see :mod:`repro.resilience`);
        derived rung sessions share this session's characterizer, so
        retries never re-characterise.  The accepted report carries the
        rejected attempts in :attr:`ClusterReport.degradation`.
        """
        from ..resilience import resilient_analyze

        report, _ = resilient_analyze(
            self, spec, label=label, dt=dt, t_stop=t_stop, check_nrc=check_nrc
        )
        return report

    # ------------------------------------------------------------------ batch

    def warm_characterization(
        self,
        specs: Iterable[NoiseClusterSpec],
        *,
        methods: Optional[Sequence[str]] = None,
        check_nrc: Optional[bool] = None,
    ) -> None:
        """Characterise every cell arc the given clusters will need.

        Running this sequentially before a parallel batch guarantees each
        distinct characterisation is computed exactly once (workers then only
        take cache hits) and keeps the expensive work out of the per-cluster
        timings.
        """
        names = self._resolve_methods(methods)
        do_nrc = self.config.check_nrc if check_nrc is None else check_nrc
        needs_propagation = "superposition" in names
        for spec in specs:
            builder = self._builder(spec)
            builder.victim_surface()
            for aggressor in spec.aggressors:
                builder.aggressor_thevenin(aggressor)
            if needs_propagation and spec.victim.input_glitch is not None:
                self.characterizer.propagation_table(
                    spec.victim.driver_cell,
                    builder.victim_arc,
                    load_capacitance=builder.net_total_capacitance(spec.victim.net),
                )
            if do_nrc and spec.victim.receiver_cell:
                self.characterizer.noise_rejection_curve(
                    spec.victim.receiver_cell, widths=self.config.nrc_widths
                )

    def analyze_many(
        self,
        specs: Iterable[NoiseClusterSpec],
        *,
        methods: Optional[Sequence[str]] = None,
        dt: Optional[float] = None,
        t_stop: Optional[float] = None,
        check_nrc: Optional[bool] = None,
        labels: Optional[Sequence[str]] = None,
        max_workers: Optional[int] = None,
        on_error: str = "collect",
    ) -> List[ClusterReport]:
        """Analyse a batch of clusters; results keep the input order.

        With ``max_workers`` (or ``config.max_workers``) greater than one the
        clusters are analysed in a thread pool; the characterisation is
        warmed sequentially first, so workers only read the shared cache.

        ``on_error`` controls what a failing cluster does to the batch:
        ``"collect"`` (the default) turns the failure into a structured
        :class:`~repro.api.report.ClusterError` on that cluster's report --
        every other cluster still completes and keeps its position --
        while ``"raise"`` propagates the first exception and aborts the
        batch.  Request-validation errors (unknown method names, a label
        count mismatch, a bad worker count) always raise: they mean the
        *batch* is malformed, not one cluster.
        """
        specs = list(specs)
        names = self._resolve_methods(methods)
        if on_error not in ("collect", "raise"):
            raise ValueError(
                f"on_error must be 'collect' or 'raise', got {on_error!r}"
            )
        if labels is not None:
            labels = list(labels)
            if len(labels) != len(specs):
                raise ValueError(
                    f"got {len(labels)} labels for {len(specs)} specs"
                )
        workers = self.config.max_workers if max_workers is None else max_workers
        if workers < 1:
            raise ValueError(f"max_workers must be at least 1, got {workers}")

        parallel = workers > 1 and len(specs) > 1
        if parallel:
            # Resolve the backend instances before fanning out (method() has
            # no lock) and characterise everything sequentially so workers
            # only take cache hits.  A cluster whose *characterisation*
            # already fails is skipped here and re-raises inside run_one,
            # where the per-item error handling picks it up.
            for name in names:
                self.method(name)
            for spec in specs:
                try:
                    self.warm_characterization([spec], methods=names, check_nrc=check_nrc)
                except Exception:
                    if on_error == "raise":
                        raise

        def run_one(index: int) -> ClusterReport:
            label = labels[index] if labels is not None else specs[index].name
            start = time.perf_counter()
            try:
                return self.analyze(
                    specs[index],
                    methods=names,
                    dt=dt,
                    t_stop=t_stop,
                    check_nrc=check_nrc,
                    label=labels[index] if labels is not None else None,
                )
            except Exception as exc:
                if on_error == "raise":
                    raise
                return ClusterReport(
                    label=label,
                    spec=specs[index],
                    results={},
                    runtime_seconds=time.perf_counter() - start,
                    error=ClusterError.from_exception(exc),
                )

        if parallel:
            with ThreadPoolExecutor(max_workers=workers) as pool:
                return list(pool.map(run_one, range(len(specs))))
        # Sequential runs characterise on demand (the cache still guarantees
        # exactly-once), so an already-warm batch pays no extra walk.
        return [run_one(index) for index in range(len(specs))]

    # ----------------------------------------------------------------- design

    def run_design(
        self,
        design: Optional["Design"] = None,
        *,
        stream: Optional[Iterable["ClusterExtraction"]] = None,
        design_name: Optional[str] = None,
        chunk_size: Optional[int] = None,
        extraction: Optional["ExtractionConfig"] = None,
        input_glitches=None,
        extractor: Optional["ClusterExtractor"] = None,
        methods: Optional[Sequence[str]] = None,
        dt: Optional[float] = None,
        t_stop: Optional[float] = None,
        check_nrc: Optional[bool] = None,
        max_workers: Optional[int] = None,
        on_error: str = "collect",
    ) -> SessionReport:
        """Full-design SNA: extract every noise cluster, analyse, NRC-check.

        Two sources of clusters:

        * ``design`` -- in-memory extraction: pass an
          :class:`~repro.sna.extraction.ExtractionConfig` (and optional
          per-net ``input_glitches``) to control extraction, or a prebuilt
          ``extractor`` for full control.
        * ``stream`` -- any iterable of
          :class:`~repro.sna.extraction.ClusterExtraction`, e.g. the lazy
          output of
          :meth:`repro.sna.stream.StreamingClusterExtractor.extract` over a
          full-chip SPEF.  Extraction is *pipelined* into analysis in chunks
          of ``chunk_size`` clusters (default scales with the worker count),
          so analysis of one chunk overlaps no further than the window the
          streaming extractor holds -- the whole design is never
          materialised.

        ``on_error`` is forwarded to :meth:`analyze_many`: by default a
        failing cluster is reported as a structured per-cluster error instead
        of aborting the design run.
        """
        from ..sna.extraction import ClusterExtractor

        if (design is None) == (stream is None):
            raise ValueError("pass exactly one of design= or stream=")
        if stream is not None and (
            extraction is not None or input_glitches is not None or extractor is not None
        ):
            raise ValueError(
                "extraction/input_glitches/extractor configure in-memory "
                "extraction; with stream= configure the streaming extractor "
                "that produces the stream instead"
            )
        names = self._resolve_methods(methods)
        start = time.perf_counter()

        if design is not None:
            if extractor is None:
                extractor = ClusterExtractor(
                    design, config=extraction, input_glitches=input_glitches
                )
            elif extraction is not None or input_glitches is not None:
                raise ValueError(
                    "pass either a prebuilt extractor or extraction/input_glitches, not both"
                )
            chunks: Iterable[List["ClusterExtraction"]] = [extractor.extract_clusters()]
            name = design.name
        else:
            workers = self.config.max_workers if max_workers is None else max_workers
            if chunk_size is None:
                chunk_size = max(4 * max(workers, 1), 16)
            if chunk_size < 1:
                raise ValueError(f"chunk_size must be at least 1, got {chunk_size}")
            chunks = _chunked(stream, chunk_size)
            name = design_name or "streamed_design"

        reports: List[ClusterReport] = []
        for chunk in chunks:
            chunk_reports = self.analyze_many(
                [item.spec for item in chunk],
                methods=names,
                dt=dt,
                t_stop=t_stop,
                check_nrc=check_nrc,
                max_workers=max_workers,
                on_error=on_error,
            )
            for item, report in zip(chunk, chunk_reports):
                report.victim_net = item.victim_net
            reports.extend(chunk_reports)
        total = time.perf_counter() - start
        return SessionReport(
            clusters=reports,
            methods=names,
            total_runtime_seconds=total,
            design_name=name,
        )

    # ---------------------------------------------------------------- summary

    def describe(self) -> str:
        """Session configuration and characterisation-cache state."""
        return "\n".join(
            [
                f"NoiseAnalysisSession on library '{self.library.technology.name}'",
                f"  {self.config.describe()}",
                f"  registered methods: {list_methods()}",
                f"  {self.characterizer.cache_summary()}",
            ]
        )
