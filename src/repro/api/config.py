"""Frozen, validated configuration for an analysis session.

:class:`AnalysisConfig` replaces the positional/keyword arguments that used
to be threaded through three layers (``ClusterNoiseAnalyzer`` ->
``StaticNoiseAnalysisFlow`` -> the per-method classes).  One immutable object
carries the method list, the time discretisation, the NRC policy and the
characterisation options; deriving a variant goes through :meth:`replace`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

__all__ = ["AnalysisConfig", "DEFAULT_METHODS"]

#: Methods run when the caller does not choose any.
DEFAULT_METHODS: Tuple[str, ...] = ("macromodel",)

#: Interconnect reductions understood by the model builder.
_VALID_REDUCTIONS = ("coupled_pi", "full")

#: Circuit-solver backends (mirrors repro.circuit.stamping.SOLVER_BACKENDS;
#: kept literal here so the config module stays import-light).
_VALID_BACKENDS = ("auto", "dense", "sparse")

#: Batched-solve modes (mirrors repro.circuit.batched.BATCHING_MODES).
_VALID_BATCHING = ("auto", "off")


@dataclass(frozen=True)
class AnalysisConfig:
    """Immutable configuration of a :class:`~repro.api.session.NoiseAnalysisSession`.

    Parameters
    ----------
    methods:
        Registry names of the analysis methods to run per cluster (see
        :func:`repro.api.list_methods`).  Name validity is checked when the
        session resolves them, so methods registered after this config was
        created are usable.
    dt, t_stop:
        Time step and stop time (seconds) for every analysis; ``None`` lets
        each cluster derive its own window from the aggressor/glitch timing.
    reduction:
        Interconnect representation inside the macromodel: ``"coupled_pi"``
        (the paper's driving-point reduction) or ``"full"``.
    vccs_grid:
        Grid resolution of the VCCS load-surface characterisation.
    check_nrc:
        Whether to evaluate each result against the victim receiver's noise
        rejection curve.
    nrc_widths:
        Optional glitch widths (seconds) at which the NRC is characterised.
    reduction_order:
        Block-Arnoldi iteration count of the ``method="reduced"`` analysis
        path (matched moments per injection site; see
        :data:`repro.reduction.DEFAULT_REDUCTION_ORDER`).  Higher orders
        tighten the reduced model at the cost of more states.
    reduction_threshold:
        Macromodel node count at which ``method="reduced"`` starts
        projecting instead of handing the cluster to the dedicated engine
        directly.  ``None`` (default) selects
        :data:`repro.reduction.REDUCTION_AUTO_THRESHOLD`; ``0`` forces
        reduction for every cluster.
    solver_backend:
        Linear-algebra backend of every circuit solve the session performs
        (golden transistor-level transients, DC operating points, the
        dedicated engine's linear macromodels): ``"auto"`` (default) picks
        scipy.sparse ``splu`` for large systems and dense LAPACK for small
        ones (see :data:`repro.circuit.stamping.SPARSE_AUTO_THRESHOLD`);
        ``"dense"`` / ``"sparse"`` force one side everywhere.
    batching:
        Batched-solve policy.  ``"auto"`` (default) gives the session a
        shared :class:`~repro.circuit.batched.FactorizationCache`:
        structurally identical macromodels (Monte Carlo samples of one
        cluster, repeated analyses of one victim) factorise their base
        matrices once per session instead of once per analysis, and
        same-matrix transient groups are solved with stacked right-hand
        sides.  A cache hit reuses a factorization of a *bit-identical*
        matrix, so results never change; ``"off"`` disables the sharing
        (the differential-testing baseline).
    degradation:
        Whether batch executors (the scenario sweep runner) route clusters
        through the numerical degradation ladder
        (:mod:`repro.resilience`): on a numerical failure or a rejected
        result the cluster is retried on progressively more conservative
        configurations (``reduced -> sparse -> dense``) instead of erroring
        out.  ``True`` by default; turn off for baselines that must observe
        raw first-try failures.
    max_workers:
        Default parallelism of ``analyze_many``/``run_design``; 1 runs
        sequentially.
    cache_dir:
        Persistent characterisation-cache location.  ``None`` disables the
        on-disk cache (in-memory only); ``"auto"`` resolves to
        ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``; any other string is used
        as the cache directory itself.  Sessions built from this config share
        characterised models across processes and runs through that
        directory.
    """

    methods: Tuple[str, ...] = DEFAULT_METHODS
    dt: Optional[float] = None
    t_stop: Optional[float] = None
    reduction: str = "coupled_pi"
    reduction_order: int = 12
    reduction_threshold: Optional[int] = None
    vccs_grid: int = 17
    solver_backend: str = "auto"
    batching: str = "auto"
    degradation: bool = True
    check_nrc: bool = True
    nrc_widths: Optional[Tuple[float, ...]] = None
    max_workers: int = 1
    cache_dir: Optional[str] = None

    def __post_init__(self):
        # Accept any sequence of names but store canonical tuples so the
        # config stays hashable and safely shareable between sessions.
        object.__setattr__(self, "methods", self._as_name_tuple(self.methods))
        if self.nrc_widths is not None:
            object.__setattr__(
                self, "nrc_widths", tuple(float(w) for w in self.nrc_widths)
            )

        if not self.methods:
            raise ValueError("methods must name at least one analysis method")
        if self.dt is not None and not self.dt > 0:
            raise ValueError(f"dt must be positive, got {self.dt}")
        if self.t_stop is not None and not self.t_stop > 0:
            raise ValueError(f"t_stop must be positive, got {self.t_stop}")
        if self.dt is not None and self.t_stop is not None and self.dt > self.t_stop:
            raise ValueError(f"dt ({self.dt}) must not exceed t_stop ({self.t_stop})")
        if self.reduction not in _VALID_REDUCTIONS:
            raise ValueError(
                f"unknown reduction {self.reduction!r}; valid: {_VALID_REDUCTIONS}"
            )
        if self.reduction_order < 1:
            raise ValueError(
                f"reduction_order must be at least 1, got {self.reduction_order}"
            )
        if self.reduction_threshold is not None and self.reduction_threshold < 0:
            raise ValueError(
                "reduction_threshold must be None or non-negative, "
                f"got {self.reduction_threshold}"
            )
        if self.vccs_grid < 3:
            raise ValueError(f"vccs_grid must be at least 3, got {self.vccs_grid}")
        if self.solver_backend not in _VALID_BACKENDS:
            raise ValueError(
                f"unknown solver_backend {self.solver_backend!r}; "
                f"valid: {_VALID_BACKENDS}"
            )
        if self.batching not in _VALID_BATCHING:
            raise ValueError(
                f"unknown batching {self.batching!r}; valid: {_VALID_BATCHING}"
            )
        if self.max_workers < 1:
            raise ValueError(f"max_workers must be at least 1, got {self.max_workers}")
        if self.nrc_widths is not None:
            if not self.nrc_widths:
                raise ValueError("nrc_widths must be None or non-empty")
            if any(not w > 0 for w in self.nrc_widths):
                raise ValueError("nrc_widths must all be positive")
        if self.cache_dir is not None and (
            not isinstance(self.cache_dir, str) or not self.cache_dir
        ):
            raise ValueError("cache_dir must be None, 'auto' or a directory path")

    def resolve_cache_dir(self) -> Optional[str]:
        """The effective cache directory (``"auto"`` resolved), or ``None``."""
        if self.cache_dir is None:
            return None
        if self.cache_dir == "auto":
            from ..characterization.diskcache import default_cache_dir

            return str(default_cache_dir())
        return self.cache_dir

    @staticmethod
    def _as_name_tuple(methods: Sequence[str]) -> Tuple[str, ...]:
        if isinstance(methods, str):
            # A bare string is almost always a bug ("macromodel" -> one
            # method, not nine single-character ones); accept it as one name.
            return (methods,)
        names = tuple(methods)
        for name in names:
            if not isinstance(name, str) or not name:
                raise ValueError(f"method names must be non-empty strings, got {name!r}")
        return names

    def replace(self, **changes) -> "AnalysisConfig":
        """A copy of this config with the given fields changed (re-validated)."""
        return dataclasses.replace(self, **changes)

    def describe(self) -> str:
        """One-line human-readable summary of the configuration."""
        window = (
            f"dt={self.dt}" if self.dt is not None else "dt=auto",
            f"t_stop={self.t_stop}" if self.t_stop is not None else "t_stop=auto",
        )
        return (
            f"AnalysisConfig(methods={list(self.methods)}, {window[0]}, {window[1]}, "
            f"reduction={self.reduction!r}, reduction_order={self.reduction_order}, "
            f"vccs_grid={self.vccs_grid}, "
            f"solver_backend={self.solver_backend!r}, "
            f"batching={self.batching!r}, "
            f"degradation={self.degradation}, "
            f"check_nrc={self.check_nrc}, max_workers={self.max_workers}, "
            f"cache_dir={self.cache_dir!r})"
        )
