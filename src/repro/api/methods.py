"""Built-in analysis-method registrations.

The four analysis backends the paper compares are published in the method
registry here, with the same names the old ``ClusterNoiseAnalyzer`` string
dispatch understood (``golden``, ``macromodel``, ``superposition``,
``iterative_thevenin``), so specs and scripts written against the old facade
resolve to the same engines through the registry.  ``reduced`` adds the
PRIMA reduced-order path of :mod:`repro.reduction` on top of that set.

Importing this module registers the builtins; :mod:`repro.api.registry`
triggers that import lazily the first time the registry is queried.
"""

from __future__ import annotations

from .registry import AnalysisMethod, MethodContext, register_method

__all__ = []  # nothing to export: importing this module registers the builtins


@register_method(
    "golden",
    description="Transistor-level transient simulation of the full cluster "
    "(the role ELDO plays in the paper); the accuracy reference.",
)
def _golden(context: MethodContext) -> AnalysisMethod:
    from ..golden.cluster_sim import GoldenClusterAnalysis

    return GoldenClusterAnalysis(
        context.library, solver_backend=context.config.solver_backend
    )


@register_method(
    "macromodel",
    description="The paper's non-linear victim-driver macromodel solved by "
    "the dedicated noise engine.",
)
def _macromodel(context: MethodContext) -> AnalysisMethod:
    from ..noise.macromodel import MacromodelAnalysis

    return MacromodelAnalysis(
        context.library,
        characterizer=context.characterizer,
        reduction=context.config.reduction,
        vccs_grid=context.config.vccs_grid,
        solver_backend=context.config.solver_backend,
        solver_cache=context.solver_cache,
    )


@register_method(
    "reduced",
    description="PRIMA/Krylov reduced-order macromodel of the full cluster "
    "wiring, with the table-VCCS victim evaluated through the projection "
    "basis; large clusters collapse to a few dozen states.",
)
def _reduced(context: MethodContext) -> AnalysisMethod:
    from ..reduction.analysis import ReducedClusterAnalysis

    return ReducedClusterAnalysis(
        context.library,
        characterizer=context.characterizer,
        vccs_grid=context.config.vccs_grid,
        solver_backend=context.config.solver_backend,
        reduction_order=context.config.reduction_order,
        reduction_threshold=context.config.reduction_threshold,
    )


@register_method(
    "superposition",
    description="Conventional linear superposition of separately-evaluated "
    "injected and propagated noise (the baseline the paper argues against).",
)
def _superposition(context: MethodContext) -> AnalysisMethod:
    from ..noise.superposition import LinearSuperpositionAnalysis

    return LinearSuperpositionAnalysis(
        context.library,
        characterizer=context.characterizer,
        reduction=context.config.reduction,
        vccs_grid=context.config.vccs_grid,
    )


@register_method(
    "iterative_thevenin",
    description="Iteratively linearised Thevenin victim model of Zolotov "
    "et al. (reference [4] of the paper).",
)
def _iterative_thevenin(context: MethodContext) -> AnalysisMethod:
    from ..noise.zolotov import ZolotovIterativeAnalysis

    return ZolotovIterativeAnalysis(
        context.library,
        characterizer=context.characterizer,
        reduction=context.config.reduction,
        vccs_grid=context.config.vccs_grid,
    )
