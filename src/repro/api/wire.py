"""Versioned, lossless JSON wire format for reports and specifications.

The analysis service ships reports between processes and over sockets, so
every report type needs a serialisation that (a) survives a round trip
bit-identically and (b) is wire-stable: payloads carry an explicit
``schema_version`` so a v2 server can keep reading v1 results.

The codec is type-tagged JSON.  Primitives pass through untouched; every
non-JSON value is wrapped in an object carrying the reserved ``__wire__``
tag:

* tuples -- ``{"__wire__": "tuple", "items": [...]}`` (kept distinct from
  lists so frozen dataclasses reconstruct with their exact field types);
* numpy arrays -- dtype + shape + nested list data (float64 values survive
  exactly: Python's JSON float serialisation uses ``repr``, which
  round-trips every finite double, and NaN/Infinity are encoded as JSON
  extensions the standard library reads back);
* :class:`~repro.waveform.Waveform` -- times + values arrays;
* dataclasses -- ``{"__wire__": "dataclass", "class": "module:QualName",
  "fields": {...}}``, reconstructed by importing the class and calling its
  constructor (so ``__post_init__`` validation re-runs on every decode).
  Only classes from the ``repro`` package are ever imported back --
  a payload naming anything else is rejected, not executed.

Entry points: :func:`encode` / :func:`decode` for bare values, and
:func:`wrap` / :func:`unwrap` which add the versioned envelope
(``schema_version`` + ``kind``) used by ``ClusterReport.to_json`` /
``SessionReport.to_json`` / ``SweepReport.to_json`` and the service
protocol.
"""

from __future__ import annotations

import dataclasses
import importlib
from typing import Any, Dict

import numpy as np

from ..waveform import Waveform

__all__ = [
    "SCHEMA_VERSION",
    "WireFormatError",
    "decode",
    "encode",
    "unwrap",
    "wrap",
]

#: Version of the wire format.  Bump on any change that would make an old
#: payload unreadable (field renames, tag changes, envelope changes).
SCHEMA_VERSION = 1

#: Reserved key marking a type-tagged object.
_TAG = "__wire__"

#: Only dataclasses from these package roots are reconstructed on decode.
_TRUSTED_PACKAGES = ("repro",)


class WireFormatError(ValueError):
    """A value cannot be encoded, or a payload cannot be decoded."""


# ------------------------------------------------------------------- encode


def encode(value: Any) -> Any:
    """Encode ``value`` into JSON-serialisable, type-tagged form."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (np.bool_, np.integer, np.floating)):
        return value.item()
    if isinstance(value, np.ndarray):
        return {
            _TAG: "ndarray",
            "dtype": str(value.dtype),
            "shape": list(value.shape),
            "data": value.ravel(order="C").tolist(),
        }
    if isinstance(value, Waveform):
        return {
            _TAG: "waveform",
            "times": value.times.tolist(),
            "values": value.values.tolist(),
        }
    if isinstance(value, tuple):
        return {_TAG: "tuple", "items": [encode(item) for item in value]}
    if isinstance(value, list):
        return [encode(item) for item in value]
    if isinstance(value, dict):
        if all(isinstance(key, str) for key in value) and _TAG not in value:
            return {key: encode(item) for key, item in value.items()}
        # Non-string keys (or a key colliding with the tag) need explicit
        # pairs -- JSON objects only have string keys.
        return {
            _TAG: "mapping",
            "items": [[encode(key), encode(item)] for key, item in value.items()],
        }
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        cls = type(value)
        return {
            _TAG: "dataclass",
            "class": f"{cls.__module__}:{cls.__qualname__}",
            "fields": {
                f.name: encode(getattr(value, f.name))
                for f in dataclasses.fields(cls)
                if f.init
            },
        }
    raise WireFormatError(
        f"cannot encode {type(value).__name__!r} for the wire; supported: "
        "JSON primitives, tuples/lists/dicts, numpy arrays, Waveform and "
        "dataclasses"
    )


# ------------------------------------------------------------------- decode


def _resolve_dataclass(reference: str) -> type:
    module_name, _, qualname = reference.partition(":")
    root = module_name.split(".", 1)[0]
    if root not in _TRUSTED_PACKAGES or not qualname:
        raise WireFormatError(
            f"refusing to import {reference!r}: wire payloads may only "
            f"reference dataclasses from {_TRUSTED_PACKAGES}"
        )
    try:
        target: Any = importlib.import_module(module_name)
        for part in qualname.split("."):
            target = getattr(target, part)
    except (ImportError, AttributeError) as exc:
        raise WireFormatError(f"cannot resolve wire class {reference!r}: {exc}") from exc
    if not (isinstance(target, type) and dataclasses.is_dataclass(target)):
        raise WireFormatError(f"{reference!r} is not a dataclass type")
    return target


def decode(payload: Any) -> Any:
    """Reconstruct a value encoded by :func:`encode`."""
    if payload is None or isinstance(payload, (bool, int, float, str)):
        return payload
    if isinstance(payload, list):
        return [decode(item) for item in payload]
    if not isinstance(payload, dict):
        raise WireFormatError(f"unexpected wire payload of type {type(payload).__name__!r}")
    tag = payload.get(_TAG)
    if tag is None:
        return {key: decode(item) for key, item in payload.items()}
    if tag == "tuple":
        return tuple(decode(item) for item in payload["items"])
    if tag == "mapping":
        return {decode(key): decode(item) for key, item in payload["items"]}
    if tag == "ndarray":
        array = np.array(payload["data"], dtype=np.dtype(payload["dtype"]))
        return array.reshape(payload["shape"])
    if tag == "waveform":
        return Waveform(payload["times"], payload["values"])
    if tag == "dataclass":
        cls = _resolve_dataclass(payload["class"])
        field_names = {f.name for f in dataclasses.fields(cls) if f.init}
        kwargs = {}
        for name, item in payload["fields"].items():
            if name not in field_names:
                raise WireFormatError(
                    f"wire payload for {cls.__name__} carries unknown field {name!r}"
                )
            kwargs[name] = decode(item)
        try:
            return cls(**kwargs)
        except (TypeError, ValueError) as exc:
            raise WireFormatError(
                f"cannot reconstruct {cls.__name__} from wire payload: {exc}"
            ) from exc
    raise WireFormatError(f"unknown wire tag {tag!r}")


# ----------------------------------------------------------------- envelope


def wrap(kind: str, value: Any) -> Dict[str, Any]:
    """Encode ``value`` under the versioned envelope used by ``to_json``."""
    return {"schema_version": SCHEMA_VERSION, "kind": kind, "payload": encode(value)}


def unwrap(payload: Dict[str, Any], kind: str) -> Any:
    """Validate an envelope produced by :func:`wrap` and decode its payload."""
    if not isinstance(payload, dict):
        raise WireFormatError(f"expected a wire envelope dict, got {type(payload).__name__!r}")
    version = payload.get("schema_version")
    if version != SCHEMA_VERSION:
        raise WireFormatError(
            f"unsupported schema_version {version!r} (this build reads "
            f"version {SCHEMA_VERSION})"
        )
    if payload.get("kind") != kind:
        raise WireFormatError(
            f"expected a {kind!r} payload, got {payload.get('kind')!r}"
        )
    return decode(payload["payload"])
