"""Unified public API for every analysis in the repo.

This package is the single front door the paper's "complete SNA methodology"
deserves: a frozen :class:`AnalysisConfig`, a pluggable analysis-method
registry (:func:`register_method` / :func:`list_methods`) and the
:class:`NoiseAnalysisSession` whose ``analyze`` / ``analyze_many`` /
``run_design`` entry points subsume the old ``ClusterNoiseAnalyzer`` and
``StaticNoiseAnalysisFlow`` facades (both retired in 0.3.0; calling them
raises :class:`RemovedAPIError` with the migration path).

Quick start::

    from repro.api import AnalysisConfig, NoiseAnalysisSession
    from repro.experiments import default_library, table1_cluster

    session = NoiseAnalysisSession(
        default_library("cmos130"),
        AnalysisConfig(methods=("golden", "macromodel"), check_nrc=True),
    )
    report = session.analyze(table1_cluster())
    print(report.comparison_table())
"""

from .config import DEFAULT_METHODS, AnalysisConfig
from .errors import RemovedAPIError
from .registry import (
    AnalysisMethod,
    DuplicateMethodError,
    MethodContext,
    UnknownMethodError,
    create_method,
    list_methods,
    method_descriptions,
    register_method,
    unregister_method,
)
from .report import ClusterError, ClusterReport, SessionReport
from .session import NoiseAnalysisSession
from .wire import SCHEMA_VERSION, WireFormatError

__all__ = [
    "AnalysisConfig",
    "DEFAULT_METHODS",
    "AnalysisMethod",
    "MethodContext",
    "UnknownMethodError",
    "DuplicateMethodError",
    "RemovedAPIError",
    "register_method",
    "unregister_method",
    "list_methods",
    "method_descriptions",
    "create_method",
    "ClusterError",
    "ClusterReport",
    "SessionReport",
    "NoiseAnalysisSession",
    "SCHEMA_VERSION",
    "WireFormatError",
]
