"""Typed result aggregation for analysis sessions.

A :class:`ClusterReport` collects everything one ``analyze`` call produced
for one noise cluster: the per-method :class:`NoiseAnalysisResult` objects,
the NRC verdicts and the wall-clock runtime.  A :class:`SessionReport`
aggregates the cluster reports of a batch (``analyze_many``) or design run
(``run_design``) together with engine statistics, replacing the old ad-hoc
``SNAReport``/result-dict mixture with one structure every driver shares.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..noise.analysis import NRCCheck
from ..noise.cluster import NoiseClusterSpec
from ..noise.engine import EngineStatistics
from ..noise.results import NoiseAnalysisResult, format_comparison_table

__all__ = ["ClusterReport", "SessionReport"]


@dataclass
class ClusterReport:
    """Everything the session computed for one noise cluster."""

    label: str
    spec: NoiseClusterSpec
    #: Per-method results, in the order the methods were run.
    results: Dict[str, NoiseAnalysisResult]
    #: Per-method NRC verdicts (empty when NRC checking was off).
    nrc_checks: Dict[str, NRCCheck] = field(default_factory=dict)
    runtime_seconds: float = 0.0
    #: Victim net name when the cluster came out of a design run.
    victim_net: str = ""

    @property
    def primary_method(self) -> str:
        """Registry name of the first method run (the session's main answer)."""
        return next(iter(self.results))

    @property
    def primary(self) -> NoiseAnalysisResult:
        """Result of the first method run."""
        return self.results[self.primary_method]

    def result(self, method: Optional[str] = None) -> NoiseAnalysisResult:
        """Result of ``method`` (default: the primary method)."""
        if method is None:
            return self.primary
        return self.results[method]

    def nrc_check(self, method: Optional[str] = None) -> Optional[NRCCheck]:
        """NRC verdict of ``method`` (default: the primary method), if checked."""
        return self.nrc_checks.get(method or self.primary_method)

    @property
    def fails(self) -> bool:
        """Whether the primary method's glitch violates the receiver NRC."""
        check = self.nrc_check()
        return bool(check and check.fails)

    def comparison_table(self, reference: str = "golden") -> str:
        """The paper-style method-comparison table for this cluster."""
        return format_comparison_table(self.results, reference)

    def engine_statistics(self) -> EngineStatistics:
        """Summed solver statistics of every method run on this cluster.

        Both the dedicated macromodel engine and the golden transistor-level
        simulation publish an ``EngineStatistics`` (time points, Newton
        iterations, assemblies avoided, LU reuses) in their result details.
        """
        total = EngineStatistics()
        for result in self.results.values():
            stats = result.details.get("engine_statistics")
            if isinstance(stats, EngineStatistics):
                total.merge(stats)
        return total

    def summary(self) -> str:
        result = self.primary
        status = "FAIL" if self.fails else ("pass" if self.nrc_checks else "n/a")
        return (
            f"{self.label:24s} {result.method:24s} peak={result.peak:+.4f} V  "
            f"area={result.area_v_ps:8.2f} V*ps  [{status}]"
        )


@dataclass
class SessionReport:
    """Aggregated outcome of a batch or design-level session run."""

    clusters: List[ClusterReport]
    methods: Tuple[str, ...]
    total_runtime_seconds: float
    design_name: str = ""

    def __iter__(self):
        return iter(self.clusters)

    def __len__(self) -> int:
        return len(self.clusters)

    def cluster(self, label: str) -> ClusterReport:
        """The report of the cluster labelled ``label`` (or its victim net)."""
        for report in self.clusters:
            if report.label == label or report.victim_net == label:
                return report
        raise KeyError(f"no cluster labelled {label!r} in this report")

    @property
    def violations(self) -> List[ClusterReport]:
        """Clusters whose primary glitch violates the receiver NRC."""
        return [report for report in self.clusters if report.fails]

    def engine_statistics(self) -> EngineStatistics:
        """Summed dedicated-engine statistics across all clusters."""
        total = EngineStatistics()
        for report in self.clusters:
            total.merge(report.engine_statistics())
        return total

    def text(self) -> str:
        """Multi-line report mirroring the industrial violation-report style."""
        title = self.design_name or "batch"
        lines = [
            f"Noise analysis report for '{title}' "
            f"({'/'.join(self.methods)}, {len(self.clusters)} clusters, "
            f"{self.total_runtime_seconds:.2f} s)",
            f"{'cluster':24s} {'peak(V)':>8s} {'area(Vps)':>10s} {'width(ps)':>9s} "
            f"{'margin':>8s}  status",
        ]
        for report in self.clusters:
            result = report.primary
            check = report.nrc_check()
            status = "FAIL" if report.fails else ("pass" if check else "n/a ")
            margin = f"{check.margin:+.3f}" if check else "  -  "
            name = report.victim_net or report.label
            lines.append(
                f"{name:24s} {result.peak:8.3f} {result.area_v_ps:10.1f} "
                f"{result.width_ps:9.1f} {margin:>8s}  {status}"
            )
        lines.append(f"violations: {len(self.violations)} / {len(self.clusters)}")
        stats = self.engine_statistics()
        if stats.num_time_points:
            lines.append(
                f"engine: {stats.num_time_points} time points, "
                f"{stats.newton_iterations} Newton iters, "
                f"{stats.assemblies_avoided} assemblies avoided, "
                f"{stats.lu_reuse_hits} LU reuses "
                f"({stats.matrix_factorizations} factorizations)"
            )
        return "\n".join(lines)
