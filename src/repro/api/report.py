"""Typed result aggregation for analysis sessions.

A :class:`ClusterReport` collects everything one ``analyze`` call produced
for one noise cluster: the per-method :class:`NoiseAnalysisResult` objects,
the NRC verdicts and the wall-clock runtime.  A :class:`SessionReport`
aggregates the cluster reports of a batch (``analyze_many``) or design run
(``run_design``) together with engine statistics, replacing the old ad-hoc
``SNAReport``/result-dict mixture with one structure every driver shares.
"""

from __future__ import annotations

import traceback as _traceback
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..noise.analysis import NRCCheck
from ..noise.cluster import NoiseClusterSpec
from ..noise.engine import EngineStatistics
from ..noise.results import NoiseAnalysisResult, format_comparison_table
from . import wire

__all__ = ["ClusterError", "ClusterReport", "SessionReport", "exception_chain"]


def exception_chain(exc: BaseException) -> Tuple[str, ...]:
    """``("Type: message", ...)`` for ``exc`` and its cause/context chain.

    Walks ``__cause__`` first (explicit ``raise ... from``), falling back to
    ``__context__``, with cycle protection -- the same order tracebacks
    print the chain.  The first entry is the outermost exception.
    """
    entries: List[str] = []
    seen = set()
    current: Optional[BaseException] = exc
    while current is not None and id(current) not in seen:
        seen.add(id(current))
        entries.append(f"{type(current).__name__}: {current}")
        current = current.__cause__ or current.__context__
    return tuple(entries)


@dataclass(frozen=True)
class ClusterError:
    """Structured record of one cluster analysis that raised.

    Batch entry points (``analyze_many`` with ``on_error="collect"``, the
    scenario sweep runner) attach this to the failed cluster's report instead
    of aborting the whole batch, so a failing scenario stays visible -- with
    enough context to reproduce it -- while its siblings complete.
    """

    exception_type: str
    message: str
    #: Formatted traceback (``traceback.format_exc`` of the failure).
    traceback_text: str = ""
    #: Registry name of the analysis method that was running when the
    #: failure happened; empty when the failure preceded method dispatch
    #: (characterisation, model building, NRC lookup).
    method: str = ""
    #: ``"Type: message"`` entries of the exception and its ``__cause__`` /
    #: ``__context__`` chain, outermost first.  A ``SingularMatrixError``
    #: wrapped in a builder failure stays diagnosable from the report alone.
    cause_chain: Tuple[str, ...] = ()

    @classmethod
    def from_exception(cls, exc: BaseException, *, method: str = "") -> "ClusterError":
        """Build the structured record from a live exception (with chain)."""
        return cls(
            exception_type=type(exc).__name__,
            message=str(exc),
            traceback_text=_traceback.format_exc(),
            method=method or getattr(exc, "_repro_active_method", ""),
            cause_chain=exception_chain(exc),
        )

    def summary(self) -> str:
        where = f" in method '{self.method}'" if self.method else ""
        return f"{self.exception_type}{where}: {self.message}"


@dataclass
class ClusterReport:
    """Everything the session computed for one noise cluster."""

    label: str
    spec: NoiseClusterSpec
    #: Per-method results, in the order the methods were run.
    results: Dict[str, NoiseAnalysisResult]
    #: Per-method NRC verdicts (empty when NRC checking was off).
    nrc_checks: Dict[str, NRCCheck] = field(default_factory=dict)
    runtime_seconds: float = 0.0
    #: Victim net name when the cluster came out of a design run.
    victim_net: str = ""
    #: Set when the analysis of this cluster failed (batch error collection);
    #: ``results`` is then empty -- a cluster either completes every
    #: requested method or reports the failure, never a partial answer.
    error: Optional[ClusterError] = None
    #: One line per rejected attempt when the numerical degradation ladder
    #: (:func:`repro.resilience.resilient_analyze`) produced this report
    #: from a lower rung; empty for a first-try result.
    degradation: Tuple[str, ...] = ()
    #: How the analysis service obtained this report: ``"recomputed"`` when a
    #: worker ran the cluster, ``"reused"`` when the server's result store
    #: satisfied the fingerprint without touching the pool, ``""`` for
    #: reports produced outside the service.  Annotated at merge time so the
    #: stored report itself stays provenance-free.
    provenance: str = ""

    @property
    def ok(self) -> bool:
        """Whether this cluster's analysis completed without error."""
        return self.error is None

    @property
    def primary_method(self) -> str:
        """Registry name of the first method run (the session's main answer)."""
        if not self.results:
            raise ValueError(
                f"cluster {self.label!r} has no results"
                + (f" (failed: {self.error.summary()})" if self.error else "")
            )
        return next(iter(self.results))

    @property
    def primary(self) -> NoiseAnalysisResult:
        """Result of the first method run."""
        return self.results[self.primary_method]

    def result(self, method: Optional[str] = None) -> NoiseAnalysisResult:
        """Result of ``method`` (default: the primary method)."""
        if method is None:
            return self.primary
        if method not in self.results and self.error is not None:
            # Point the consumer at the real failure instead of leaving them
            # with a bare KeyError on an error-collected report.
            raise KeyError(
                f"cluster {self.label!r} has no {method!r} result; its analysis "
                f"failed: {self.error.summary()}"
            )
        return self.results[method]

    def nrc_check(self, method: Optional[str] = None) -> Optional[NRCCheck]:
        """NRC verdict of ``method`` (default: the primary method), if checked."""
        if method is None and not self.results:
            return None
        return self.nrc_checks.get(method or self.primary_method)

    @property
    def fails(self) -> bool:
        """Whether the primary method's glitch violates the receiver NRC."""
        check = self.nrc_check()
        return bool(check and check.fails)

    def comparison_table(self, reference: str = "golden") -> str:
        """The paper-style method-comparison table for this cluster."""
        return format_comparison_table(self.results, reference)

    def engine_statistics(self) -> EngineStatistics:
        """Summed solver statistics of every method run on this cluster.

        Both the dedicated macromodel engine and the golden transistor-level
        simulation publish an ``EngineStatistics`` (time points, Newton
        iterations, assemblies avoided, LU reuses) in their result details.
        """
        total = EngineStatistics()
        for result in self.results.values():
            stats = result.details.get("engine_statistics")
            if isinstance(stats, EngineStatistics):
                total.merge(stats)
        return total

    def summary(self) -> str:
        if self.error is not None:
            return f"{self.label:24s} ERROR  {self.error.summary()}"
        result = self.primary
        status = "FAIL" if self.fails else ("pass" if self.nrc_checks else "n/a")
        return (
            f"{self.label:24s} {result.method:24s} peak={result.peak:+.4f} V  "
            f"area={result.area_v_ps:8.2f} V*ps  [{status}]"
        )

    # ---------------------------------------------------------------- wire

    def to_json(self) -> Dict:
        """Lossless, versioned JSON payload (see :mod:`repro.api.wire`)."""
        return wire.wrap("cluster_report", self)

    @classmethod
    def from_json(cls, payload: Dict) -> "ClusterReport":
        """Rebuild a report from its :meth:`to_json` payload."""
        report = wire.unwrap(payload, "cluster_report")
        if not isinstance(report, cls):
            raise wire.WireFormatError(
                f"cluster_report payload decoded to {type(report).__name__!r}"
            )
        return report


@dataclass
class SessionReport:
    """Aggregated outcome of a batch or design-level session run."""

    clusters: List[ClusterReport]
    methods: Tuple[str, ...]
    total_runtime_seconds: float
    design_name: str = ""

    def __iter__(self):
        return iter(self.clusters)

    def __len__(self) -> int:
        return len(self.clusters)

    def cluster(self, label: str) -> ClusterReport:
        """The report of the cluster labelled ``label`` (or its victim net)."""
        for report in self.clusters:
            if report.label == label or report.victim_net == label:
                return report
        raise KeyError(f"no cluster labelled {label!r} in this report")

    @property
    def violations(self) -> List[ClusterReport]:
        """Clusters whose primary glitch violates the receiver NRC.

        An *errored* cluster is not a violation -- it has no verdict at all.
        Gates must check :attr:`ok` (or :attr:`errors`), not just this list:
        a crashed analysis proves nothing about the cluster being clean.
        """
        return [report for report in self.clusters if report.fails]

    @property
    def errors(self) -> List[ClusterReport]:
        """Clusters whose analysis raised (error-collecting batch runs)."""
        return [report for report in self.clusters if not report.ok]

    @property
    def ok(self) -> bool:
        """Every cluster analysed without error and without an NRC violation.

        The one-line sign-off gate: ``False`` when anything failed --
        violation *or* crash -- so error-collected failures can never read
        as a clean design.
        """
        return not self.violations and not self.errors

    def engine_statistics(self) -> EngineStatistics:
        """Summed dedicated-engine statistics across all clusters."""
        total = EngineStatistics()
        for report in self.clusters:
            total.merge(report.engine_statistics())
        return total

    def text(self) -> str:
        """Multi-line report mirroring the industrial violation-report style."""
        title = self.design_name or "batch"
        lines = [
            f"Noise analysis report for '{title}' "
            f"({'/'.join(self.methods)}, {len(self.clusters)} clusters, "
            f"{self.total_runtime_seconds:.2f} s)",
            f"{'cluster':24s} {'peak(V)':>8s} {'area(Vps)':>10s} {'width(ps)':>9s} "
            f"{'margin':>8s}  status",
        ]
        for report in self.clusters:
            name = report.victim_net or report.label
            if report.error is not None:
                lines.append(f"{name:24s} ERROR  {report.error.summary()}")
                continue
            result = report.primary
            check = report.nrc_check()
            status = "FAIL" if report.fails else ("pass" if check else "n/a ")
            margin = f"{check.margin:+.3f}" if check else "  -  "
            lines.append(
                f"{name:24s} {result.peak:8.3f} {result.area_v_ps:10.1f} "
                f"{result.width_ps:9.1f} {margin:>8s}  {status}"
            )
        lines.append(f"violations: {len(self.violations)} / {len(self.clusters)}")
        if self.errors:
            lines.append(f"errors: {len(self.errors)} / {len(self.clusters)}")
        stats = self.engine_statistics()
        if stats.num_time_points:
            lines.append(
                f"engine: {stats.num_time_points} time points, "
                f"{stats.newton_iterations} Newton iters, "
                f"{stats.assemblies_avoided} assemblies avoided, "
                f"{stats.lu_reuse_hits} LU reuses "
                f"({stats.matrix_factorizations} factorizations, "
                f"{stats.factorizations_saved} saved, "
                f"{stats.batched_solves} batched solves)"
            )
        return "\n".join(lines)

    # ---------------------------------------------------------------- wire

    def to_json(self) -> Dict:
        """Lossless, versioned JSON payload (see :mod:`repro.api.wire`)."""
        return wire.wrap("session_report", self)

    @classmethod
    def from_json(cls, payload: Dict) -> "SessionReport":
        """Rebuild a report from its :meth:`to_json` payload."""
        report = wire.unwrap(payload, "session_report")
        if not isinstance(report, cls):
            raise wire.WireFormatError(
                f"session_report payload decoded to {type(report).__name__!r}"
            )
        return report
