"""Projection-based model order reduction (PRIMA-style).

Besides the coupled pi model, the library provides a passive
projection-based reduction of the coupled interconnect, in the spirit of
PRIMA.  The reduced model is not realised as an RC circuit (a general
congruence-reduced system has no simple RC realisation); instead it is kept
as a descriptor state-space multiport that can be queried for its admittance
moments and frequency response, and used to verify how many moments the pi
model misses.  This is the "network reduction for crosstalk analysis"
substrate cited by the paper ([5], [8]).

Formulation
-----------
The port-voltage-driven bordered MNA system of the wiring is

    A0 x + A1 dx/dt = P e(t),     i(t) = P' x

with ``x = [node voltages; port currents]``, ``e`` the port voltages and
``i`` the port currents (see :mod:`repro.interconnect.moments`).  A block
Arnoldi iteration on ``(A0 + s0 A1)^{-1} A1`` with starting block
``(A0 + s0 A1)^{-1} P`` produces an orthonormal basis ``V``; the reduced
system is obtained by congruence:

    A0r = V' A0 V,   A1r = V' A1 V,   Pr = V' P.

Congruence preserves passivity of the symmetric positive semi-definite RC
matrices and matches ``2q`` moments about the expansion point ``s0`` for a
basis of ``q`` block iterations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from .rcnetwork import CoupledRCNetwork

__all__ = ["ReducedMultiport", "prima_reduce"]


@dataclass
class ReducedMultiport:
    """A reduced port-voltage-driven descriptor multiport."""

    a0: np.ndarray
    a1: np.ndarray
    p: np.ndarray
    ports: List[str]
    s0: float
    projection: np.ndarray

    @property
    def order(self) -> int:
        return self.a0.shape[0]

    @property
    def num_ports(self) -> int:
        return self.p.shape[1]

    def admittance(self, s: complex) -> np.ndarray:
        """Port admittance matrix ``Y(s)`` of the reduced model."""
        solve = np.linalg.solve(self.a0 + s * self.a1, self.p)
        return self.p.T @ solve

    def admittance_moments(self, num_moments: int = 4) -> List[np.ndarray]:
        """Taylor moments of ``Y(s)`` about ``s = 0``."""
        moments = []
        lu = np.linalg.inv(self.a0)
        x = lu @ self.p
        moments.append(self.p.T @ x)
        for _ in range(1, num_moments):
            x = -lu @ (self.a1 @ x)
            moments.append(self.p.T @ x)
        return moments


def _bordered(network: CoupledRCNetwork) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    G, C, _nodes = network.matrices()
    B = network.port_incidence()
    n = G.shape[0]
    p = B.shape[1]
    A0 = np.zeros((n + p, n + p))
    A1 = np.zeros((n + p, n + p))
    P = np.zeros((n + p, p))
    A0[:n, :n] = G
    A0[:n, n:] = -B
    A0[n:, :n] = B.T
    A1[:n, :n] = C
    P[n:, :] = np.eye(p)
    return A0, A1, P


def prima_reduce(
    network: CoupledRCNetwork,
    num_block_iterations: int = 3,
    s0: Optional[float] = None,
) -> ReducedMultiport:
    """Reduce a coupled RC network to a PRIMA-style multiport.

    Parameters
    ----------
    network:
        The wiring network with its driving-point ports.
    num_block_iterations:
        Number of block Arnoldi iterations ``q``; the reduced order is at
        most ``q * num_ports``.
    s0:
        Expansion point in rad/s.  Defaults to the reciprocal of the largest
        port RC time constant estimate, which keeps the shifted matrix well
        conditioned for floating RC nets.
    """
    A0, A1, P = _bordered(network)
    num_ports = P.shape[1]

    if s0 is None:
        # Rough time-constant estimate: total resistance * total capacitance.
        total_r = sum(e.value for e in network.elements if e.kind == "R")
        total_c = sum(e.value for e in network.elements if e.kind == "C")
        tau = max(total_r * total_c, 1e-15)
        s0 = 1.0 / tau

    shifted = A0 + s0 * A1
    solve = np.linalg.solve

    # Block Arnoldi with modified Gram-Schmidt orthogonalisation.
    blocks: List[np.ndarray] = []
    r = solve(shifted, P)
    q_block, _ = np.linalg.qr(r)
    blocks.append(q_block)
    for _ in range(1, num_block_iterations):
        r = solve(shifted, A1 @ blocks[-1])
        # Orthogonalise against all previous blocks.
        for previous in blocks:
            r = r - previous @ (previous.T @ r)
        norms = np.linalg.norm(r, axis=0)
        keep = norms > 1e-14 * max(norms.max(), 1.0)
        if not np.any(keep):
            break
        q_block, _ = np.linalg.qr(r[:, keep])
        blocks.append(q_block)

    V = np.hstack(blocks)
    # A final orthonormalisation pass for numerical hygiene.
    V, _ = np.linalg.qr(V)

    a0r = V.T @ A0 @ V
    a1r = V.T @ A1 @ V
    pr = V.T @ P
    return ReducedMultiport(
        a0=a0r,
        a1=a1r,
        p=pr,
        ports=network.port_nodes(),
        s0=s0,
        projection=V,
    )
