"""Coupled interconnect modelling: extraction, moments and reduction.

This package is the stand-in for the parasitic extractor and the network
reduction engine the paper relies on: parallel-bus geometries are turned
into distributed coupled RC networks, whose driving-point behaviour can be
reduced to a coupled pi ("S-model") representation by moment matching.
Projection-based (PRIMA/Krylov) reduction lives in :mod:`repro.reduction`,
which consumes these networks through their matrices and port maps.
"""

from .geometry import CoupledSegmentParasitics, ParallelBusGeometry, WireSpec
from .moments import admittance_moments, elmore_delay, total_port_capacitance, transfer_moments
from .pimodel import CoupledPiModel, PiModel, reduce_to_coupled_pi
from .rcnetwork import CoupledRCNetwork, RCElement, build_coupled_rc_network
from .synth import (
    make_coupled_pair,
    make_driven_circuit,
    make_rc_ladder,
    make_rc_mesh,
    make_rc_tree,
    make_victim_aggressor_circuit,
)

__all__ = [
    "make_rc_ladder",
    "make_rc_mesh",
    "make_rc_tree",
    "make_coupled_pair",
    "make_driven_circuit",
    "make_victim_aggressor_circuit",
    "WireSpec",
    "ParallelBusGeometry",
    "CoupledSegmentParasitics",
    "CoupledRCNetwork",
    "RCElement",
    "build_coupled_rc_network",
    "admittance_moments",
    "transfer_moments",
    "elmore_delay",
    "total_port_capacitance",
    "PiModel",
    "CoupledPiModel",
    "reduce_to_coupled_pi",
]
