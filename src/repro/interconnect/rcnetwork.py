"""Distributed coupled RC network construction.

A :class:`CoupledRCNetwork` is the electrical view of a noise cluster's
wiring: a set of RC ladders (one per net) with coupling capacitors between
adjacent nets.  It can

* be instantiated into a :class:`repro.circuit.Circuit` (for the golden
  simulation and for macromodels that keep the full network), and
* expose its conductance / capacitance matrices and port incidence for the
  moment-matching reduction in :mod:`repro.interconnect.moments` /
  :mod:`repro.interconnect.pimodel`.

Node naming convention: the driver end of net ``victim`` is node
``victim:0`` (the *driving point*), interior nodes are ``victim:1`` ...,
and the far (receiver) end is ``victim:<num_segments>``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..circuit.netlist import Circuit
from ..technology.process import Technology
from .geometry import CoupledSegmentParasitics, ParallelBusGeometry

__all__ = ["RCElement", "CoupledRCNetwork", "build_coupled_rc_network"]


@dataclass(frozen=True)
class RCElement:
    """One passive element of the wiring network (``kind`` is 'R' or 'C')."""

    kind: str
    node_a: str
    node_b: str
    value: float


class CoupledRCNetwork:
    """A passive RC network with named nodes and designated port nodes."""

    def __init__(self, name: str = "wiring"):
        self.name = name
        self._elements: List[RCElement] = []
        self._nodes: List[str] = []
        self._node_index: Dict[str, int] = {}
        #: Driving-point node per net name.
        self.driver_nodes: Dict[str, str] = {}
        #: Far-end (receiver) node per net name.
        self.receiver_nodes: Dict[str, str] = {}
        #: Net name per node (used by cluster extraction / reporting).
        self.node_net: Dict[str, str] = {}

    # ------------------------------------------------------------------ nodes

    def _node(self, name: str) -> int:
        norm = Circuit.canonical_node_name(name)
        if norm == "0":
            return -1
        if norm not in self._node_index:
            self._node_index[norm] = len(self._nodes)
            self._nodes.append(norm)
        return self._node_index[norm]

    @property
    def nodes(self) -> List[str]:
        return list(self._nodes)

    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    @property
    def elements(self) -> List[RCElement]:
        return list(self._elements)

    @property
    def net_names(self) -> List[str]:
        return list(self.driver_nodes)

    # ----------------------------------------------------------------- adders

    def add_resistor(self, node_a: str, node_b: str, value: float, net: Optional[str] = None) -> None:
        if value <= 0:
            raise ValueError("resistance must be positive")
        self._node(node_a)
        self._node(node_b)
        self._elements.append(RCElement("R", node_a, node_b, value))
        if net is not None:
            self.node_net.setdefault(Circuit.canonical_node_name(node_a), net)
            self.node_net.setdefault(Circuit.canonical_node_name(node_b), net)

    def add_capacitor(self, node_a: str, node_b: str, value: float, net: Optional[str] = None) -> None:
        if value < 0:
            raise ValueError("capacitance must be non-negative")
        if value == 0.0:
            return
        self._node(node_a)
        self._node(node_b)
        self._elements.append(RCElement("C", node_a, node_b, value))
        if net is not None:
            self.node_net.setdefault(Circuit.canonical_node_name(node_a), net)

    def set_ports(self, net: str, driver_node: str, receiver_node: str) -> None:
        self.driver_nodes[net] = Circuit.canonical_node_name(driver_node)
        self.receiver_nodes[net] = Circuit.canonical_node_name(receiver_node)

    # --------------------------------------------------------------- summaries

    def total_ground_cap(self, net: Optional[str] = None) -> float:
        """Total capacitance to ground (optionally restricted to one net)."""
        total = 0.0
        for e in self._elements:
            if e.kind != "C":
                continue
            a = Circuit.canonical_node_name(e.node_a)
            b = Circuit.canonical_node_name(e.node_b)
            if b != "0" and a != "0":
                continue
            node = a if b == "0" else b
            if net is None or self.node_net.get(node) == net:
                total += e.value
        return total

    def total_coupling_cap(self, net_a: Optional[str] = None, net_b: Optional[str] = None) -> float:
        """Total node-to-node (coupling) capacitance, optionally between two nets."""
        total = 0.0
        for e in self._elements:
            if e.kind != "C":
                continue
            a = Circuit.canonical_node_name(e.node_a)
            b = Circuit.canonical_node_name(e.node_b)
            if a == "0" or b == "0":
                continue
            na, nb = self.node_net.get(a), self.node_net.get(b)
            if net_a is None and net_b is None:
                total += e.value
            elif {na, nb} == {net_a, net_b}:
                total += e.value
        return total

    def total_resistance(self, net: str) -> float:
        """Total series resistance of a net (sum of its resistor segments)."""
        total = 0.0
        for e in self._elements:
            if e.kind != "R":
                continue
            a = Circuit.canonical_node_name(e.node_a)
            if self.node_net.get(a) == net:
                total += e.value
        return total

    # ------------------------------------------------------------- realisation

    def instantiate(self, circuit: Circuit, prefix: str = "") -> None:
        """Add the network's R and C elements to a circuit."""
        for index, e in enumerate(self._elements):
            name = f"{prefix}{self.name}.{e.kind}{index}"
            if e.kind == "R":
                circuit.add_resistor(name, e.node_a, e.node_b, e.value)
            else:
                circuit.add_capacitor(name, e.node_a, e.node_b, e.value)

    # ----------------------------------------------------------------- matrices

    def matrices(self) -> Tuple[np.ndarray, np.ndarray, List[str]]:
        """Nodal conductance and capacitance matrices ``(G, C, node_names)``.

        Ground is eliminated (not a row/column).  These matrices describe the
        wiring only; drivers and receivers are attached at the port nodes by
        the callers.
        """
        n = self.num_nodes
        G = np.zeros((n, n))
        C = np.zeros((n, n))
        for e in self._elements:
            ia = self._node(e.node_a)
            ib = self._node(e.node_b)
            if e.kind == "R":
                g = 1.0 / e.value
                if ia >= 0:
                    G[ia, ia] += g
                if ib >= 0:
                    G[ib, ib] += g
                if ia >= 0 and ib >= 0:
                    G[ia, ib] -= g
                    G[ib, ia] -= g
            else:
                c = e.value
                if ia >= 0:
                    C[ia, ia] += c
                if ib >= 0:
                    C[ib, ib] += c
                if ia >= 0 and ib >= 0:
                    C[ia, ib] -= c
                    C[ib, ia] -= c
        return G, C, self.nodes

    def port_nodes(self) -> List[str]:
        """Driving-point nodes, ordered by net insertion order."""
        return [self.driver_nodes[net] for net in self.driver_nodes]

    def port_incidence(self) -> np.ndarray:
        """Incidence matrix ``B`` (nodes x ports) selecting the port nodes."""
        ports = self.port_nodes()
        B = np.zeros((self.num_nodes, len(ports)))
        for j, node in enumerate(ports):
            B[self._node_index[node], j] = 1.0
        return B

    def __repr__(self) -> str:
        return (
            f"CoupledRCNetwork({self.name!r}, {self.num_nodes} nodes, "
            f"{len(self._elements)} elements, nets={self.net_names})"
        )


def build_coupled_rc_network(
    geometry: ParallelBusGeometry,
    technology: Technology,
    num_segments: int = 10,
    name: Optional[str] = None,
) -> CoupledRCNetwork:
    """Discretise a parallel-bus geometry into a coupled RC ladder network.

    Each wire becomes a ladder of ``num_segments`` resistors; ground
    capacitance is split half-and-half onto the two nodes flanking each
    segment (a pi discretisation) and coupling capacitors connect the
    matching interior nodes of adjacent wires.
    """
    parasitics: CoupledSegmentParasitics = geometry.extract(technology, num_segments)
    network = CoupledRCNetwork(name or geometry.name)

    def node(net: str, index: int) -> str:
        return f"{net}:{index}"

    for w_index, wire in enumerate(geometry.wires):
        net = wire.name
        for seg in range(num_segments):
            a = node(net, seg)
            b = node(net, seg + 1)
            network.add_resistor(a, b, parasitics.segment_resistance[w_index][seg], net=net)
            half_cap = 0.5 * parasitics.segment_ground_cap[w_index][seg]
            network.add_capacitor(a, "0", half_cap, net=net)
            network.add_capacitor(b, "0", half_cap, net=net)
        network.set_ports(net, node(net, 0), node(net, num_segments))

    for pair_index, (i, j) in enumerate(geometry.adjacent_pairs()):
        net_i = geometry.wires[i].name
        net_j = geometry.wires[j].name
        for seg in range(num_segments):
            cc = parasitics.segment_coupling_cap[pair_index][seg]
            if cc <= 0.0:
                continue
            # Attach the segment's coupling capacitance between the far nodes
            # of the matching segments (consistent with the pi discretisation).
            network.add_capacitor(node(net_i, seg + 1), node(net_j, seg + 1), cc, net=net_i)
    return network
