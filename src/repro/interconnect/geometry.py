"""Wire geometry descriptions for noise clusters.

The paper's test case is "two 500 um parallel-running interconnects on metal
layer 4"; this module describes such structures parametrically: a set of
nets that run in parallel for some common length on a given layer, with
optional non-coupled extensions at either end.

The geometry is converted into electrical per-segment R/C values using the
per-layer coefficients of the :class:`~repro.technology.process.MetalLayer`
(our stand-in for a parasitic extractor).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..technology.process import MetalLayer, Technology

__all__ = ["WireSpec", "ParallelBusGeometry", "CoupledSegmentParasitics"]


@dataclass(frozen=True)
class WireSpec:
    """One wire (net) of a parallel bus.

    Attributes
    ----------
    name:
        Net name (used to derive circuit node names).
    length_um:
        Total routed length of this net in micrometres.
    coupled_length_um:
        Portion of the length that runs parallel (and couples) to its
        neighbours.  Defaults to the full length.
    width_factor:
        Drawn width as a multiple of the minimum width (wider wires have
        lower resistance and slightly higher ground capacitance).
    """

    name: str
    length_um: float
    coupled_length_um: Optional[float] = None
    width_factor: float = 1.0

    def __post_init__(self):
        if self.length_um <= 0:
            raise ValueError(f"wire {self.name}: length must be positive")
        coupled = self.coupled_length_um
        if coupled is None:
            object.__setattr__(self, "coupled_length_um", self.length_um)
        elif coupled < 0 or coupled > self.length_um:
            raise ValueError(
                f"wire {self.name}: coupled length must be within [0, length]"
            )
        if self.width_factor <= 0:
            raise ValueError(f"wire {self.name}: width_factor must be positive")


@dataclass(frozen=True)
class CoupledSegmentParasitics:
    """Per-segment electrical values of a discretised coupled bus.

    All lists are indexed by wire position in the owning geometry; coupling
    capacitances are stored per adjacent pair ``(i, i+1)``.
    """

    num_segments: int
    segment_resistance: Tuple[Tuple[float, ...], ...]
    segment_ground_cap: Tuple[Tuple[float, ...], ...]
    segment_coupling_cap: Tuple[Tuple[float, ...], ...]

    def total_resistance(self, wire_index: int) -> float:
        return sum(self.segment_resistance[wire_index])

    def total_ground_cap(self, wire_index: int) -> float:
        return sum(self.segment_ground_cap[wire_index])

    def total_coupling_cap(self, pair_index: int) -> float:
        return sum(self.segment_coupling_cap[pair_index])


@dataclass
class ParallelBusGeometry:
    """A bundle of parallel wires on one metal layer.

    Adjacent wires (in list order) couple to each other over their common
    coupled length; non-adjacent wires are assumed shielded by the wire in
    between (their direct coupling is neglected, as extractors typically do
    beyond the nearest neighbour).
    """

    wires: List[WireSpec]
    layer_index: int = 4
    spacing_factor: float = 1.0
    name: str = "bus"

    def __post_init__(self):
        if len(self.wires) < 1:
            raise ValueError("a bus needs at least one wire")
        if self.spacing_factor <= 0:
            raise ValueError("spacing_factor must be positive")
        names = [w.name for w in self.wires]
        if len(set(names)) != len(names):
            raise ValueError("wire names must be unique")

    @property
    def num_wires(self) -> int:
        return len(self.wires)

    def wire_index(self, name: str) -> int:
        for i, wire in enumerate(self.wires):
            if wire.name == name:
                return i
        raise KeyError(f"bus '{self.name}' has no wire '{name}'")

    def adjacent_pairs(self) -> List[Tuple[int, int]]:
        """Indices of directly adjacent (coupling) wire pairs."""
        return [(i, i + 1) for i in range(self.num_wires - 1)]

    # ------------------------------------------------------------ extraction

    def layer(self, technology: Technology) -> MetalLayer:
        return technology.layer(self.layer_index)

    def extract(
        self, technology: Technology, num_segments: int = 10
    ) -> CoupledSegmentParasitics:
        """Discretise the bus into ``num_segments`` coupled RC segments.

        Each wire is cut into equal-length segments.  Coupling capacitance is
        only present on segments that fall inside the common coupled length
        (centred on the wire), which approximates partially-coupled routes.
        """
        if num_segments < 1:
            raise ValueError("num_segments must be at least 1")
        layer = self.layer(technology)

        seg_res: List[Tuple[float, ...]] = []
        seg_gcap: List[Tuple[float, ...]] = []
        for wire in self.wires:
            seg_len = wire.length_um / num_segments
            r = layer.resistance(seg_len) / wire.width_factor
            # Wider wires gain area capacitance roughly linearly but keep the
            # same fringe term; use a 60/40 area/fringe split.
            cg = layer.ground_cap(seg_len) * (0.4 + 0.6 * wire.width_factor)
            seg_res.append(tuple([r] * num_segments))
            seg_gcap.append(tuple([cg] * num_segments))

        seg_ccap: List[Tuple[float, ...]] = []
        for i, j in self.adjacent_pairs():
            wire_i, wire_j = self.wires[i], self.wires[j]
            coupled_len = min(wire_i.coupled_length_um, wire_j.coupled_length_um)
            ref_len = max(wire_i.length_um, wire_j.length_um)
            seg_len = ref_len / num_segments
            total_cc = layer.coupling_cap(coupled_len, self.spacing_factor)
            # Distribute the total coupling capacitance over the centred
            # fraction of segments that are actually coupled.
            coupled_fraction = coupled_len / ref_len if ref_len > 0 else 0.0
            n_coupled = max(1, int(round(coupled_fraction * num_segments)))
            start = (num_segments - n_coupled) // 2
            per_seg = total_cc / n_coupled
            values = [0.0] * num_segments
            for k in range(start, start + n_coupled):
                values[k] = per_seg
            seg_ccap.append(tuple(values))

        return CoupledSegmentParasitics(
            num_segments=num_segments,
            segment_resistance=tuple(seg_res),
            segment_ground_cap=tuple(seg_gcap),
            segment_coupling_cap=tuple(seg_ccap),
        )

    # ------------------------------------------------------------ constructors

    @classmethod
    def two_parallel_wires(
        cls,
        length_um: float = 500.0,
        layer_index: int = 4,
        victim_name: str = "victim",
        aggressor_name: str = "aggressor",
        spacing_factor: float = 1.0,
    ) -> "ParallelBusGeometry":
        """The paper's Table-1 structure: two parallel wires of equal length."""
        return cls(
            wires=[
                WireSpec(aggressor_name, length_um),
                WireSpec(victim_name, length_um),
            ],
            layer_index=layer_index,
            spacing_factor=spacing_factor,
            name="two_parallel_wires",
        )

    @classmethod
    def victim_between_aggressors(
        cls,
        length_um: float = 500.0,
        layer_index: int = 4,
        victim_name: str = "victim",
        aggressor_names: Sequence[str] = ("aggr1", "aggr2"),
        spacing_factor: float = 1.0,
    ) -> "ParallelBusGeometry":
        """A victim wire sandwiched between two aggressors (Table-2 style)."""
        if len(aggressor_names) != 2:
            raise ValueError("victim_between_aggressors needs exactly two aggressor names")
        return cls(
            wires=[
                WireSpec(aggressor_names[0], length_um),
                WireSpec(victim_name, length_um),
                WireSpec(aggressor_names[1], length_um),
            ],
            layer_index=layer_index,
            spacing_factor=spacing_factor,
            name="victim_between_aggressors",
        )
