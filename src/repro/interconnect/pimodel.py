"""Reduced driving-point models: O'Brien-Savarino pi and the coupled S-model.

The paper represents the interconnect of a noise cluster *at the driving
points* with a coupled reduced model obtained by moment matching ([8]).  This
module implements that reduction in two steps:

1. For every net, the driving-point admittance moments ``y1, y2, y3`` (with
   the other nets' driving points shorted) are matched by the classical
   O'Brien-Savarino pi model: a near capacitance ``C1`` at the driving point,
   a resistance ``R`` and a far capacitance ``C2``.

2. The inter-net coupling -- whose total value equals minus the first mutual
   admittance moment ``y1_ij`` -- is re-attached between the pi nodes of the
   two nets.  The coupling capacitance is split over the near/far node pairs
   proportionally to each net's own near/far capacitance split, and the same
   amounts are removed from the ground capacitances so that the total
   capacitance seen from every driving point (the first moment) is preserved
   exactly.

The resulting :class:`CoupledPiModel` realises itself as a new (much smaller)
:class:`~repro.interconnect.rcnetwork.CoupledRCNetwork`, so downstream code
can treat the reduced and the full wiring interchangeably.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from .moments import admittance_moments
from .rcnetwork import CoupledRCNetwork

__all__ = ["PiModel", "CoupledPiModel", "reduce_to_coupled_pi"]


@dataclass(frozen=True)
class PiModel:
    """A single-port O'Brien-Savarino pi model (near C, series R, far C)."""

    c_near: float
    resistance: float
    c_far: float

    @property
    def total_capacitance(self) -> float:
        return self.c_near + self.c_far

    @classmethod
    def from_moments(cls, y1: float, y2: float, y3: float) -> "PiModel":
        """Build the pi model matching the first three admittance moments.

        For a driving-point admittance ``Y(s) = y1 s + y2 s^2 + y3 s^3 + ...``
        of an RC network (``y1 > 0``, ``y2 < 0``, ``y3 > 0``) the matching
        values are::

            C_far = y2^2 / y3
            R     = - y3^2 / y2^3
            C_near = y1 - C_far

        Degenerate cases (purely capacitive loads, vanishing higher moments)
        fall back to a single lumped capacitance.
        """
        if y1 <= 0.0:
            return cls(0.0, 1.0, 0.0)
        if abs(y3) < 1e-45 or abs(y2) < 1e-40:
            return cls(y1, 1.0, 0.0)
        c_far = (y2 * y2) / y3
        resistance = -(y3 * y3) / (y2 * y2 * y2)
        c_near = y1 - c_far
        if c_far <= 0.0 or resistance <= 0.0 or c_near < 0.0 or c_far > y1:
            # Moments outside the realisable range (can happen for very
            # resistively-shielded or near-lumped nets): keep it lumped.
            return cls(y1, 1.0, 0.0)
        return cls(c_near, resistance, c_far)

    def admittance_moments(self) -> Tuple[float, float, float]:
        """The first three admittance moments of the realised pi model."""
        c1, r, c2 = self.c_near, self.resistance, self.c_far
        y1 = c1 + c2
        y2 = -r * c2 * c2
        y3 = r * r * c2 * c2 * c2
        return y1, y2, y3

    @property
    def far_fraction(self) -> float:
        """Fraction of the total capacitance sitting at the far node."""
        total = self.total_capacitance
        return self.c_far / total if total > 0.0 else 0.0


class CoupledPiModel:
    """Reduced coupled driving-point model of a multi-net noise cluster."""

    def __init__(
        self,
        nets: List[str],
        pi_models: Dict[str, PiModel],
        coupling: Dict[Tuple[str, str], float],
        source_network: Optional[CoupledRCNetwork] = None,
    ):
        self.nets = list(nets)
        self.pi_models = dict(pi_models)
        #: Total coupling capacitance per unordered net pair.
        self.coupling = {tuple(sorted(k)): v for k, v in coupling.items()}
        self.source_network = source_network

    def pi(self, net: str) -> PiModel:
        return self.pi_models[net]

    def coupling_between(self, net_a: str, net_b: str) -> float:
        return self.coupling.get(tuple(sorted((net_a, net_b))), 0.0)

    # -------------------------------------------------------------- realisation

    def driver_node(self, net: str) -> str:
        return f"{net}:dp"

    def far_node(self, net: str) -> str:
        return f"{net}:far"

    def realize(self, name: str = "reduced_wiring") -> CoupledRCNetwork:
        """Realise the reduced model as a small RC network.

        Per net: ``C_near`` at the driving point node ``<net>:dp``, the series
        resistance to ``<net>:far`` and ``C_far`` there.  Coupling capacitors
        connect the near/far node pairs of coupled nets, with the same amount
        subtracted from the ground capacitances so the total capacitance per
        driving point is preserved.
        """
        network = CoupledRCNetwork(name)

        ground_caps: Dict[Tuple[str, str], float] = {}
        for net in self.nets:
            pi = self.pi_models[net]
            ground_caps[(net, "near")] = pi.c_near
            ground_caps[(net, "far")] = pi.c_far

        coupling_elements: List[Tuple[str, str, float]] = []
        for (net_a, net_b), cc_total in self.coupling.items():
            if cc_total <= 0.0:
                continue
            frac_a = self.pi_models[net_a].far_fraction
            frac_b = self.pi_models[net_b].far_fraction
            split = {
                ("near", "near"): (1.0 - frac_a) * (1.0 - frac_b),
                ("near", "far"): (1.0 - frac_a) * frac_b,
                ("far", "near"): frac_a * (1.0 - frac_b),
                ("far", "far"): frac_a * frac_b,
            }
            for (side_a, side_b), fraction in split.items():
                cc = cc_total * fraction
                if cc <= 0.0:
                    continue
                node_a = self.driver_node(net_a) if side_a == "near" else self.far_node(net_a)
                node_b = self.driver_node(net_b) if side_b == "near" else self.far_node(net_b)
                coupling_elements.append((node_a, node_b, cc))
                # Preserve the total capacitance seen from each driving point:
                # the coupling capacitor (neighbour shorted in the moment
                # computation) replaces ground capacitance on both sides.
                ground_caps[(net_a, side_a)] -= cc
                ground_caps[(net_b, side_b)] -= cc

        for net in self.nets:
            pi = self.pi_models[net]
            dp = self.driver_node(net)
            far = self.far_node(net)
            network.add_resistor(dp, far, pi.resistance, net=net)
            c_near = max(ground_caps[(net, "near")], 0.0)
            c_far = max(ground_caps[(net, "far")], 0.0)
            network.add_capacitor(dp, "0", c_near, net=net)
            network.add_capacitor(far, "0", c_far, net=net)
            network.set_ports(net, dp, far)

        for node_a, node_b, cc in coupling_elements:
            net_a = node_a.split(":")[0]
            network.add_capacitor(node_a, node_b, cc, net=net_a)
        return network

    def summary(self) -> str:
        lines = ["CoupledPiModel:"]
        for net in self.nets:
            pi = self.pi_models[net]
            lines.append(
                f"  {net}: C_near={pi.c_near / 1e-15:.2f} fF, R={pi.resistance:.1f} ohm, "
                f"C_far={pi.c_far / 1e-15:.2f} fF"
            )
        for (a, b), cc in sorted(self.coupling.items()):
            lines.append(f"  coupling {a}<->{b}: {cc / 1e-15:.2f} fF")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"CoupledPiModel(nets={self.nets})"


def reduce_to_coupled_pi(network: CoupledRCNetwork) -> CoupledPiModel:
    """Reduce a coupled RC network to its coupled pi (S-model) representation.

    The per-net pi models are matched to the diagonal driving-point
    admittance moments; the net-to-net coupling totals come from the first
    mutual moments (``-y1_ij``).
    """
    nets = network.net_names
    if not nets:
        raise ValueError("network has no ports/nets to reduce")
    moments = admittance_moments(network, num_moments=4)
    y1, y2, y3 = moments[1], moments[2], moments[3]

    pi_models: Dict[str, PiModel] = {}
    for index, net in enumerate(nets):
        pi_models[net] = PiModel.from_moments(
            float(y1[index, index]), float(y2[index, index]), float(y3[index, index])
        )

    coupling: Dict[Tuple[str, str], float] = {}
    for i, net_i in enumerate(nets):
        for j in range(i + 1, len(nets)):
            net_j = nets[j]
            cc = -float(y1[i, j])
            if cc > 1e-21:
                coupling[(net_i, net_j)] = cc

    return CoupledPiModel(nets, pi_models, coupling, source_network=network)
