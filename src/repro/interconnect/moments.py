"""Moment computation for coupled RC networks.

The reduction used by the paper's macromodel represents the coupled
interconnect at the driving points with a model "obtained with
moment-matching techniques" ([8]).  This module computes those moments:

* :func:`admittance_moments` -- the Taylor coefficients ``Y_k`` of the port
  admittance matrix ``Y(s) = Y_0 + Y_1 s + Y_2 s^2 + ...`` seen from the
  driving points with all other ports short-circuited (the standard
  formulation for driving-point reductions);
* :func:`transfer_moments` -- voltage-transfer moments from a driven port to
  any observation node (the first moment is the Elmore delay), used for
  verification and for receiver-side estimates.

Both are computed from the bordered MNA system

    [G  -B] [v]        [C  0] [v]   [0]
    [B'  0] [i]  +  s  [0  0] [i] = [e]

where ``B`` is the port incidence matrix and ``e`` the port voltage
excitation; the series expansion ``x(s) = sum_k x_k s^k`` follows from
``A0 x_0 = b`` and ``A0 x_k = -A1 x_{k-1}``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from .rcnetwork import CoupledRCNetwork

__all__ = ["admittance_moments", "transfer_moments", "elmore_delay", "total_port_capacitance"]


def _bordered_system(network: CoupledRCNetwork) -> Tuple[np.ndarray, np.ndarray, List[str], int]:
    """Build the bordered matrices ``A0``, ``A1`` for the port-driven network."""
    G, C, nodes = network.matrices()
    B = network.port_incidence()
    n = G.shape[0]
    p = B.shape[1]
    A0 = np.zeros((n + p, n + p))
    A1 = np.zeros((n + p, n + p))
    A0[:n, :n] = G
    A0[:n, n:] = -B
    A0[n:, :n] = B.T
    A1[:n, :n] = C
    return A0, A1, nodes, p


def admittance_moments(network: CoupledRCNetwork, num_moments: int = 4) -> List[np.ndarray]:
    """Port admittance matrix moments ``[Y_0, Y_1, ..., Y_{num_moments-1}]``.

    ``Y_k`` has shape ``(num_ports, num_ports)`` with ports ordered as
    :meth:`CoupledRCNetwork.port_nodes`.  For a pure RC network with no DC
    path to ground ``Y_0`` is numerically zero, ``Y_1`` is the capacitance
    matrix seen from the ports and higher moments carry the resistive
    shielding information used by the pi-model reduction.
    """
    if num_moments < 1:
        raise ValueError("num_moments must be at least 1")
    A0, A1, _nodes, p = _bordered_system(network)
    n_total = A0.shape[0]
    n = n_total - p

    lu_solve = _make_solver(A0)

    moments = [np.zeros((p, p)) for _ in range(num_moments)]
    for j in range(p):
        b = np.zeros(n_total)
        b[n + j] = 1.0  # unit voltage at port j, others shorted (0 V)
        x = lu_solve(b)
        moments[0][:, j] = x[n:]
        for k in range(1, num_moments):
            x = lu_solve(-A1 @ x)
            moments[k][:, j] = x[n:]
    return moments


def transfer_moments(
    network: CoupledRCNetwork,
    driven_net: str,
    observe_node: str,
    num_moments: int = 3,
) -> List[float]:
    """Voltage-transfer moments from a driven port to an observation node.

    The driven net's port is excited with a unit voltage, all other ports are
    short-circuited, and the voltage of ``observe_node`` is expanded in
    powers of ``s``.  The zeroth moment is 1 for nodes on the driven net and
    0 elsewhere; minus the first moment of a node on the driven net is its
    Elmore delay from the driving point (for the ideal-driver case).
    """
    A0, A1, nodes, p = _bordered_system(network)
    n = len(nodes)
    ports = network.port_nodes()
    try:
        port_index = ports.index(network.driver_nodes[driven_net])
    except KeyError as exc:
        raise KeyError(f"network has no net '{driven_net}'") from exc
    observe_norm = observe_node.strip().lower()
    try:
        observe_index = nodes.index(observe_norm)
    except ValueError as exc:
        raise KeyError(f"network has no node '{observe_node}'") from exc

    lu_solve = _make_solver(A0)
    b = np.zeros(n + p)
    b[n + port_index] = 1.0
    x = lu_solve(b)
    result = [float(x[observe_index])]
    for _ in range(1, num_moments):
        x = lu_solve(-A1 @ x)
        result.append(float(x[observe_index]))
    return result


def elmore_delay(network: CoupledRCNetwork, net: str, observe_node: Optional[str] = None) -> float:
    """Elmore delay (seconds) from the driving point of ``net`` to a node.

    ``observe_node`` defaults to the net's receiver node.  The value assumes
    an ideal (zero-impedance) driver at the driving point; add
    ``R_driver * C_total`` for a resistive driver.
    """
    target = observe_node or network.receiver_nodes[net]
    moments = transfer_moments(network, net, target, num_moments=2)
    return -moments[1]


def total_port_capacitance(network: CoupledRCNetwork) -> np.ndarray:
    """Total capacitance matrix seen from the ports (the first moment ``Y_1``)."""
    return admittance_moments(network, num_moments=2)[1]


def _make_solver(A: np.ndarray):
    """Return a reusable dense solver for repeated right-hand sides."""
    from scipy.linalg import lu_factor, lu_solve

    factorisation = lu_factor(A)

    def solve(rhs: np.ndarray) -> np.ndarray:
        return lu_solve(factorisation, rhs)

    return solve
