"""Scalable synthetic interconnect generators for benchmarks and tests.

The geometry-driven extractor (:func:`~repro.interconnect.rcnetwork.
build_coupled_rc_network`) produces networks sized like the paper's noise
clusters -- tens of nodes.  Exercising the sparse solver backend needs
victims three orders of magnitude larger, with controllable structure:

* :func:`make_rc_ladder` -- a series RC ladder (the canonical extracted-net
  shape: tridiagonal MNA structure, the sparse best case);
* :func:`make_rc_mesh` -- a 2-D resistive grid with ground capacitance per
  node (power-grid / plate-like routing: bandwidth ~ ``cols``, a harder
  sparsity pattern than the ladder);
* :func:`make_rc_tree` -- a balanced RC routing tree (clock/fanout
  topology, the widest pole spread of the set);
* :func:`make_coupled_pair` -- victim and aggressor ladders coupled rung by
  rung, the scalable version of the paper's two-wire noise cluster;
* :func:`make_driven_circuit` -- wraps a single-net network into a
  ready-to-run :class:`~repro.circuit.netlist.Circuit` with a Thevenin
  (saturated-ramp) driver at the network's driver port and a holding
  resistor at the far end;
* :func:`make_victim_aggressor_circuit` -- the two-net equivalent: ramped
  aggressor, quietly-held victim, glitch observable at the victim ports.

All values default to plausible on-chip magnitudes (ohms per segment,
femtofarads per node) so the resulting time constants sit in the
picosecond range the rest of the library simulates.
"""

from __future__ import annotations

from typing import Optional

from ..circuit.netlist import Circuit
from ..circuit.sources import SaturatedRamp
from ..units import fF, ps
from .rcnetwork import CoupledRCNetwork

__all__ = [
    "make_rc_ladder",
    "make_rc_mesh",
    "make_rc_tree",
    "make_coupled_pair",
    "make_driven_circuit",
    "make_victim_aggressor_circuit",
]


def make_rc_ladder(
    num_nodes: int,
    *,
    segment_resistance: float = 120.0,
    node_capacitance: float = fF(4),
    coupling_capacitance: float = 0.0,
    net: str = "vic",
    name: Optional[str] = None,
) -> CoupledRCNetwork:
    """A series RC ladder with ``num_nodes`` non-driver nodes.

    Nodes follow the extractor's ``<net>:<index>`` convention: the driver
    port is ``<net>:0`` and the receiver port ``<net>:<num_nodes>``.  Each
    of the ``num_nodes`` segments contributes ``segment_resistance`` in
    series and ``node_capacitance`` to ground at its far node; a non-zero
    ``coupling_capacitance`` additionally bridges each segment (the
    fringing-cap pattern of the characterisation workloads).
    """
    if num_nodes < 1:
        raise ValueError(f"num_nodes must be at least 1, got {num_nodes}")
    network = CoupledRCNetwork(name or f"ladder_{num_nodes}")
    for index in range(num_nodes):
        a, b = f"{net}:{index}", f"{net}:{index + 1}"
        network.add_resistor(a, b, segment_resistance, net=net)
        network.add_capacitor(b, "0", node_capacitance, net=net)
        if coupling_capacitance > 0.0:
            network.add_capacitor(a, b, coupling_capacitance, net=net)
    network.set_ports(net, f"{net}:0", f"{net}:{num_nodes}")
    return network


def make_rc_mesh(
    rows: int,
    cols: int,
    *,
    segment_resistance: float = 60.0,
    node_capacitance: float = fF(2),
    net: str = "mesh",
    name: Optional[str] = None,
) -> CoupledRCNetwork:
    """A ``rows x cols`` resistive grid with ground capacitance per node.

    Node ``<net>:r.c`` connects to its right and down neighbours through
    ``segment_resistance``; every node carries ``node_capacitance`` to
    ground.  The driver port is the top-left corner ``<net>:0.0`` and the
    receiver port the opposite corner -- the longest path through the grid.
    """
    if rows < 1 or cols < 1:
        raise ValueError(f"mesh needs at least 1x1 nodes, got {rows}x{cols}")
    network = CoupledRCNetwork(name or f"mesh_{rows}x{cols}")

    def node(r: int, c: int) -> str:
        return f"{net}:{r}.{c}"

    for r in range(rows):
        for c in range(cols):
            network.add_capacitor(node(r, c), "0", node_capacitance, net=net)
            if c + 1 < cols:
                network.add_resistor(node(r, c), node(r, c + 1), segment_resistance, net=net)
            if r + 1 < rows:
                network.add_resistor(node(r, c), node(r + 1, c), segment_resistance, net=net)
    network.set_ports(net, node(0, 0), node(rows - 1, cols - 1))
    return network


def make_rc_tree(
    num_nodes: int,
    *,
    branching: int = 2,
    segment_resistance: float = 100.0,
    node_capacitance: float = fF(3),
    net: str = "tree",
    name: Optional[str] = None,
) -> CoupledRCNetwork:
    """An RC routing tree with ``num_nodes`` non-driver nodes.

    Node ``<net>:k`` (``k >= 1``) hangs off its heap parent
    ``<net>:(k-1)//branching`` through ``segment_resistance`` and carries
    ``node_capacitance`` to ground -- a balanced ``branching``-ary clock- or
    fanout-tree topology (``branching=1`` degenerates to the ladder).  The
    driver port is the root ``<net>:0``; the receiver port is the last node
    ``<net>:<num_nodes>``, one of the deepest leaves.
    """
    if num_nodes < 1:
        raise ValueError(f"num_nodes must be at least 1, got {num_nodes}")
    if branching < 1:
        raise ValueError(f"branching must be at least 1, got {branching}")
    network = CoupledRCNetwork(name or f"tree_{num_nodes}")
    for index in range(1, num_nodes + 1):
        parent = (index - 1) // branching
        network.add_resistor(
            f"{net}:{parent}", f"{net}:{index}", segment_resistance, net=net
        )
        network.add_capacitor(f"{net}:{index}", "0", node_capacitance, net=net)
    network.set_ports(net, f"{net}:0", f"{net}:{num_nodes}")
    return network


def make_coupled_pair(
    num_nodes: int,
    *,
    segment_resistance: float = 120.0,
    node_capacitance: float = fF(4),
    coupling_capacitance: float = fF(2),
    victim_net: str = "vic",
    aggressor_net: str = "agg",
    name: Optional[str] = None,
) -> CoupledRCNetwork:
    """Two parallel RC ladders coupled rung by rung (the crosstalk pair).

    The victim and aggressor ladders follow :func:`make_rc_ladder`'s node
    convention, with ``coupling_capacitance`` bridging every same-index node
    pair -- the distributed coupling structure of the paper's two-wire noise
    clusters, scalable to thousands of nodes.  Both nets get driver/receiver
    ports (``<net>:0`` / ``<net>:<num_nodes>``).
    """
    if num_nodes < 1:
        raise ValueError(f"num_nodes must be at least 1, got {num_nodes}")
    if coupling_capacitance < 0.0:
        raise ValueError("coupling_capacitance must be non-negative")
    network = CoupledRCNetwork(name or f"pair_{num_nodes}")
    for local_net in (victim_net, aggressor_net):
        for index in range(num_nodes):
            a, b = f"{local_net}:{index}", f"{local_net}:{index + 1}"
            network.add_resistor(a, b, segment_resistance, net=local_net)
            network.add_capacitor(b, "0", node_capacitance, net=local_net)
        network.set_ports(local_net, f"{local_net}:0", f"{local_net}:{num_nodes}")
    if coupling_capacitance > 0.0:
        for index in range(1, num_nodes + 1):
            network.add_capacitor(
                f"{victim_net}:{index}",
                f"{aggressor_net}:{index}",
                coupling_capacitance,
                net=victim_net,
            )
    return network


def make_driven_circuit(
    network: CoupledRCNetwork,
    *,
    net: Optional[str] = None,
    thevenin_resistance: float = 200.0,
    holding_resistance: float = 5e4,
    swing: float = 1.2,
    delay: float = ps(50),
    transition: float = ps(40),
    gmin: float = 1e-12,
) -> Circuit:
    """Instantiate ``network`` into a circuit with a Thevenin ramp driver.

    The driver (a :class:`~repro.circuit.sources.SaturatedRamp` of
    amplitude ``swing`` behind ``thevenin_resistance``) attaches to the
    ``net``'s driver port (default: the network's first net) and a holding
    resistor ties the receiver port to ground, so the circuit is linear,
    well-conditioned and fast-path eligible at any size.
    """
    nets = network.net_names
    if not nets:
        raise ValueError(f"network '{network.name}' has no port nets")
    net = net if net is not None else nets[0]
    if net not in network.driver_nodes:
        raise KeyError(f"network '{network.name}' has no net {net!r} (nets: {nets})")

    circuit = Circuit(f"driven_{network.name}", gmin=gmin)
    circuit.add_voltage_source(
        "VTH", "drv", "0", SaturatedRamp(0.0, swing, delay=delay, transition=transition)
    )
    circuit.add_resistor("RTH", "drv", network.driver_nodes[net], thevenin_resistance)
    network.instantiate(circuit)
    circuit.add_resistor("RHOLD", network.receiver_nodes[net], "0", holding_resistance)
    return circuit


def make_victim_aggressor_circuit(
    network: CoupledRCNetwork,
    *,
    victim_net: str = "vic",
    aggressor_net: str = "agg",
    aggressor_resistance: float = 200.0,
    victim_resistance: float = 500.0,
    holding_resistance: float = 5e4,
    swing: float = 1.2,
    delay: float = ps(50),
    transition: float = ps(40),
    gmin: float = 1e-12,
) -> Circuit:
    """Instantiate a coupled pair into the canonical crosstalk circuit.

    The aggressor net gets a saturated-ramp Thevenin driver; the victim net
    is held quiet by ``victim_resistance`` to ground at its driver port and
    ``holding_resistance`` at its receiver, so the voltage observed on the
    victim is purely the coupled glitch.  Works with any network exposing
    both port nets (typically :func:`make_coupled_pair`).
    """
    for required in (victim_net, aggressor_net):
        if required not in network.driver_nodes:
            raise KeyError(
                f"network '{network.name}' has no net {required!r} "
                f"(nets: {network.net_names})"
            )
    circuit = Circuit(f"xtalk_{network.name}", gmin=gmin)
    circuit.add_voltage_source(
        "VAGG", "agg_drv", "0",
        SaturatedRamp(0.0, swing, delay=delay, transition=transition),
    )
    circuit.add_resistor(
        "RAGG", "agg_drv", network.driver_nodes[aggressor_net], aggressor_resistance
    )
    network.instantiate(circuit)
    circuit.add_resistor(
        "RVIC", network.driver_nodes[victim_net], "0", victim_resistance
    )
    circuit.add_resistor(
        "RHOLD_V", network.receiver_nodes[victim_net], "0", holding_resistance
    )
    circuit.add_resistor(
        "RHOLD_A", network.receiver_nodes[aggressor_net], "0", holding_resistance
    )
    return circuit
