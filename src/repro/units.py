"""Unit helpers and physical constants used across the library.

All internal quantities are kept in SI units (volts, amperes, ohms, farads,
seconds, metres).  The helpers in this module exist so that user-facing code
and tests can express values in the units EDA engineers normally use
(picoseconds, femtofarads, micrometres, ...) without sprinkling powers of ten
everywhere.
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Metric prefixes
# ---------------------------------------------------------------------------

FEMTO = 1e-15
PICO = 1e-12
NANO = 1e-9
MICRO = 1e-6
MILLI = 1e-3
KILO = 1e3
MEGA = 1e6
GIGA = 1e9


# ---------------------------------------------------------------------------
# Time
# ---------------------------------------------------------------------------

def ps(value: float) -> float:
    """Convert picoseconds to seconds."""
    return value * PICO


def ns(value: float) -> float:
    """Convert nanoseconds to seconds."""
    return value * NANO


def us(value: float) -> float:
    """Convert microseconds to seconds."""
    return value * MICRO


def to_ps(seconds: float) -> float:
    """Convert seconds to picoseconds."""
    return seconds / PICO


def to_ns(seconds: float) -> float:
    """Convert seconds to nanoseconds."""
    return seconds / NANO


# ---------------------------------------------------------------------------
# Capacitance
# ---------------------------------------------------------------------------

def fF(value: float) -> float:  # noqa: N802 - conventional EDA unit name
    """Convert femtofarads to farads."""
    return value * FEMTO


def pF(value: float) -> float:  # noqa: N802
    """Convert picofarads to farads."""
    return value * PICO


def to_fF(farads: float) -> float:  # noqa: N802
    """Convert farads to femtofarads."""
    return farads / FEMTO


# ---------------------------------------------------------------------------
# Resistance
# ---------------------------------------------------------------------------

def kohm(value: float) -> float:
    """Convert kilo-ohms to ohms."""
    return value * KILO


def ohm(value: float) -> float:
    """Identity helper for readability."""
    return value


# ---------------------------------------------------------------------------
# Length
# ---------------------------------------------------------------------------

def um(value: float) -> float:
    """Convert micrometres to metres."""
    return value * MICRO


def nm(value: float) -> float:
    """Convert nanometres to metres."""
    return value * NANO


def to_um(metres: float) -> float:
    """Convert metres to micrometres."""
    return metres / MICRO


# ---------------------------------------------------------------------------
# Voltage / current
# ---------------------------------------------------------------------------

def mV(value: float) -> float:  # noqa: N802
    """Convert millivolts to volts."""
    return value * MILLI


def to_mV(volts: float) -> float:  # noqa: N802
    """Convert volts to millivolts."""
    return volts / MILLI


def uA(value: float) -> float:  # noqa: N802
    """Convert microamperes to amperes."""
    return value * MICRO


def mA(value: float) -> float:  # noqa: N802
    """Convert milliamperes to amperes."""
    return value * MILLI


# ---------------------------------------------------------------------------
# Derived / composite units used in noise analysis
# ---------------------------------------------------------------------------

def v_ps(value: float) -> float:
    """Convert a noise area expressed in V*ps to V*s."""
    return value * PICO


def to_v_ps(volt_seconds: float) -> float:
    """Convert a noise area expressed in V*s to V*ps (the paper's unit)."""
    return volt_seconds / PICO


# ---------------------------------------------------------------------------
# Physical constants
# ---------------------------------------------------------------------------

BOLTZMANN = 1.380649e-23
"""Boltzmann constant in J/K."""

ELECTRON_CHARGE = 1.602176634e-19
"""Elementary charge in coulombs."""

ROOM_TEMPERATURE_K = 300.0
"""Default simulation temperature in kelvin."""

def thermal_voltage(temperature_k: float = ROOM_TEMPERATURE_K) -> float:
    """Thermal voltage kT/q at the given temperature (volts)."""
    return BOLTZMANN * temperature_k / ELECTRON_CHARGE
