"""Persistent on-disk characterisation cache.

Characterising a cell arc costs dozens to hundreds of circuit simulations,
and the in-memory cache of :class:`~repro.characterization.characterizer.
LibraryCharacterizer` dies with the process.  This module persists every
characterised model to disk so the results are shared across worker
processes of a scenario sweep and across CI runs:

* entries are keyed by a SHA-256 **content hash** of the technology
  fingerprint (every device / metal parameter that shapes the result -- corner
  and Monte-Carlo variation included) plus the characteriser's exact key
  tuple, so a stale entry can never be returned for changed parameters;
* each entry is one ``.npz`` file (numpy arrays plus a JSON metadata blob)
  written atomically (temp file + ``os.replace``), so a crashed or killed
  writer can never leave a half-entry behind under the final name;
* corrupted or truncated entries (e.g. from a torn copy) are detected on
  load, dropped and transparently recomputed.

The cache directory defaults to ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``
(see :func:`default_cache_dir`).
"""

from __future__ import annotations

import dataclasses
import hashlib
import io
import json
import os
import tempfile
import time
import zipfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Type

import numpy as np

from ..technology.library import CellLibrary
from ..technology.process import Technology
from .loadsurface import VCCSLoadSurface
from .nrc import NoiseRejectionCurve
from .propagation import NoisePropagationTable
from .thevenin import TheveninDriverModel

__all__ = [
    "MISSING",
    "DiskCacheStats",
    "PersistentCharacterizationCache",
    "canonical_payload",
    "content_hash",
    "default_cache_dir",
    "library_fingerprint",
    "technology_fingerprint",
]

#: Sentinel returned by :meth:`PersistentCharacterizationCache.get` on a miss
#: (``None`` could in principle be a cached value).
MISSING = object()

#: Environment variable overriding the default cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Format version embedded in every entry; bump to invalidate old caches.
_FORMAT_VERSION = 1

#: Serialisable characterisation model classes, by stable tag.
_MODEL_CLASSES: Dict[str, Type] = {
    "vccs": VCCSLoadSurface,
    "thevenin": TheveninDriverModel,
    "prop": NoisePropagationTable,
    "nrc": NoiseRejectionCurve,
}
_MODEL_TAGS = {cls: tag for tag, cls in _MODEL_CLASSES.items()}


def default_cache_dir() -> Path:
    """The cache directory: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env).expanduser()
    return Path("~/.cache/repro").expanduser()


def _canonical(value: Any) -> Any:
    """Recursively convert a cache key / fingerprint into JSON-stable form."""
    if isinstance(value, (tuple, list)):
        return [_canonical(item) for item in value]
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in sorted(value.items())}
    if isinstance(value, (np.floating, np.integer)):
        return value.item()
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return repr(value)


def canonical_payload(value: Any) -> Any:
    """Public alias of the cache's JSON-stable canonicalisation.

    The analysis service reuses the exact same canonical form for its
    cluster fingerprints (see :mod:`repro.service.fingerprint`), so both
    hashing schemes stay byte-compatible by construction.
    """
    return _canonical(value)


def content_hash(payload: Any) -> str:
    """SHA-256 hex digest of ``payload`` in canonical JSON form.

    This is the single hashing primitive behind technology / library
    fingerprints, persistent-cache entry names and service job
    fingerprints.
    """
    blob = json.dumps(_canonical(payload), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def technology_fingerprint(technology: Technology) -> str:
    """A stable hash of everything in a technology that characterisation sees.

    Covers the supply, the sizing rules, both device model cards and the
    full metal stack, so corner scaling and Monte-Carlo parameter variation
    each produce a distinct fingerprint (and therefore distinct cache
    entries) even when the technology *name* collides.
    """
    return content_hash(dataclasses.asdict(technology))


def library_fingerprint(library: CellLibrary) -> str:
    """A stable hash of a cell library: technology plus cell definitions.

    The characterisation keys identify cells only by *name*, but a
    :class:`StandardCell` is not derivable from the technology -- two
    libraries in the same technology can define different cells under the
    same name (custom strengths, different pull networks).  Mixing the full
    structural definition of every cell into the fingerprint guarantees a
    persistent-cache entry is only ever returned for the exact library that
    produced it.
    """
    cells = {
        cell.name: {
            "pull_down": repr(cell.pull_down),
            "strength": cell.strength,
            "stage1_strength": cell.stage1_strength,
            "output_pin": cell.output_pin,
            "output_stage_inverter": cell.output_stage_inverter,
        }
        for cell in library
    }
    payload = {
        "technology": dataclasses.asdict(library.technology),
        "cells": cells,
    }
    return content_hash(payload)


def _entry_hash(fingerprint: str, key: Tuple) -> str:
    return content_hash(
        {"format": _FORMAT_VERSION, "technology": fingerprint, "key": key}
    )


def _model_to_payload(value: Any) -> Tuple[Dict[str, np.ndarray], Dict[str, Any]]:
    """Split a characterisation dataclass into arrays and JSON-able metadata."""
    arrays: Dict[str, np.ndarray] = {}
    meta: Dict[str, Any] = {}
    for f in dataclasses.fields(value):
        item = getattr(value, f.name)
        if isinstance(item, np.ndarray):
            arrays[f.name] = item
        else:
            meta[f.name] = _canonical(item)
    return arrays, meta


def _tuplize(value: Any) -> Any:
    """Convert JSON lists back to the tuples the frozen dataclasses expect."""
    if isinstance(value, list):
        return tuple(_tuplize(item) for item in value)
    return value


def _model_from_payload(cls: Type, arrays: Dict[str, np.ndarray], meta: Dict[str, Any]):
    kwargs: Dict[str, Any] = {name: _tuplize(item) for name, item in meta.items()}
    kwargs.update(arrays)
    field_names = {f.name for f in dataclasses.fields(cls)}
    if set(kwargs) != field_names:
        raise ValueError(
            f"cache entry fields {sorted(kwargs)} do not match {cls.__name__} "
            f"fields {sorted(field_names)}"
        )
    return cls(**kwargs)


@dataclass
class DiskCacheStats:
    """Hit/miss/store accounting of one cache instance (per kind)."""

    hits: Dict[str, int] = field(default_factory=dict)
    misses: Dict[str, int] = field(default_factory=dict)
    stores: Dict[str, int] = field(default_factory=dict)
    #: Entries dropped because they could not be read back (corruption,
    #: truncation, format drift); each one falls back to a recompute.
    corrupt_dropped: int = 0
    #: Failed best-effort writes (e.g. read-only cache dir).
    store_failures: int = 0

    def _bump(self, counter: Dict[str, int], kind: str) -> None:
        counter[kind] = counter.get(kind, 0) + 1

    def hit_count(self, kind: Optional[str] = None) -> int:
        return self.hits.get(kind, 0) if kind else sum(self.hits.values())

    def miss_count(self, kind: Optional[str] = None) -> int:
        return self.misses.get(kind, 0) if kind else sum(self.misses.values())

    def store_count(self, kind: Optional[str] = None) -> int:
        return self.stores.get(kind, 0) if kind else sum(self.stores.values())

    def snapshot(self) -> Dict[str, int]:
        """Flat totals, used by sweep workers to report per-shard deltas."""
        return {
            "hits": self.hit_count(),
            "misses": self.miss_count(),
            "stores": self.store_count(),
            "corrupt_dropped": self.corrupt_dropped,
            "store_failures": self.store_failures,
        }


class PersistentCharacterizationCache:
    """Content-hash keyed characterisation store shared via the filesystem.

    Thread-compatibility: callers (the :class:`LibraryCharacterizer`) already
    serialise access per characteriser; concurrent *processes* are safe by
    construction -- reads only ever see complete entries because writes are
    atomic renames, and two processes racing to store the same entry simply
    overwrite it with identical content.
    """

    #: Temp files older than this are presumed orphaned by a killed writer.
    _STALE_TMP_SECONDS = 3600.0

    #: Directories already swept for orphaned temp files in this process.
    #: Sweep sessions construct one cache instance per derived library, and
    #: a Monte-Carlo cache directory holds thousands of entries -- one glob
    #: per directory per process is enough.
    _swept_directories: set = set()

    def __init__(self, directory: Optional[os.PathLike] = None):
        self.directory = Path(directory).expanduser() if directory else default_cache_dir()
        self.stats = DiskCacheStats()
        if self.directory not in self._swept_directories:
            self._swept_directories.add(self.directory)
            self._sweep_stale_tmp_files()

    def _sweep_stale_tmp_files(self) -> None:
        """Drop temp files orphaned by killed writers (best-effort).

        A writer killed between ``mkstemp`` and ``os.replace`` (e.g. a
        cancelled CI job) leaves a ``.*.tmp`` file behind; only clearly
        stale ones are removed so an in-flight write is never raced.
        """
        if not self.directory.is_dir():
            return
        cutoff = time.time() - self._STALE_TMP_SECONDS
        for path in self.directory.glob(".*.tmp"):
            try:
                if path.stat().st_mtime < cutoff:
                    path.unlink()
            except OSError:
                pass

    # ------------------------------------------------------------------ paths

    def path_for(self, fingerprint: str, key: Tuple) -> Path:
        """The entry file for one characterisation key (kind-prefixed)."""
        kind = str(key[0])
        return self.directory / f"{kind}-{_entry_hash(fingerprint, key)}.npz"

    def __len__(self) -> int:
        if not self.directory.is_dir():
            return 0
        return sum(1 for _ in self.directory.glob("*.npz"))

    def clear(self) -> int:
        """Delete every entry (and temp leftovers); returns entries removed."""
        removed = 0
        if self.directory.is_dir():
            for path in self.directory.glob("*.npz"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
            for path in self.directory.glob(".*.tmp"):
                try:
                    path.unlink()
                except OSError:
                    pass
        return removed

    # ------------------------------------------------------------------- get

    def get(self, fingerprint: str, key: Tuple):
        """Load the entry for ``key`` or return :data:`MISSING`.

        A present-but-unreadable entry (truncated write, bad zip, format
        drift) is counted in ``stats.corrupt_dropped``, deleted best-effort
        and reported as a miss so the caller recomputes it.
        """
        kind = str(key[0])
        path = self.path_for(fingerprint, key)
        if not path.is_file():
            self.stats._bump(self.stats.misses, kind)
            return MISSING
        try:
            with np.load(path, allow_pickle=False) as payload:
                meta = json.loads(str(payload["__meta__"]))
                tag = meta["model"]
                cls = _MODEL_CLASSES[tag]
                arrays = {
                    name: payload[name]
                    for name in payload.files
                    if name != "__meta__"
                }
                value = _model_from_payload(cls, arrays, meta["fields"])
        except (
            OSError,
            ValueError,
            KeyError,
            TypeError,
            EOFError,
            zipfile.BadZipFile,
            json.JSONDecodeError,
        ):
            self.stats.corrupt_dropped += 1
            self.stats._bump(self.stats.misses, kind)
            try:
                path.unlink()
            except OSError:
                pass
            return MISSING
        self.stats._bump(self.stats.hits, kind)
        return value

    # ------------------------------------------------------------------- put

    def put(self, fingerprint: str, key: Tuple, value: Any) -> bool:
        """Store ``value`` under ``key`` (best-effort; returns success).

        Unknown model types are skipped silently -- a characteriser may cache
        richer objects in memory than this store knows how to persist.
        """
        tag = _MODEL_TAGS.get(type(value))
        if tag is None:
            return False
        kind = str(key[0])
        arrays, meta_fields = _model_to_payload(value)
        meta = {"model": tag, "format": _FORMAT_VERSION, "fields": meta_fields}
        buffer = io.BytesIO()
        np.savez(buffer, __meta__=json.dumps(meta, sort_keys=True), **arrays)
        path = self.path_for(fingerprint, key)
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                dir=self.directory, prefix=f".{path.stem}-", suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(buffer.getvalue())
                os.replace(tmp_name, path)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        except OSError:
            self.stats.store_failures += 1
            return False
        self.stats._bump(self.stats.stores, kind)
        return True

    # --------------------------------------------------------------- summary

    def summary(self) -> str:
        s = self.stats
        return (
            f"PersistentCharacterizationCache at {self.directory}: "
            f"{len(self)} entries, {s.hit_count()} hits, {s.miss_count()} misses, "
            f"{s.store_count()} stores, {s.corrupt_dropped} corrupt dropped"
        )
