"""Noise Rejection Curves (dynamic noise margins).

The paper's SNA flow compares the combined noise glitch at the victim
receiver against *dynamic noise margins* represented by a Noise Rejection
Curve (NRC, [4]): for every glitch width there is a maximum glitch height the
receiving cell can tolerate before the disturbance propagates as a (possibly
latched) logic error.  Points above the curve are failures.

The curve is characterised per receiver cell and input pin by bisection on
the glitch height: a triangular glitch of the given width is applied to the
receiver input and the receiver output is observed; the failure criterion is
an output excursion beyond half the supply (the standard "unity gain /
switching threshold" criterion used when no downstream latch model is
available).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from ..technology.cells import NoiseArc, StandardCell
from ..technology.process import Technology
from ..units import ps
from .propagation import simulate_propagated_glitch

__all__ = ["NoiseRejectionCurve", "characterize_nrc"]


@dataclass(frozen=True)
class NoiseRejectionCurve:
    """Maximum tolerable glitch height as a function of glitch width."""

    widths: np.ndarray
    failure_heights: np.ndarray
    cell_name: str = ""
    input_pin: str = "A"
    vdd: float = 1.2
    criterion: str = "half-vdd"

    def __post_init__(self):
        widths = np.asarray(self.widths, dtype=float)
        heights = np.asarray(self.failure_heights, dtype=float)
        if widths.ndim != 1 or widths.shape != heights.shape:
            raise ValueError("widths and failure_heights must be 1-D arrays of equal length")
        if np.any(np.diff(widths) <= 0):
            raise ValueError("widths must be strictly increasing")
        object.__setattr__(self, "widths", widths)
        object.__setattr__(self, "failure_heights", heights)

    def failure_height(self, width: float) -> float:
        """Interpolated failure height for a glitch of the given width.

        Widths narrower than the characterised range use the first point
        (conservative: narrow glitches are harder to reject than the first
        characterised width suggests is optimistic, so we clamp rather than
        extrapolate); wider glitches use the last point, which approaches the
        DC noise margin.
        """
        return float(np.interp(width, self.widths, self.failure_heights))

    def fails(self, height: float, width: float) -> bool:
        """True when a glitch (height, width) lies in the failure region."""
        return abs(height) >= self.failure_height(width)

    def margin(self, height: float, width: float) -> float:
        """Noise margin in volts (positive = safe, negative = failing)."""
        return self.failure_height(width) - abs(height)

    def describe(self) -> str:
        pts = ", ".join(
            f"{w / ps(1):.0f}ps:{h:.3f}V" for w, h in zip(self.widths, self.failure_heights)
        )
        return f"NRC({self.cell_name}/{self.input_pin}): {pts}"


def characterize_nrc(
    receiver: StandardCell,
    technology: Technology,
    arc: Optional[NoiseArc] = None,
    *,
    widths: Optional[Sequence[float]] = None,
    load_capacitance: float = 10e-15,
    height_tolerance: float = 0.01,
    dt: float = 2e-12,
    max_height_factor: float = 1.5,
) -> NoiseRejectionCurve:
    """Characterise the noise rejection curve of a receiver input.

    Parameters
    ----------
    receiver:
        The receiving cell.
    arc:
        The input arc to characterise (defaults to the first arc whose
        output is quiet high, i.e. a rising input glitch on a low input --
        the most common victim-low configuration).
    widths:
        Glitch widths to characterise (defaults to 50 ps ... 500 ps).
    height_tolerance:
        Bisection resolution as a fraction of the supply.
    max_height_factor:
        Upper bound of the height search, as a multiple of the supply; if
        even that does not upset the receiver the failure height is recorded
        as ``max_height_factor * vdd`` (effectively "never fails" for
        realistic glitches).
    """
    vdd = technology.vdd
    if arc is None:
        arcs = receiver.noise_arcs()
        rising_arcs = [a for a in arcs if a.glitch_rising]
        arc = rising_arcs[0] if rising_arcs else arcs[0]
    if widths is None:
        widths = np.array([ps(50), ps(100), ps(200), ps(350), ps(500)])
    widths = np.asarray(widths, dtype=float)

    def output_upset(height: float, width: float) -> bool:
        _, metrics = simulate_propagated_glitch(
            receiver,
            technology,
            arc,
            glitch_height=height,
            glitch_width=width,
            load_capacitance=load_capacitance,
            dt=dt,
        )
        return abs(metrics.peak) >= 0.5 * vdd

    failure_heights = np.zeros(widths.size)
    tolerance = height_tolerance * vdd
    for index, width in enumerate(widths):
        low = 0.1 * vdd
        high = max_height_factor * vdd
        if not output_upset(high, float(width)):
            failure_heights[index] = high
            continue
        if output_upset(low, float(width)):
            failure_heights[index] = low
            continue
        while high - low > tolerance:
            middle = 0.5 * (low + high)
            if output_upset(middle, float(width)):
                high = middle
            else:
                low = middle
        failure_heights[index] = 0.5 * (low + high)

    return NoiseRejectionCurve(
        widths=widths,
        failure_heights=failure_heights,
        cell_name=receiver.name,
        input_pin=arc.input_pin,
        vdd=vdd,
        criterion="half-vdd",
    )
