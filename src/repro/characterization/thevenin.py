"""Thevenin (saturated ramp + resistance) models of switching drivers.

The aggressor drivers of a noise cluster are represented -- as in the paper
and in [7] (Dartu & Pileggi) -- by a linear Thevenin equivalent: a saturated
voltage ramp ``V_TH(t)`` in series with a driving resistance ``R_TH``.

The characterisation proceeds in two steps:

1. ``R_TH`` is measured with a DC analysis: the cell's inputs are set to the
   values that produce the output transition, the output is forced to half
   the supply and the injected current is measured -- the resistance is the
   remaining voltage excursion divided by that current (the classical
   mid-swing output resistance).

2. The ramp's transition time and delay are fitted so that the analytic
   response of the ``R_TH`` / load-capacitance circuit to the saturated ramp
   reproduces the 20 % and 80 % crossing times of the transistor-level
   driver's transient response into the same load.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

import numpy as np
from scipy.optimize import brentq, least_squares

from ..circuit.dc import dc_operating_point
from ..circuit.netlist import Circuit
from ..circuit.sources import DCValue, SaturatedRamp
from ..circuit.transient import transient
from ..technology.cells import StandardCell
from ..technology.process import Technology
from ..units import ps
from ..waveform import Waveform

__all__ = [
    "TheveninDriverModel",
    "characterize_thevenin_driver",
    "quiet_driver_resistance",
    "SwitchingSetup",
    "switching_input_setup",
]


@dataclass(frozen=True)
class SwitchingSetup:
    """How to drive a cell so its output makes a given transition.

    Attributes
    ----------
    input_pin:
        The switching input pin.
    input_start / input_end:
        Voltages of that pin before and after the transition.
    side_inputs:
        Static logic values of the remaining input pins.
    final_state:
        Full logic input state after the transition (used for DC output
        resistance measurements).
    """

    input_pin: str
    input_start: float
    input_end: float
    side_inputs: Dict[str, bool]
    final_state: Dict[str, bool]


def switching_input_setup(
    cell: "StandardCell",
    technology: "Technology",
    *,
    rising: bool,
    input_pin: Optional[str] = None,
    side_inputs: Optional[Mapping[str, bool]] = None,
) -> SwitchingSetup:
    """Determine input drive conditions for a rising/falling output transition.

    Chooses (or validates) the switching pin, fills in sensitising side-input
    values and returns the start/end input voltages that produce the
    requested output transition direction.
    """
    vdd = technology.vdd
    input_pin = input_pin or cell.inputs[0]
    if side_inputs is None:
        side_inputs = {}
        for arc in cell.noise_arcs():
            if arc.input_pin == input_pin:
                side_inputs = arc.side_inputs_dict
                break
        for pin in cell.inputs:
            if pin != input_pin and pin not in side_inputs:
                side_inputs[pin] = True
    side_inputs = dict(side_inputs)

    state_high_in = dict(side_inputs)
    state_high_in[input_pin] = True
    state_low_in = dict(side_inputs)
    state_low_in[input_pin] = False
    if cell.logic(state_high_in) == rising and cell.logic(state_low_in) != rising:
        return SwitchingSetup(input_pin, 0.0, vdd, side_inputs, state_high_in)
    if cell.logic(state_low_in) == rising and cell.logic(state_high_in) != rising:
        return SwitchingSetup(input_pin, vdd, 0.0, side_inputs, state_low_in)
    raise ValueError(
        f"input '{input_pin}' of {cell.name} cannot produce a "
        f"{'rising' if rising else 'falling'} output with side inputs {side_inputs}"
    )


@dataclass(frozen=True)
class TheveninDriverModel:
    """A switching driver modelled as a saturated ramp behind a resistance."""

    v_start: float
    v_end: float
    delay: float
    transition: float
    resistance: float
    cell_name: str = ""

    @property
    def rising(self) -> bool:
        return self.v_end > self.v_start

    def ramp(self, extra_delay: float = 0.0) -> SaturatedRamp:
        """The Thevenin voltage source waveform (optionally shifted in time)."""
        return SaturatedRamp(self.v_start, self.v_end, self.delay + extra_delay, self.transition)

    def instantiate(
        self,
        circuit: Circuit,
        name: str,
        output_node: str,
        *,
        extra_delay: float = 0.0,
        gnd_node: str = "0",
    ) -> None:
        """Add the Thevenin source + resistance driving ``output_node``."""
        internal = f"{name}.th"
        circuit.add_voltage_source(f"{name}.VTH", internal, gnd_node, self.ramp(extra_delay))
        circuit.add_resistor(f"{name}.RTH", internal, output_node, self.resistance)

    def describe(self) -> str:
        direction = "rising" if self.rising else "falling"
        return (
            f"TheveninDriver({self.cell_name}, {direction}, R={self.resistance:.1f} ohm, "
            f"transition={self.transition / ps(1):.1f} ps, delay={self.delay / ps(1):.1f} ps)"
        )


def _ramp_rc_response(t: np.ndarray, t0: float, transition: float, tau: float) -> np.ndarray:
    """Normalised (0 -> 1) response of an RC load to a saturated ramp.

    The ramp starts at ``t0``, reaches 1 at ``t0 + transition``; ``tau`` is the
    ``R_TH * C_load`` time constant.
    """
    t_rel = np.asarray(t, dtype=float) - t0
    v = np.zeros_like(t_rel)
    slope = 1.0 / transition
    during = (t_rel > 0) & (t_rel <= transition)
    after = t_rel > transition
    v[during] = slope * (t_rel[during] - tau * (1.0 - np.exp(-t_rel[during] / tau)))
    v_end_of_ramp = slope * (transition - tau * (1.0 - np.exp(-transition / tau)))
    v[after] = 1.0 - (1.0 - v_end_of_ramp) * np.exp(-(t_rel[after] - transition) / tau)
    return v


def _crossing_time(t0: float, transition: float, tau: float, level: float, t_max: float) -> float:
    """Time at which the normalised ramp-RC response crosses ``level``."""

    def f(t):
        return float(_ramp_rc_response(np.array([t]), t0, transition, tau)[0]) - level

    lo = t0 + 1e-18
    hi = t_max
    # Expand hi if needed (slow drivers).
    while f(hi) < 0.0 and hi < 100.0 * t_max:
        hi *= 2.0
    return brentq(f, lo, hi, xtol=1e-16)


def quiet_driver_resistance(
    cell: StandardCell,
    technology: Technology,
    input_values: Mapping[str, bool],
    *,
    vout_probe: Optional[float] = None,
) -> float:
    """Small-signal output (holding) resistance of a cell for static inputs.

    The inputs are held at the given logic values, the output is forced a
    small excursion away from its quiescent rail and the injected current is
    measured.  Used both for aggressor ``R_TH`` estimation and for the victim
    holding resistance of the linear-superposition baseline.
    """
    vdd = technology.vdd
    output_high = cell.logic(input_values)
    quiescent = vdd if output_high else 0.0
    if vout_probe is None:
        vout_probe = quiescent - 0.5 * vdd if output_high else quiescent + 0.5 * vdd

    circuit = Circuit(f"rout_{cell.name}")
    circuit.add_voltage_source("VDD", "vdd", "0", vdd)
    pin_nodes = {cell.output_pin: "out"}
    for pin in cell.inputs:
        node = f"in_{pin}"
        pin_nodes[pin] = node
        circuit.add_voltage_source(f"V_{pin}", node, "0", vdd if input_values[pin] else 0.0)
    vout_source = circuit.add_voltage_source("VOUT", "out", "0", DCValue(vout_probe))
    cell.instantiate(circuit, "DUT", pin_nodes, technology)

    solution = dc_operating_point(circuit)
    injected = solution.source_current("VOUT")
    delta_v = quiescent - vout_probe
    if abs(injected) < 1e-15:
        return float("inf")
    return abs(delta_v / injected)


def characterize_thevenin_driver(
    cell: StandardCell,
    technology: Technology,
    *,
    rising: bool = True,
    input_pin: Optional[str] = None,
    side_inputs: Optional[Mapping[str, bool]] = None,
    load_capacitance: float = 20e-15,
    input_transition: float = 30e-12,
    dt: float = 1e-12,
    cell_name: Optional[str] = None,
) -> TheveninDriverModel:
    """Fit a Thevenin driver model for a switching cell.

    Parameters
    ----------
    rising:
        Direction of the *output* transition being modelled.
    input_pin:
        The switching input (defaults to the first input).  ``side_inputs``
        must sensitise the arc; by default they are chosen automatically from
        the cell's noise arcs.
    load_capacitance:
        Test load used for the fit.  Use a value close to the capacitance the
        driver will actually see for best accuracy (the calling code passes
        the victim/aggressor net capacitance).
    input_transition:
        Transition time of the saturated ramp applied to the switching input.
    """
    vdd = technology.vdd
    setup = switching_input_setup(
        cell, technology, rising=rising, input_pin=input_pin, side_inputs=side_inputs
    )
    input_pin = setup.input_pin
    side_inputs = setup.side_inputs
    input_start, input_end = setup.input_start, setup.input_end

    # --- step 1: R_TH from a DC measurement at mid swing ---------------------
    resistance = quiet_driver_resistance(
        cell, technology, setup.final_state, vout_probe=0.5 * vdd
    )

    # --- step 2: transient of the transistor-level driver --------------------
    circuit = Circuit(f"thevenin_{cell.name}")
    circuit.add_voltage_source("VDD", "vdd", "0", vdd)
    delay = 5.0 * input_transition
    pin_nodes = {cell.output_pin: "out"}
    for pin in cell.inputs:
        node = f"in_{pin}"
        pin_nodes[pin] = node
        if pin == input_pin:
            circuit.add_voltage_source(
                f"V_{pin}", node, "0", SaturatedRamp(input_start, input_end, delay, input_transition)
            )
        else:
            circuit.add_voltage_source(
                f"V_{pin}", node, "0", vdd if side_inputs[pin] else 0.0
            )
    cell.instantiate(circuit, "DUT", pin_nodes, technology)
    circuit.add_capacitor("CLOAD", "out", "0", load_capacitance)

    tau_estimate = resistance * load_capacitance
    t_stop = delay + input_transition + max(10.0 * tau_estimate, 200e-12)
    # The DUT makes this circuit nonlinear, so the run takes the Newton path;
    # the compiled kernel still caches the linear base matrix so each
    # iteration only re-stamps the cell's transistors.
    result = transient(circuit, t_stop=t_stop, dt=dt, solver="auto")
    out = result["out"]

    # Normalise the output waveform to a 0 -> 1 swing in the transition
    # direction so rising and falling cases share the fitting code.
    if rising:
        normalised = Waveform(out.times, (out.values - 0.0) / vdd)
    else:
        normalised = Waveform(out.times, (vdd - out.values) / vdd)

    t20 = _first_crossing(normalised, 0.2)
    t50 = _first_crossing(normalised, 0.5)
    t80 = _first_crossing(normalised, 0.8)
    if t20 is None or t50 is None or t80 is None or t80 <= t20:
        raise RuntimeError(
            f"could not measure the output transition of {cell.name} "
            "(check the arc sensitisation and load)"
        )

    # Jointly fit the effective driving resistance and the ramp transition so
    # that the analytic ramp-RC response reproduces the measured 20/50/80 %
    # crossing spreads; the DC mid-swing resistance is only the starting
    # point (it tends to overestimate the effective switching resistance of a
    # strongly non-linear driver).  The delay is then set to align the 50 %
    # crossing exactly.
    measured_spread_2080 = t80 - t20
    measured_spread_2050 = t50 - t20

    def residuals(params):
        log_r, log_t = params
        r = math.exp(log_r)
        trans = math.exp(log_t)
        tau_fit = max(r * load_capacitance, 1e-16)
        c20 = _crossing_time(0.0, trans, tau_fit, 0.2, t_stop)
        c50 = _crossing_time(0.0, trans, tau_fit, 0.5, t_stop)
        c80 = _crossing_time(0.0, trans, tau_fit, 0.8, t_stop)
        return [
            ((c80 - c20) - measured_spread_2080) / measured_spread_2080,
            ((c50 - c20) - measured_spread_2050) / max(measured_spread_2050, 1e-15),
        ]

    start = [math.log(max(resistance, 1.0)), math.log(max(measured_spread_2080, 1e-12))]
    fit = least_squares(residuals, start, xtol=1e-12, ftol=1e-12, max_nfev=200)
    resistance_fit = float(math.exp(fit.x[0]))
    transition_fit = float(math.exp(fit.x[1]))

    tau_fit = max(resistance_fit * load_capacitance, 1e-16)
    model_t50 = _crossing_time(0.0, transition_fit, tau_fit, 0.5, t_stop)
    # The fitted delay is expressed relative to the start of the *input*
    # transition, so callers can place the model at an arbitrary input
    # switching instant via ``ramp(extra_delay=input_switch_time)``.
    delay_fit = (t50 - model_t50) - delay

    v_start, v_end = (0.0, vdd) if rising else (vdd, 0.0)
    return TheveninDriverModel(
        v_start=v_start,
        v_end=v_end,
        delay=delay_fit,
        transition=transition_fit,
        resistance=resistance_fit,
        cell_name=cell_name or cell.name,
    )


def _first_crossing(waveform: Waveform, level: float) -> Optional[float]:
    crossings = waveform.crossings(level)
    return crossings[0] if crossings else None
