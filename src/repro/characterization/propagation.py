"""Pre-characterised noise-propagation tables.

Conventional SNA flows (and the linear-superposition baseline the paper
criticises) obtain the noise that propagates from the input to the output of
the victim driver from pre-characterised tables as a function of the input
glitch height and width.  This module builds those tables by transient
simulation of the transistor-level cell driving a nominal capacitive load.

The table rows/columns are input glitch height (volts of excursion from the
quiescent input level) and width (seconds, base of the triangular glitch);
each entry stores the resulting output glitch peak, area and width.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Sequence, Tuple

import numpy as np

from ..circuit.netlist import Circuit
from ..circuit.sources import TriangularGlitch
from ..circuit.transient import transient
from ..technology.cells import NoiseArc, StandardCell
from ..technology.process import Technology
from ..units import ps
from ..waveform import GlitchMetrics, Waveform

__all__ = ["NoisePropagationTable", "characterize_noise_propagation", "simulate_propagated_glitch"]

#: Quiet settling time before the input glitch is applied (shared by the
#: single-point simulation and the table sweep).
DEFAULT_GLITCH_DELAY = 50e-12


@dataclass(frozen=True)
class NoisePropagationTable:
    """Output glitch (peak / area / width) vs input glitch (height, width)."""

    input_heights: np.ndarray
    input_widths: np.ndarray
    output_peak: np.ndarray
    output_area: np.ndarray
    output_width: np.ndarray
    cell_name: str = ""
    input_pin: str = "A"
    output_high: bool = False
    load_capacitance: float = 0.0
    vdd: float = 1.2

    def __post_init__(self):
        heights = np.asarray(self.input_heights, dtype=float)
        widths = np.asarray(self.input_widths, dtype=float)
        for field_name in ("output_peak", "output_area", "output_width"):
            table = np.asarray(getattr(self, field_name), dtype=float)
            if table.shape != (heights.size, widths.size):
                raise ValueError(
                    f"{field_name} shape {table.shape} does not match grids "
                    f"({heights.size}, {widths.size})"
                )
            object.__setattr__(self, field_name, table)
        object.__setattr__(self, "input_heights", heights)
        object.__setattr__(self, "input_widths", widths)

    def _interp(self, table: np.ndarray, height: float, width: float) -> float:
        h = np.clip(height, self.input_heights[0], self.input_heights[-1])
        w = np.clip(width, self.input_widths[0], self.input_widths[-1])
        i = int(np.searchsorted(self.input_heights, h) - 1)
        i = max(0, min(i, self.input_heights.size - 2))
        j = int(np.searchsorted(self.input_widths, w) - 1)
        j = max(0, min(j, self.input_widths.size - 2))
        fu = (h - self.input_heights[i]) / (self.input_heights[i + 1] - self.input_heights[i])
        fv = (w - self.input_widths[j]) / (self.input_widths[j + 1] - self.input_widths[j])
        return float(
            table[i, j] * (1 - fu) * (1 - fv)
            + table[i + 1, j] * fu * (1 - fv)
            + table[i, j + 1] * (1 - fu) * fv
            + table[i + 1, j + 1] * fu * fv
        )

    def lookup(self, height: float, width: float) -> Tuple[float, float, float]:
        """Return ``(peak, area, width)`` of the propagated output glitch."""
        return (
            self._interp(self.output_peak, height, width),
            self._interp(self.output_area, height, width),
            self._interp(self.output_width, height, width),
        )

    def propagated_waveform(
        self,
        height: float,
        width: float,
        *,
        start_time: float,
        baseline: float = 0.0,
    ) -> Waveform:
        """Reconstruct the propagated output glitch as a triangular waveform.

        This is how table-based SNA tools re-inject the propagated noise for
        combination with the crosstalk-injected noise: a triangle with the
        looked-up peak and a base width chosen to preserve the looked-up
        area.  The glitch polarity is the sign of the stored peak.
        """
        peak, area, out_width = self.lookup(height, width)
        if abs(peak) < 1e-12:
            return Waveform.constant(baseline, start_time, start_time + max(width, ps(1)))
        base_width = 2.0 * abs(area / peak) if peak != 0.0 else out_width
        base_width = max(base_width, 1e-13)
        rise = 0.5 * base_width
        fall = 0.5 * base_width
        return Waveform.triangular_glitch(
            baseline=baseline,
            peak=peak,
            t_start=start_time,
            rise=rise,
            fall=fall,
            pre=start_time * 0.0,
            post=2.0 * base_width,
        )

    def describe(self) -> str:
        return (
            f"NoisePropagationTable({self.cell_name}, pin {self.input_pin}, "
            f"{self.input_heights.size}x{self.input_widths.size} points, "
            f"CL={self.load_capacitance / 1e-15:.1f} fF)"
        )


def _build_propagation_bench(
    cell: StandardCell,
    technology: Technology,
    arc: NoiseArc,
    load_capacitance: float,
) -> Tuple[Circuit, str, float, float]:
    """Build the cell + load test bench for one noise arc.

    Returns ``(circuit, glitch_source_name, input_quiet_level, direction)``.
    The glitch source is installed with a zero-excursion placeholder; callers
    swap its ``waveform`` per grid point, which keeps the circuit topology --
    and therefore the compiled stamping kernel -- valid across an entire
    characterisation sweep.
    """
    vdd = technology.vdd
    quiet_inputs = arc.input_state()
    input_quiet_level = vdd if quiet_inputs[arc.input_pin] else 0.0
    glitch_direction = 1.0 if arc.glitch_rising else -1.0

    circuit = Circuit(f"prop_{cell.name}_{arc.input_pin}")
    circuit.add_voltage_source("VDD", "vdd", "0", vdd)
    pin_nodes = {cell.output_pin: "out"}
    glitch_source_name = ""
    for pin in cell.inputs:
        node = f"in_{pin}"
        pin_nodes[pin] = node
        if pin == arc.input_pin:
            glitch_source_name = f"V_{pin}"
            circuit.add_voltage_source(glitch_source_name, node, "0", input_quiet_level)
        else:
            circuit.add_voltage_source(
                f"V_{pin}", node, "0", vdd if quiet_inputs[pin] else 0.0
            )
    cell.instantiate(circuit, "DUT", pin_nodes, technology)
    circuit.add_capacitor("CLOAD", "out", "0", load_capacitance)
    return circuit, glitch_source_name, input_quiet_level, glitch_direction


def _run_propagation_point(
    circuit: Circuit,
    glitch_source_name: str,
    arc: NoiseArc,
    vdd: float,
    input_quiet_level: float,
    glitch_direction: float,
    glitch_height: float,
    glitch_width: float,
    *,
    dt: float,
    glitch_delay: float,
    t_stop: Optional[float],
    x0=None,
) -> Tuple[Waveform, GlitchMetrics]:
    """Simulate one (height, width) glitch on a prebuilt bench."""
    circuit[glitch_source_name].waveform = TriangularGlitch(
        baseline=input_quiet_level,
        height=glitch_direction * glitch_height,
        delay=glitch_delay,
        rise=0.5 * glitch_width,
        fall=0.5 * glitch_width,
    )
    if t_stop is None:
        t_stop = glitch_delay + 4.0 * glitch_width + 300e-12
    result = transient(circuit, t_stop=t_stop, dt=dt, x0=x0)
    out = result["out"]
    quiescent_output = vdd if arc.output_high else 0.0
    metrics = out.glitch_metrics(baseline=quiescent_output)
    return out, metrics


def simulate_propagated_glitch(
    cell: StandardCell,
    technology: Technology,
    arc: NoiseArc,
    glitch_height: float,
    glitch_width: float,
    *,
    load_capacitance: float = 20e-15,
    dt: float = 1e-12,
    glitch_delay: float = DEFAULT_GLITCH_DELAY,
    t_stop: Optional[float] = None,
) -> Tuple[Waveform, GlitchMetrics]:
    """Transient simulation of one input glitch propagating through a cell.

    Returns the output waveform and its glitch metrics (relative to the
    quiescent output level).
    """
    circuit, source_name, quiet_level, direction = _build_propagation_bench(
        cell, technology, arc, load_capacitance
    )
    return _run_propagation_point(
        circuit,
        source_name,
        arc,
        technology.vdd,
        quiet_level,
        direction,
        glitch_height,
        glitch_width,
        dt=dt,
        glitch_delay=glitch_delay,
        t_stop=t_stop,
    )


def characterize_noise_propagation(
    cell: StandardCell,
    technology: Technology,
    arc: NoiseArc,
    *,
    load_capacitance: float = 20e-15,
    heights: Optional[Sequence[float]] = None,
    widths: Optional[Sequence[float]] = None,
    dt: float = 2e-12,
) -> NoisePropagationTable:
    """Build the propagated-noise table for one cell arc.

    ``heights`` defaults to 6 points between 20 % and 120 % of the supply;
    ``widths`` to 5 points between 50 ps and 400 ps.
    """
    vdd = technology.vdd
    if heights is None:
        heights = np.linspace(0.2 * vdd, 1.2 * vdd, 6)
    if widths is None:
        widths = np.array([ps(50), ps(100), ps(200), ps(300), ps(400)])
    heights = np.asarray(heights, dtype=float)
    widths = np.asarray(widths, dtype=float)

    # One test bench for the whole sweep: only the glitch source waveform
    # changes between grid points, so the compiled stamping kernel (and its
    # cached base matrices) are reused across every simulation.  The glitch
    # starts after t = 0 at the quiescent input level, so the DC operating
    # point is identical for all points and is computed exactly once.
    from ..circuit.dc import dc_operating_point

    circuit, source_name, quiet_level, direction = _build_propagation_bench(
        cell, technology, arc, load_capacitance
    )
    x0 = np.array(dc_operating_point(circuit).x, copy=True)

    peak = np.zeros((heights.size, widths.size))
    area = np.zeros_like(peak)
    out_width = np.zeros_like(peak)
    for i, height in enumerate(heights):
        for j, width in enumerate(widths):
            _, metrics = _run_propagation_point(
                circuit,
                source_name,
                arc,
                vdd,
                quiet_level,
                direction,
                float(height),
                float(width),
                dt=dt,
                glitch_delay=DEFAULT_GLITCH_DELAY,
                t_stop=None,
                x0=x0,
            )
            peak[i, j] = metrics.peak
            area[i, j] = metrics.area * (1.0 if metrics.peak >= 0 else -1.0)
            out_width[i, j] = metrics.width

    return NoisePropagationTable(
        input_heights=heights,
        input_widths=widths,
        output_peak=peak,
        output_area=np.abs(area) * np.sign(peak + 1e-30),
        output_width=out_width,
        cell_name=cell.name,
        input_pin=arc.input_pin,
        output_high=arc.output_high,
        load_capacitance=load_capacitance,
        vdd=vdd,
    )
