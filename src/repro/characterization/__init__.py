"""Standard-cell characterisation for static noise analysis.

Implements the pre-characterisation steps the paper's macromodel relies on:

* :func:`characterize_load_surface` -- the DC-swept VCCS load surface
  ``I_DC = f(V_in, V_out)`` of the victim driver (equation (1) of the paper);
* :func:`characterize_thevenin_driver` -- saturated-ramp Thevenin models of
  the switching aggressor drivers (after Dartu & Pileggi, ref. [7]);
* :func:`characterize_noise_propagation` -- the table-based propagated-noise
  model used by conventional SNA (and by the linear-superposition baseline);
* :func:`characterize_nrc` -- noise rejection curves (dynamic noise margins)
  of receiving cells;
* :class:`LibraryCharacterizer` -- a caching facade over all of the above;
* :class:`PersistentCharacterizationCache` -- an optional content-hash keyed
  on-disk second level shared across processes and CI runs.
"""

from .characterizer import CharacterizationStats, LibraryCharacterizer
from .diskcache import (
    DiskCacheStats,
    PersistentCharacterizationCache,
    default_cache_dir,
    library_fingerprint,
    technology_fingerprint,
)
from .loadsurface import VCCSLoadSurface, characterize_load_surface
from .nrc import NoiseRejectionCurve, characterize_nrc
from .propagation import (
    NoisePropagationTable,
    characterize_noise_propagation,
    simulate_propagated_glitch,
)
from .thevenin import TheveninDriverModel, characterize_thevenin_driver, quiet_driver_resistance

__all__ = [
    "VCCSLoadSurface",
    "characterize_load_surface",
    "TheveninDriverModel",
    "characterize_thevenin_driver",
    "quiet_driver_resistance",
    "NoisePropagationTable",
    "characterize_noise_propagation",
    "simulate_propagated_glitch",
    "NoiseRejectionCurve",
    "characterize_nrc",
    "LibraryCharacterizer",
    "CharacterizationStats",
    "PersistentCharacterizationCache",
    "DiskCacheStats",
    "default_cache_dir",
    "library_fingerprint",
    "technology_fingerprint",
]
