"""Library-level characterisation facade with caching.

Characterising a cell arc (VCCS load surface, Thevenin driver, propagated
noise table, NRC) requires dozens to hundreds of small circuit simulations.
The :class:`LibraryCharacterizer` wraps the individual characterisation
functions, keys every result by the exact characterisation conditions and
stores it in the owning :class:`~repro.technology.library.CellLibrary`'s
``characterization_cache`` so repeated analyses of the same cluster
configuration (the normal case in a full-chip SNA run) pay the cost once.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence, Tuple

from ..technology.cells import NoiseArc, StandardCell
from ..technology.library import CellLibrary
from .loadsurface import VCCSLoadSurface, characterize_load_surface
from .nrc import NoiseRejectionCurve, characterize_nrc
from .propagation import NoisePropagationTable, characterize_noise_propagation
from .thevenin import TheveninDriverModel, characterize_thevenin_driver

__all__ = ["LibraryCharacterizer"]


def _arc_key(arc: NoiseArc) -> Tuple:
    return (arc.input_pin, arc.side_inputs, arc.output_high, arc.glitch_rising)


class LibraryCharacterizer:
    """Cached access to all characterised views of a cell library."""

    def __init__(self, library: CellLibrary, *, vccs_grid: int = 17):
        self.library = library
        self.technology = library.technology
        self.vccs_grid = vccs_grid

    @property
    def _cache(self) -> Dict:
        return self.library.characterization_cache

    # ------------------------------------------------------------- VCCS table

    def load_surface(
        self,
        cell_name: str,
        arc: NoiseArc,
        *,
        num_points: Optional[int] = None,
    ) -> VCCSLoadSurface:
        """The VCCS load surface ``I_DC = f(V_in, V_out)`` of a cell arc."""
        n = num_points or self.vccs_grid
        key = ("vccs", cell_name, _arc_key(arc), n)
        if key not in self._cache:
            cell = self.library.cell(cell_name)
            self._cache[key] = characterize_load_surface(
                cell,
                self.technology,
                arc=arc,
                num_vin=n,
                num_vout=n,
            )
        return self._cache[key]

    # --------------------------------------------------------- Thevenin driver

    def thevenin_driver(
        self,
        cell_name: str,
        *,
        rising: bool = True,
        input_pin: Optional[str] = None,
        load_capacitance: float = 20e-15,
        input_transition: float = 30e-12,
    ) -> TheveninDriverModel:
        """The saturated-ramp Thevenin model of a switching driver."""
        key = ("thevenin", cell_name, rising, input_pin, round(load_capacitance, 20),
               round(input_transition, 15))
        if key not in self._cache:
            cell = self.library.cell(cell_name)
            self._cache[key] = characterize_thevenin_driver(
                cell,
                self.technology,
                rising=rising,
                input_pin=input_pin,
                load_capacitance=load_capacitance,
                input_transition=input_transition,
            )
        return self._cache[key]

    # --------------------------------------------------- propagated-noise table

    def propagation_table(
        self,
        cell_name: str,
        arc: NoiseArc,
        *,
        load_capacitance: float = 20e-15,
        heights: Optional[Sequence[float]] = None,
        widths: Optional[Sequence[float]] = None,
    ) -> NoisePropagationTable:
        """The pre-characterised propagated-noise table of a cell arc."""
        key = ("prop", cell_name, _arc_key(arc), round(load_capacitance, 20),
               None if heights is None else tuple(float(h) for h in heights),
               None if widths is None else tuple(float(w) for w in widths))
        if key not in self._cache:
            cell = self.library.cell(cell_name)
            self._cache[key] = characterize_noise_propagation(
                cell,
                self.technology,
                arc,
                load_capacitance=load_capacitance,
                heights=heights,
                widths=widths,
            )
        return self._cache[key]

    # -------------------------------------------------------------------- NRC

    def noise_rejection_curve(
        self,
        cell_name: str,
        arc: Optional[NoiseArc] = None,
        *,
        load_capacitance: float = 10e-15,
        widths: Optional[Sequence[float]] = None,
    ) -> NoiseRejectionCurve:
        """The noise rejection curve of a receiver input."""
        arc_key = None if arc is None else _arc_key(arc)
        key = ("nrc", cell_name, arc_key, round(load_capacitance, 20),
               None if widths is None else tuple(float(w) for w in widths))
        if key not in self._cache:
            cell = self.library.cell(cell_name)
            self._cache[key] = characterize_nrc(
                cell,
                self.technology,
                arc,
                load_capacitance=load_capacitance,
                widths=widths,
            )
        return self._cache[key]

    # ---------------------------------------------------------------- summary

    def cache_summary(self) -> str:
        kinds: Dict[str, int] = {}
        for key in self._cache:
            kinds[key[0]] = kinds.get(key[0], 0) + 1
        parts = ", ".join(f"{count} {kind}" for kind, count in sorted(kinds.items()))
        return f"LibraryCharacterizer cache: {parts or 'empty'}"
