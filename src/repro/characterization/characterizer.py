"""Library-level characterisation facade with caching.

Characterising a cell arc (VCCS load surface, Thevenin driver, propagated
noise table, NRC) requires dozens to hundreds of small circuit simulations.
The :class:`LibraryCharacterizer` wraps the individual characterisation
functions, keys every result by the exact characterisation conditions and
stores it in the owning :class:`~repro.technology.library.CellLibrary`'s
``characterization_cache`` so repeated analyses of the same cluster
configuration (the normal case in a full-chip SNA run) pay the cost once.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Sequence, Tuple

from ..technology.cells import NoiseArc, StandardCell
from ..technology.library import CellLibrary
from .diskcache import MISSING, PersistentCharacterizationCache, library_fingerprint
from .loadsurface import VCCSLoadSurface, characterize_load_surface
from .nrc import NoiseRejectionCurve, characterize_nrc
from .propagation import NoisePropagationTable, characterize_noise_propagation
from .thevenin import TheveninDriverModel, characterize_thevenin_driver

__all__ = ["CharacterizationStats", "LibraryCharacterizer"]


def _arc_key(arc: NoiseArc) -> Tuple:
    return (arc.input_pin, arc.side_inputs, arc.output_high, arc.glitch_rising)


@dataclass
class CharacterizationStats:
    """Cache hit/miss bookkeeping per characterisation kind.

    A *miss* is one actual characterisation run (the expensive part); batch
    drivers use these counters to assert that shared cells are characterised
    exactly once per session.
    """

    hits: Dict[str, int] = field(default_factory=dict)
    misses: Dict[str, int] = field(default_factory=dict)
    #: Keys served from the persistent disk cache: no characterisation ran,
    #: but the result was not in memory either (counted as neither hit nor
    #: miss so ``miss_count`` keeps meaning "expensive runs").
    disk_hits: Dict[str, int] = field(default_factory=dict)

    def record(self, kind: str, *, hit: bool) -> None:
        counter = self.hits if hit else self.misses
        counter[kind] = counter.get(kind, 0) + 1

    def record_disk_hit(self, kind: str) -> None:
        self.disk_hits[kind] = self.disk_hits.get(kind, 0) + 1

    def miss_count(self, kind: Optional[str] = None) -> int:
        if kind is None:
            return sum(self.misses.values())
        return self.misses.get(kind, 0)

    def hit_count(self, kind: Optional[str] = None) -> int:
        if kind is None:
            return sum(self.hits.values())
        return self.hits.get(kind, 0)

    def disk_hit_count(self, kind: Optional[str] = None) -> int:
        if kind is None:
            return sum(self.disk_hits.values())
        return self.disk_hits.get(kind, 0)


class LibraryCharacterizer:
    """Cached access to all characterised views of a cell library."""

    def __init__(
        self,
        library: CellLibrary,
        *,
        vccs_grid: int = 17,
        disk_cache: Optional[PersistentCharacterizationCache] = None,
    ):
        self.library = library
        self.technology = library.technology
        self.vccs_grid = vccs_grid
        self.stats = CharacterizationStats()
        #: Optional persistent second-level cache shared across processes.
        self.disk_cache = disk_cache
        self._fingerprint: Optional[str] = None
        # Guards get-or-characterize so concurrent session workers never
        # characterise the same key twice (the cache dict is shared).
        self._lock = threading.RLock()

    @property
    def _cache(self) -> Dict:
        return self.library.characterization_cache

    @property
    def fingerprint(self) -> str:
        """Content hash of the library (technology + cell definitions).

        Keys the persistent cache: every device/metal parameter *and* every
        cell's structural definition participates, so corner scaling,
        Monte-Carlo variation and custom cell sets can never collide.
        """
        if self._fingerprint is None:
            self._fingerprint = library_fingerprint(self.library)
        return self._fingerprint

    def _get_or_characterize(self, key: Tuple, characterize: Callable[[], object]):
        with self._lock:
            if key in self._cache:
                self.stats.record(key[0], hit=True)
                return self._cache[key]
            if self.disk_cache is not None:
                value = self.disk_cache.get(self.fingerprint, key)
                if value is not MISSING:
                    self.stats.record_disk_hit(key[0])
                    self._cache[key] = value
                    return value
            self.stats.record(key[0], hit=False)
            value = characterize()
            self._cache[key] = value
            if self.disk_cache is not None:
                self.disk_cache.put(self.fingerprint, key, value)
            return value

    # ------------------------------------------------------------- VCCS table

    def load_surface(
        self,
        cell_name: str,
        arc: NoiseArc,
        *,
        num_points: Optional[int] = None,
    ) -> VCCSLoadSurface:
        """The VCCS load surface ``I_DC = f(V_in, V_out)`` of a cell arc."""
        n = num_points or self.vccs_grid
        key = ("vccs", cell_name, _arc_key(arc), n)
        return self._get_or_characterize(
            key,
            lambda: characterize_load_surface(
                self.library.cell(cell_name),
                self.technology,
                arc=arc,
                num_vin=n,
                num_vout=n,
            ),
        )

    # --------------------------------------------------------- Thevenin driver

    def thevenin_driver(
        self,
        cell_name: str,
        *,
        rising: bool = True,
        input_pin: Optional[str] = None,
        load_capacitance: float = 20e-15,
        input_transition: float = 30e-12,
    ) -> TheveninDriverModel:
        """The saturated-ramp Thevenin model of a switching driver."""
        key = ("thevenin", cell_name, rising, input_pin, round(load_capacitance, 20),
               round(input_transition, 15))
        return self._get_or_characterize(
            key,
            lambda: characterize_thevenin_driver(
                self.library.cell(cell_name),
                self.technology,
                rising=rising,
                input_pin=input_pin,
                load_capacitance=load_capacitance,
                input_transition=input_transition,
            ),
        )

    # --------------------------------------------------- propagated-noise table

    def propagation_table(
        self,
        cell_name: str,
        arc: NoiseArc,
        *,
        load_capacitance: float = 20e-15,
        heights: Optional[Sequence[float]] = None,
        widths: Optional[Sequence[float]] = None,
    ) -> NoisePropagationTable:
        """The pre-characterised propagated-noise table of a cell arc."""
        key = ("prop", cell_name, _arc_key(arc), round(load_capacitance, 20),
               None if heights is None else tuple(float(h) for h in heights),
               None if widths is None else tuple(float(w) for w in widths))
        return self._get_or_characterize(
            key,
            lambda: characterize_noise_propagation(
                self.library.cell(cell_name),
                self.technology,
                arc,
                load_capacitance=load_capacitance,
                heights=heights,
                widths=widths,
            ),
        )

    # -------------------------------------------------------------------- NRC

    def noise_rejection_curve(
        self,
        cell_name: str,
        arc: Optional[NoiseArc] = None,
        *,
        load_capacitance: float = 10e-15,
        widths: Optional[Sequence[float]] = None,
    ) -> NoiseRejectionCurve:
        """The noise rejection curve of a receiver input."""
        arc_key = None if arc is None else _arc_key(arc)
        key = ("nrc", cell_name, arc_key, round(load_capacitance, 20),
               None if widths is None else tuple(float(w) for w in widths))
        return self._get_or_characterize(
            key,
            lambda: characterize_nrc(
                self.library.cell(cell_name),
                self.technology,
                arc,
                load_capacitance=load_capacitance,
                widths=widths,
            ),
        )

    # ---------------------------------------------------------------- summary

    def cache_summary(self) -> str:
        kinds: Dict[str, int] = {}
        for key in self._cache:
            kinds[key[0]] = kinds.get(key[0], 0) + 1
        parts = ", ".join(f"{count} {kind}" for kind, count in sorted(kinds.items()))
        summary = f"LibraryCharacterizer cache: {parts or 'empty'}"
        if self.disk_cache is not None:
            summary += f"\n  {self.disk_cache.summary()}"
        return summary
