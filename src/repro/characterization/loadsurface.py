"""DC characterisation of the victim driver: the VCCS load surface.

This is the pre-characterisation step at the heart of the paper's
macromodel (equation (1)):

    I_DC = f(V_in, V_out)

For a given cell, noise arc (noisy input pin + quiescent side-input values)
and technology, a DC analysis is run on the transistor-level cell for every
point of a (V_in, V_out) grid spanning the "characterisation range
corresponding to the typical voltage swing of the technology".  The measured
quantity is the current the cell injects into its output node, i.e. the
current that flows from the output node through the forcing voltage source to
ground.

The resulting :class:`VCCSLoadSurface` supports bilinear interpolation with
analytic gradients, which is exactly what the macromodel engine needs to
stamp the non-linear VCCS at every Newton iteration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..circuit.dc import ConvergenceError, dc_operating_point
from ..circuit.netlist import Circuit
from ..technology.cells import NoiseArc, StandardCell
from ..technology.process import Technology

__all__ = ["VCCSLoadSurface", "characterize_load_surface"]


@dataclass(frozen=True)
class VCCSLoadSurface:
    """A table-based non-linear VCCS ``I_DC = f(V_in, V_out)``.

    Attributes
    ----------
    vin_grid / vout_grid:
        Monotonically increasing grid vectors (volts).
    current:
        2-D array of shape ``(len(vin_grid), len(vout_grid))`` with the
        current the cell injects into its output node (amperes; negative when
        the cell sinks current, e.g. an NMOS stack holding the output low
        while the output voltage is pushed above ground).
    cell_name / input_pin:
        Identification of the characterised arc.
    side_inputs:
        Quiescent logic values of the non-noisy input pins.
    vdd:
        Supply voltage used during characterisation.
    """

    vin_grid: np.ndarray
    vout_grid: np.ndarray
    current: np.ndarray
    cell_name: str = ""
    input_pin: str = "A"
    side_inputs: Tuple[Tuple[str, bool], ...] = ()
    vdd: float = 1.2

    def __post_init__(self):
        vin = np.asarray(self.vin_grid, dtype=float)
        vout = np.asarray(self.vout_grid, dtype=float)
        cur = np.asarray(self.current, dtype=float)
        if vin.ndim != 1 or vout.ndim != 1:
            raise ValueError("grids must be one-dimensional")
        if cur.shape != (vin.size, vout.size):
            raise ValueError(
                f"current table shape {cur.shape} does not match grids "
                f"({vin.size}, {vout.size})"
            )
        if np.any(np.diff(vin) <= 0) or np.any(np.diff(vout) <= 0):
            raise ValueError("grids must be strictly increasing")
        object.__setattr__(self, "vin_grid", vin)
        object.__setattr__(self, "vout_grid", vout)
        object.__setattr__(self, "current", cur)

    # ------------------------------------------------------------ interpolation

    def _locate(self, grid: np.ndarray, value: float) -> Tuple[int, float]:
        """Cell index and fractional position of ``value`` in ``grid``.

        The index is clamped to the boundary cells but the fractional
        position is *not* clamped, so queries outside the characterised range
        extrapolate linearly from the edge cell.  Linear extrapolation keeps
        the surface's output conductance non-zero outside the table, which is
        both closer to the device physics (the channel current keeps growing
        with overdrive) and essential for Newton stability in the engines.
        """
        idx = int(np.searchsorted(grid, value) - 1)
        idx = max(0, min(idx, grid.size - 2))
        span = grid[idx + 1] - grid[idx]
        frac = (value - grid[idx]) / span
        return idx, frac

    def evaluate(self, vin: float, vout: float) -> Tuple[float, float, float]:
        """Bilinear interpolation: returns ``(i, di/dvin, di/dvout)``.

        Inside the grid this is plain bilinear interpolation; outside it the
        edge cell is extended linearly (see :meth:`_locate`).
        """
        i_idx, fu = self._locate(self.vin_grid, vin)
        j_idx, fv = self._locate(self.vout_grid, vout)
        f00 = self.current[i_idx, j_idx]
        f10 = self.current[i_idx + 1, j_idx]
        f01 = self.current[i_idx, j_idx + 1]
        f11 = self.current[i_idx + 1, j_idx + 1]
        value = (
            f00 * (1 - fu) * (1 - fv)
            + f10 * fu * (1 - fv)
            + f01 * (1 - fu) * fv
            + f11 * fu * fv
        )
        dvin_span = self.vin_grid[i_idx + 1] - self.vin_grid[i_idx]
        dvout_span = self.vout_grid[j_idx + 1] - self.vout_grid[j_idx]
        d_du = ((f10 - f00) * (1 - fv) + (f11 - f01) * fv) / dvin_span
        d_dv = ((f01 - f00) * (1 - fu) + (f11 - f10) * fu) / dvout_span
        return float(value), float(d_du), float(d_dv)

    def __call__(self, vin: float, vout: float) -> float:
        return self.evaluate(vin, vout)[0]

    # ------------------------------------------------------------ derived data

    def output_conductance(self, vin: float, vout: float) -> float:
        """Small-signal output conductance ``-dI/dVout`` at a bias point.

        For a cell holding its output, the injected current decreases as the
        output is pushed away from the rail, so this value is positive.
        """
        _, _, didvout = self.evaluate(vin, vout)
        return -didvout

    def holding_resistance(self, vin: float, vout: float) -> float:
        """Holding resistance ``1 / output_conductance`` at a bias point."""
        g = self.output_conductance(vin, vout)
        if g <= 0.0:
            return float("inf")
        return 1.0 / g

    def quiet_output_voltage(self, vin: float) -> float:
        """Output voltage where the injected current is zero for a given input.

        Found by scanning the characterised ``V_out`` grid for the zero
        crossing of the current; this is the DC operating point of the loaded
        cell with an ideal (open) load.
        """
        currents = np.array([self(vin, vout) for vout in self.vout_grid])
        signs = np.sign(currents)
        for j in range(len(currents) - 1):
            if signs[j] == 0.0:
                return float(self.vout_grid[j])
            if signs[j] * signs[j + 1] < 0:
                c0, c1 = currents[j], currents[j + 1]
                frac = c0 / (c0 - c1)
                return float(self.vout_grid[j] + frac * (self.vout_grid[j + 1] - self.vout_grid[j]))
        # No crossing: the output rail closest to zero current.
        return float(self.vout_grid[int(np.argmin(np.abs(currents)))])

    def describe(self) -> str:
        side = ", ".join(f"{k}={int(v)}" for k, v in self.side_inputs)
        return (
            f"VCCSLoadSurface({self.cell_name}, pin {self.input_pin}, side [{side}], "
            f"{self.vin_grid.size}x{self.vout_grid.size} points)"
        )


def characterize_load_surface(
    cell: StandardCell,
    technology: Technology,
    *,
    input_pin: Optional[str] = None,
    side_inputs: Optional[Mapping[str, bool]] = None,
    arc: Optional[NoiseArc] = None,
    num_vin: int = 17,
    num_vout: int = 17,
    margin: float = 0.2,
) -> VCCSLoadSurface:
    """Characterise the VCCS load surface of a cell arc by DC sweeps.

    Either pass ``arc`` (a :class:`~repro.technology.cells.NoiseArc`) or the
    ``input_pin`` / ``side_inputs`` pair explicitly.

    Parameters
    ----------
    num_vin / num_vout:
        Grid resolution.  17 x 17 reproduces the paper's "simple DC analysis"
        pre-characterisation at negligible cost; the ablation benchmark
        sweeps this parameter.
    margin:
        Fractional extension of the sweep beyond the rails (0.2 = from
        -0.2*VDD to 1.2*VDD), covering overshoot conditions.
    """
    if arc is not None:
        input_pin = arc.input_pin
        side_inputs = arc.side_inputs_dict
    if input_pin is None:
        input_pin = cell.inputs[0]
    side_inputs = dict(side_inputs or {})
    for pin in cell.inputs:
        if pin != input_pin and pin not in side_inputs:
            raise ValueError(f"side input '{pin}' of {cell.name} has no quiescent value")

    vdd = technology.vdd
    v_low, v_high = technology.characterization_voltage_range(margin)
    vin_grid = np.linspace(v_low, v_high, num_vin)
    vout_grid = np.linspace(v_low, v_high, num_vout)

    # Build the characterisation circuit once; the swept sources are updated
    # in place between DC solves.
    circuit = Circuit(f"char_{cell.name}_{input_pin}")
    circuit.add_voltage_source("VDD", "vdd", "0", vdd)
    vin_source = circuit.add_voltage_source("VIN", "in", "0", 0.0)
    vout_source = circuit.add_voltage_source("VOUT", "out", "0", 0.0)
    for pin, value in side_inputs.items():
        circuit.add_voltage_source(f"VSIDE_{pin}", f"side_{pin}", "0", vdd if value else 0.0)

    pin_nodes = {input_pin: "in", cell.output_pin: "out"}
    for pin in side_inputs:
        pin_nodes[pin] = f"side_{pin}"
    cell.instantiate(circuit, "DUT", pin_nodes, technology)

    current = np.zeros((num_vin, num_vout))
    previous_solution = None
    for i, vin in enumerate(vin_grid):
        for j, vout in enumerate(vout_grid):
            vin_source.waveform = _dc(vin)
            vout_source.waveform = _dc(vout)
            try:
                solution = dc_operating_point(circuit, x0=previous_solution)
            except ConvergenceError:
                solution = dc_operating_point(circuit)
            previous_solution = solution.x
            # SPICE convention: positive source current flows from the +
            # terminal through the source, i.e. from the output node to
            # ground -- which is the current the cell injects into the node.
            current[i, j] = solution.source_current("VOUT")

    return VCCSLoadSurface(
        vin_grid=vin_grid,
        vout_grid=vout_grid,
        current=current,
        cell_name=cell.name,
        input_pin=input_pin,
        side_inputs=tuple(sorted(side_inputs.items())),
        vdd=vdd,
    )


def _dc(value: float):
    from ..circuit.sources import DCValue

    return DCValue(float(value))
