"""Waveform container and glitch metrics.

A :class:`Waveform` is an immutable pair of monotonically increasing time
points and the corresponding signal values.  It is the lingua franca of the
library: the circuit simulator produces waveforms, the noise engines produce
waveforms, and the noise metrics (peak, width, area) used throughout the
paper's tables are computed from waveforms.

The glitch metrics follow the conventions of the paper:

* ``peak``  - maximum absolute excursion from the quiescent baseline (volts);
* ``area``  - integral of the excursion above the baseline (volt-seconds,
  reported by the paper in V*ps);
* ``width`` - time spent above a fractional threshold of the peak (default
  50 %), i.e. the full width at half maximum of the glitch.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

__all__ = ["Waveform", "GlitchMetrics"]

# numpy 2.0 renamed trapz to trapezoid; support both.
_trapezoid = getattr(np, "trapezoid", None) or np.trapz

Number = Union[int, float]


@dataclass(frozen=True)
class GlitchMetrics:
    """Summary metrics of a noise glitch.

    Attributes
    ----------
    peak:
        Maximum excursion from the baseline, in volts (signed: positive for
        glitches above the baseline, negative for undershoot-dominated ones).
    area:
        Integral of the absolute excursion, in volt-seconds.
    width:
        Full width at ``width_threshold`` times the peak, in seconds.
    peak_time:
        Time at which the peak excursion occurs, in seconds.
    baseline:
        Quiescent level the excursion is measured from, in volts.
    width_threshold:
        Fraction of the peak used for the width measurement.
    """

    peak: float
    area: float
    width: float
    peak_time: float
    baseline: float
    width_threshold: float = 0.5

    @property
    def area_v_ps(self) -> float:
        """Glitch area in V*ps, the unit used by the paper's tables."""
        return self.area / 1e-12

    @property
    def width_ps(self) -> float:
        """Glitch width in picoseconds."""
        return self.width / 1e-12

    def as_dict(self) -> dict:
        """Return the metrics as a plain dictionary (useful for reports)."""
        return {
            "peak_v": self.peak,
            "area_v_ps": self.area_v_ps,
            "width_ps": self.width_ps,
            "peak_time_s": self.peak_time,
            "baseline_v": self.baseline,
        }


class Waveform:
    """A sampled signal ``v(t)`` on a strictly increasing time axis."""

    __slots__ = ("_times", "_values")

    def __init__(self, times: Sequence[Number], values: Sequence[Number]):
        times_arr = np.asarray(times, dtype=float)
        values_arr = np.asarray(values, dtype=float)
        if times_arr.ndim != 1 or values_arr.ndim != 1:
            raise ValueError("times and values must be one-dimensional")
        if times_arr.shape != values_arr.shape:
            raise ValueError(
                f"times ({times_arr.shape}) and values ({values_arr.shape}) "
                "must have the same length"
            )
        if times_arr.size < 2:
            raise ValueError("a waveform needs at least two samples")
        if np.any(np.diff(times_arr) <= 0):
            raise ValueError("times must be strictly increasing")
        object.__setattr__(self, "_times", times_arr)
        object.__setattr__(self, "_values", values_arr)

    # -- basic accessors ----------------------------------------------------

    @property
    def times(self) -> np.ndarray:
        """Time axis in seconds (read-only view)."""
        view = self._times.view()
        view.flags.writeable = False
        return view

    @property
    def values(self) -> np.ndarray:
        """Signal values (read-only view)."""
        view = self._values.view()
        view.flags.writeable = False
        return view

    @property
    def t_start(self) -> float:
        return float(self._times[0])

    @property
    def t_stop(self) -> float:
        return float(self._times[-1])

    @property
    def duration(self) -> float:
        return self.t_stop - self.t_start

    def __len__(self) -> int:
        return int(self._times.size)

    def __repr__(self) -> str:
        return (
            f"Waveform(n={len(self)}, t=[{self.t_start:.3e}, {self.t_stop:.3e}] s, "
            f"v=[{self._values.min():.4f}, {self._values.max():.4f}])"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Waveform):
            return NotImplemented
        return np.array_equal(self._times, other._times) and np.array_equal(
            self._values, other._values
        )

    def __hash__(self) -> int:  # waveforms are value objects
        return hash((self._times.tobytes(), self._values.tobytes()))

    # -- construction helpers -----------------------------------------------

    @classmethod
    def constant(cls, value: float, t_start: float, t_stop: float, n: int = 2) -> "Waveform":
        """A flat waveform at ``value`` between ``t_start`` and ``t_stop``."""
        if n < 2:
            n = 2
        times = np.linspace(t_start, t_stop, n)
        return cls(times, np.full(n, float(value)))

    @classmethod
    def from_function(
        cls,
        func: Callable[[np.ndarray], np.ndarray],
        t_start: float,
        t_stop: float,
        n: int = 201,
    ) -> "Waveform":
        """Sample a callable ``v(t)`` uniformly on ``[t_start, t_stop]``."""
        times = np.linspace(t_start, t_stop, n)
        values = np.asarray(func(times), dtype=float)
        if values.shape != times.shape:
            values = np.array([float(func(t)) for t in times])
        return cls(times, values)

    @classmethod
    def triangular_glitch(
        cls,
        baseline: float,
        peak: float,
        t_start: float,
        rise: float,
        fall: float,
        pre: float = 0.0,
        post: float = 0.0,
    ) -> "Waveform":
        """A triangular noise glitch rising from ``baseline`` to ``baseline+peak``.

        Parameters
        ----------
        baseline:
            Quiet level before/after the glitch (volts).
        peak:
            Glitch height above the baseline (may be negative for undershoot).
        t_start:
            Time at which the glitch starts to rise.
        rise, fall:
            Rise and fall durations (seconds).
        pre, post:
            Flat guard intervals added before and after the glitch.
        """
        if rise <= 0 or fall <= 0:
            raise ValueError("rise and fall must be positive")
        t0 = t_start - max(pre, 0.0)
        points_t = [t0, t_start, t_start + rise, t_start + rise + fall]
        points_v = [baseline, baseline, baseline + peak, baseline]
        if post > 0:
            points_t.append(points_t[-1] + post)
            points_v.append(baseline)
        # Remove duplicate leading time if pre == 0.
        times: list = []
        values: list = []
        for t, v in zip(points_t, points_v):
            if times and t <= times[-1]:
                continue
            times.append(t)
            values.append(v)
        return cls(times, values)

    # -- evaluation ----------------------------------------------------------

    def __call__(self, t: Union[Number, Sequence[Number], np.ndarray]) -> Union[float, np.ndarray]:
        """Evaluate the waveform at time(s) ``t`` by linear interpolation.

        Values outside the time range are clamped to the first/last sample.
        """
        result = np.interp(np.asarray(t, dtype=float), self._times, self._values)
        if np.isscalar(t) or (isinstance(t, np.ndarray) and t.ndim == 0):
            return float(result)
        return result

    def value_at(self, t: float) -> float:
        """Scalar interpolation at time ``t``."""
        return float(np.interp(t, self._times, self._values))

    def resample(self, times: Sequence[Number]) -> "Waveform":
        """Return the waveform re-sampled on a new time axis."""
        times_arr = np.asarray(times, dtype=float)
        return Waveform(times_arr, np.interp(times_arr, self._times, self._values))

    def resample_uniform(self, n: int) -> "Waveform":
        """Return the waveform re-sampled on ``n`` uniform points."""
        return self.resample(np.linspace(self.t_start, self.t_stop, n))

    # -- arithmetic ----------------------------------------------------------

    def _binary(self, other: Union["Waveform", Number], op) -> "Waveform":
        if isinstance(other, Waveform):
            times = np.union1d(self._times, other._times)
            a = np.interp(times, self._times, self._values)
            b = np.interp(times, other._times, other._values)
            return Waveform(times, op(a, b))
        return Waveform(self._times, op(self._values, float(other)))

    def __add__(self, other: Union["Waveform", Number]) -> "Waveform":
        return self._binary(other, lambda a, b: a + b)

    __radd__ = __add__

    def __sub__(self, other: Union["Waveform", Number]) -> "Waveform":
        return self._binary(other, lambda a, b: a - b)

    def __rsub__(self, other: Number) -> "Waveform":
        return Waveform(self._times, float(other) - self._values)

    def __mul__(self, scale: Number) -> "Waveform":
        return Waveform(self._times, self._values * float(scale))

    __rmul__ = __mul__

    def __neg__(self) -> "Waveform":
        return Waveform(self._times, -self._values)

    def shift(self, dt: float) -> "Waveform":
        """Return the waveform shifted in time by ``dt`` seconds."""
        return Waveform(self._times + dt, self._values)

    def clip_time(self, t_start: float, t_stop: float) -> "Waveform":
        """Return the waveform restricted to ``[t_start, t_stop]``.

        Interpolated samples are inserted exactly at the boundaries so no
        signal content is lost.
        """
        if t_stop <= t_start:
            raise ValueError("t_stop must be greater than t_start")
        t_start = max(t_start, self.t_start)
        t_stop = min(t_stop, self.t_stop)
        mask = (self._times > t_start) & (self._times < t_stop)
        times = np.concatenate(([t_start], self._times[mask], [t_stop]))
        values = np.interp(times, self._times, self._values)
        return Waveform(times, values)

    # -- metrics ---------------------------------------------------------------

    def max(self) -> float:
        return float(self._values.max())

    def min(self) -> float:
        return float(self._values.min())

    def integral(self) -> float:
        """Integral of the waveform over its full time span (trapezoidal)."""
        return float(_trapezoid(self._values, self._times))

    def baseline(self) -> float:
        """Estimate of the quiescent level: the value at the first sample."""
        return float(self._values[0])

    def excursion(self, baseline: Optional[float] = None) -> "Waveform":
        """Waveform of the excursion from the baseline."""
        base = self.baseline() if baseline is None else float(baseline)
        return Waveform(self._times, self._values - base)

    def peak_excursion(self, baseline: Optional[float] = None) -> Tuple[float, float]:
        """Return ``(signed peak, time of peak)`` relative to the baseline."""
        base = self.baseline() if baseline is None else float(baseline)
        deviation = self._values - base
        idx = int(np.argmax(np.abs(deviation)))
        return float(deviation[idx]), float(self._times[idx])

    def crossings(self, level: float) -> list:
        """Times at which the waveform crosses ``level`` (linear interpolation)."""
        v = self._values - level
        out = []
        for i in range(len(v) - 1):
            a, b = v[i], v[i + 1]
            if a == 0.0:
                out.append(float(self._times[i]))
            elif a * b < 0.0:
                frac = a / (a - b)
                out.append(float(self._times[i] + frac * (self._times[i + 1] - self._times[i])))
        if v[-1] == 0.0:
            out.append(float(self._times[-1]))
        return out

    def glitch_metrics(
        self,
        baseline: Optional[float] = None,
        width_threshold: float = 0.5,
    ) -> GlitchMetrics:
        """Compute peak / area / width of the glitch contained in the waveform.

        The glitch polarity is decided by the largest absolute excursion from
        the baseline; the area integrates only the excursion of that polarity
        so that ringing of the opposite sign does not cancel the glitch area.
        """
        base = self.baseline() if baseline is None else float(baseline)
        deviation = self._values - base
        peak_signed, peak_time = self.peak_excursion(base)
        if peak_signed == 0.0:
            return GlitchMetrics(0.0, 0.0, 0.0, float(self._times[0]), base, width_threshold)

        sign = 1.0 if peak_signed > 0 else -1.0
        oriented = deviation * sign
        positive = np.clip(oriented, 0.0, None)
        area = float(_trapezoid(positive, self._times))

        # Width at width_threshold * |peak| around the main lobe containing
        # the peak sample.
        level = width_threshold * abs(peak_signed)
        above = oriented >= level
        peak_idx = int(np.argmax(oriented))
        if not above[peak_idx]:
            width = 0.0
        else:
            # Walk left and right from the peak to the threshold crossings.
            left = peak_idx
            while left > 0 and above[left - 1]:
                left -= 1
            right = peak_idx
            while right < len(above) - 1 and above[right + 1]:
                right += 1
            t_left = self._times[left]
            if left > 0:
                # interpolate the exact crossing
                v0, v1 = oriented[left - 1], oriented[left]
                frac = (level - v0) / (v1 - v0)
                t_left = self._times[left - 1] + frac * (self._times[left] - self._times[left - 1])
            t_right = self._times[right]
            if right < len(above) - 1:
                v0, v1 = oriented[right], oriented[right + 1]
                frac = (v0 - level) / (v0 - v1)
                t_right = self._times[right] + frac * (self._times[right + 1] - self._times[right])
            width = float(t_right - t_left)

        return GlitchMetrics(
            peak=float(peak_signed),
            area=area,
            width=width,
            peak_time=peak_time,
            baseline=base,
            width_threshold=width_threshold,
        )

    # -- comparisons -----------------------------------------------------------

    def rms_difference(self, other: "Waveform", n: int = 512) -> float:
        """RMS difference against ``other`` on the overlapping time window."""
        t0 = max(self.t_start, other.t_start)
        t1 = min(self.t_stop, other.t_stop)
        if t1 <= t0:
            raise ValueError("waveforms do not overlap in time")
        times = np.linspace(t0, t1, n)
        a = self(times)
        b = other(times)
        return float(np.sqrt(np.mean((a - b) ** 2)))

    def max_difference(self, other: "Waveform", n: int = 512) -> float:
        """Maximum absolute difference against ``other`` on the overlap."""
        t0 = max(self.t_start, other.t_start)
        t1 = min(self.t_stop, other.t_stop)
        if t1 <= t0:
            raise ValueError("waveforms do not overlap in time")
        times = np.linspace(t0, t1, n)
        return float(np.max(np.abs(self(times) - other(times))))


def align_waveforms(waveforms: Iterable[Waveform], n: int = 1024) -> Tuple[np.ndarray, list]:
    """Resample a collection of waveforms onto a common uniform time axis.

    Returns the common time axis and the list of value arrays.  The axis spans
    the union of the individual time ranges; waveforms are clamped outside
    their own range (consistent with :meth:`Waveform.__call__`).
    """
    wf_list = list(waveforms)
    if not wf_list:
        raise ValueError("need at least one waveform")
    t0 = min(w.t_start for w in wf_list)
    t1 = max(w.t_stop for w in wf_list)
    times = np.linspace(t0, t1, n)
    return times, [w(times) for w in wf_list]
