"""repro -- Static noise analysis with a non-linear victim-driver macromodel.

Reproduction of Forzan & Pandini, "Modeling the Non-Linear Behavior of Library
Cells for an Accurate Static Noise Analysis", DATE 2005.

Sub-packages
------------
``repro.circuit``
    SPICE-class non-linear circuit simulator (the golden reference).
``repro.technology``
    Process presets and transistor-level standard-cell generators.
``repro.characterization``
    Cell characterisation: VCCS load surfaces, holding resistance, Thevenin
    driver models, noise-propagation tables, noise rejection curves.
``repro.interconnect``
    Coupled RC interconnect construction, moments and reduced-order models.
``repro.noise``
    The paper's noise-cluster macromodel and the baselines it is compared to.
``repro.sna``
    A small full-design static noise analysis flow built on the above.
``repro.golden``
    Transistor-level golden cluster simulations.

Only the lightweight value types are re-exported at the top level; import the
sub-packages directly for the analysis flows.
"""

from .units import fF, kohm, mV, ns, ps, to_fF, to_mV, to_ps, to_v_ps, um
from .waveform import GlitchMetrics, Waveform

__version__ = "0.1.0"

__all__ = [
    "Waveform",
    "GlitchMetrics",
    "ps",
    "ns",
    "fF",
    "kohm",
    "um",
    "mV",
    "to_ps",
    "to_fF",
    "to_mV",
    "to_v_ps",
    "__version__",
]
