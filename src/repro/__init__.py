"""repro -- Static noise analysis with a non-linear victim-driver macromodel.

Reproduction of Forzan & Pandini, "Modeling the Non-Linear Behavior of Library
Cells for an Accurate Static Noise Analysis", DATE 2005.

Sub-packages
------------
``repro.api``
    The unified front door: ``NoiseAnalysisSession`` (single/batch/design
    analysis), frozen ``AnalysisConfig`` and the pluggable analysis-method
    registry.
``repro.circuit``
    SPICE-class non-linear circuit simulator (the golden reference).
``repro.technology``
    Process presets and transistor-level standard-cell generators.
``repro.characterization``
    Cell characterisation: VCCS load surfaces, holding resistance, Thevenin
    driver models, noise-propagation tables, noise rejection curves.
``repro.interconnect``
    Coupled RC interconnect construction, moments and reduced-order models.
``repro.noise``
    The paper's noise-cluster macromodel and the baselines it is compared to.
``repro.sna``
    Design database, parasitics annotation and noise-cluster extraction.
``repro.golden``
    Transistor-level golden cluster simulations.

The lightweight value types are re-exported eagerly; the session API
(``NoiseAnalysisSession``, ``AnalysisConfig``, ``list_methods``,
``register_method``, ...) is re-exported lazily so ``import repro`` stays
cheap for scripts that only need units and waveforms.
"""

from .units import fF, kohm, mV, ns, ps, to_fF, to_mV, to_ps, to_v_ps, um
from .waveform import GlitchMetrics, Waveform

__version__ = "0.3.0"

#: Session-API names resolved lazily from :mod:`repro.api` (PEP 562).
_API_EXPORTS = (
    "NoiseAnalysisSession",
    "AnalysisConfig",
    "ClusterError",
    "ClusterReport",
    "SessionReport",
    "RemovedAPIError",
    "WireFormatError",
    "list_methods",
    "method_descriptions",
    "register_method",
    "unregister_method",
)

#: Service names resolved lazily from :mod:`repro.service` -- the daemon
#: stack (asyncio, sockets) must not tax ``import repro``.
_SERVICE_EXPORTS = (
    "AnalysisServer",
    "ServiceClient",
)

#: The stable public surface of the package, wire-versioned since 0.3.0.
__all__ = [
    "Waveform",
    "GlitchMetrics",
    "ps",
    "ns",
    "fF",
    "kohm",
    "um",
    "mV",
    "to_ps",
    "to_fF",
    "to_mV",
    "to_v_ps",
    "__version__",
    *_API_EXPORTS,
    *_SERVICE_EXPORTS,
]


def __getattr__(name):
    if name in _API_EXPORTS:
        from . import api

        return getattr(api, name)
    if name in _SERVICE_EXPORTS:
        from . import service

        return getattr(service, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | set(_API_EXPORTS) | set(_SERVICE_EXPORTS))
