"""Deterministic fault injection for the fault-tolerance test surface.

Every recovery path in the sweep runner and the numerical degradation
ladder exists because workers segfault, scenarios hang and matrices go
singular in production -- but none of those events occur naturally in a
clean test environment.  This module makes them *reproducible*: a
:class:`FaultPlan` names exactly which fault fires at which site for which
scenario, so the crash-recovery tests and the CI ``fault-smoke`` job
exercise the real recovery machinery instead of trusting it on faith.

Activation
----------
* programmatic: :func:`install_plan` / :func:`clear_plan` /
  the :func:`plan_active` context manager (same-process tests);
* environment: ``REPRO_FAULT_PLAN`` holds either the plan JSON itself
  (first non-space character ``{``) or a path to a JSON file.  Environment
  activation is what reaches *worker processes*: the sweep runner's pool
  workers inherit the parent environment under every start method.

Plan format::

    {
      "ledger_dir": "/tmp/ledger",          # optional, see "trip budgets"
      "faults": [
        {"site": "scenario", "match": "*/mc001", "kind": "crash"},
        {"site": "scenario", "match": "*/mc004", "kind": "hang",
         "hang_seconds": 120},
        {"site": "solve",    "match": "*/mc002", "kind": "singular",
         "max_trips": 1},
        {"site": "metrics",  "match": "*/mc003", "kind": "nan"}
      ]
    }

Sites are fixed hook points (cheap ``None`` checks when no plan is
active):

``scenario``
    Entry of a scenario analysis in the sweep worker.  Kinds ``crash``
    (``os._exit``, simulating a segfault / OOM kill), ``hang``
    (``time.sleep``) and ``error`` (raise :class:`InjectedFault`).
``solve``
    Inside :func:`repro.circuit.mna.solve_linear_system`.  Kind
    ``singular`` makes the solver raise a ``SingularMatrixError``, which
    drives the numerical degradation ladder exactly like a genuinely
    singular system.
``metrics``
    After a scenario's metrics are collected.  Kind ``nan`` poisons the
    scalar metrics with NaN, which must be caught by the runner's
    non-finite screen.

Scenario attribution: deep sites (``solve``) have no scenario id of their
own; the runner surrounds each analysis with :func:`scenario_context` and
deep hooks match against that ambient id.  Matching uses
:func:`fnmatch.fnmatch` on the scenario id, so plans survive re-sharding,
retries and any worker count -- the *scenario* is the deterministic unit,
not the process or the call count.

Trip budgets: ``max_trips`` bounds how often a fault fires.  Without a
``ledger_dir`` the count is per-process (enough for same-process ladder
tests); with one, each trip atomically creates a file in the shared
directory (``O_CREAT | O_EXCL``), so the budget holds *across worker
processes and crashes* -- a ``crash`` fault with ``max_trips: 1`` records
its trip before exiting and therefore crashes exactly one attempt, letting
the retry succeed.
"""

from __future__ import annotations

import contextlib
import errno
import fnmatch
import hashlib
import json
import os
import time
from contextvars import ContextVar
from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Sequence, Tuple

__all__ = [
    "FAULT_KINDS",
    "FAULT_PLAN_ENV",
    "FAULT_SITES",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "active_plan",
    "clear_plan",
    "current_scenario",
    "fire",
    "install_plan",
    "plan_active",
    "scenario_context",
]

#: Environment variable carrying the plan JSON (or a path to it).
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

FAULT_SITES: Tuple[str, ...] = ("scenario", "solve", "metrics")
FAULT_KINDS: Tuple[str, ...] = ("crash", "hang", "error", "singular", "nan")

#: Which kinds make sense at which site.
_SITE_KINDS = {
    "scenario": ("crash", "hang", "error"),
    "solve": ("singular", "crash", "hang"),
    "metrics": ("nan",),
}


class InjectedFault(RuntimeError):
    """Raised by a ``kind="error"`` fault (a generic injected failure)."""


@dataclass(frozen=True)
class FaultSpec:
    """One fault: fire ``kind`` at ``site`` for scenarios matching ``match``."""

    site: str
    kind: str
    #: ``fnmatch`` pattern against the scenario id ("*" matches everything).
    match: str = "*"
    #: How long a ``hang`` fault sleeps (seconds).
    hang_seconds: float = 3600.0
    #: Maximum number of times this fault fires (``None`` = unlimited).
    max_trips: Optional[int] = None

    def __post_init__(self):
        if self.site not in FAULT_SITES:
            raise ValueError(f"unknown fault site {self.site!r}; valid: {FAULT_SITES}")
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; valid: {FAULT_KINDS}")
        if self.kind not in _SITE_KINDS[self.site]:
            raise ValueError(
                f"fault kind {self.kind!r} is not valid at site {self.site!r} "
                f"(valid there: {_SITE_KINDS[self.site]})"
            )
        if not self.match:
            raise ValueError("fault match pattern must be non-empty")
        if self.hang_seconds <= 0:
            raise ValueError("hang_seconds must be positive")
        if self.max_trips is not None and self.max_trips < 1:
            raise ValueError("max_trips must be None or at least 1")

    def matches(self, site: str, scenario_id: str) -> bool:
        return site == self.site and fnmatch.fnmatch(scenario_id, self.match)

    def token(self) -> str:
        """Stable identifier of this fault (ledger file prefix)."""
        raw = f"{self.site}|{self.kind}|{self.match}"
        return hashlib.sha256(raw.encode()).hexdigest()[:16]


class FaultPlan:
    """An ordered set of :class:`FaultSpec` plus the trip bookkeeping."""

    def __init__(
        self,
        faults: Sequence[FaultSpec],
        *,
        ledger_dir: Optional[str] = None,
    ):
        self.faults: Tuple[FaultSpec, ...] = tuple(faults)
        self.ledger_dir = ledger_dir
        self._local_trips: Dict[str, int] = {}
        if ledger_dir:
            os.makedirs(ledger_dir, exist_ok=True)

    # ------------------------------------------------------------- construction

    @classmethod
    def from_dict(cls, payload: Dict) -> "FaultPlan":
        faults = [FaultSpec(**spec) for spec in payload.get("faults", [])]
        return cls(faults, ledger_dir=payload.get("ledger_dir"))

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    @classmethod
    def from_env(cls) -> Optional["FaultPlan"]:
        """The plan named by ``$REPRO_FAULT_PLAN``, or ``None``."""
        raw = os.environ.get(FAULT_PLAN_ENV, "").strip()
        if not raw:
            return None
        if raw.startswith("{"):
            return cls.from_json(raw)
        with open(raw) as handle:
            return cls.from_json(handle.read())

    def to_dict(self) -> Dict:
        payload: Dict = {
            "faults": [
                {
                    "site": spec.site,
                    "kind": spec.kind,
                    "match": spec.match,
                    "hang_seconds": spec.hang_seconds,
                    "max_trips": spec.max_trips,
                }
                for spec in self.faults
            ]
        }
        if self.ledger_dir:
            payload["ledger_dir"] = self.ledger_dir
        return payload

    # -------------------------------------------------------------------- trips

    def _claim_trip(self, spec: FaultSpec) -> bool:
        """Reserve one trip of ``spec``; False when the budget is spent.

        The claim happens *before* the fault executes, so even a ``crash``
        fault that never returns has its trip on record.
        """
        if spec.max_trips is None:
            return True
        token = spec.token()
        if self.ledger_dir:
            for trip in range(spec.max_trips):
                path = os.path.join(self.ledger_dir, f"{token}.trip{trip}")
                try:
                    fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
                except OSError as exc:  # pragma: no cover - racy branch
                    if exc.errno != errno.EEXIST:
                        raise
                    continue
                os.close(fd)
                return True
            return False
        used = self._local_trips.get(token, 0)
        if used >= spec.max_trips:
            return False
        self._local_trips[token] = used + 1
        return True

    # --------------------------------------------------------------------- fire

    def fire(self, site: str, scenario_id: str) -> Optional[str]:
        """Evaluate the plan at a fault site; returns the kind that fired.

        ``crash`` and ``hang`` execute their side effect here; ``error``
        raises :class:`InjectedFault`; caller-interpreted kinds
        (``singular``, ``nan``) are returned for the hook site to act on.
        """
        for spec in self.faults:
            if not spec.matches(site, scenario_id):
                continue
            if not self._claim_trip(spec):
                continue
            if spec.kind == "crash":
                # A hard exit, bypassing every exception handler and atexit
                # hook -- the closest portable stand-in for a segfault or an
                # OOM kill.
                os._exit(13)
            if spec.kind == "hang":
                time.sleep(spec.hang_seconds)
                return "hang"
            if spec.kind == "error":
                raise InjectedFault(
                    f"injected fault at site {site!r} for scenario "
                    f"{scenario_id!r} [fault plan]"
                )
            return spec.kind
        return None


# --------------------------------------------------------------------- runtime

#: Sentinel distinguishing "not resolved yet" from "no plan".
_UNSET = object()
_plan = _UNSET

#: Ambient scenario id for deep fault sites (set by the sweep runner).
_scenario_id: ContextVar[str] = ContextVar("repro_fault_scenario", default="")


def install_plan(plan: Optional[FaultPlan]) -> None:
    """Activate ``plan`` in this process (overrides the environment)."""
    global _plan
    _plan = plan


def clear_plan() -> None:
    """Deactivate fault injection; the environment is re-read on next use."""
    global _plan
    _plan = _UNSET


def active_plan() -> Optional[FaultPlan]:
    """The currently active plan (environment resolved lazily, once)."""
    global _plan
    if _plan is _UNSET:
        _plan = FaultPlan.from_env()
    return _plan  # type: ignore[return-value]


@contextlib.contextmanager
def plan_active(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Context manager installing ``plan`` for the duration of a test."""
    global _plan
    previous = _plan
    install_plan(plan)
    try:
        yield plan
    finally:
        _plan = previous


def current_scenario() -> str:
    """The scenario id the current analysis runs under ("" outside one)."""
    return _scenario_id.get()


@contextlib.contextmanager
def scenario_context(scenario_id: str) -> Iterator[None]:
    """Tag the current (thread of) execution with a scenario id."""
    token = _scenario_id.set(scenario_id)
    try:
        yield
    finally:
        _scenario_id.reset(token)


def fire(site: str, scenario_id: Optional[str] = None) -> Optional[str]:
    """Hook entry point: evaluate the active plan at ``site``.

    Returns the kind that fired (``None`` when nothing did).  Costs one
    global read and a ``None`` check when fault injection is inactive, so
    hot paths (the linear-solver hook) can call it unconditionally.
    """
    plan = _plan
    if plan is _UNSET:
        plan = active_plan()
    if plan is None:
        return None
    key = scenario_id if scenario_id is not None else _scenario_id.get()
    return plan.fire(site, key)  # type: ignore[union-attr]
