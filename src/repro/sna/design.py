"""Gate-level design representation for the full-chip SNA flow.

The paper's macromodel is meant to be embedded in a complete static noise
analysis tool (ClariNet / Harmony class).  This module provides the minimal
design database such a tool needs: cell instances with pin-to-net
connectivity, plus per-net routing information (length, layer) or explicit
coupling annotations from which noise clusters can be extracted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Set, Tuple

from ..technology.library import CellLibrary

__all__ = ["Instance", "Net", "CouplingAnnotation", "Design", "DesignConnectivity"]


@dataclass
class Instance:
    """A placed cell instance with its pin connections."""

    name: str
    cell: str
    connections: Dict[str, str]  # pin -> net

    def output_net(self, library: CellLibrary) -> Optional[str]:
        cell = library.cell(self.cell)
        return self.connections.get(cell.output_pin)

    def input_nets(self, library: CellLibrary) -> Dict[str, str]:
        cell = library.cell(self.cell)
        return {pin: net for pin, net in self.connections.items() if pin in cell.inputs}


@dataclass
class Net:
    """A routed net with simple geometric annotations."""

    name: str
    length_um: float = 100.0
    layer_index: int = 3
    #: Externally supplied logic value of the net when it is quiet
    #: (None = derive from the driver, assumed low).
    quiet_high: Optional[bool] = None


@dataclass(frozen=True)
class CouplingAnnotation:
    """Declared capacitive coupling between two nets.

    ``coupled_length_um`` is the common parallel run length; the extraction
    uses the layer of the *victim* net to convert it into capacitance.
    """

    net_a: str
    net_b: str
    coupled_length_um: float

    def other(self, net: str) -> str:
        if net == self.net_a:
            return self.net_b
        if net == self.net_b:
            return self.net_a
        raise KeyError(f"{net} is not part of this coupling annotation")


class Design:
    """A gate-level design: nets, instances and coupling annotations."""

    def __init__(self, name: str, library: CellLibrary):
        self.name = name
        self.library = library
        self.nets: Dict[str, Net] = {}
        self.instances: Dict[str, Instance] = {}
        self.couplings: List[CouplingAnnotation] = []
        #: Nets that are primary inputs (driven from outside the design).
        self.primary_inputs: Set[str] = set()

    # ------------------------------------------------------------------ edits

    def add_net(
        self,
        name: str,
        *,
        length_um: float = 100.0,
        layer_index: int = 3,
        quiet_high: Optional[bool] = None,
    ) -> Net:
        if name in self.nets:
            raise ValueError(f"net '{name}' already exists")
        net = Net(name, length_um=length_um, layer_index=layer_index, quiet_high=quiet_high)
        self.nets[name] = net
        return net

    def add_primary_input(self, name: str, **kwargs) -> Net:
        net = self.add_net(name, **kwargs)
        self.primary_inputs.add(name)
        return net

    def add_instance(self, name: str, cell: str, connections: Mapping[str, str]) -> Instance:
        if name in self.instances:
            raise ValueError(f"instance '{name}' already exists")
        if cell not in self.library:
            raise KeyError(f"cell '{cell}' is not in library '{self.library.name}'")
        library_cell = self.library.cell(cell)
        for pin in [*library_cell.inputs, library_cell.output_pin]:
            if pin not in connections:
                raise ValueError(f"instance '{name}': pin '{pin}' of {cell} is unconnected")
        for net in connections.values():
            if net not in self.nets:
                self.add_net(net)
        instance = Instance(name, cell, dict(connections))
        self.instances[name] = instance
        return instance

    def add_coupling(self, net_a: str, net_b: str, coupled_length_um: float) -> CouplingAnnotation:
        for net in (net_a, net_b):
            if net not in self.nets:
                raise KeyError(f"unknown net '{net}'")
        annotation = CouplingAnnotation(net_a, net_b, coupled_length_um)
        self.couplings.append(annotation)
        return annotation

    # ---------------------------------------------------------------- queries

    def driver_of(self, net: str) -> Optional[Instance]:
        """The instance driving ``net`` (None for primary inputs)."""
        for instance in self.instances.values():
            if instance.output_net(self.library) == net:
                return instance
        return None

    def receivers_of(self, net: str) -> List[Tuple[Instance, str]]:
        """Instances (and the pin) whose inputs are connected to ``net``."""
        out: List[Tuple[Instance, str]] = []
        for instance in self.instances.values():
            for pin, connected in instance.input_nets(self.library).items():
                if connected == net:
                    out.append((instance, pin))
        return out

    def aggressors_of(self, net: str) -> List[Tuple[str, float]]:
        """Nets coupled to ``net`` with their coupled length."""
        result = []
        for coupling in self.couplings:
            if net in (coupling.net_a, coupling.net_b):
                result.append((coupling.other(net), coupling.coupled_length_um))
        return result

    def net_quiet_level(self, net: str) -> bool:
        """Assumed quiet logic level of a net (False = low)."""
        annotation = self.nets[net].quiet_high
        if annotation is not None:
            return annotation
        return False

    def connectivity(self) -> "DesignConnectivity":
        """Build an O(1)-lookup index over drivers, receivers and couplings.

        The per-query methods above scan every instance (or coupling) per
        call, which is fine interactively but quadratic when extraction walks
        every net of a large design.  The index is a snapshot -- rebuild it
        after editing the design.
        """
        return DesignConnectivity(self)

    def summary(self) -> str:
        return (
            f"Design '{self.name}': {len(self.instances)} instances, "
            f"{len(self.nets)} nets, {len(self.couplings)} coupling annotations"
        )

    def __repr__(self) -> str:
        return self.summary()


class DesignConnectivity:
    """Immutable O(1) index of a design's drivers, receivers and couplings.

    Lookup results match the design's linear-scan queries exactly, including
    tie-breaking: the first instance in insertion order wins ``driver_of``,
    receivers and couplings keep their insertion order.
    """

    def __init__(self, design: Design):
        self.design = design
        self._drivers: Dict[str, Instance] = {}
        self._receivers: Dict[str, List[Tuple[Instance, str]]] = {}
        self._couplings: Dict[str, List[Tuple[str, float]]] = {}
        library = design.library
        for instance in design.instances.values():
            output = instance.output_net(library)
            if output is not None:
                self._drivers.setdefault(output, instance)
            for pin, net in instance.input_nets(library).items():
                self._receivers.setdefault(net, []).append((instance, pin))
        for coupling in design.couplings:
            self._couplings.setdefault(coupling.net_a, []).append(
                (coupling.net_b, coupling.coupled_length_um)
            )
            self._couplings.setdefault(coupling.net_b, []).append(
                (coupling.net_a, coupling.coupled_length_um)
            )

    def driver_of(self, net: str) -> Optional[Instance]:
        return self._drivers.get(net)

    def receivers_of(self, net: str) -> List[Tuple[Instance, str]]:
        return self._receivers.get(net, [])

    def aggressors_of(self, net: str) -> List[Tuple[str, float]]:
        return self._couplings.get(net, [])
