"""Noise-cluster extraction from an annotated design.

Extraction is the first stage of the industrial SNA pipeline (cluster
extraction -> per-cluster noise evaluation -> NRC check -> violation
report).  It used to live inside ``StaticNoiseAnalysisFlow``; it is a
standalone :class:`ClusterExtractor` now so the unified
:class:`~repro.api.session.NoiseAnalysisSession` -- and anything else, e.g. a
future sharded dispatcher -- can extract clusters without dragging in the
whole legacy flow object.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Mapping, Optional

from ..interconnect.geometry import ParallelBusGeometry, WireSpec
from ..noise.cluster import AggressorSpec, InputGlitchSpec, NoiseClusterSpec, VictimSpec
from ..units import ps
from .design import Design

__all__ = ["ClusterExtraction", "ExtractionConfig", "ClusterExtractor"]


@dataclass
class ClusterExtraction:
    """One extracted noise cluster and its provenance in the design."""

    victim_net: str
    spec: NoiseClusterSpec
    aggressor_nets: List[str]
    skipped_aggressors: List[str] = field(default_factory=list)


@dataclass(frozen=True)
class ExtractionConfig:
    """Knobs of the cluster-extraction stage.

    Parameters
    ----------
    max_aggressors:
        Aggressors beyond this count (ordered by coupled length) are dropped
        from the cluster -- the standard cluster-filtering simplification.
    """

    num_segments: int = 8
    aggressor_switch_time: float = ps(200)
    aggressor_input_transition: float = ps(40)
    max_aggressors: int = 4

    def __post_init__(self):
        if self.num_segments < 1:
            raise ValueError(f"num_segments must be at least 1, got {self.num_segments}")
        if self.max_aggressors < 1:
            raise ValueError(f"max_aggressors must be at least 1, got {self.max_aggressors}")
        if not self.aggressor_switch_time > 0 or not self.aggressor_input_transition > 0:
            raise ValueError("aggressor timing parameters must be positive")


class ClusterExtractor:
    """Builds noise-cluster specifications from design connectivity/coupling.

    Parameters
    ----------
    input_glitches:
        Optional per-victim-net propagated glitches at the victim driver
        input (e.g. computed by an upstream propagation pass).
    """

    def __init__(
        self,
        design: Design,
        *,
        config: Optional[ExtractionConfig] = None,
        input_glitches: Optional[Mapping[str, InputGlitchSpec]] = None,
    ):
        self.design = design
        self.config = config or ExtractionConfig()
        self.input_glitches = dict(input_glitches or {})

    def victim_candidates(self) -> List[str]:
        """Nets that have a driver, at least one receiver and some coupling."""
        candidates = []
        for net in self.design.nets:
            if net in self.design.primary_inputs:
                continue
            if not self.design.aggressors_of(net):
                continue
            if self.design.driver_of(net) is None:
                continue
            if not self.design.receivers_of(net):
                continue
            candidates.append(net)
        return sorted(candidates)

    def extract_cluster(self, victim_net: str) -> ClusterExtraction:
        """Build the noise-cluster specification for one victim net."""
        design = self.design
        config = self.config
        victim_driver = design.driver_of(victim_net)
        if victim_driver is None:
            raise ValueError(f"net '{victim_net}' has no driver")
        receivers = design.receivers_of(victim_net)
        receiver_instance, receiver_pin = receivers[0]
        victim_info = design.nets[victim_net]
        victim_quiet_high = design.net_quiet_level(victim_net)

        couplings = sorted(
            design.aggressors_of(victim_net), key=lambda item: item[1], reverse=True
        )
        aggressor_specs: List[AggressorSpec] = []
        aggressor_nets: List[str] = []
        skipped: List[str] = []
        wires: List[WireSpec] = []
        for index, (aggressor_net, coupled_length) in enumerate(couplings):
            driver = design.driver_of(aggressor_net)
            if driver is None or index >= config.max_aggressors:
                skipped.append(aggressor_net)
                continue
            aggressor_info = design.nets[aggressor_net]
            aggressor_specs.append(
                AggressorSpec(
                    net=aggressor_net,
                    driver_cell=driver.cell,
                    # Worst case: aggressors push the victim away from its
                    # quiet rail, all in phase.
                    rising=not victim_quiet_high,
                    input_transition=config.aggressor_input_transition,
                    switch_time=config.aggressor_switch_time,
                )
            )
            aggressor_nets.append(aggressor_net)
            wires.append(
                WireSpec(
                    aggressor_net,
                    length_um=max(aggressor_info.length_um, coupled_length),
                    coupled_length_um=coupled_length,
                )
            )

        if not aggressor_specs:
            raise ValueError(f"net '{victim_net}' has no usable aggressors")

        # Place the strongest aggressors adjacent to the victim (one per side).
        victim_wire = WireSpec(victim_net, length_um=victim_info.length_um)
        ordered = [victim_wire]
        for index, wire in enumerate(wires):
            if index % 2 == 0:
                ordered.insert(0, wire)
            else:
                ordered.append(wire)
        geometry = ParallelBusGeometry(
            wires=ordered,
            layer_index=victim_info.layer_index,
            name=f"cluster_{victim_net}",
        )

        spec = NoiseClusterSpec(
            victim=VictimSpec(
                net=victim_net,
                driver_cell=victim_driver.cell,
                output_high=victim_quiet_high,
                input_glitch=self.input_glitches.get(victim_net),
                receiver_cell=receiver_instance.cell,
                receiver_pin=receiver_pin,
            ),
            aggressors=aggressor_specs,
            geometry=geometry,
            num_segments=config.num_segments,
            name=f"cluster_{victim_net}",
        )
        return ClusterExtraction(
            victim_net=victim_net,
            spec=spec,
            aggressor_nets=aggressor_nets,
            skipped_aggressors=skipped,
        )

    def extract_clusters(self) -> List[ClusterExtraction]:
        return [self.extract_cluster(net) for net in self.victim_candidates()]
