"""Noise-cluster extraction from an annotated design.

Extraction is the first stage of the industrial SNA pipeline (cluster
extraction -> per-cluster noise evaluation -> NRC check -> violation
report).  It used to live inside ``StaticNoiseAnalysisFlow``; it is a
standalone :class:`ClusterExtractor` now so the unified
:class:`~repro.api.session.NoiseAnalysisSession` -- and anything else, e.g. a
future sharded dispatcher -- can extract clusters without dragging in the
whole legacy flow object.

The cluster-building policy itself (aggressor ranking, budget, wire
placement, spec assembly) lives in the module-level :func:`build_cluster` so
the streaming extractor in :mod:`repro.sna.stream` produces byte-identical
specs from its windowed state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Mapping, Optional, Sequence, Tuple

from ..interconnect.geometry import ParallelBusGeometry, WireSpec
from ..noise.cluster import AggressorSpec, InputGlitchSpec, NoiseClusterSpec, VictimSpec
from ..units import ps
from .design import Design, DesignConnectivity

__all__ = ["ClusterExtraction", "ExtractionConfig", "ClusterExtractor", "build_cluster"]


@dataclass
class ClusterExtraction:
    """One extracted noise cluster and its provenance in the design."""

    victim_net: str
    spec: NoiseClusterSpec
    aggressor_nets: List[str]
    skipped_aggressors: List[str] = field(default_factory=list)


@dataclass(frozen=True)
class ExtractionConfig:
    """Knobs of the cluster-extraction stage.

    Parameters
    ----------
    max_aggressors:
        At most this many *usable* aggressors (coupled nets that have a
        driver), taken in decreasing coupled-length order, make it into the
        cluster -- the standard cluster-filtering simplification.  Driverless
        couplings never consume budget slots.
    """

    num_segments: int = 8
    aggressor_switch_time: float = ps(200)
    aggressor_input_transition: float = ps(40)
    max_aggressors: int = 4

    def __post_init__(self):
        if self.num_segments < 1:
            raise ValueError(f"num_segments must be at least 1, got {self.num_segments}")
        if self.max_aggressors < 1:
            raise ValueError(f"max_aggressors must be at least 1, got {self.max_aggressors}")
        if not self.aggressor_switch_time > 0 or not self.aggressor_input_transition > 0:
            raise ValueError("aggressor timing parameters must be positive")


def build_cluster(
    victim_net: str,
    *,
    config: ExtractionConfig,
    victim_length_um: float,
    victim_layer_index: int,
    victim_quiet_high: bool,
    victim_driver_cell: str,
    receiver_cell: str,
    receiver_pin: str,
    couplings: Sequence[Tuple[str, float]],
    aggressor_info: Callable[[str], Optional[Tuple[str, float]]],
    input_glitch: Optional[InputGlitchSpec] = None,
) -> ClusterExtraction:
    """Assemble one noise cluster from resolved victim/aggressor facts.

    ``couplings`` is the victim's coupled-net list in design insertion order;
    ``aggressor_info(net)`` returns ``(driver_cell, length_um)`` for a
    driven net or ``None`` for a driverless one.  Both the in-memory and the
    streaming extractor funnel through here, which is what guarantees their
    specs are identical.
    """
    ranked = sorted(couplings, key=lambda item: item[1], reverse=True)
    aggressor_specs: List[AggressorSpec] = []
    aggressor_nets: List[str] = []
    skipped: List[str] = []
    wires: List[WireSpec] = []
    for aggressor_net, coupled_length in ranked:
        info = aggressor_info(aggressor_net)
        # Driverless couplings are unusable; past the budget everything is
        # dropped.  Neither may consume a budget slot of the other (a
        # driverless strongest coupling must not evict a usable weaker one).
        if info is None or len(aggressor_specs) >= config.max_aggressors:
            skipped.append(aggressor_net)
            continue
        driver_cell, aggressor_length = info
        aggressor_specs.append(
            AggressorSpec(
                net=aggressor_net,
                driver_cell=driver_cell,
                # Worst case: aggressors push the victim away from its
                # quiet rail, all in phase.
                rising=not victim_quiet_high,
                input_transition=config.aggressor_input_transition,
                switch_time=config.aggressor_switch_time,
            )
        )
        aggressor_nets.append(aggressor_net)
        wires.append(
            WireSpec(
                aggressor_net,
                length_um=max(aggressor_length, coupled_length),
                coupled_length_um=coupled_length,
            )
        )

    if not aggressor_specs:
        raise ValueError(f"net '{victim_net}' has no usable aggressors")

    # Place the strongest aggressors adjacent to the victim (one per side).
    victim_wire = WireSpec(victim_net, length_um=victim_length_um)
    ordered = [victim_wire]
    for index, wire in enumerate(wires):
        if index % 2 == 0:
            ordered.insert(0, wire)
        else:
            ordered.append(wire)
    geometry = ParallelBusGeometry(
        wires=ordered,
        layer_index=victim_layer_index,
        name=f"cluster_{victim_net}",
    )

    spec = NoiseClusterSpec(
        victim=VictimSpec(
            net=victim_net,
            driver_cell=victim_driver_cell,
            output_high=victim_quiet_high,
            input_glitch=input_glitch,
            receiver_cell=receiver_cell,
            receiver_pin=receiver_pin,
        ),
        aggressors=aggressor_specs,
        geometry=geometry,
        num_segments=config.num_segments,
        name=f"cluster_{victim_net}",
    )
    return ClusterExtraction(
        victim_net=victim_net,
        spec=spec,
        aggressor_nets=aggressor_nets,
        skipped_aggressors=skipped,
    )


class ClusterExtractor:
    """Builds noise-cluster specifications from design connectivity/coupling.

    Parameters
    ----------
    input_glitches:
        Optional per-victim-net propagated glitches at the victim driver
        input (e.g. computed by an upstream propagation pass).
    """

    def __init__(
        self,
        design: Design,
        *,
        config: Optional[ExtractionConfig] = None,
        input_glitches: Optional[Mapping[str, InputGlitchSpec]] = None,
    ):
        self.design = design
        self.config = config or ExtractionConfig()
        self.input_glitches = dict(input_glitches or {})

    def victim_candidates(self) -> List[str]:
        """Nets that have a driver, at least one receiver and some coupling."""
        index = self.design.connectivity()
        candidates = []
        for net in self.design.nets:
            if net in self.design.primary_inputs:
                continue
            if not index.aggressors_of(net):
                continue
            if index.driver_of(net) is None:
                continue
            if not index.receivers_of(net):
                continue
            candidates.append(net)
        return sorted(candidates)

    def extract_cluster(
        self, victim_net: str, index: Optional[DesignConnectivity] = None
    ) -> ClusterExtraction:
        """Build the noise-cluster specification for one victim net."""
        design = self.design
        if index is None:
            index = design.connectivity()
        victim_driver = index.driver_of(victim_net)
        if victim_driver is None:
            raise ValueError(f"net '{victim_net}' has no driver")
        receivers = index.receivers_of(victim_net)
        if not receivers:
            raise ValueError(f"net '{victim_net}' has no receivers")
        receiver_instance, receiver_pin = receivers[0]
        victim_info = design.nets[victim_net]

        def aggressor_info(net: str) -> Optional[Tuple[str, float]]:
            driver = index.driver_of(net)
            if driver is None:
                return None
            return driver.cell, design.nets[net].length_um

        return build_cluster(
            victim_net,
            config=self.config,
            victim_length_um=victim_info.length_um,
            victim_layer_index=victim_info.layer_index,
            victim_quiet_high=design.net_quiet_level(victim_net),
            victim_driver_cell=victim_driver.cell,
            receiver_cell=receiver_instance.cell,
            receiver_pin=receiver_pin,
            couplings=index.aggressors_of(victim_net),
            aggressor_info=aggressor_info,
            input_glitch=self.input_glitches.get(victim_net),
        )

    def extract_clusters(self) -> List[ClusterExtraction]:
        index = self.design.connectivity()
        return [self.extract_cluster(net, index) for net in self.victim_candidates()]
