"""Full-design static noise analysis: design DB, parasitics, extraction.

A minimal but complete SNA substrate built on the noise macromodel: design
database, coupling-parasitics annotation and noise-cluster extraction
(:class:`ClusterExtractor`).  Per-cluster analysis and NRC-based violation
reporting are driven by :meth:`repro.api.NoiseAnalysisSession.run_design`;
:class:`StaticNoiseAnalysisFlow` remains as a deprecated facade over it.
"""

from .design import CouplingAnnotation, Design, DesignConnectivity, Instance, Net
from .extraction import ClusterExtraction, ClusterExtractor, ExtractionConfig, build_cluster
from .flow import NetNoiseReport, SNAReport, StaticNoiseAnalysisFlow
from .spef import (
    CouplingDeclaration,
    NetClosed,
    NetDeclaration,
    SPEFError,
    annotate_design,
    parse_spef,
    read_coupling_file,
    write_coupling_file,
)
from .stream import (
    DesignRoles,
    NetRole,
    StreamingClusterExtractor,
    StreamStats,
    StreamWindowExceeded,
)
from .synth_design import SyntheticChip

__all__ = [
    "Design",
    "DesignConnectivity",
    "Instance",
    "Net",
    "CouplingAnnotation",
    "ClusterExtractor",
    "ExtractionConfig",
    "ClusterExtraction",
    "build_cluster",
    "StaticNoiseAnalysisFlow",
    "NetNoiseReport",
    "SNAReport",
    "parse_spef",
    "NetDeclaration",
    "CouplingDeclaration",
    "NetClosed",
    "read_coupling_file",
    "write_coupling_file",
    "annotate_design",
    "SPEFError",
    "StreamingClusterExtractor",
    "DesignRoles",
    "NetRole",
    "StreamStats",
    "StreamWindowExceeded",
    "SyntheticChip",
]
