"""Full-design static noise analysis: design DB, parasitics, extraction.

A minimal but complete SNA substrate built on the noise macromodel: design
database, coupling-parasitics annotation and noise-cluster extraction
(:class:`ClusterExtractor`).  Per-cluster analysis and NRC-based violation
reporting are driven by :meth:`repro.api.NoiseAnalysisSession.run_design`;
:class:`StaticNoiseAnalysisFlow` remains as a deprecated facade over it.
"""

from .design import CouplingAnnotation, Design, Instance, Net
from .extraction import ClusterExtraction, ClusterExtractor, ExtractionConfig
from .flow import NetNoiseReport, SNAReport, StaticNoiseAnalysisFlow
from .spef import SPEFError, annotate_design, read_coupling_file, write_coupling_file

__all__ = [
    "Design",
    "Instance",
    "Net",
    "CouplingAnnotation",
    "ClusterExtractor",
    "ExtractionConfig",
    "ClusterExtraction",
    "StaticNoiseAnalysisFlow",
    "NetNoiseReport",
    "SNAReport",
    "read_coupling_file",
    "write_coupling_file",
    "annotate_design",
    "SPEFError",
]
