"""Full-design static noise analysis flow.

A minimal but complete SNA tool built on the noise macromodel: design
database, coupling-parasitics annotation, noise-cluster extraction,
per-cluster analysis and NRC-based violation reporting.
"""

from .design import CouplingAnnotation, Design, Instance, Net
from .flow import ClusterExtraction, NetNoiseReport, SNAReport, StaticNoiseAnalysisFlow
from .spef import SPEFError, annotate_design, read_coupling_file, write_coupling_file

__all__ = [
    "Design",
    "Instance",
    "Net",
    "CouplingAnnotation",
    "StaticNoiseAnalysisFlow",
    "ClusterExtraction",
    "NetNoiseReport",
    "SNAReport",
    "read_coupling_file",
    "write_coupling_file",
    "annotate_design",
    "SPEFError",
]
