"""Full-design static noise analysis flow (retired facade).

.. deprecated:: 0.2.0
.. versionremoved:: 0.3.0
    :class:`StaticNoiseAnalysisFlow.run` completed its deprecation cycle
    and now raises :class:`~repro.api.errors.RemovedAPIError`.  Use
    :meth:`repro.api.NoiseAnalysisSession.run_design` with an
    :class:`~repro.sna.extraction.ExtractionConfig`; the cluster-extraction
    stage lives in :class:`~repro.sna.extraction.ClusterExtractor` and
    stays reachable through this class's extraction passthroughs.

The report containers (:class:`NetNoiseReport`, :class:`SNAReport`) are kept
because their text layout is the violation-report format some drivers still
parse.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Optional

from ..noise.analysis import NRCCheck
from ..noise.cluster import InputGlitchSpec
from ..units import ps
from .design import Design
from .extraction import ClusterExtraction, ClusterExtractor, ExtractionConfig

__all__ = ["ClusterExtraction", "NetNoiseReport", "SNAReport", "StaticNoiseAnalysisFlow"]


@dataclass
class NetNoiseReport:
    """Per-victim-net outcome of the SNA flow."""

    victim_net: str
    method: str
    peak: float
    area_v_ps: float
    width_ps: float
    nrc_check: Optional[NRCCheck]
    runtime_seconds: float

    @property
    def fails(self) -> bool:
        return bool(self.nrc_check and self.nrc_check.fails)

    def row(self) -> str:
        status = "FAIL" if self.fails else ("pass" if self.nrc_check else "n/a ")
        margin = f"{self.nrc_check.margin:+.3f}" if self.nrc_check else "  -  "
        return (
            f"{self.victim_net:16s} {self.peak:8.3f} {self.area_v_ps:10.1f} "
            f"{self.width_ps:9.1f} {margin:>8s}  {status}"
        )


@dataclass
class SNAReport:
    """Design-level noise report."""

    design_name: str
    method: str
    nets: List[NetNoiseReport]
    total_runtime_seconds: float

    @property
    def violations(self) -> List[NetNoiseReport]:
        return [n for n in self.nets if n.fails]

    def text(self) -> str:
        lines = [
            f"Static noise analysis report for '{self.design_name}' "
            f"({self.method}, {len(self.nets)} victim nets, "
            f"{self.total_runtime_seconds:.2f} s)",
            f"{'victim net':16s} {'peak(V)':>8s} {'area(Vps)':>10s} {'width(ps)':>9s} "
            f"{'margin':>8s}  status",
        ]
        lines.extend(net.row() for net in self.nets)
        lines.append(f"violations: {len(self.violations)} / {len(self.nets)}")
        return "\n".join(lines)


class StaticNoiseAnalysisFlow:
    """Deprecated facade: extraction + analysis + NRC checks in one object.

    Kept so existing drivers keep working; internally it is a
    :class:`ClusterExtractor` plus a
    :class:`~repro.api.session.NoiseAnalysisSession`.
    """

    def __init__(
        self,
        design: Design,
        *,
        reduction: str = "coupled_pi",
        num_segments: int = 8,
        aggressor_switch_time: float = ps(200),
        aggressor_input_transition: float = ps(40),
        input_glitches: Optional[Mapping[str, InputGlitchSpec]] = None,
        max_aggressors: int = 4,
    ):
        from ..api.config import AnalysisConfig
        from ..api.session import NoiseAnalysisSession

        self.design = design
        self.library = design.library
        self.extractor = ClusterExtractor(
            design,
            config=ExtractionConfig(
                num_segments=num_segments,
                aggressor_switch_time=aggressor_switch_time,
                aggressor_input_transition=aggressor_input_transition,
                max_aggressors=max_aggressors,
            ),
            input_glitches=input_glitches,
        )
        self.session = NoiseAnalysisSession(
            design.library, AnalysisConfig(reduction=reduction)
        )
        self._analyzer = None

    # Back-compat passthroughs kept from the old flow's public surface.
    @property
    def num_segments(self) -> int:
        return self.extractor.config.num_segments

    @property
    def max_aggressors(self) -> int:
        return self.extractor.config.max_aggressors

    @property
    def aggressor_switch_time(self) -> float:
        return self.extractor.config.aggressor_switch_time

    @property
    def aggressor_input_transition(self) -> float:
        return self.extractor.config.aggressor_input_transition

    @property
    def input_glitches(self) -> Mapping[str, InputGlitchSpec]:
        return self.extractor.input_glitches

    @property
    def analyzer(self):
        """Removed with :class:`~repro.noise.analysis.ClusterNoiseAnalyzer`."""
        from ..api.errors import RemovedAPIError

        raise RemovedAPIError(
            "StaticNoiseAnalysisFlow.analyzer",
            "repro.api.NoiseAnalysisSession",
            "the flow's .session attribute is a ready-to-use session",
        )

    # ------------------------------------------------------------- extraction

    def victim_candidates(self) -> List[str]:
        return self.extractor.victim_candidates()

    def extract_cluster(self, victim_net: str) -> ClusterExtraction:
        return self.extractor.extract_cluster(victim_net)

    def extract_clusters(self) -> List[ClusterExtraction]:
        return self.extractor.extract_clusters()

    # ------------------------------------------------------------------- run

    def run(
        self,
        *,
        method: str = "macromodel",
        check_nrc: bool = True,
        dt: Optional[float] = None,
    ) -> SNAReport:
        """Removed in 0.3.0; use ``NoiseAnalysisSession.run_design``.

        .. versionremoved:: 0.3.0
            Migrate::

                report = flow.session.run_design(
                    flow.design,
                    extractor=flow.extractor,
                    methods=(method,),
                    check_nrc=check_nrc,
                )
        """
        from ..api.errors import RemovedAPIError

        raise RemovedAPIError(
            "StaticNoiseAnalysisFlow.run()",
            "repro.api.NoiseAnalysisSession.run_design()",
            "the flow's .session and .extractor attributes plug straight in",
        )
