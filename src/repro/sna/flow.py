"""Full-design static noise analysis flow.

This is the "complete methodology for static noise analysis" the paper's
conclusions call for: iterate over the victim nets of a design, extract each
noise cluster from the connectivity and coupling annotations, analyse it with
the selected noise model (the macromodel by default) and check the resulting
glitch against the receiver's noise rejection curve.

The flow purposely mirrors the structure of industrial tools (ClariNet,
Harmony): cluster extraction -> per-cluster noise evaluation -> NRC check ->
violation report.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..characterization.characterizer import LibraryCharacterizer
from ..interconnect.geometry import ParallelBusGeometry, WireSpec
from ..noise.analysis import ClusterNoiseAnalyzer, NRCCheck, check_against_nrc
from ..noise.cluster import AggressorSpec, InputGlitchSpec, NoiseClusterSpec, VictimSpec
from ..noise.results import NoiseAnalysisResult
from ..units import ps
from .design import Design

__all__ = ["ClusterExtraction", "NetNoiseReport", "SNAReport", "StaticNoiseAnalysisFlow"]


@dataclass
class ClusterExtraction:
    """One extracted noise cluster and its provenance in the design."""

    victim_net: str
    spec: NoiseClusterSpec
    aggressor_nets: List[str]
    skipped_aggressors: List[str] = field(default_factory=list)


@dataclass
class NetNoiseReport:
    """Per-victim-net outcome of the SNA flow."""

    victim_net: str
    method: str
    peak: float
    area_v_ps: float
    width_ps: float
    nrc_check: Optional[NRCCheck]
    runtime_seconds: float

    @property
    def fails(self) -> bool:
        return bool(self.nrc_check and self.nrc_check.fails)

    def row(self) -> str:
        status = "FAIL" if self.fails else ("pass" if self.nrc_check else "n/a ")
        margin = f"{self.nrc_check.margin:+.3f}" if self.nrc_check else "  -  "
        return (
            f"{self.victim_net:16s} {self.peak:8.3f} {self.area_v_ps:10.1f} "
            f"{self.width_ps:9.1f} {margin:>8s}  {status}"
        )


@dataclass
class SNAReport:
    """Design-level noise report."""

    design_name: str
    method: str
    nets: List[NetNoiseReport]
    total_runtime_seconds: float

    @property
    def violations(self) -> List[NetNoiseReport]:
        return [n for n in self.nets if n.fails]

    def text(self) -> str:
        lines = [
            f"Static noise analysis report for '{self.design_name}' "
            f"({self.method}, {len(self.nets)} victim nets, "
            f"{self.total_runtime_seconds:.2f} s)",
            f"{'victim net':16s} {'peak(V)':>8s} {'area(Vps)':>10s} {'width(ps)':>9s} "
            f"{'margin':>8s}  status",
        ]
        lines.extend(net.row() for net in self.nets)
        lines.append(f"violations: {len(self.violations)} / {len(self.nets)}")
        return "\n".join(lines)


class StaticNoiseAnalysisFlow:
    """Cluster extraction + per-cluster noise analysis + NRC checking."""

    def __init__(
        self,
        design: Design,
        *,
        reduction: str = "coupled_pi",
        num_segments: int = 8,
        aggressor_switch_time: float = ps(200),
        aggressor_input_transition: float = ps(40),
        input_glitches: Optional[Mapping[str, InputGlitchSpec]] = None,
        max_aggressors: int = 4,
    ):
        """
        Parameters
        ----------
        design:
            The annotated design (nets, instances, couplings).
        input_glitches:
            Optional per-victim-net propagated glitches at the victim driver
            input (e.g. computed by an upstream propagation pass).
        max_aggressors:
            Aggressors beyond this count (ordered by coupled length) are
            dropped from the cluster -- the standard cluster-filtering
            simplification.
        """
        self.design = design
        self.library = design.library
        self.analyzer = ClusterNoiseAnalyzer(self.library, reduction=reduction)
        self.num_segments = num_segments
        self.aggressor_switch_time = aggressor_switch_time
        self.aggressor_input_transition = aggressor_input_transition
        self.input_glitches = dict(input_glitches or {})
        self.max_aggressors = max_aggressors

    # ------------------------------------------------------------- extraction

    def victim_candidates(self) -> List[str]:
        """Nets that have a driver, at least one receiver and some coupling."""
        candidates = []
        for net in self.design.nets:
            if net in self.design.primary_inputs:
                continue
            if not self.design.aggressors_of(net):
                continue
            if self.design.driver_of(net) is None:
                continue
            if not self.design.receivers_of(net):
                continue
            candidates.append(net)
        return sorted(candidates)

    def extract_cluster(self, victim_net: str) -> ClusterExtraction:
        """Build the noise-cluster specification for one victim net."""
        design = self.design
        library = self.library
        victim_driver = design.driver_of(victim_net)
        if victim_driver is None:
            raise ValueError(f"net '{victim_net}' has no driver")
        receivers = design.receivers_of(victim_net)
        receiver_instance, receiver_pin = receivers[0]
        victim_info = design.nets[victim_net]
        victim_quiet_high = design.net_quiet_level(victim_net)

        couplings = sorted(
            design.aggressors_of(victim_net), key=lambda item: item[1], reverse=True
        )
        aggressor_specs: List[AggressorSpec] = []
        aggressor_nets: List[str] = []
        skipped: List[str] = []
        wires: List[WireSpec] = []
        for index, (aggressor_net, coupled_length) in enumerate(couplings):
            driver = design.driver_of(aggressor_net)
            if driver is None or index >= self.max_aggressors:
                skipped.append(aggressor_net)
                continue
            aggressor_info = design.nets[aggressor_net]
            aggressor_specs.append(
                AggressorSpec(
                    net=aggressor_net,
                    driver_cell=driver.cell,
                    # Worst case: aggressors push the victim away from its
                    # quiet rail, all in phase.
                    rising=not victim_quiet_high,
                    input_transition=self.aggressor_input_transition,
                    switch_time=self.aggressor_switch_time,
                )
            )
            aggressor_nets.append(aggressor_net)
            wires.append(
                WireSpec(
                    aggressor_net,
                    length_um=max(aggressor_info.length_um, coupled_length),
                    coupled_length_um=coupled_length,
                )
            )

        if not aggressor_specs:
            raise ValueError(f"net '{victim_net}' has no usable aggressors")

        # Place the strongest aggressors adjacent to the victim (one per side).
        victim_wire = WireSpec(victim_net, length_um=victim_info.length_um)
        ordered = [victim_wire]
        for index, wire in enumerate(wires):
            if index % 2 == 0:
                ordered.insert(0, wire)
            else:
                ordered.append(wire)
        geometry = ParallelBusGeometry(
            wires=ordered,
            layer_index=victim_info.layer_index,
            name=f"cluster_{victim_net}",
        )

        spec = NoiseClusterSpec(
            victim=VictimSpec(
                net=victim_net,
                driver_cell=victim_driver.cell,
                output_high=victim_quiet_high,
                input_glitch=self.input_glitches.get(victim_net),
                receiver_cell=receiver_instance.cell,
                receiver_pin=receiver_pin,
            ),
            aggressors=aggressor_specs,
            geometry=geometry,
            num_segments=self.num_segments,
            name=f"cluster_{victim_net}",
        )
        return ClusterExtraction(
            victim_net=victim_net,
            spec=spec,
            aggressor_nets=aggressor_nets,
            skipped_aggressors=skipped,
        )

    def extract_clusters(self) -> List[ClusterExtraction]:
        return [self.extract_cluster(net) for net in self.victim_candidates()]

    # ------------------------------------------------------------------- run

    def run(
        self,
        *,
        method: str = "macromodel",
        check_nrc: bool = True,
        dt: Optional[float] = None,
    ) -> SNAReport:
        """Analyse every victim net of the design with the chosen method."""
        start = time.perf_counter()
        reports: List[NetNoiseReport] = []
        for extraction in self.extract_clusters():
            results = self.analyzer.analyze(extraction.spec, methods=(method,), dt=dt)
            result: NoiseAnalysisResult = results[method]
            nrc_check = None
            if check_nrc:
                nrc_check = self.analyzer.nrc_check(extraction.spec, result)
            reports.append(
                NetNoiseReport(
                    victim_net=extraction.victim_net,
                    method=result.method,
                    peak=result.peak,
                    area_v_ps=result.area_v_ps,
                    width_ps=result.width_ps,
                    nrc_check=nrc_check,
                    runtime_seconds=result.runtime_seconds,
                )
            )
        total = time.perf_counter() - start
        return SNAReport(
            design_name=self.design.name,
            method=method,
            nets=reports,
            total_runtime_seconds=total,
        )
