"""Full-design static noise analysis flow (deprecated facade).

.. deprecated::
    :class:`StaticNoiseAnalysisFlow` is a thin compatibility shim over the
    unified session API.  New code should use
    :meth:`repro.api.NoiseAnalysisSession.run_design` with an
    :class:`~repro.sna.extraction.ExtractionConfig`; the cluster-extraction
    stage lives in :class:`~repro.sna.extraction.ClusterExtractor`.

The report containers (:class:`NetNoiseReport`, :class:`SNAReport`) are kept
because their text layout is the violation-report format the examples and
tests expect; the shim converts the session's
:class:`~repro.api.report.SessionReport` into them.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import List, Mapping, Optional

from ..noise.analysis import NRCCheck
from ..noise.cluster import InputGlitchSpec
from ..units import ps
from .design import Design
from .extraction import ClusterExtraction, ClusterExtractor, ExtractionConfig

__all__ = ["ClusterExtraction", "NetNoiseReport", "SNAReport", "StaticNoiseAnalysisFlow"]


@dataclass
class NetNoiseReport:
    """Per-victim-net outcome of the SNA flow."""

    victim_net: str
    method: str
    peak: float
    area_v_ps: float
    width_ps: float
    nrc_check: Optional[NRCCheck]
    runtime_seconds: float

    @property
    def fails(self) -> bool:
        return bool(self.nrc_check and self.nrc_check.fails)

    def row(self) -> str:
        status = "FAIL" if self.fails else ("pass" if self.nrc_check else "n/a ")
        margin = f"{self.nrc_check.margin:+.3f}" if self.nrc_check else "  -  "
        return (
            f"{self.victim_net:16s} {self.peak:8.3f} {self.area_v_ps:10.1f} "
            f"{self.width_ps:9.1f} {margin:>8s}  {status}"
        )


@dataclass
class SNAReport:
    """Design-level noise report."""

    design_name: str
    method: str
    nets: List[NetNoiseReport]
    total_runtime_seconds: float

    @property
    def violations(self) -> List[NetNoiseReport]:
        return [n for n in self.nets if n.fails]

    def text(self) -> str:
        lines = [
            f"Static noise analysis report for '{self.design_name}' "
            f"({self.method}, {len(self.nets)} victim nets, "
            f"{self.total_runtime_seconds:.2f} s)",
            f"{'victim net':16s} {'peak(V)':>8s} {'area(Vps)':>10s} {'width(ps)':>9s} "
            f"{'margin':>8s}  status",
        ]
        lines.extend(net.row() for net in self.nets)
        lines.append(f"violations: {len(self.violations)} / {len(self.nets)}")
        return "\n".join(lines)


class StaticNoiseAnalysisFlow:
    """Deprecated facade: extraction + analysis + NRC checks in one object.

    Kept so existing drivers keep working; internally it is a
    :class:`ClusterExtractor` plus a
    :class:`~repro.api.session.NoiseAnalysisSession`.
    """

    def __init__(
        self,
        design: Design,
        *,
        reduction: str = "coupled_pi",
        num_segments: int = 8,
        aggressor_switch_time: float = ps(200),
        aggressor_input_transition: float = ps(40),
        input_glitches: Optional[Mapping[str, InputGlitchSpec]] = None,
        max_aggressors: int = 4,
    ):
        from ..api.config import AnalysisConfig
        from ..api.session import NoiseAnalysisSession

        self.design = design
        self.library = design.library
        self.extractor = ClusterExtractor(
            design,
            config=ExtractionConfig(
                num_segments=num_segments,
                aggressor_switch_time=aggressor_switch_time,
                aggressor_input_transition=aggressor_input_transition,
                max_aggressors=max_aggressors,
            ),
            input_glitches=input_glitches,
        )
        self.session = NoiseAnalysisSession(
            design.library, AnalysisConfig(reduction=reduction)
        )
        self._analyzer = None

    # Back-compat passthroughs kept from the old flow's public surface.
    @property
    def num_segments(self) -> int:
        return self.extractor.config.num_segments

    @property
    def max_aggressors(self) -> int:
        return self.extractor.config.max_aggressors

    @property
    def aggressor_switch_time(self) -> float:
        return self.extractor.config.aggressor_switch_time

    @property
    def aggressor_input_transition(self) -> float:
        return self.extractor.config.aggressor_input_transition

    @property
    def input_glitches(self) -> Mapping[str, InputGlitchSpec]:
        return self.extractor.input_glitches

    @property
    def analyzer(self):
        """The old per-cluster analyzer facade (characterisation cache is
        library-level, so it shares results with the session)."""
        if self._analyzer is None:
            from ..noise.analysis import ClusterNoiseAnalyzer

            self._analyzer = ClusterNoiseAnalyzer(
                self.library, reduction=self.session.config.reduction
            )
        return self._analyzer

    # ------------------------------------------------------------- extraction

    def victim_candidates(self) -> List[str]:
        return self.extractor.victim_candidates()

    def extract_cluster(self, victim_net: str) -> ClusterExtraction:
        return self.extractor.extract_cluster(victim_net)

    def extract_clusters(self) -> List[ClusterExtraction]:
        return self.extractor.extract_clusters()

    # ------------------------------------------------------------------- run

    def run(
        self,
        *,
        method: str = "macromodel",
        check_nrc: bool = True,
        dt: Optional[float] = None,
    ) -> SNAReport:
        """Analyse every victim net of the design with the chosen method.

        .. deprecated:: use :meth:`repro.api.NoiseAnalysisSession.run_design`.
        """
        warnings.warn(
            "StaticNoiseAnalysisFlow.run() is deprecated; use "
            "repro.api.NoiseAnalysisSession.run_design() instead",
            DeprecationWarning,
            stacklevel=2,
        )
        session_report = self.session.run_design(
            self.design,
            # The shim predates batch error collection: a failing cluster
            # must propagate its original exception, as this API always did.
            on_error="raise",
            extractor=self.extractor,
            methods=(method,),
            dt=dt,
            check_nrc=check_nrc,
        )
        nets = []
        for cluster in session_report.clusters:
            result = cluster.primary
            nets.append(
                NetNoiseReport(
                    victim_net=cluster.victim_net,
                    method=result.method,
                    peak=result.peak,
                    area_v_ps=result.area_v_ps,
                    width_ps=result.width_ps,
                    nrc_check=cluster.nrc_check(),
                    runtime_seconds=result.runtime_seconds,
                )
            )
        return SNAReport(
            design_name=self.design.name,
            method=method,
            nets=nets,
            total_runtime_seconds=session_report.total_runtime_seconds,
        )
