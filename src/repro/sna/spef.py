"""Streaming SPEF-subset reader/writer for coupling parasitics.

Real SNA flows read coupling parasitics from SPEF.  This module implements an
*incremental* parser for the subset a full-chip noise flow needs: it walks a
line iterable (a file handle, a generator, or ``text.splitlines()``) and
yields typed parse events, never holding more than the in-progress ``*D_NET``
block and the ``*NAME_MAP`` in memory.  Two net grammars are understood:

* the repo's compact format (one line per net, couplings anywhere)::

      *NET <name> [*LENGTH <um>] [*LAYER <index>]
      *COUPLING <net_a> <net_b> <coupled_length_um>

* an industry-style ``*D_NET`` detail block (capacitances in the file's
  ``*C_UNIT``; the ``*LAYER``/``*LENGTH`` tokens on the ``*D_NET`` line are
  an extension of this subset -- plain SPEF carries neither)::

      *D_NET <net> <total_cap> [*LAYER <index>] [*LENGTH <um>]
      *CONN
      *I <node> <direction> ...      // ignored
      *CAP
      <index> <node> <cap>           // ground capacitance
      <index> <node> <node> <cap>    // coupling capacitance
      *RES
      <index> <node> <node> <ohm>    // ignored
      *END

Header statements (``*SPEF``, ``*DESIGN``, ``*DIVIDER``, ...) are skipped;
``*C_UNIT`` and ``*DELIMITER`` are honoured; a ``*NAME_MAP`` section maps
``*<index>`` tokens to names.  Coupling capacitances between the same pair of
nets inside one block are summed (multi-segment extraction); the mirrored
listing of a coupling in the partner net's block is recognised and merged by
the consumers.  Lines starting with ``//`` are comments.  Malformed input
raises :class:`SPEFError` carrying the offending line number.

Capacitance-declared geometry is converted to the design model's
length/layer form by :func:`resolve_net_geometry` and
:func:`resolve_coupled_length` using the per-layer coefficients of a
:class:`~repro.technology.process.Technology` -- the inverse of what
:class:`~repro.interconnect.geometry.ParallelBusGeometry` does at extraction
time.

The writer still produces the compact format, so annotated designs round-trip
in tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Union

from ..technology.process import Technology
from .design import Design

__all__ = [
    "SPEFError",
    "SpefEvent",
    "NetDeclaration",
    "CouplingDeclaration",
    "NetClosed",
    "parse_spef",
    "resolve_net_geometry",
    "resolve_coupled_length",
    "read_coupling_file",
    "write_coupling_file",
    "annotate_design",
    "DEFAULT_LENGTH_UM",
    "DEFAULT_LAYER_INDEX",
]

#: Geometry a net gets when the file declares neither lengths nor usable
#: capacitances (mirrors the :class:`~repro.sna.design.Net` defaults).
DEFAULT_LENGTH_UM = 100.0
DEFAULT_LAYER_INDEX = 3

#: ``*C_UNIT`` multiplier units understood by the subset (SPEF default: 1 FF).
_CAP_UNITS = {"FF": 1e-15, "PF": 1e-12, "NF": 1e-9, "UF": 1e-6, "F": 1.0}

#: Header statements skipped outright (arguments and all).
_IGNORED_HEADERS = frozenset(
    {
        "*SPEF",
        "*DESIGN",
        "*DATE",
        "*VENDOR",
        "*PROGRAM",
        "*VERSION",
        "*DESIGN_FLOW",
        "*DIVIDER",
        "*BUS_DELIMITER",
        "*T_UNIT",
        "*R_UNIT",
        "*L_UNIT",
        "*GROUND_NET",
    }
)

#: Relative tolerance when matching the mirrored listing of a coupling cap.
_MIRROR_REL_TOL = 1e-9


class SPEFError(ValueError):
    """Raised for malformed parasitics files.

    ``line_number`` carries the 1-based line the error was detected on
    (``None`` for file-level errors); the message always spells it out.
    """

    def __init__(self, message: str, line_number: Optional[int] = None):
        super().__init__(message)
        self.line_number = line_number


def _err(line_number: int, message: str) -> SPEFError:
    return SPEFError(f"line {line_number}: {message}", line_number)


# --------------------------------------------------------------------- events


@dataclass(frozen=True, slots=True)
class NetDeclaration:
    """A net's geometry/capacitance declaration.

    Compact ``*NET`` lines carry ``length_um``/``layer_index`` directly;
    ``*D_NET`` blocks carry capacitances (``total_cap_f`` from the block
    header, ``ground_cap_f`` summed over the block's ground-cap entries) that
    :func:`resolve_net_geometry` converts into a length.  Unset fields are
    ``None``.
    """

    name: str
    line_number: int
    length_um: Optional[float] = None
    layer_index: Optional[int] = None
    total_cap_f: Optional[float] = None
    ground_cap_f: Optional[float] = None


@dataclass(frozen=True, slots=True)
class CouplingDeclaration:
    """One declared net-to-net coupling.

    Compact ``*COUPLING`` lines carry ``coupled_length_um``; ``*D_NET`` cap
    entries carry ``cap_f`` (the per-pair sum over the declaring block, whose
    net is always ``net_a``).  Exactly one of the two is set.
    """

    net_a: str
    net_b: str
    line_number: int
    coupled_length_um: Optional[float] = None
    cap_f: Optional[float] = None


@dataclass(frozen=True, slots=True)
class NetClosed:
    """End of a net's ``*D_NET`` block: all its incident couplings are known.

    Compact-format nets are never explicitly closed; they complete only when
    the stream ends.
    """

    name: str
    line_number: int


SpefEvent = Union[NetDeclaration, CouplingDeclaration, NetClosed]


# --------------------------------------------------------------------- parser


def parse_spef(source: Union[str, Iterable[str]]) -> Iterator[SpefEvent]:
    """Incrementally parse a SPEF-subset document into typed events.

    ``source`` is an iterable of lines (an open file handle or any generator
    of lines streams; a ``str`` is treated as whole-document text for
    convenience).  The parser holds only the name map and the currently open
    ``*D_NET`` block, so memory stays bounded by the name map plus one block
    regardless of file size.

    A ``*D_NET`` block is emitted atomically at its ``*END``: first the
    :class:`NetDeclaration`, then one :class:`CouplingDeclaration` per
    distinct partner net (in first-appearance order, same-pair segment caps
    summed), then :class:`NetClosed`.
    """
    if isinstance(source, str):
        source = source.splitlines()

    name_map: Dict[str, str] = {}
    cap_scale = 1e-15  # SPEF default: *C_UNIT 1 FF
    delimiter = ":"
    in_name_map = False

    # State of the open *D_NET block (dnet_name is the open/closed flag).
    dnet_name: Optional[str] = None
    dnet_line = 0
    dnet_total = 0.0
    dnet_layer: Optional[int] = None
    dnet_length: Optional[float] = None
    dnet_ground = 0.0
    dnet_has_ground = False
    dnet_partners: Dict[str, Tuple[float, int]] = {}
    section = ""

    def resolve(token: str, line_number: int) -> str:
        if token.startswith("*") and token[1:].isdigit():
            try:
                return name_map[token[1:]]
            except KeyError:
                raise _err(line_number, f"name index {token} is not in the *NAME_MAP") from None
        return token

    def node_net(token: str, line_number: int) -> str:
        return resolve(token.split(delimiter, 1)[0], line_number)

    def parse_net_attributes(
        tokens: List[str], start: int, line_number: int
    ) -> Tuple[Optional[float], Optional[int]]:
        """The optional ``*LENGTH``/``*LAYER`` token pairs of a net line."""
        length_um: Optional[float] = None
        layer_index: Optional[int] = None
        index = start
        while index < len(tokens):
            key = tokens[index].upper()
            if key == "*LENGTH":
                length_um = float(tokens[index + 1])
                if length_um <= 0:
                    raise _err(line_number, f"net length must be positive, got {length_um:g}")
            elif key == "*LAYER":
                layer_index = int(tokens[index + 1])
            else:
                raise _err(line_number, f"unknown token '{tokens[index]}'")
            index += 2
        return length_um, layer_index

    for line_number, raw in enumerate(source, start=1):
        line = raw.strip()
        if not line or line.startswith("//"):
            continue
        tokens = line.split()
        head = tokens[0]

        if in_name_map:
            if head.startswith("*") and head[1:].isdigit():
                if len(tokens) != 2:
                    raise _err(line_number, f"malformed *NAME_MAP entry '{line}'")
                index = head[1:]
                if index in name_map:
                    raise _err(line_number, f"duplicate *NAME_MAP index *{index}")
                name_map[index] = tokens[1]
                continue
            in_name_map = False  # any non-entry line ends the map section

        keyword = head.upper()
        try:
            if dnet_name is not None:
                # ---------------------------------- inside a *D_NET block
                if not head.startswith("*"):
                    if section == "CAP":
                        if not tokens[0].isdigit():
                            raise _err(
                                line_number, f"*CAP entry must start with an index: '{line}'"
                            )
                        if len(tokens) == 3:
                            net = node_net(tokens[1], line_number)
                            if net != dnet_name:
                                raise _err(
                                    line_number,
                                    f"ground capacitance node '{tokens[1]}' does not "
                                    f"belong to net '{dnet_name}'",
                                )
                            value = float(tokens[2]) * cap_scale
                            if value < 0:
                                raise _err(line_number, "ground capacitance must be non-negative")
                            dnet_ground += value
                            dnet_has_ground = True
                        elif len(tokens) == 4:
                            net_a = node_net(tokens[1], line_number)
                            net_b = node_net(tokens[2], line_number)
                            if net_a == net_b:
                                raise _err(
                                    line_number, f"net '{net_a}' cannot couple to itself"
                                )
                            if dnet_name not in (net_a, net_b):
                                raise _err(
                                    line_number,
                                    f"coupling capacitance {tokens[1]}--{tokens[2]} does "
                                    f"not touch net '{dnet_name}'",
                                )
                            value = float(tokens[3]) * cap_scale
                            if value <= 0:
                                raise _err(line_number, "coupling capacitance must be positive")
                            partner = net_b if net_a == dnet_name else net_a
                            if partner in dnet_partners:
                                prior, first_line = dnet_partners[partner]
                                dnet_partners[partner] = (prior + value, first_line)
                            else:
                                dnet_partners[partner] = (value, line_number)
                        else:
                            raise _err(line_number, f"malformed *CAP entry '{line}'")
                    elif section in ("RES", "INDUC"):
                        pass  # resistive/inductive detail is not modelled
                    else:
                        raise _err(
                            line_number,
                            f"element line outside a *CAP/*RES section: '{line}'",
                        )
                elif section == "CONN" and keyword in ("*I", "*P"):
                    pass  # connectivity detail comes from the design database
                elif keyword == "*CONN":
                    section = "CONN"
                elif keyword == "*CAP":
                    section = "CAP"
                elif keyword == "*RES":
                    section = "RES"
                elif keyword == "*INDUC":
                    section = "INDUC"
                elif keyword == "*END":
                    if len(tokens) != 1:
                        raise _err(line_number, f"trailing tokens after *END: '{line}'")
                    yield NetDeclaration(
                        name=dnet_name,
                        line_number=dnet_line,
                        length_um=dnet_length,
                        layer_index=dnet_layer,
                        total_cap_f=dnet_total,
                        ground_cap_f=dnet_ground if dnet_has_ground else None,
                    )
                    for partner, (cap_f, first_line) in dnet_partners.items():
                        yield CouplingDeclaration(
                            net_a=dnet_name,
                            net_b=partner,
                            line_number=first_line,
                            cap_f=cap_f,
                        )
                    yield NetClosed(name=dnet_name, line_number=line_number)
                    dnet_name = None
                    section = ""
                else:
                    raise _err(
                        line_number,
                        f"unknown keyword '{head}' inside *D_NET '{dnet_name}'",
                    )

            # --------------------------------------------- top-level lines
            elif keyword == "*NET":
                name = resolve(tokens[1], line_number)
                length_um, layer_index = parse_net_attributes(tokens, 2, line_number)
                yield NetDeclaration(
                    name=name,
                    line_number=line_number,
                    length_um=length_um,
                    layer_index=layer_index,
                )
            elif keyword == "*COUPLING":
                if len(tokens) != 4:
                    raise _err(
                        line_number,
                        f"*COUPLING takes exactly two nets and a length, got '{line}'",
                    )
                net_a = resolve(tokens[1], line_number)
                net_b = resolve(tokens[2], line_number)
                if net_a == net_b:
                    raise _err(line_number, f"net '{net_a}' cannot couple to itself")
                coupled = float(tokens[3])
                if coupled <= 0:
                    raise _err(line_number, f"coupled length must be positive, got {coupled:g}")
                yield CouplingDeclaration(
                    net_a=net_a,
                    net_b=net_b,
                    line_number=line_number,
                    coupled_length_um=coupled,
                )
            elif keyword == "*D_NET":
                if len(tokens) < 3:
                    raise _err(line_number, f"malformed *D_NET header '{line}'")
                dnet_name = resolve(tokens[1], line_number)
                dnet_line = line_number
                dnet_total = float(tokens[2]) * cap_scale
                if dnet_total < 0:
                    raise _err(line_number, "total capacitance must be non-negative")
                dnet_length, dnet_layer = parse_net_attributes(tokens, 3, line_number)
                dnet_ground = 0.0
                dnet_has_ground = False
                dnet_partners = {}
                section = ""
            elif keyword == "*NAME_MAP":
                if len(tokens) != 1:
                    raise _err(line_number, f"trailing tokens after *NAME_MAP: '{line}'")
                in_name_map = True
            elif keyword == "*C_UNIT":
                if len(tokens) != 3:
                    raise _err(line_number, f"malformed *C_UNIT statement '{line}'")
                unit = tokens[2].upper()
                if unit not in _CAP_UNITS:
                    raise _err(
                        line_number,
                        f"unknown capacitance unit '{tokens[2]}' "
                        f"(supported: {sorted(_CAP_UNITS)})",
                    )
                cap_scale = float(tokens[1]) * _CAP_UNITS[unit]
            elif keyword == "*DELIMITER":
                if len(tokens) != 2 or len(tokens[1]) != 1:
                    raise _err(line_number, f"malformed *DELIMITER statement '{line}'")
                delimiter = tokens[1]
            elif keyword in _IGNORED_HEADERS:
                pass
            else:
                raise _err(line_number, f"unknown keyword '{head}'")
        except (IndexError, ValueError) as exc:
            if isinstance(exc, SPEFError):
                raise
            raise _err(line_number, f"malformed entry '{line}'") from exc

    if dnet_name is not None:
        raise _err(dnet_line, f"*D_NET '{dnet_name}' is never closed by *END")


# --------------------------------------------------- geometry resolution


def resolve_net_geometry(
    declaration: NetDeclaration, technology: Optional[Technology] = None
) -> Tuple[float, int]:
    """Resolve a net declaration to the design model's ``(length_um, layer)``.

    Declared lengths win; otherwise the ground (or, failing that, total)
    capacitance is divided by the layer's per-micrometre ground capacitance
    -- the inverse of the extraction-time conversion.  A declaration with
    neither falls back to the design defaults.
    """
    layer_index = (
        declaration.layer_index if declaration.layer_index is not None else DEFAULT_LAYER_INDEX
    )
    if declaration.length_um is not None:
        return declaration.length_um, layer_index
    cap = declaration.ground_cap_f
    if cap is None:
        cap = declaration.total_cap_f
    if cap is not None and cap > 0:
        if technology is None:
            raise SPEFError(
                f"line {declaration.line_number}: net '{declaration.name}' declares "
                f"capacitance; a technology is needed to derive its length",
                declaration.line_number,
            )
        try:
            layer = technology.layer(layer_index)
        except KeyError as exc:
            raise _err(declaration.line_number, str(exc)) from exc
        return cap / layer.ground_cap_per_um, layer_index
    return DEFAULT_LENGTH_UM, layer_index


def resolve_coupled_length(
    coupling: CouplingDeclaration,
    technology: Optional[Technology] = None,
    layer_index: int = DEFAULT_LAYER_INDEX,
) -> float:
    """Resolve a coupling declaration to a coupled run length in micrometres.

    Capacitance-declared couplings divide by the per-micrometre coupling
    capacitance of ``layer_index`` -- by convention the layer of the net
    whose block declared the coupling first (``net_a``).
    """
    if coupling.coupled_length_um is not None:
        return coupling.coupled_length_um
    assert coupling.cap_f is not None
    if technology is None:
        raise SPEFError(
            f"line {coupling.line_number}: coupling '{coupling.net_a}'--'{coupling.net_b}' "
            f"declares capacitance; a technology is needed to derive its length",
            coupling.line_number,
        )
    try:
        layer = technology.layer(layer_index)
    except KeyError as exc:
        raise _err(coupling.line_number, str(exc)) from exc
    return coupling.cap_f / layer.coupling_cap_per_um


def mirrors_coupling(first: CouplingDeclaration, second: CouplingDeclaration) -> bool:
    """Whether ``second`` is the partner block's listing of ``first``.

    In ``*D_NET`` files every coupling capacitance appears in both endpoint
    blocks; the mirrored listing carries (within rounding) the same summed
    capacitance and is merged, not duplicated.
    """
    return (
        first.cap_f is not None
        and second.cap_f is not None
        and math.isclose(first.cap_f, second.cap_f, rel_tol=_MIRROR_REL_TOL)
    )


# ---------------------------------------------------------- whole-file reads


def read_coupling_file(text: str, *, technology: Optional[Technology] = None) -> dict:
    """Parse the parasitics text into ``{"nets": {...}, "couplings": [...]}``.

    The in-memory convenience wrapper over :func:`parse_spef`: net entries
    carry ``length_um``/``layer_index`` (resolved through ``technology`` when
    the file declares capacitances; ``length_um`` is ``None`` when a
    conversion would be needed but no technology was given) plus the raw
    ``total_cap_f``/``ground_cap_f``; coupling entries carry
    ``coupled_length_um`` (or ``None``) and ``cap_f``.  Duplicate net
    declarations and duplicate couplings raise :class:`SPEFError`; the
    mirrored ``*D_NET`` listing of a coupling is merged.
    """
    nets: Dict[str, dict] = {}
    couplings: List[dict] = []
    pair_index: Dict[frozenset, int] = {}
    declarations: Dict[str, NetDeclaration] = {}
    raw_pairs: Dict[frozenset, CouplingDeclaration] = {}
    for event in parse_spef(text):
        if isinstance(event, NetDeclaration):
            if event.name in nets:
                raise _err(
                    event.line_number,
                    f"net '{event.name}' is declared more than once "
                    f"(first on line {declarations[event.name].line_number})",
                )
            declarations[event.name] = event
            if event.length_um is not None or technology is not None:
                length_um, layer_index = resolve_net_geometry(event, technology)
            else:
                # Capacitance-only declaration and no technology to convert
                # with: leave the length unresolved.
                layer_index = (
                    event.layer_index if event.layer_index is not None else DEFAULT_LAYER_INDEX
                )
                length_um = None if event.total_cap_f is not None else DEFAULT_LENGTH_UM
            nets[event.name] = {
                "length_um": length_um,
                "layer_index": layer_index,
                "total_cap_f": event.total_cap_f,
                "ground_cap_f": event.ground_cap_f,
            }
        elif isinstance(event, CouplingDeclaration):
            key = frozenset((event.net_a, event.net_b))
            if key in pair_index:
                if mirrors_coupling(raw_pairs[key], event):
                    continue
                raise _err(
                    event.line_number,
                    f"duplicate coupling between '{event.net_a}' and '{event.net_b}' "
                    f"(first on line {raw_pairs[key].line_number})",
                )
            pair_index[key] = len(couplings)
            raw_pairs[key] = event
            couplings.append(
                {
                    "net_a": event.net_a,
                    "net_b": event.net_b,
                    "coupled_length_um": event.coupled_length_um,
                    "cap_f": event.cap_f,
                }
            )
    return {"nets": nets, "couplings": couplings}


def annotate_design(design: Design, text: str, *, allow_new_nets: bool = False) -> None:
    """Apply a parasitics file to a design (lengths, layers, couplings).

    Nets referenced by the file but absent from the design raise
    :class:`SPEFError` listing the unknown names -- a parasitics/netlist name
    mismatch is a data bug, not a request to grow the design.  Pass
    ``allow_new_nets=True`` to restore the old behaviour for nets with their
    own declarations (coupling endpoints must still exist).  Capacitance
    declarations are converted through the design library's technology.
    """
    technology = design.library.technology
    data = read_coupling_file(text, technology=technology)
    declared = set(data["nets"])
    unknown = set() if allow_new_nets else {
        name for name in declared if name not in design.nets
    }
    for coupling in data["couplings"]:
        for name in (coupling["net_a"], coupling["net_b"]):
            if name not in design.nets and not (allow_new_nets and name in declared):
                unknown.add(name)
    if unknown:
        # With allow_new_nets, `unknown` only holds coupling endpoints the
        # file never declares -- those are always errors.
        shown = sorted(unknown)
        listing = ", ".join(shown[:10]) + (", ..." if len(shown) > 10 else "")
        hint = "" if allow_new_nets else " (pass allow_new_nets=True to create them)"
        raise SPEFError(
            f"parasitics reference {len(unknown)} nets not in design "
            f"'{design.name}': {listing}{hint}"
        )
    for name, entry in data["nets"].items():
        if name not in design.nets:
            design.add_net(name)
        net = design.nets[name]
        net.length_um = entry["length_um"]
        net.layer_index = entry["layer_index"]
    for coupling in data["couplings"]:
        coupled = coupling["coupled_length_um"]
        if coupled is None:
            declaration = CouplingDeclaration(
                net_a=coupling["net_a"],
                net_b=coupling["net_b"],
                line_number=0,
                cap_f=coupling["cap_f"],
            )
            coupled = resolve_coupled_length(
                declaration, technology, design.nets[coupling["net_a"]].layer_index
            )
        design.add_coupling(coupling["net_a"], coupling["net_b"], coupled)


def write_coupling_file(design: Design) -> str:
    """Serialise a design's routing/coupling annotations (compact format)."""
    lines: List[str] = [f"// parasitics for design {design.name}"]
    for name, net in sorted(design.nets.items()):
        lines.append(f"*NET {name} *LENGTH {net.length_um:g} *LAYER {net.layer_index}")
    for coupling in design.couplings:
        lines.append(
            f"*COUPLING {coupling.net_a} {coupling.net_b} {coupling.coupled_length_um:g}"
        )
    return "\n".join(lines) + "\n"
