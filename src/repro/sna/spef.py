"""A small SPEF-like coupling parasitics reader/writer.

Real SNA flows read coupling parasitics from SPEF.  This module implements a
compact subset sufficient to annotate a :class:`~repro.sna.design.Design`
with per-net routing data and net-to-net coupling:

    *NET <name> *LENGTH <um> *LAYER <index>
    *COUPLING <net_a> <net_b> <coupled_length_um>

Lines starting with ``//`` are comments.  The writer produces the same
format, so annotated designs can be round-tripped in tests.
"""

from __future__ import annotations

from typing import List

from .design import Design

__all__ = ["SPEFError", "read_coupling_file", "write_coupling_file", "annotate_design"]


class SPEFError(ValueError):
    """Raised for malformed parasitics files."""


def read_coupling_file(text: str) -> dict:
    """Parse the parasitics text into ``{"nets": {...}, "couplings": [...]}``."""
    nets = {}
    couplings = []
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("//"):
            continue
        tokens = line.split()
        keyword = tokens[0].upper()
        try:
            if keyword == "*NET":
                entry = {"length_um": 100.0, "layer_index": 3}
                name = tokens[1]
                index = 2
                while index < len(tokens):
                    key = tokens[index].upper()
                    if key == "*LENGTH":
                        entry["length_um"] = float(tokens[index + 1])
                        index += 2
                    elif key == "*LAYER":
                        entry["layer_index"] = int(tokens[index + 1])
                        index += 2
                    else:
                        raise SPEFError(f"line {line_number}: unknown token '{tokens[index]}'")
                nets[name] = entry
            elif keyword == "*COUPLING":
                couplings.append(
                    {"net_a": tokens[1], "net_b": tokens[2], "coupled_length_um": float(tokens[3])}
                )
            else:
                raise SPEFError(f"line {line_number}: unknown keyword '{keyword}'")
        except (IndexError, ValueError) as exc:
            if isinstance(exc, SPEFError):
                raise
            raise SPEFError(f"line {line_number}: malformed entry '{line}'") from exc
    return {"nets": nets, "couplings": couplings}


def annotate_design(design: Design, text: str) -> None:
    """Apply a parasitics file to a design (lengths, layers, couplings)."""
    data = read_coupling_file(text)
    for name, entry in data["nets"].items():
        if name not in design.nets:
            design.add_net(name)
        net = design.nets[name]
        net.length_um = entry["length_um"]
        net.layer_index = entry["layer_index"]
    for coupling in data["couplings"]:
        design.add_coupling(
            coupling["net_a"], coupling["net_b"], coupling["coupled_length_um"]
        )


def write_coupling_file(design: Design) -> str:
    """Serialise a design's routing/coupling annotations."""
    lines: List[str] = [f"// parasitics for design {design.name}"]
    for name, net in sorted(design.nets.items()):
        lines.append(f"*NET {name} *LENGTH {net.length_um:g} *LAYER {net.layer_index}")
    for coupling in design.couplings:
        lines.append(
            f"*COUPLING {coupling.net_a} {coupling.net_b} {coupling.coupled_length_um:g}"
        )
    return "\n".join(lines) + "\n"
