"""Deterministic synthetic full-chip designs for ingest benchmarks/tests.

No real full-chip SPEF ships with the repository, so scale testing needs a
generator: :class:`SyntheticChip` describes a parameterized design --
millions of nets, bus or grid coupling topology with realistic locality,
deterministic per-net variation -- **procedurally**.  Its
:meth:`~SyntheticChip.role` answers the streaming extractor's connectivity
queries in O(1) from index arithmetic (no per-net storage at all), and
:meth:`~SyntheticChip.spef_lines` lazily emits the matching parasitics file,
so a billion-line ingest run needs neither the design nor the file in
memory.  For sizes that do fit, :meth:`~SyntheticChip.build_design`
materialises the equivalent in-memory :class:`~repro.sna.design.Design` for
differential testing against :class:`~repro.sna.extraction.ClusterExtractor`.

Topology: nets are laid out in buses (rows) of ``bus_width``; ``n<i>``
couples to its horizontal neighbour ``n<i+1>`` within the row, and -- in the
``"grid"`` topology -- to its vertical neighbour ``n<i+bus_width>``.  Every
coupling partner is at most ``bus_width`` nets away, which is exactly the
locality the bounded-memory streaming window relies on.  Rows cycle through
metal layers; per-net lengths and coupled lengths vary via a seeded integer
hash (no RNG state, so any net's facts are computable independently).  Every
``driverless_every``-th net has no driver -- a floating aggressor that
exercises the aggressor-budget policy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

from ..technology.library import CellLibrary
from ..technology.process import Technology
from .design import Design
from .stream import NetRole

__all__ = ["SyntheticChip"]

_MASK64 = (1 << 64) - 1

#: Driver cells cycled across driven nets (all in the default library).
_DRIVER_CELLS = ("INV_X1", "INV_X2", "NAND2_X1", "NOR2_X1")
_RECEIVER_CELL = "INV_X1"
_RECEIVER_PIN = "A"
#: Metal layers cycled per row (middle of the default 6-layer stack).
_LAYER_CYCLE = (3, 4, 5)


def _mix(index: int, seed: int, salt: int) -> int:
    """SplitMix64-style avalanche over (net index, seed, salt)."""
    x = (index * 0x9E3779B97F4A7C15 + seed * 0xBF58476D1CE4E5B9 + salt * 0x94D049BB133111EB) & _MASK64
    x ^= x >> 31
    x = (x * 0xD6E8FEB86659FD93) & _MASK64
    x ^= x >> 27
    return x


def _frac(index: int, seed: int, salt: int) -> float:
    return _mix(index, seed, salt) / float(1 << 64)


@dataclass(frozen=True)
class SyntheticChip:
    """A procedurally defined full-chip design (implements ``RoleProvider``)."""

    num_nets: int
    bus_width: int = 8
    topology: str = "grid"  # "bus" (rows only) or "grid" (rows + columns)
    seed: int = 0
    base_length_um: float = 180.0
    #: Every k-th net has no driver (0 disables); floating aggressors.
    driverless_every: int = 0

    def __post_init__(self):
        if self.num_nets < 2:
            raise ValueError(f"num_nets must be at least 2, got {self.num_nets}")
        if self.bus_width < 2:
            raise ValueError(f"bus_width must be at least 2, got {self.bus_width}")
        if self.topology not in ("bus", "grid"):
            raise ValueError(f"topology must be 'bus' or 'grid', got '{self.topology}'")
        if self.base_length_um <= 0:
            raise ValueError("base_length_um must be positive")

    # ----------------------------------------------------------- per-net facts

    def net_name(self, index: int) -> str:
        return f"n{index}"

    def net_index(self, net: str) -> int:
        if not net.startswith("n") or not net[1:].isdigit():
            raise KeyError(f"'{net}' is not a synthetic signal net")
        index = int(net[1:])
        if not 0 <= index < self.num_nets:
            raise KeyError(f"net '{net}' is outside this {self.num_nets}-net chip")
        return index

    def length_um(self, index: int) -> float:
        return self.base_length_um * (0.6 + 0.8 * _frac(index, self.seed, 1))

    def layer_index(self, index: int) -> int:
        return _LAYER_CYCLE[(index // self.bus_width) % len(_LAYER_CYCLE)]

    def quiet_high(self, index: int) -> bool:
        return bool(_mix(index, self.seed, 2) & 1)

    def is_driverless(self, index: int) -> bool:
        return self.driverless_every > 0 and index % self.driverless_every == 0

    def driver_cell(self, index: int) -> Optional[str]:
        if self.is_driverless(index):
            return None
        return _DRIVER_CELLS[_mix(index, self.seed, 3) % len(_DRIVER_CELLS)]

    def neighbors(self, index: int) -> Iterator[int]:
        """Coupling partners of net ``index``, lower partner first."""
        width = self.bus_width
        if self.topology == "grid" and index - width >= 0:
            yield index - width
        if index % width > 0:
            yield index - 1
        if index % width < width - 1 and index + 1 < self.num_nets:
            yield index + 1
        if self.topology == "grid" and index + width < self.num_nets:
            yield index + width

    def coupled_length_um(self, low: int, high: int) -> float:
        """Common run length of the (low, high) coupling, independent of side."""
        bound = min(self.length_um(low), self.length_um(high))
        return bound * (0.35 + 0.5 * _frac(low * 0x1F123BB5 + high, self.seed, 4))

    # -------------------------------------------------------------- RoleProvider

    def role(self, net: str) -> NetRole:
        index = self.net_index(net)
        return NetRole(
            driver_cell=self.driver_cell(index),
            receiver_cell=_RECEIVER_CELL,
            receiver_pin=_RECEIVER_PIN,
            quiet_high=self.quiet_high(index),
            is_primary_input=False,
            length_um=self.length_um(index),
            layer_index=self.layer_index(index),
        )

    # ------------------------------------------------------------ SPEF emission

    def spef_lines(
        self,
        technology: Technology,
        *,
        style: str = "dnet",
        use_name_map: bool = False,
    ) -> Iterator[str]:
        """Lazily emit the chip's parasitics file, one line at a time.

        ``style="dnet"`` writes one ``*D_NET`` block per net with ground and
        coupling *capacitances* (derived from the geometric model through the
        layer coefficients, so the parser's cap-to-length conversion recovers
        the geometry); each coupling is listed in both endpoint blocks, as
        real SPEF does.  ``style="compact"`` writes the legacy
        ``*NET``/``*COUPLING`` form with explicit lengths.  ``use_name_map``
        routes all net references through a ``*NAME_MAP`` section
        (``dnet`` style only).
        """
        if style not in ("dnet", "compact"):
            raise ValueError(f"style must be 'dnet' or 'compact', got '{style}'")
        yield "*SPEF \"IEEE 1481-1998 subset\""
        yield f"*DESIGN \"synthetic_chip_{self.num_nets}\""
        yield "*DELIMITER :"
        yield "*C_UNIT 1 FF"

        def ref(index: int) -> str:
            return f"*{index}" if use_name_map else self.net_name(index)

        if style == "compact":
            for index in range(self.num_nets):
                yield (
                    f"*NET {self.net_name(index)} "
                    f"*LENGTH {self.length_um(index)!r} *LAYER {self.layer_index(index)}"
                )
            for index in range(self.num_nets):
                for neighbor in self.neighbors(index):
                    if neighbor < index:
                        continue  # emit each pair once, from its low side
                    yield (
                        f"*COUPLING {self.net_name(index)} {self.net_name(neighbor)} "
                        f"{self.coupled_length_um(index, neighbor)!r}"
                    )
            return

        if use_name_map:
            yield "*NAME_MAP"
            for index in range(self.num_nets):
                yield f"*{index} {self.net_name(index)}"

        for index in range(self.num_nets):
            layer = technology.layer(self.layer_index(index))
            ground_ff = self.length_um(index) * layer.ground_cap_per_um / 1e-15
            coupling_caps = []
            for neighbor in self.neighbors(index):
                low, high = min(index, neighbor), max(index, neighbor)
                # By the both-blocks convention the conversion layer is the
                # lower net's (its block declares the coupling first).
                cc_per_um = technology.layer(self.layer_index(low)).coupling_cap_per_um
                coupling_caps.append(
                    (neighbor, self.coupled_length_um(low, high) * cc_per_um / 1e-15)
                )
            total_ff = ground_ff + sum(cap for _, cap in coupling_caps)
            yield f"*D_NET {ref(index)} {total_ff!r} *LAYER {self.layer_index(index)}"
            yield "*CAP"
            yield f"1 {ref(index)}:1 {ground_ff!r}"
            for position, (neighbor, cap_ff) in enumerate(coupling_caps, start=2):
                yield f"{position} {ref(index)}:2 {ref(neighbor)}:2 {cap_ff!r}"
            yield "*END"

    # ------------------------------------------------------- in-memory mirror

    def build_design(
        self,
        library: CellLibrary,
        name: str = "synthetic_chip",
        *,
        connectivity_only: bool = False,
    ) -> Design:
        """Materialise the equivalent in-memory design (small chips only).

        The design's connectivity reproduces :meth:`role` exactly: per net a
        driver instance ``u<i>`` (unless driverless) fed from a primary-input
        pool and a receiver ``r<i>`` (``INV_X1`` pin ``A``), so differential
        tests can compare the in-memory extractor on this design against the
        streaming extractor on :meth:`spef_lines` output.

        ``connectivity_only=True`` leaves out the coupling annotations so the
        design can instead be annotated from a :meth:`spef_lines` document --
        both extraction paths then derive geometry from the *same* parsed
        capacitances, making their specs bit-identical.
        """
        design = Design(name, library)
        design.add_primary_input("pi0")
        design.add_primary_input("pi1")
        for index in range(self.num_nets):
            design.add_net(
                self.net_name(index),
                length_um=self.length_um(index),
                layer_index=self.layer_index(index),
                quiet_high=self.quiet_high(index),
            )
        for index in range(self.num_nets):
            net = self.net_name(index)
            cell = self.driver_cell(index)
            if cell is not None:
                connections = {"A": "pi0", "Z": net}
                if library.cell(cell).inputs == ["A", "B"]:
                    connections["B"] = "pi1"
                design.add_instance(f"u{index}", cell, connections)
            design.add_instance(
                f"r{index}", _RECEIVER_CELL, {_RECEIVER_PIN: net, "Z": f"ro{index}"}
            )
        if not connectivity_only:
            for index in range(self.num_nets):
                for neighbor in self.neighbors(index):
                    if neighbor < index:
                        continue
                    design.add_coupling(
                        self.net_name(index),
                        self.net_name(neighbor),
                        self.coupled_length_um(index, neighbor),
                    )
        return design

    # ------------------------------------------------------------- statistics

    def num_couplings(self) -> int:
        return sum(
            1
            for index in range(self.num_nets)
            for neighbor in self.neighbors(index)
            if neighbor > index
        )

    def pair_count_estimate(self) -> Tuple[int, int]:
        """(horizontal, vertical) coupling counts without enumerating nets."""
        width = self.bus_width
        full_rows, remainder = divmod(self.num_nets, width)
        horizontal = full_rows * (width - 1) + max(0, remainder - 1)
        vertical = max(0, self.num_nets - width) if self.topology == "grid" else 0
        return horizontal, vertical
