"""Bounded-memory cluster extraction over a SPEF parse-event stream.

:class:`~repro.sna.extraction.ClusterExtractor` needs the whole annotated
:class:`~repro.sna.design.Design` in memory; full-chip parasitics files do
not fit.  :class:`StreamingClusterExtractor` consumes the typed event stream
of :func:`repro.sna.spef.parse_spef` instead, holding only a rolling window
of per-net state: a net's geometry and coupling list are kept from its first
mention until it *and every net coupled to it* are finished, then evicted.
Clusters are yielded as soon as they are complete -- for ``*D_NET`` input
that is the moment the victim's block closes and all its partners' geometry
is known, typically a handful of nets into the file.

Equivalence contract
--------------------
On any input that also fits in memory, the extractions yielded here are
*identical* to ``ClusterExtractor.extract_clusters()`` on a design annotated
from the same text -- same specs, same aggressor budget policy, same
skipped-aggressor provenance -- because both funnel through
:func:`repro.sna.extraction.build_cluster`.  Only the *emission order*
differs: streaming yields in completion order, the in-memory extractor in
sorted-victim order.

Memory guarantees (and their preconditions)
-------------------------------------------
The window stays bounded when (a) every coupled net has its own ``*D_NET``
block (standard SPEF lists each coupling in both endpoint blocks), and
(b) the file has coupling locality -- a net's block and its partners' blocks
are near each other.  The peak window is then O(neighborhood size), not
O(design size); ``stats.peak_open_nets`` records the high-water mark and
``max_open_nets`` turns a locality violation into a hard
:class:`StreamWindowExceeded` instead of silent memory growth.  The legacy
compact format has no block structure, so compact nets only complete at end
of stream: it parses fine but is not bounded-memory.

Asymmetric files (a coupling listed in only one endpoint's block) are
detected on a best-effort basis: a coupling arriving after its partner's
block closed raises :class:`~repro.sna.spef.SPEFError` while the partner is
still windowed; a partner already evicted is indistinguishable from a
not-yet-seen net, and the coupling then completes at end of stream like
compact input.

Connectivity (drivers, receivers, quiet levels) is not part of SPEF; a
:class:`RoleProvider` supplies it per net in O(1) -- either
:class:`DesignRoles` over an in-memory design database or a synthetic/
procedural provider such as :class:`repro.sna.synth_design.SyntheticChip`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Protocol, Set, Tuple, Union

from ..noise.cluster import InputGlitchSpec
from ..technology.process import Technology
from .design import Design
from .extraction import ClusterExtraction, ExtractionConfig, build_cluster
from .spef import (
    DEFAULT_LAYER_INDEX,
    DEFAULT_LENGTH_UM,
    CouplingDeclaration,
    NetClosed,
    NetDeclaration,
    SpefEvent,
    SPEFError,
    mirrors_coupling,
    parse_spef,
    resolve_coupled_length,
    resolve_net_geometry,
)

__all__ = [
    "NetRole",
    "RoleProvider",
    "DesignRoles",
    "StreamStats",
    "StreamWindowExceeded",
    "StreamingClusterExtractor",
]


@dataclass(frozen=True)
class NetRole:
    """Connectivity facts about one net, supplied from outside the SPEF.

    ``length_um``/``layer_index`` are the fallback geometry used when the
    parasitics stream does not declare the net (mirrors the design-database
    defaults).
    """

    driver_cell: Optional[str] = None
    receiver_cell: Optional[str] = None
    receiver_pin: Optional[str] = None
    quiet_high: Optional[bool] = None
    is_primary_input: bool = False
    length_um: float = DEFAULT_LENGTH_UM
    layer_index: int = DEFAULT_LAYER_INDEX


class RoleProvider(Protocol):
    """O(1) per-net connectivity lookup backing the streaming extractor."""

    def role(self, net: str) -> NetRole:
        """The role of ``net``; raise ``KeyError`` for unknown nets."""
        ...


class DesignRoles:
    """Role provider over an in-memory design database.

    Builds the design's :class:`~repro.sna.design.DesignConnectivity` index
    once, so each lookup is O(1) and matches the in-memory extractor's
    driver/receiver selection (first instance in insertion order) exactly.
    """

    def __init__(self, design: Design):
        self.design = design
        self._index = design.connectivity()

    def role(self, net: str) -> NetRole:
        try:
            info = self.design.nets[net]
        except KeyError:
            raise KeyError(
                f"net '{net}' is not in design '{self.design.name}'"
            ) from None
        driver = self._index.driver_of(net)
        receivers = self._index.receivers_of(net)
        receiver_instance, receiver_pin = receivers[0] if receivers else (None, None)
        return NetRole(
            driver_cell=driver.cell if driver is not None else None,
            receiver_cell=receiver_instance.cell if receiver_instance is not None else None,
            receiver_pin=receiver_pin,
            quiet_high=info.quiet_high,
            is_primary_input=net in self.design.primary_inputs,
            length_um=info.length_um,
            layer_index=info.layer_index,
        )


class StreamWindowExceeded(RuntimeError):
    """The rolling window outgrew ``max_open_nets``.

    Raised when the input violates the locality preconditions (e.g. a
    compact-format file streamed with a bound, or a ``*D_NET`` file whose
    coupled blocks are arbitrarily far apart).
    """


@dataclass
class StreamStats:
    """Counters of one streaming-extraction pass."""

    nets_seen: int = 0
    couplings_seen: int = 0
    clusters: int = 0
    #: Nets that closed without producing a cluster (non-candidates).
    skipped_nets: int = 0
    #: High-water mark of the rolling window (nets with live state).
    peak_open_nets: int = 0
    evictions: int = 0


@dataclass
class _NetState:
    """Rolling per-net state; lives from first mention until eviction."""

    name: str
    declared: bool = False
    declaration_line: int = 0
    length_um: float = DEFAULT_LENGTH_UM
    layer_index: int = DEFAULT_LAYER_INDEX
    #: neighbor -> (coupled_length_um, raw cap_f or None), insertion-ordered.
    couplings: Dict[str, Tuple[float, Optional[float]]] = field(default_factory=dict)
    closed: bool = False
    #: No further emission possible (emitted, or determined non-candidate).
    done: bool = False
    #: Neighbors whose geometry this closed victim is still waiting for.
    waiting_on: Set[str] = field(default_factory=set)
    #: Cached role-provider answer (roles are immutable per pass).
    role: Optional[NetRole] = None


class StreamingClusterExtractor:
    """Extract noise clusters from a SPEF event stream with bounded memory.

    Parameters
    ----------
    roles:
        Per-net connectivity provider (see :class:`RoleProvider`).
    technology:
        Layer stack used to convert declared capacitances into lengths.
    config, input_glitches:
        As for :class:`~repro.sna.extraction.ClusterExtractor`.
    max_open_nets:
        Optional hard cap on the rolling window; ``None`` = unbounded.
    skip_unusable:
        A victim whose every coupling is driverless raises ``ValueError``
        (matching the in-memory extractor).  Set True to count it in
        ``stats.skipped_nets`` and keep streaming instead.
    """

    def __init__(
        self,
        roles: RoleProvider,
        technology: Optional[Technology] = None,
        *,
        config: Optional[ExtractionConfig] = None,
        input_glitches: Optional[Mapping[str, InputGlitchSpec]] = None,
        max_open_nets: Optional[int] = None,
        skip_unusable: bool = False,
    ):
        self.roles = roles
        self.technology = technology
        self.config = config or ExtractionConfig()
        self.input_glitches = dict(input_glitches or {})
        self.max_open_nets = max_open_nets
        self.skip_unusable = skip_unusable
        self.stats = StreamStats()
        self._states: Dict[str, _NetState] = {}
        self._waiting: Dict[str, List[str]] = {}

    @classmethod
    def for_design(cls, design: Design, **kwargs) -> "StreamingClusterExtractor":
        """Extractor whose roles and technology come from a design database."""
        return cls(DesignRoles(design), design.library.technology, **kwargs)

    # -------------------------------------------------------------- pipeline

    def extract(
        self, events: Union[str, Iterable[str], Iterable[SpefEvent]]
    ) -> Iterator[ClusterExtraction]:
        """Yield completed clusters while consuming ``events``.

        ``events`` may be raw SPEF input (text, a file handle, any line
        iterable) or an already-parsed :data:`~repro.sna.spef.SpefEvent`
        stream.  One extractor instance handles one pass; ``self.stats``
        describes it afterwards.
        """
        if self._states or self.stats.nets_seen:
            raise RuntimeError("StreamingClusterExtractor instances are single-use")
        events = self._as_events(events)
        for event in events:
            if isinstance(event, NetDeclaration):
                yield from self._on_declaration(event)
            elif isinstance(event, CouplingDeclaration):
                self._on_coupling(event)
            elif isinstance(event, NetClosed):
                yield from self._on_closed(event)
        yield from self._finish()

    @staticmethod
    def _as_events(
        events: Union[str, Iterable[str], Iterable[SpefEvent]]
    ) -> Iterable[SpefEvent]:
        if isinstance(events, str):
            return parse_spef(events)
        iterator = iter(events)
        try:
            first = next(iterator)
        except StopIteration:
            return ()
        if isinstance(first, str):

            def lines() -> Iterator[str]:
                yield first  # type: ignore[misc]
                yield from iterator  # type: ignore[misc]

            return parse_spef(lines())

        def rechain() -> Iterator[SpefEvent]:
            yield first  # type: ignore[misc]
            yield from iterator  # type: ignore[misc]

        return rechain()

    # ------------------------------------------------------------- handlers

    def _state(self, net: str) -> _NetState:
        state = self._states.get(net)
        if state is None:
            state = _NetState(net)
            self._states[net] = state
            open_nets = len(self._states)
            if open_nets > self.stats.peak_open_nets:
                self.stats.peak_open_nets = open_nets
            if self.max_open_nets is not None and open_nets > self.max_open_nets:
                raise StreamWindowExceeded(
                    f"streaming window grew to {open_nets} open nets "
                    f"(max_open_nets={self.max_open_nets}); the input likely "
                    f"lacks *D_NET block structure or coupling locality"
                )
        return state

    def _role(self, state: _NetState) -> NetRole:
        if state.role is None:
            state.role = self.roles.role(state.name)
        return state.role

    def _on_declaration(self, event: NetDeclaration) -> Iterator[ClusterExtraction]:
        self.stats.nets_seen += 1
        state = self._state(event.name)
        if state.declared:
            raise SPEFError(
                f"line {event.line_number}: net '{event.name}' is declared more "
                f"than once (first on line {state.declaration_line})",
                event.line_number,
            )
        role = self._role(state)
        declaration = event
        if declaration.layer_index is None and declaration.length_um is None:
            # The net's fallback geometry comes from the role provider, not
            # the module defaults, when the file declares neither.
            if declaration.total_cap_f is None and declaration.ground_cap_f is None:
                state.length_um, state.layer_index = role.length_um, role.layer_index
                state.declared = True
                state.declaration_line = event.line_number
                yield from self._release_waiters(event.name)
                return
            declaration = NetDeclaration(
                name=event.name,
                line_number=event.line_number,
                layer_index=role.layer_index,
                total_cap_f=event.total_cap_f,
                ground_cap_f=event.ground_cap_f,
            )
        state.length_um, state.layer_index = resolve_net_geometry(declaration, self.technology)
        state.declared = True
        state.declaration_line = event.line_number
        yield from self._release_waiters(event.name)

    def _release_waiters(self, net: str) -> Iterator[ClusterExtraction]:
        for victim in self._waiting.pop(net, []):
            state = self._states.get(victim)
            if state is None or state.done:
                continue
            state.waiting_on.discard(net)
            if state.closed and not state.waiting_on:
                yield from self._emit(state)

    def _on_coupling(self, event: CouplingDeclaration) -> None:
        state_a = self._state(event.net_a)
        recorded = state_a.couplings.get(event.net_b)
        if recorded is not None:
            prior = CouplingDeclaration(
                net_a=event.net_a, net_b=event.net_b, line_number=0, cap_f=recorded[1]
            )
            if mirrors_coupling(prior, event):
                return  # the partner block's mirrored listing
            raise SPEFError(
                f"line {event.line_number}: duplicate coupling between "
                f"'{event.net_a}' and '{event.net_b}'",
                event.line_number,
            )
        state_b = self._state(event.net_b)
        for endpoint in (state_a, state_b):
            if endpoint.done:
                raise SPEFError(
                    f"line {event.line_number}: coupling to '{endpoint.name}' "
                    f"arrives after its *D_NET block closed; SPEF input must "
                    f"list every coupling in both endpoint blocks",
                    event.line_number,
                )
        self.stats.couplings_seen += 1
        # Capacitance-declared couplings convert through the layer of the
        # net whose block declared them first (net_a) -- same convention as
        # annotate_design.
        coupled_length = resolve_coupled_length(event, self.technology, state_a.layer_index)
        state_a.couplings[event.net_b] = (coupled_length, event.cap_f)
        state_b.couplings[event.net_a] = (coupled_length, event.cap_f)

    def _on_closed(self, event: NetClosed) -> Iterator[ClusterExtraction]:
        state = self._states[event.name]
        state.closed = True
        role = self._role(state)
        if not self._is_candidate(state, role):
            self.stats.skipped_nets += 1
            self._mark_done(state)
            return
        missing = {
            neighbor
            for neighbor in state.couplings
            if not self._states[neighbor].declared
        }
        if missing:
            state.waiting_on = missing
            for neighbor in missing:
                self._waiting.setdefault(neighbor, []).append(event.name)
            return
        yield from self._emit(state)

    def _finish(self) -> Iterator[ClusterExtraction]:
        """Drain nets that never closed (compact format, undeclared partners).

        End of stream closes everything: remaining geometry falls back to the
        role provider, then pending victims emit in first-mention order.
        """
        for state in list(self._states.values()):
            if not state.declared:
                role = self._role(state)
                state.length_um, state.layer_index = role.length_um, role.layer_index
                state.declared = True
        for state in list(self._states.values()):
            if state.done:
                continue
            state.closed = True
            state.waiting_on.clear()
            role = self._role(state)
            if self._is_candidate(state, role):
                yield from self._emit(state)
            else:
                self.stats.skipped_nets += 1
                self._mark_done(state)
        self._waiting.clear()

    # ------------------------------------------------------------- emission

    @staticmethod
    def _is_candidate(state: _NetState, role: NetRole) -> bool:
        return (
            bool(state.couplings)
            and not role.is_primary_input
            and role.driver_cell is not None
            and role.receiver_cell is not None
            and role.receiver_pin is not None
        )

    def _emit(self, state: _NetState) -> Iterator[ClusterExtraction]:
        role = self._role(state)

        def aggressor_info(net: str) -> Optional[Tuple[str, float]]:
            neighbor_state = self._states.get(net)
            if neighbor_state is not None:
                neighbor_role = self._role(neighbor_state)
                if neighbor_role.driver_cell is None:
                    return None
                if neighbor_state.declared:
                    return neighbor_role.driver_cell, neighbor_state.length_um
                return neighbor_role.driver_cell, neighbor_role.length_um
            neighbor_role = self.roles.role(net)
            if neighbor_role.driver_cell is None:
                return None
            return neighbor_role.driver_cell, neighbor_role.length_um

        couplings = [
            (neighbor, coupled_length)
            for neighbor, (coupled_length, _) in state.couplings.items()
        ]
        try:
            extraction = build_cluster(
                state.name,
                config=self.config,
                victim_length_um=state.length_um,
                victim_layer_index=state.layer_index,
                victim_quiet_high=bool(role.quiet_high),
                victim_driver_cell=role.driver_cell,  # type: ignore[arg-type]
                receiver_cell=role.receiver_cell,  # type: ignore[arg-type]
                receiver_pin=role.receiver_pin,  # type: ignore[arg-type]
                couplings=couplings,
                aggressor_info=aggressor_info,
                input_glitch=self.input_glitches.get(state.name),
            )
        except ValueError:
            if not self.skip_unusable:
                raise
            self.stats.skipped_nets += 1
            self._mark_done(state)
            return
        self.stats.clusters += 1
        self._mark_done(state)
        yield extraction

    # ------------------------------------------------------------- eviction

    def _mark_done(self, state: _NetState) -> None:
        state.done = True
        self._try_evict(state.name)
        for neighbor in list(state.couplings):
            self._try_evict(neighbor)

    def _try_evict(self, net: str) -> None:
        """Free a net's state once nothing can reference it again.

        A net is evictable when it is done and every coupled neighbor is
        done: its geometry can no longer feed another victim's cluster, and
        (because mirrored listings precede the partner's ``*END``) no future
        event needs its coupling set for mirror matching.
        """
        state = self._states.get(net)
        if state is None or not state.done:
            return
        for neighbor in state.couplings:
            neighbor_state = self._states.get(neighbor)
            if neighbor_state is not None and not neighbor_state.done:
                return
        del self._states[net]
        self.stats.evictions += 1
