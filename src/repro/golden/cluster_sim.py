"""Golden transistor-level simulation of a noise cluster.

This plays the role ELDO(TM) plays in the paper's experiments: the whole
cluster -- victim and aggressor drivers at transistor level, the distributed
coupled RC wiring and transistor-level receivers -- is simulated with the
general-purpose non-linear circuit simulator of :mod:`repro.circuit`.  Every
accuracy number in the reproduced tables is an error *with respect to this
simulation*.
"""

from __future__ import annotations

import time
from typing import Dict, Optional

from ..characterization.thevenin import switching_input_setup
from ..circuit.netlist import Circuit
from ..circuit.sources import SaturatedRamp
from ..circuit.transient import transient
from ..noise.builder import ClusterModelBuilder
from ..noise.engine import EngineStatistics
from ..noise.cluster import NoiseClusterSpec
from ..noise.results import NoiseAnalysisResult
from ..noise.vccs import victim_input_waveform
from ..technology.library import CellLibrary
from ..units import fF

__all__ = ["GoldenClusterAnalysis", "build_golden_cluster_circuit"]


def build_golden_cluster_circuit(
    library: CellLibrary,
    spec: NoiseClusterSpec,
    *,
    builder: Optional[ClusterModelBuilder] = None,
    receiver_load: float = fF(2),
) -> Circuit:
    """Build the full transistor-level circuit of a noise cluster.

    Node naming: the wiring keeps the ``<net>:<segment>`` convention of
    :func:`repro.interconnect.build_coupled_rc_network`; the victim driver's
    noisy input is ``vic_in``; each net's receiver output is
    ``<net>_rcv_out``.
    """
    technology = library.technology
    builder = builder or ClusterModelBuilder(library, spec)
    vdd = technology.vdd

    circuit = Circuit(f"golden_{spec.name}")
    circuit.add_voltage_source("VDD", "vdd", "0", vdd)

    # Wiring: the full distributed coupled RC network (without the lumped
    # receiver caps -- real receivers are instantiated below instead).
    from ..interconnect.rcnetwork import build_coupled_rc_network

    wiring = build_coupled_rc_network(spec.geometry, technology, spec.num_segments)
    wiring.instantiate(circuit)

    # ---------------------------------------------------------------- victim
    victim_cell = library.cell(spec.victim.driver_cell)
    arc = builder.victim_arc
    quiet_input_level = vdd if not arc.glitch_rising else 0.0
    input_waveform = victim_input_waveform(
        quiet_input_level, arc.glitch_rising, spec.victim.input_glitch
    )
    circuit.add_voltage_source("V_VIC_IN", "vic_in", "0", input_waveform)
    victim_pins = {arc.input_pin: "vic_in", victim_cell.output_pin: wiring.driver_nodes[spec.victim.net]}
    for pin, value in arc.side_inputs:
        node = f"vic_side_{pin}"
        circuit.add_voltage_source(f"V_VIC_{pin}", node, "0", vdd if value else 0.0)
        victim_pins[pin] = node
    victim_cell.instantiate(circuit, "XVIC", victim_pins, technology)

    # -------------------------------------------------------------- aggressors
    for index, aggressor in enumerate(spec.aggressors):
        cell = library.cell(aggressor.driver_cell)
        setup = switching_input_setup(
            cell, technology, rising=aggressor.rising, input_pin=aggressor.input_pin
        )
        prefix = f"XAGG{index}"
        in_node = f"agg{index}_in"
        circuit.add_voltage_source(
            f"V_AGG{index}_IN",
            in_node,
            "0",
            SaturatedRamp(
                setup.input_start,
                setup.input_end,
                aggressor.switch_time,
                aggressor.input_transition,
            ),
        )
        pins = {setup.input_pin: in_node, cell.output_pin: wiring.driver_nodes[aggressor.net]}
        for pin, value in setup.side_inputs.items():
            node = f"agg{index}_side_{pin}"
            circuit.add_voltage_source(f"V_AGG{index}_{pin}", node, "0", vdd if value else 0.0)
            pins[pin] = node
        cell.instantiate(circuit, prefix, pins, technology)

    # --------------------------------------------------------------- receivers
    def add_receiver(net: str, cell_name: str, pin: str, tag: str) -> None:
        cell = library.cell(cell_name)
        pins = {pin: wiring.receiver_nodes[net], cell.output_pin: f"{net}_rcv_out"}
        # Sensitise the receiver so the noise can propagate through it.
        side = {}
        for arc_candidate in cell.noise_arcs():
            if arc_candidate.input_pin == pin:
                side = arc_candidate.side_inputs_dict
                break
        for other in cell.inputs:
            if other == pin:
                continue
            value = side.get(other, True)
            node = f"{tag}_side_{other}"
            circuit.add_voltage_source(f"V_{tag}_{other}", node, "0", vdd if value else 0.0)
            pins[other] = node
        cell.instantiate(circuit, tag, pins, technology)
        circuit.add_capacitor(f"C_{tag}_load", f"{net}_rcv_out", "0", receiver_load)

    add_receiver(spec.victim.net, spec.victim.receiver_cell, spec.victim.receiver_pin, "XRCV_VIC")
    for index, aggressor in enumerate(spec.aggressors):
        add_receiver(aggressor.net, aggressor.receiver_cell, aggressor.receiver_pin, f"XRCV_AGG{index}")

    return circuit


class GoldenClusterAnalysis:
    """Reference transistor-level noise analysis of a cluster.

    ``solver_backend`` is forwarded to every :func:`transient` call
    (``"auto"`` lets large extracted clusters take the sparse kernel while
    the paper-sized ones keep dense LAPACK).
    """

    method_name = "golden"

    def __init__(self, library: CellLibrary, *, solver_backend: str = "auto"):
        self.library = library
        self.solver_backend = solver_backend

    def analyze(
        self,
        spec: NoiseClusterSpec,
        *,
        dt: Optional[float] = None,
        t_stop: Optional[float] = None,
        builder: Optional[ClusterModelBuilder] = None,
    ) -> NoiseAnalysisResult:
        builder = builder or ClusterModelBuilder(self.library, spec)
        circuit = build_golden_cluster_circuit(self.library, spec, builder=builder)

        default_t_stop, default_dt = builder.simulation_window(dt)
        t_stop = t_stop if t_stop is not None else default_t_stop
        dt = dt if dt is not None else default_dt

        victim_node = f"{spec.victim.net}:0"
        receiver_node = f"{spec.victim.net}:{spec.num_segments}"

        start = time.perf_counter()
        result = transient(circuit, t_stop=t_stop, dt=dt, backend=self.solver_backend)
        runtime = time.perf_counter() - start

        victim_waveform = result[victim_node]
        baseline = builder.victim_quiet_level()
        metrics = victim_waveform.glitch_metrics(baseline=baseline)

        waveforms: Dict[str, object] = {
            "victim_driving_point": victim_waveform,
            "victim_receiver": result[receiver_node],
            "victim_receiver_output": result[f"{spec.victim.net}_rcv_out"],
        }
        for aggressor in spec.aggressors:
            waveforms[f"aggressor:{aggressor.net}"] = result[f"{aggressor.net}:0"]

        stats = result.stats
        engine_statistics = EngineStatistics(
            num_time_points=stats.num_time_points,
            newton_iterations=stats.newton_iterations,
            runtime_seconds=runtime,
            assemblies_avoided=stats.assemblies_avoided,
            lu_reuse_hits=stats.lu_reuse_hits,
            matrix_factorizations=stats.matrix_factorizations,
            fast_path_runs=1 if stats.fast_path else 0,
        )
        return NoiseAnalysisResult(
            method=self.method_name,
            victim_waveform=victim_waveform,
            metrics=metrics,
            runtime_seconds=runtime,
            waveforms=waveforms,
            details={
                "solver_backend": stats.backend,
                "num_unknowns": circuit.num_unknowns,
                "newton_iterations": result.newton_iterations,
                "dt": dt,
                "t_stop": t_stop,
                "transient_stats": stats,
                "engine_statistics": engine_statistics,
            },
        )
