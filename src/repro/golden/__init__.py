"""Golden (reference) transistor-level cluster simulations.

The accuracy of every noise model in :mod:`repro.noise` is measured against
the full transistor-level simulation provided here, in the same way the
paper's tables report errors against ELDO(TM).
"""

from .cluster_sim import GoldenClusterAnalysis, build_golden_cluster_circuit

__all__ = ["GoldenClusterAnalysis", "build_golden_cluster_circuit"]
