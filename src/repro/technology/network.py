"""Series/parallel pull-network algebra for static CMOS cells.

A static CMOS gate consists of a pull-down network of NMOS transistors
between the output and ground, and the *dual* pull-up network of PMOS
transistors between the output and the supply.  Describing the pull-down
network as a series/parallel expression is enough to

* generate the transistor-level netlist of the cell (including internal
  nodes of series stacks),
* evaluate the cell's logic function,
* derive the pull-up network by taking the dual of the expression, and
* compute sizing (series stacks are widened to preserve drive strength) and
  pin capacitance (how many gates each input drives).

The three node types are :class:`Leaf` (a single transistor driven by an
input pin), :class:`Series` and :class:`Parallel`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Sequence, Tuple

__all__ = ["PullNetwork", "Leaf", "Series", "Parallel"]


class PullNetwork:
    """Base class of pull-network expressions."""

    def conducts(self, inputs: Mapping[str, bool]) -> bool:
        """True when the network forms a conducting path for the given inputs.

        The input values are interpreted as "gate voltage is high"; for the
        pull-up (PMOS) network use :meth:`conducts_pmos`.
        """
        raise NotImplementedError

    def conducts_pmos(self, inputs: Mapping[str, bool]) -> bool:
        """Conduction of the same topology built from PMOS devices.

        A PMOS transistor conducts when its gate is *low*, so this simply
        evaluates the expression with inverted inputs.
        """
        inverted = {name: not value for name, value in inputs.items()}
        return self.conducts(inverted)

    def dual(self) -> "PullNetwork":
        """The series/parallel dual network (series <-> parallel)."""
        raise NotImplementedError

    def depth(self) -> int:
        """Maximum number of devices in series along any path."""
        raise NotImplementedError

    def inputs(self) -> List[str]:
        """Input pin names appearing in the expression (in first-seen order)."""
        seen: List[str] = []
        self._collect_inputs(seen)
        return seen

    def _collect_inputs(self, accumulator: List[str]) -> None:
        raise NotImplementedError

    def count_leaves(self) -> Dict[str, int]:
        """Number of transistors driven by each input pin."""
        counts: Dict[str, int] = {}
        self._count_leaves(counts)
        return counts

    def _count_leaves(self, counts: Dict[str, int]) -> None:
        raise NotImplementedError

    def build(
        self,
        add_transistor: Callable[[str, str, str], None],
        node_top: str,
        node_bottom: str,
        make_internal_node: Callable[[], str],
    ) -> None:
        """Instantiate the network's transistors between two nodes.

        ``add_transistor(input_pin, node_a, node_b)`` is called once per leaf;
        the caller decides polarity, sizing and naming.  ``make_internal_node``
        returns fresh internal node names for series stacks.
        """
        raise NotImplementedError

    # Convenience operators so expressions read naturally:
    # ``Leaf("A") & Leaf("B")`` is a series (AND-like) connection,
    # ``Leaf("A") | Leaf("B")`` is a parallel (OR-like) connection.
    def __and__(self, other: "PullNetwork") -> "PullNetwork":
        return Series([self, other])

    def __or__(self, other: "PullNetwork") -> "PullNetwork":
        return Parallel([self, other])


class Leaf(PullNetwork):
    """A single transistor controlled by the named input pin."""

    def __init__(self, input_name: str):
        self.input_name = input_name

    def conducts(self, inputs: Mapping[str, bool]) -> bool:
        try:
            return bool(inputs[self.input_name])
        except KeyError as exc:
            raise KeyError(f"missing value for input '{self.input_name}'") from exc

    def dual(self) -> "PullNetwork":
        return Leaf(self.input_name)

    def depth(self) -> int:
        return 1

    def _collect_inputs(self, accumulator: List[str]) -> None:
        if self.input_name not in accumulator:
            accumulator.append(self.input_name)

    def _count_leaves(self, counts: Dict[str, int]) -> None:
        counts[self.input_name] = counts.get(self.input_name, 0) + 1

    def build(self, add_transistor, node_top, node_bottom, make_internal_node) -> None:
        add_transistor(self.input_name, node_top, node_bottom)

    def __repr__(self) -> str:
        return f"Leaf({self.input_name!r})"


class Series(PullNetwork):
    """Series connection of sub-networks (conducts when *all* conduct)."""

    def __init__(self, children: Sequence[PullNetwork]):
        if len(children) < 2:
            raise ValueError("Series needs at least two children")
        # Flatten nested series for cleaner netlists and depth computation.
        flat: List[PullNetwork] = []
        for child in children:
            if isinstance(child, Series):
                flat.extend(child.children)
            else:
                flat.append(child)
        self.children = flat

    def conducts(self, inputs: Mapping[str, bool]) -> bool:
        return all(child.conducts(inputs) for child in self.children)

    def dual(self) -> "PullNetwork":
        return Parallel([child.dual() for child in self.children])

    def depth(self) -> int:
        return sum(child.depth() for child in self.children)

    def _collect_inputs(self, accumulator: List[str]) -> None:
        for child in self.children:
            child._collect_inputs(accumulator)

    def _count_leaves(self, counts: Dict[str, int]) -> None:
        for child in self.children:
            child._count_leaves(counts)

    def build(self, add_transistor, node_top, node_bottom, make_internal_node) -> None:
        nodes = [node_top]
        for _ in range(len(self.children) - 1):
            nodes.append(make_internal_node())
        nodes.append(node_bottom)
        for child, (upper, lower) in zip(self.children, zip(nodes, nodes[1:])):
            child.build(add_transistor, upper, lower, make_internal_node)

    def __repr__(self) -> str:
        return "Series(" + ", ".join(repr(c) for c in self.children) + ")"


class Parallel(PullNetwork):
    """Parallel connection of sub-networks (conducts when *any* conducts)."""

    def __init__(self, children: Sequence[PullNetwork]):
        if len(children) < 2:
            raise ValueError("Parallel needs at least two children")
        flat: List[PullNetwork] = []
        for child in children:
            if isinstance(child, Parallel):
                flat.extend(child.children)
            else:
                flat.append(child)
        self.children = flat

    def conducts(self, inputs: Mapping[str, bool]) -> bool:
        return any(child.conducts(inputs) for child in self.children)

    def dual(self) -> "PullNetwork":
        return Series([child.dual() for child in self.children])

    def depth(self) -> int:
        return max(child.depth() for child in self.children)

    def _collect_inputs(self, accumulator: List[str]) -> None:
        for child in self.children:
            child._collect_inputs(accumulator)

    def _count_leaves(self, counts: Dict[str, int]) -> None:
        for child in self.children:
            child._count_leaves(counts)

    def build(self, add_transistor, node_top, node_bottom, make_internal_node) -> None:
        for child in self.children:
            child.build(add_transistor, node_top, node_bottom, make_internal_node)

    def __repr__(self) -> str:
        return "Parallel(" + ", ".join(repr(c) for c in self.children) + ")"
