"""Transistor-level standard-cell generators.

Each :class:`StandardCell` describes a static CMOS gate by its pull-down
network expression (see :mod:`repro.technology.network`); the pull-up network
is the series/parallel dual.  From that single description the cell can

* instantiate its transistors (and parasitic gate / diffusion capacitors)
  into a :class:`repro.circuit.Circuit`,
* evaluate its logic function,
* enumerate the quiescent input states that hold the output high or low and
  the input pins through which a noise glitch can propagate (the *noise
  arcs* used by the characterisation and analysis flows),
* estimate per-pin input capacitance.

Two-stage cells (BUF, AND2, OR2) add an output inverter after the first
stage, which exercises the characterisation flow on cells whose propagated
noise goes through two levels of non-linearity.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..circuit.netlist import Circuit
from .network import Leaf, Parallel, PullNetwork, Series
from .process import Technology

__all__ = ["NoiseArc", "StandardCell", "default_cell_set"]


@dataclass(frozen=True)
class NoiseArc:
    """A sensitised input-to-output noise propagation arc.

    Attributes
    ----------
    input_pin:
        Pin on which the incoming noise glitch arrives.
    side_inputs:
        Logic values of the other input pins that sensitise the arc.
    output_high:
        Quiescent logic level of the output in this state.
    glitch_rising:
        ``True`` when the disturbing glitch on ``input_pin`` rises from a low
        quiescent level, ``False`` when it falls from a high quiescent level.
    """

    input_pin: str
    side_inputs: Tuple[Tuple[str, bool], ...]
    output_high: bool
    glitch_rising: bool

    @property
    def side_inputs_dict(self) -> Dict[str, bool]:
        return dict(self.side_inputs)

    def input_state(self) -> Dict[str, bool]:
        """Full quiescent input state (noisy pin at its quiet value)."""
        state = dict(self.side_inputs)
        state[self.input_pin] = not self.glitch_rising
        return state

    def describe(self) -> str:
        side = ", ".join(f"{k}={int(v)}" for k, v in self.side_inputs)
        direction = "rising" if self.glitch_rising else "falling"
        level = "high" if self.output_high else "low"
        return (
            f"{direction} glitch on {self.input_pin} (side inputs: {side or 'none'}), "
            f"output quiet {level}"
        )


class StandardCell:
    """A static CMOS standard cell described by its pull-down network."""

    def __init__(
        self,
        name: str,
        pull_down: PullNetwork,
        *,
        strength: float = 1.0,
        output_pin: str = "Z",
        stage1_strength: float = 1.0,
        output_stage_inverter: bool = False,
        description: str = "",
    ):
        self.name = name
        self.pull_down = pull_down
        self.pull_up = pull_down.dual()
        self.strength = float(strength)
        self.stage1_strength = float(stage1_strength)
        self.output_pin = output_pin
        self.output_stage_inverter = output_stage_inverter
        self.description = description or name
        self.inputs: List[str] = pull_down.inputs()
        if not self.inputs:
            raise ValueError(f"cell {name} has no inputs")

    # ------------------------------------------------------------------ logic

    def logic(self, inputs: Mapping[str, bool]) -> bool:
        """Logic value of the output for the given input values."""
        first_stage = not self.pull_down.conducts(inputs)
        if self.output_stage_inverter:
            return not first_stage
        return first_stage

    def all_input_states(self) -> List[Dict[str, bool]]:
        """Every combination of logic values on the input pins."""
        states = []
        for values in itertools.product([False, True], repeat=len(self.inputs)):
            states.append(dict(zip(self.inputs, values)))
        return states

    def quiet_input_states(self, output_high: bool) -> List[Dict[str, bool]]:
        """All input states that hold the output at the requested level."""
        return [s for s in self.all_input_states() if self.logic(s) == output_high]

    def _holding_path_count(self, state: Mapping[str, bool]) -> int:
        """Number of conducting devices in the network that holds the output.

        Used as a proxy for holding strength when selecting the worst-case
        (weakest) quiescent state.
        """
        output_high = self.logic(state)
        if self.output_stage_inverter:
            # The output stage is an inverter: its holding strength is fixed,
            # so all states are equivalent; fall back to counting conducting
            # first-stage devices for determinism.
            network = self.pull_down if not output_high else self.pull_down
            counts = network.count_leaves()
            return sum(counts.values())
        network = self.pull_up if output_high else self.pull_down
        count = 0
        for pin, occurrences in network.count_leaves().items():
            conducting = (not state[pin]) if output_high else state[pin]
            if conducting:
                count += occurrences
        return count

    def worst_case_quiet_state(self, output_high: bool) -> Dict[str, bool]:
        """The quiescent input state with the weakest output holding network."""
        states = self.quiet_input_states(output_high)
        if not states:
            raise ValueError(
                f"cell {self.name} cannot hold its output {'high' if output_high else 'low'}"
            )
        return min(states, key=self._holding_path_count)

    def noise_arcs(self, output_high: Optional[bool] = None) -> List[NoiseArc]:
        """Sensitised arcs through which an input glitch disturbs the output.

        An arc exists for input pin ``X`` under side-input values ``S`` when
        flipping ``X`` flips the output.  The glitch direction is away from
        the pin's quiescent value (a pin quiet at 1 is disturbed by a falling
        glitch and vice versa).
        """
        arcs: List[NoiseArc] = []
        for state in self.all_input_states():
            quiet_output = self.logic(state)
            if output_high is not None and quiet_output != output_high:
                continue
            for pin in self.inputs:
                flipped = dict(state)
                flipped[pin] = not flipped[pin]
                if self.logic(flipped) != quiet_output:
                    side = tuple(sorted((k, v) for k, v in state.items() if k != pin))
                    arcs.append(
                        NoiseArc(
                            input_pin=pin,
                            side_inputs=side,
                            output_high=quiet_output,
                            glitch_rising=not state[pin],
                        )
                    )
        return arcs

    # ------------------------------------------------------------ transistors

    def _widths(self, technology: Technology) -> Tuple[float, float, float, float]:
        """(wn_stage1, wp_stage1, wn_out, wp_out) widths for this technology."""
        stage_strength = self.stage1_strength if self.output_stage_inverter else self.strength
        wn1 = technology.wn_unit * stage_strength * self.pull_down.depth()
        wp1 = technology.wp_unit * stage_strength * self.pull_up.depth()
        wn_out = technology.wn_unit * self.strength
        wp_out = technology.wp_unit * self.strength
        return wn1, wp1, wn_out, wp_out

    def instantiate(
        self,
        circuit: Circuit,
        instance: str,
        pin_nodes: Mapping[str, str],
        technology: Technology,
        *,
        vdd_node: str = "vdd",
        gnd_node: str = "0",
        add_parasitics: bool = True,
    ) -> None:
        """Add this cell's transistors (and parasitics) to ``circuit``.

        Parameters
        ----------
        circuit:
            Target circuit.
        instance:
            Instance name; all internal elements and nodes are prefixed with
            it, so the same cell can be instantiated many times.
        pin_nodes:
            Mapping from pin name (inputs and the output pin) to circuit node
            names.
        technology:
            Technology supplying device parameters and sizing.
        vdd_node / gnd_node:
            Supply node names in ``circuit``.
        add_parasitics:
            When ``True`` (default), explicit gate, overlap and diffusion
            capacitances are added; the MOSFET model itself is purely static.
        """
        for pin in [*self.inputs, self.output_pin]:
            if pin not in pin_nodes:
                raise KeyError(f"pin '{pin}' of cell {self.name} is not mapped to a node")

        wn1, wp1, wn_out, wp_out = self._widths(technology)
        internal_counter = itertools.count()
        device_counter = itertools.count()

        def make_internal_node(prefix: str):
            def _make() -> str:
                return f"{instance}.{prefix}{next(internal_counter)}"
            return _make

        created_mosfets = []

        def add_fet(polarity: str, gate_node: str, a: str, b: str, width: float):
            params = technology.nmos if polarity == "n" else technology.pmos
            name = f"{instance}.M{polarity.upper()}{next(device_counter)}"
            fet = circuit.add_mosfet(
                name,
                drain=a,
                gate=gate_node,
                source=b,
                params=params,
                w=width,
                l=technology.l_drawn,
                bulk=gnd_node if polarity == "n" else vdd_node,
                model=technology.mosfet_model,
            )
            created_mosfets.append(fet)
            return fet

        first_stage_output = (
            f"{instance}.Y" if self.output_stage_inverter else pin_nodes[self.output_pin]
        )

        # Pull-down network: output (top) -> ground (bottom).
        self.pull_down.build(
            lambda pin, top, bottom: add_fet("n", pin_nodes[pin], top, bottom, wn1),
            node_top=first_stage_output,
            node_bottom=gnd_node,
            make_internal_node=make_internal_node("n"),
        )
        # Pull-up network: vdd (top) -> output (bottom).
        self.pull_up.build(
            lambda pin, top, bottom: add_fet("p", pin_nodes[pin], top, bottom, wp1),
            node_top=vdd_node,
            node_bottom=first_stage_output,
            make_internal_node=make_internal_node("p"),
        )

        if self.output_stage_inverter:
            add_fet("n", first_stage_output, pin_nodes[self.output_pin], gnd_node, wn_out)
            add_fet("p", first_stage_output, vdd_node, pin_nodes[self.output_pin], wp_out)

        if not add_parasitics:
            return

        # Parasitic capacitances: per-device gate cap (gate to ground),
        # gate-drain overlap (Miller) cap, and diffusion caps on the
        # non-supply source/drain nodes.
        cap_counter = itertools.count()
        supply_nodes = {
            Circuit.canonical_node_name(vdd_node),
            Circuit.canonical_node_name(gnd_node),
            "0",
        }

        def add_cap(a: str, b: str, value: float):
            if value <= 0.0:
                return
            circuit.add_capacitor(f"{instance}.C{next(cap_counter)}", a, b, value)

        for fet in created_mosfets:
            add_cap(fet.gate, gnd_node, fet.gate_capacitance())
            add_cap(fet.gate, fet.drain, fet.overlap_capacitance())
            for terminal in (fet.drain, fet.source):
                if Circuit.canonical_node_name(terminal) not in supply_nodes:
                    add_cap(terminal, gnd_node, fet.diffusion_capacitance())

    # --------------------------------------------------------------- estimates

    def input_capacitance(self, technology: Technology, pin: Optional[str] = None) -> float:
        """Estimated input capacitance of ``pin`` (or the largest pin).

        The estimate sums the gate capacitances of all transistors driven by
        the pin (NMOS in the pull-down, PMOS in the pull-up), using the same
        sizing rules as :meth:`instantiate`.
        """
        wn1, wp1, _, _ = self._widths(technology)
        n_counts = self.pull_down.count_leaves()
        p_counts = self.pull_up.count_leaves()
        l = technology.l_drawn

        def pin_cap(p: str) -> float:
            n_gate = n_counts.get(p, 0) * (
                technology.nmos.cox * wn1 * l + 2.0 * technology.nmos.cgdo * wn1
            )
            p_gate = p_counts.get(p, 0) * (
                technology.pmos.cox * wp1 * l + 2.0 * technology.pmos.cgdo * wp1
            )
            return n_gate + p_gate

        if pin is not None:
            if pin not in self.inputs:
                raise KeyError(f"cell {self.name} has no input pin '{pin}'")
            return pin_cap(pin)
        return max(pin_cap(p) for p in self.inputs)

    def output_diffusion_capacitance(self, technology: Technology) -> float:
        """Estimated diffusion capacitance loading the output pin."""
        wn1, wp1, wn_out, wp_out = self._widths(technology)
        if self.output_stage_inverter:
            wn, wp = wn_out, wp_out
            n_at_output = p_at_output = 1
        else:
            wn, wp = wn1, wp1
            # Devices whose drain connects to the output: the top level of the
            # pull-down and the bottom level of the pull-up.
            n_at_output = len(self.pull_down.children) if hasattr(self.pull_down, "children") else 1
            p_at_output = len(self.pull_up.children) if hasattr(self.pull_up, "children") else 1
        ld_n = 2.5 * technology.l_drawn
        ld_p = 2.5 * technology.l_drawn
        cn = technology.nmos.cj * wn * ld_n + technology.nmos.cjsw * 2.0 * (wn + ld_n)
        cp = technology.pmos.cj * wp * ld_p + technology.pmos.cjsw * 2.0 * (wp + ld_p)
        return n_at_output * cn + p_at_output * cp

    def __repr__(self) -> str:
        return f"StandardCell({self.name}, inputs={self.inputs}, strength={self.strength})"


# ---------------------------------------------------------------------------
# The default cell set
# ---------------------------------------------------------------------------

def _inv(strength: float) -> StandardCell:
    return StandardCell(
        f"INV_X{_fmt(strength)}",
        Leaf("A"),
        strength=strength,
        description="inverter",
    )


def _buf(strength: float) -> StandardCell:
    return StandardCell(
        f"BUF_X{_fmt(strength)}",
        Leaf("A"),
        strength=strength,
        output_stage_inverter=True,
        description="non-inverting buffer (two stages)",
    )


def _nand(n_inputs: int, strength: float) -> StandardCell:
    pins = ["A", "B", "C", "D"][:n_inputs]
    return StandardCell(
        f"NAND{n_inputs}_X{_fmt(strength)}",
        Series([Leaf(p) for p in pins]),
        strength=strength,
        description=f"{n_inputs}-input NAND",
    )


def _nor(n_inputs: int, strength: float) -> StandardCell:
    pins = ["A", "B", "C", "D"][:n_inputs]
    return StandardCell(
        f"NOR{n_inputs}_X{_fmt(strength)}",
        Parallel([Leaf(p) for p in pins]),
        strength=strength,
        description=f"{n_inputs}-input NOR",
    )


def _aoi21(strength: float) -> StandardCell:
    # Z = not(A*B + C): pull-down = (A series B) parallel C
    return StandardCell(
        f"AOI21_X{_fmt(strength)}",
        Parallel([Series([Leaf("A"), Leaf("B")]), Leaf("C")]),
        strength=strength,
        description="AND-OR-invert (2-1)",
    )


def _oai21(strength: float) -> StandardCell:
    # Z = not((A+B) * C): pull-down = (A parallel B) series C
    return StandardCell(
        f"OAI21_X{_fmt(strength)}",
        Series([Parallel([Leaf("A"), Leaf("B")]), Leaf("C")]),
        strength=strength,
        description="OR-AND-invert (2-1)",
    )


def _and2(strength: float) -> StandardCell:
    return StandardCell(
        f"AND2_X{_fmt(strength)}",
        Series([Leaf("A"), Leaf("B")]),
        strength=strength,
        output_stage_inverter=True,
        description="2-input AND (NAND + inverter)",
    )


def _or2(strength: float) -> StandardCell:
    return StandardCell(
        f"OR2_X{_fmt(strength)}",
        Parallel([Leaf("A"), Leaf("B")]),
        strength=strength,
        output_stage_inverter=True,
        description="2-input OR (NOR + inverter)",
    )


def _fmt(strength: float) -> str:
    if float(strength).is_integer():
        return str(int(strength))
    return str(strength).replace(".", "p")


def default_cell_set() -> List[StandardCell]:
    """The standard-cell set used to build the default libraries."""
    cells: List[StandardCell] = []
    for strength in (1, 2, 4):
        cells.append(_inv(strength))
    for strength in (1, 2):
        cells.append(_nand(2, strength))
        cells.append(_nor(2, strength))
    cells.append(_nand(3, 1))
    cells.append(_nor(3, 1))
    cells.append(_aoi21(1))
    cells.append(_oai21(1))
    cells.append(_buf(2))
    cells.append(_and2(1))
    cells.append(_or2(1))
    return cells
