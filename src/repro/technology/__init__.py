"""Process technologies and transistor-level standard cells.

This package is the stand-in for the proprietary foundry libraries the paper
uses: it provides parameterised 0.13 um and 90 nm technology presets and a
set of standard cells generated at the transistor level from series/parallel
pull-network descriptions.
"""

from .cells import NoiseArc, StandardCell, default_cell_set
from .library import CellLibrary, build_default_library
from .network import Leaf, Parallel, PullNetwork, Series
from .process import (
    MetalLayer,
    PROCESS_CORNERS,
    ProcessCorner,
    TECHNOLOGIES,
    Technology,
    apply_corner,
    cmos130,
    cmos90,
    corner_names,
    get_corner,
    get_technology,
)

__all__ = [
    "Technology",
    "MetalLayer",
    "ProcessCorner",
    "PROCESS_CORNERS",
    "apply_corner",
    "corner_names",
    "get_corner",
    "cmos130",
    "cmos90",
    "get_technology",
    "TECHNOLOGIES",
    "StandardCell",
    "NoiseArc",
    "default_cell_set",
    "CellLibrary",
    "build_default_library",
    "PullNetwork",
    "Leaf",
    "Series",
    "Parallel",
]
