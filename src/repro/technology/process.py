"""Process technology descriptions.

A :class:`Technology` bundles everything the rest of the library needs to
know about a CMOS process node:

* supply voltage and nominal channel length;
* NMOS / PMOS model parameters (:class:`repro.circuit.MOSFETParams`);
* default transistor sizing rules for standard cells;
* back-end-of-line metal layer parasitics (sheet resistance, ground and
  coupling capacitance per unit length).

Two presets are provided, mirroring the technologies used in the paper's
experiments: a 0.13 um node (``cmos130``) and a 90 nm node (``cmos90``).
The parameter values are public ball-park numbers for those nodes -- the
foundry data used by the authors is proprietary -- chosen so that gate drive
currents, cell input capacitances and wire parasitics land in realistic
ranges.  The *relative* comparison between the golden simulation, the linear
superposition baseline and the macromodel does not depend on these absolute
values because all three methods share the same devices and wires.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..circuit.mosfet import MOSFETParams
from ..units import fF, um

__all__ = [
    "MetalLayer",
    "Technology",
    "ProcessCorner",
    "PROCESS_CORNERS",
    "cmos130",
    "cmos90",
    "get_technology",
    "get_corner",
    "corner_names",
    "apply_corner",
    "TECHNOLOGIES",
]


@dataclass(frozen=True)
class MetalLayer:
    """Parasitic coefficients of a routing metal layer.

    Attributes
    ----------
    name:
        Layer name (``"M4"``).
    index:
        Layer number, 1 = lowest routing layer.
    resistance_per_um:
        Wire resistance per micrometre of length at minimum width (ohm/um).
    ground_cap_per_um:
        Capacitance to the substrate / orthogonal layers per micrometre (F/um,
        expressed in farads per micrometre of wire length).
    coupling_cap_per_um:
        Sidewall coupling capacitance to an adjacent minimum-spaced parallel
        wire, per micrometre of common run length (F/um).
    min_width_um / min_spacing_um:
        Minimum drawn width and spacing in micrometres (informational).
    """

    name: str
    index: int
    resistance_per_um: float
    ground_cap_per_um: float
    coupling_cap_per_um: float
    min_width_um: float = 0.2
    min_spacing_um: float = 0.2

    def coupling_cap(self, length_um: float, spacing_factor: float = 1.0) -> float:
        """Total coupling capacitance for ``length_um`` of parallel run.

        ``spacing_factor`` scales the capacitance for non-minimum spacing
        (2.0 means twice the minimum spacing, roughly halving the coupling).
        """
        if spacing_factor <= 0:
            raise ValueError("spacing_factor must be positive")
        return self.coupling_cap_per_um * length_um / spacing_factor

    def ground_cap(self, length_um: float) -> float:
        """Total ground capacitance for ``length_um`` of wire."""
        return self.ground_cap_per_um * length_um

    def resistance(self, length_um: float) -> float:
        """Total series resistance for ``length_um`` of wire."""
        return self.resistance_per_um * length_um


@dataclass(frozen=True)
class Technology:
    """A CMOS process node with devices, sizing rules and metal stack."""

    name: str
    vdd: float
    nmos: MOSFETParams
    pmos: MOSFETParams
    #: Default width of the unit (X1) NMOS in a standard cell (metres).
    wn_unit: float
    #: Default width of the unit (X1) PMOS in a standard cell (metres).
    wp_unit: float
    #: Drawn channel length used by the standard cells (metres).
    l_drawn: float
    #: Metal stack indexed by layer number.
    metal_layers: Dict[int, MetalLayer] = field(default_factory=dict)
    #: MOSFET static model to use ("level1" or "alpha").
    mosfet_model: str = "level1"

    def layer(self, index: int) -> MetalLayer:
        """Return the metal layer with the given index."""
        try:
            return self.metal_layers[index]
        except KeyError as exc:
            raise KeyError(
                f"technology '{self.name}' has no metal layer {index} "
                f"(available: {sorted(self.metal_layers)})"
            ) from exc

    @property
    def half_vdd(self) -> float:
        return 0.5 * self.vdd

    def characterization_voltage_range(self, margin: float = 0.2) -> tuple:
        """Voltage sweep range used for cell characterisation.

        The paper sweeps ``Vin`` and ``Vout`` "across the characterization
        range corresponding to the typical voltage swing of the given
        technology"; a symmetric margin beyond the rails covers overshoot.
        """
        return (-margin * self.vdd, (1.0 + margin) * self.vdd)

    def __str__(self) -> str:
        return f"Technology({self.name}, VDD={self.vdd} V, L={self.l_drawn * 1e9:.0f} nm)"


def _standard_metal_stack(resistance_scale: float, cap_scale: float) -> Dict[int, MetalLayer]:
    """Build a typical 6-layer metal stack.

    Lower layers are thinner (higher resistance, higher coupling); the top
    layers are thick and mostly used for power routing.
    """
    stack: Dict[int, MetalLayer] = {}
    base = [
        # index, r (ohm/um), cg (fF/um), cc (fF/um), width, spacing
        (1, 0.80, 0.035, 0.085, 0.16, 0.16),
        (2, 0.60, 0.032, 0.080, 0.20, 0.20),
        (3, 0.50, 0.030, 0.080, 0.20, 0.20),
        (4, 0.40, 0.028, 0.078, 0.20, 0.21),
        (5, 0.25, 0.030, 0.070, 0.28, 0.28),
        (6, 0.12, 0.033, 0.060, 0.40, 0.40),
    ]
    for index, r, cg, cc, w, s in base:
        stack[index] = MetalLayer(
            name=f"M{index}",
            index=index,
            resistance_per_um=r * resistance_scale,
            ground_cap_per_um=fF(cg) * cap_scale,
            coupling_cap_per_um=fF(cc) * cap_scale,
            min_width_um=w,
            min_spacing_um=s,
        )
    return stack


def cmos130() -> Technology:
    """A generic 0.13 um CMOS technology (VDD = 1.2 V)."""
    l_drawn = um(0.13)
    nmos = MOSFETParams(
        polarity="n",
        vto=0.34,
        kp=3.2e-4,
        lambda_=0.06,
        alpha=2.0,
        cox=1.2e-2,
        cj=1.0e-3,
        cjsw=1.0e-10,
        cgdo=3.0e-10,
        l_nominal=l_drawn,
    )
    pmos = MOSFETParams(
        polarity="p",
        vto=0.36,
        kp=1.3e-4,
        lambda_=0.09,
        alpha=2.0,
        cox=1.2e-2,
        cj=1.1e-3,
        cjsw=1.1e-10,
        cgdo=3.0e-10,
        l_nominal=l_drawn,
    )
    return Technology(
        name="cmos130",
        vdd=1.2,
        nmos=nmos,
        pmos=pmos,
        wn_unit=um(0.42),
        wp_unit=um(0.84),
        l_drawn=l_drawn,
        metal_layers=_standard_metal_stack(resistance_scale=1.0, cap_scale=1.0),
        mosfet_model="level1",
    )


def cmos90() -> Technology:
    """A generic 90 nm CMOS technology (VDD = 1.0 V).

    The alpha-power-law model (alpha < 2) captures the weaker gate-overdrive
    dependence of velocity-saturated short-channel devices.
    """
    l_drawn = um(0.10)
    nmos = MOSFETParams(
        polarity="n",
        vto=0.29,
        kp=3.8e-4,
        lambda_=0.09,
        alpha=1.45,
        vdsat_coeff=0.85,
        cox=1.45e-2,
        cj=1.1e-3,
        cjsw=1.0e-10,
        cgdo=3.2e-10,
        l_nominal=l_drawn,
    )
    pmos = MOSFETParams(
        polarity="p",
        vto=0.31,
        kp=1.7e-4,
        lambda_=0.12,
        alpha=1.55,
        vdsat_coeff=0.9,
        cox=1.45e-2,
        cj=1.2e-3,
        cjsw=1.1e-10,
        cgdo=3.2e-10,
        l_nominal=l_drawn,
    )
    return Technology(
        name="cmos90",
        vdd=1.0,
        nmos=nmos,
        pmos=pmos,
        wn_unit=um(0.30),
        wp_unit=um(0.60),
        l_drawn=l_drawn,
        metal_layers=_standard_metal_stack(resistance_scale=1.35, cap_scale=0.85),
        mosfet_model="alpha",
    )


TECHNOLOGIES = {
    "cmos130": cmos130,
    "cmos90": cmos90,
}


def get_technology(name: str) -> Technology:
    """Look up a technology preset by name (``"cmos130"`` or ``"cmos90"``)."""
    try:
        factory = TECHNOLOGIES[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown technology '{name}' (available: {sorted(TECHNOLOGIES)})"
        ) from exc
    return factory()


# --------------------------------------------------------------------------
# Process corners
# --------------------------------------------------------------------------

#: Nominal characterisation temperature (degrees Celsius).
NOMINAL_TEMPERATURE_C = 25.0

#: Mobility temperature exponent: kp ~ (T/T0)^-1.5 (Kelvin ratio).
_MOBILITY_TEMP_EXPONENT = -1.5

#: Threshold-voltage temperature coefficient (V per degree C, magnitude).
_VTO_TEMP_COEFF = 1.0e-3


@dataclass(frozen=True)
class ProcessCorner:
    """One named process/voltage/temperature corner.

    ``nmos_speed`` / ``pmos_speed`` scale the device transconductance
    parameter ``kp`` (fast > 1); ``nmos_vto_shift`` / ``pmos_vto_shift`` are
    threshold shifts in volts (fast corners have *lower* thresholds, so the
    shift is negative for a fast device).  ``supply_scale`` derates VDD
    (slow corners pair with a low supply, fast corners with a high one) and
    ``temperature_c`` is the corner's junction temperature; mobility and
    threshold are derated from :data:`NOMINAL_TEMPERATURE_C` accordingly.
    """

    name: str
    nmos_speed: float = 1.0
    pmos_speed: float = 1.0
    nmos_vto_shift: float = 0.0
    pmos_vto_shift: float = 0.0
    supply_scale: float = 1.0
    temperature_c: float = NOMINAL_TEMPERATURE_C

    def __post_init__(self):
        if not self.name:
            raise ValueError("corner name must be non-empty")
        for label in ("nmos_speed", "pmos_speed", "supply_scale"):
            if getattr(self, label) <= 0:
                raise ValueError(f"corner {self.name!r}: {label} must be positive")


#: The canonical five device corners plus their conventional supply and
#: temperature pairing (fast corners: high VDD, cold; slow: low VDD, hot).
PROCESS_CORNERS: Dict[str, ProcessCorner] = {
    corner.name: corner
    for corner in (
        ProcessCorner("tt"),
        ProcessCorner(
            "ff",
            nmos_speed=1.15,
            pmos_speed=1.15,
            nmos_vto_shift=-0.03,
            pmos_vto_shift=-0.03,
            supply_scale=1.10,
            temperature_c=0.0,
        ),
        ProcessCorner(
            "ss",
            nmos_speed=0.85,
            pmos_speed=0.85,
            nmos_vto_shift=+0.03,
            pmos_vto_shift=+0.03,
            supply_scale=0.90,
            temperature_c=125.0,
        ),
        ProcessCorner(
            "fs",
            nmos_speed=1.15,
            pmos_speed=0.85,
            nmos_vto_shift=-0.03,
            pmos_vto_shift=+0.03,
        ),
        ProcessCorner(
            "sf",
            nmos_speed=0.85,
            pmos_speed=1.15,
            nmos_vto_shift=+0.03,
            pmos_vto_shift=-0.03,
        ),
    )
}


def corner_names() -> list:
    """Names of the built-in process corners, nominal first."""
    return list(PROCESS_CORNERS)


def get_corner(corner) -> ProcessCorner:
    """Resolve a corner given by name or as a :class:`ProcessCorner`."""
    if isinstance(corner, ProcessCorner):
        return corner
    try:
        return PROCESS_CORNERS[corner]
    except KeyError as exc:
        raise KeyError(
            f"unknown process corner {corner!r} (available: {sorted(PROCESS_CORNERS)})"
        ) from exc


def _derate_device(
    params: MOSFETParams, speed: float, vto_shift: float, temperature_c: float
) -> MOSFETParams:
    """Apply corner speed/threshold scaling plus temperature derating."""
    t_ratio = (temperature_c + 273.15) / (NOMINAL_TEMPERATURE_C + 273.15)
    kp = params.kp * speed * t_ratio ** _MOBILITY_TEMP_EXPONENT
    vto = params.vto + vto_shift - _VTO_TEMP_COEFF * (temperature_c - NOMINAL_TEMPERATURE_C)
    if vto <= 0.0:
        raise ValueError(
            f"corner derating drives the {params.polarity}-device threshold to "
            f"{vto:.3f} V; corners must keep devices in enhancement mode"
        )
    return params.scaled(kp=kp, vto=vto)


def apply_corner(
    technology: Technology,
    corner,
    *,
    temperature_c: Optional[float] = None,
) -> Technology:
    """Derive the technology at a process corner.

    ``corner`` is a name from :data:`PROCESS_CORNERS` or a custom
    :class:`ProcessCorner`.  ``temperature_c`` overrides the corner's own
    temperature.  The derived technology is renamed ``"<base>@<corner>"``
    -- plus a ``@<T>C`` suffix when the temperature is overridden -- so
    characterisation caches keyed by technology name never mix corner or
    temperature variants.
    """
    corner = get_corner(corner)
    temperature = corner.temperature_c if temperature_c is None else temperature_c
    name = f"{technology.name}@{corner.name}"
    if temperature != corner.temperature_c:
        name += f"@{temperature:g}C"
    derived = dataclasses.replace(
        technology,
        name=name,
        vdd=technology.vdd * corner.supply_scale,
        nmos=_derate_device(
            technology.nmos, corner.nmos_speed, corner.nmos_vto_shift, temperature
        ),
        pmos=_derate_device(
            technology.pmos, corner.pmos_speed, corner.pmos_vto_shift, temperature
        ),
    )
    return derived
