"""The standard-cell library container.

A :class:`CellLibrary` couples a :class:`~repro.technology.process.Technology`
with a set of :class:`~repro.technology.cells.StandardCell` definitions and
provides the lookups the characterisation and analysis flows need.  The
characterised data (VCCS load surfaces, Thevenin driver models,
noise-propagation tables, noise rejection curves) is attached to the library
by :mod:`repro.characterization` and cached per (cell, arc) key.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional

from .cells import StandardCell, default_cell_set
from .process import Technology, get_technology

__all__ = ["CellLibrary", "build_default_library"]


class CellLibrary:
    """A named collection of standard cells in a given technology."""

    def __init__(self, name: str, technology: Technology, cells: Optional[Iterable[StandardCell]] = None):
        self.name = name
        self.technology = technology
        self._cells: Dict[str, StandardCell] = {}
        #: Characterised data attached by repro.characterization; keyed by an
        #: arbitrary (kind, cell, ...) tuple chosen by the characteriser.
        self.characterization_cache: Dict = {}
        for cell in cells or []:
            self.add_cell(cell)

    # ------------------------------------------------------------------ cells

    def add_cell(self, cell: StandardCell) -> StandardCell:
        if cell.name in self._cells:
            raise ValueError(f"library '{self.name}' already contains cell '{cell.name}'")
        self._cells[cell.name] = cell
        return cell

    def cell(self, name: str) -> StandardCell:
        try:
            return self._cells[name]
        except KeyError as exc:
            raise KeyError(
                f"library '{self.name}' has no cell '{name}' "
                f"(available: {sorted(self._cells)})"
            ) from exc

    def __getitem__(self, name: str) -> StandardCell:
        return self.cell(name)

    def __contains__(self, name: str) -> bool:
        return name in self._cells

    def __iter__(self) -> Iterator[StandardCell]:
        return iter(self._cells.values())

    def __len__(self) -> int:
        return len(self._cells)

    @property
    def cell_names(self) -> List[str]:
        return sorted(self._cells)

    def cells_matching(self, prefix: str) -> List[StandardCell]:
        """All cells whose name starts with ``prefix`` (e.g. ``"NAND2"``)."""
        return [c for name, c in sorted(self._cells.items()) if name.startswith(prefix)]

    # ------------------------------------------------------------------ summary

    def summary(self) -> str:
        lines = [f"CellLibrary '{self.name}' ({self.technology.name}, VDD={self.technology.vdd} V)"]
        for name in self.cell_names:
            cell = self._cells[name]
            cin_ff = cell.input_capacitance(self.technology) / 1e-15
            lines.append(
                f"  {name:12s} inputs={','.join(cell.inputs):8s} "
                f"Cin~{cin_ff:.2f} fF  {cell.description}"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"CellLibrary({self.name!r}, {len(self)} cells, {self.technology.name})"


def build_default_library(technology: Optional[Technology] = None, name: Optional[str] = None) -> CellLibrary:
    """Build the default cell library for a technology.

    ``technology`` may be a :class:`Technology`, a preset name (``"cmos130"``
    or ``"cmos90"``) or ``None`` (defaults to ``cmos130``).
    """
    if technology is None:
        technology = get_technology("cmos130")
    elif isinstance(technology, str):
        technology = get_technology(technology)
    library_name = name or f"stdcells_{technology.name}"
    return CellLibrary(library_name, technology, default_cell_set())
