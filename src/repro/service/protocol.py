"""Line-delimited JSON protocol of the analysis service.

One message per line, UTF-8 JSON, newline-terminated -- trivially
debuggable with ``nc``/``socat`` and implementable from any language.
Payload values (cluster specs, reports) ride inside messages in the
:mod:`repro.api.wire` format, so protocol framing and value encoding are
versioned independently (``protocol_version`` vs ``schema_version``).

Message types
-------------

Server greeting (sent on connect)::

    {"type": "hello", "protocol_version": 1, "schema_version": 1,
     "server_version": "0.3.0"}

Client requests and their responses:

``{"type": "ping"}``
    -> ``{"type": "pong"}``
``{"type": "status"}``
    -> ``{"type": "status_report", ...}`` (see API.md for the fields)
``{"type": "submit", "job": {...}}``
    -> ``{"type": "ack", "job_id": ...}``, then one
    ``{"type": "progress", ...}`` per finished cluster, then
    ``{"type": "result", "job_id": ..., "report": <session_report>, ...}``.
``{"type": "shutdown"}``
    -> ``{"type": "shutdown_ack"}``; the server then stops accepting work.

Any malformed or unserviceable request produces
``{"type": "error", "message": ...}`` without closing the connection.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, Optional

__all__ = [
    "MAX_MESSAGE_BYTES",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "dump_message",
    "parse_message",
    "read_message",
    "write_message",
]

#: Version of the framing + message vocabulary (not of payload encoding).
PROTOCOL_VERSION = 1

#: Upper bound on one message line.  Reports carry full waveforms, so lines
#: run far past asyncio's 64 KiB default stream limit; servers must pass
#: this as ``limit=`` when creating their streams.
MAX_MESSAGE_BYTES = 64 * 1024 * 1024


class ProtocolError(ValueError):
    """A message violates the line-delimited JSON protocol."""


def dump_message(message: Dict[str, Any]) -> bytes:
    """Serialise one message to its wire line (newline included)."""
    line = json.dumps(message, separators=(",", ":"), allow_nan=True)
    data = line.encode("utf-8") + b"\n"
    if len(data) > MAX_MESSAGE_BYTES:
        raise ProtocolError(
            f"message of {len(data)} bytes exceeds MAX_MESSAGE_BYTES "
            f"({MAX_MESSAGE_BYTES})"
        )
    return data


def parse_message(line: bytes) -> Dict[str, Any]:
    """Parse one received line into a message dict."""
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"malformed message line: {exc}") from exc
    if not isinstance(message, dict) or not isinstance(message.get("type"), str):
        raise ProtocolError("a message must be a JSON object with a string 'type'")
    return message


async def read_message(reader: asyncio.StreamReader) -> Optional[Dict[str, Any]]:
    """Read one message; ``None`` on a clean EOF."""
    try:
        line = await reader.readline()
    except (ValueError, asyncio.LimitOverrunError) as exc:
        raise ProtocolError(f"message line exceeds the stream limit: {exc}") from exc
    if not line:
        return None
    if not line.endswith(b"\n"):
        # readline() returns a partial tail when the peer dies mid-line.
        raise ProtocolError("connection closed mid-message")
    return parse_message(line)


async def write_message(writer: asyncio.StreamWriter, message: Dict[str, Any]) -> None:
    """Send one message and drain the transport."""
    writer.write(dump_message(message))
    await writer.drain()
