"""Analysis as a service: persistent daemon, job store and client.

The :class:`AnalysisServer` keeps characterised sessions, the persistent
cache and a worker pool alive across requests, fronting them with a
line-delimited JSON protocol (unix socket or localhost TCP).  Work is
deduplicated by cluster fingerprint -- the same SHA-256 content-hashing
scheme the characterisation disk cache uses, extended to cluster
specifications plus the :class:`~repro.api.AnalysisConfig` -- which is also
what makes ECO-style incremental re-analysis cheap: resubmitting a revised
design re-runs only the clusters whose fingerprints changed and merges the
rest from the result store, annotated ``reused`` / ``recomputed``.

The synchronous :class:`ServiceClient` drives the daemon from examples,
tests and CI; :func:`start_server_in_thread` hosts one in-process for
embedded use.
"""

from .client import ServiceClient, ServiceError, ServiceResult
from .fingerprint import (
    FINGERPRINT_VERSION,
    cluster_fingerprint,
    technology_library_fingerprint,
)
from .protocol import PROTOCOL_VERSION
from .server import AnalysisServer, ServiceHandle, start_server_in_thread

__all__ = [
    "AnalysisServer",
    "FINGERPRINT_VERSION",
    "PROTOCOL_VERSION",
    "ServiceClient",
    "ServiceError",
    "ServiceHandle",
    "ServiceResult",
    "cluster_fingerprint",
    "start_server_in_thread",
    "technology_library_fingerprint",
]
