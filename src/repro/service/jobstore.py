"""Fingerprint-keyed result store with dedup accounting.

The store maps cluster fingerprints to **wire payloads** of completed
:class:`~repro.api.report.ClusterReport` objects -- never live objects, so
a stored result is immutable by construction and what a client receives on
a dedup hit is byte-for-byte what the first computation produced.  Stored
payloads are provenance-free; ``reused`` / ``recomputed`` is an attribute
of a *response*, stamped at merge time by the server.

Only successful reports are stored: an errored cluster must be recomputed
on resubmission (its failure may have been environmental), so errors can
never be served from cache.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional

__all__ = ["JobStore"]


class JobStore:
    """Thread-safe fingerprint -> stored cluster-report payload map."""

    def __init__(self, max_entries: int = 100_000):
        if max_entries < 1:
            raise ValueError(f"max_entries must be at least 1, got {max_entries}")
        self._lock = threading.Lock()
        self._results: Dict[str, Dict[str, Any]] = {}
        self._max_entries = max_entries
        self.dedup_hits = 0
        self.dedup_misses = 0

    def get(self, fingerprint: str) -> Optional[Dict[str, Any]]:
        """The stored payload for ``fingerprint``, counting hit or miss."""
        with self._lock:
            payload = self._results.get(fingerprint)
            if payload is None:
                self.dedup_misses += 1
            else:
                self.dedup_hits += 1
            return payload

    def peek_many(self, fingerprints: List[str]) -> Dict[str, bool]:
        """Presence map for an ECO diff, without touching the counters."""
        with self._lock:
            return {fp: fp in self._results for fp in fingerprints}

    def put(self, fingerprint: str, payload: Dict[str, Any]) -> None:
        """Store a completed report payload (FIFO-evicting at capacity)."""
        with self._lock:
            if fingerprint not in self._results and len(self._results) >= self._max_entries:
                self._results.pop(next(iter(self._results)))
            self._results[fingerprint] = payload

    def __len__(self) -> int:
        with self._lock:
            return len(self._results)

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            hits, misses = self.dedup_hits, self.dedup_misses
            lookups = hits + misses
            return {
                "entries": len(self._results),
                "hits": hits,
                "misses": misses,
                "hit_rate": (hits / lookups) if lookups else 0.0,
            }
