"""The persistent analysis daemon.

:class:`AnalysisServer` is an asyncio server fronting the same worker-pool
machinery the scenario sweep runner uses
(:func:`repro.scenarios.runner.run_cluster_job` under a spawn
``ProcessPoolExecutor``), but long-lived: characterised sessions, the
persistent disk cache and the fingerprint-keyed result store survive across
jobs, connections and design revisions.

Execution path of one submitted cluster:

1. fingerprint the (library, spec, config) triple;
2. serve a stored result on a fingerprint hit -- ``reused``, the pool is
   never touched, and the payload is byte-identical to the first
   computation;
3. coalesce onto an identical job already in flight, if any;
4. otherwise run it on the pool -- ``recomputed``.  A pool-breaking worker
   death (segfault/OOM class) rebuilds the pool exactly once per break
   (generation-guarded, so concurrent victims don't over-count), retries
   the job up to ``max_retries`` times, and quarantines it into a
   structured error report after that.  Queued jobs are never lost: every
   submitted cluster produces either a stored result or an error report.

Fault-tolerance accounting reuses PR 7's
:class:`~repro.scenarios.report.SweepHealth` ledger, surfaced -- together
with queue depth, in-flight jobs, dedup and disk-cache hit rates -- by the
``status`` endpoint.
"""

from __future__ import annotations

import asyncio
import contextlib
import itertools
import multiprocessing
import threading
import time
from concurrent.futures import BrokenExecutor, Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Awaitable, Callable, Dict, List, Optional, Tuple, Union

from .. import __version__
from ..api import wire
from ..api.config import AnalysisConfig
from ..api.report import ClusterError, ClusterReport, SessionReport
from ..noise.cluster import NoiseClusterSpec
from ..scenarios.report import SweepHealth
from ..scenarios.runner import ClusterJobPayload, run_cluster_job
from .fingerprint import cluster_fingerprint, technology_library_fingerprint
from .jobstore import JobStore
from .protocol import (
    MAX_MESSAGE_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    read_message,
    write_message,
)

__all__ = ["AnalysisServer", "ServiceHandle", "start_server_in_thread"]

_Send = Callable[[Dict[str, Any]], Awaitable[None]]


class AnalysisServer:
    """Persistent analysis daemon over localhost TCP or a unix socket.

    Parameters
    ----------
    config:
        Default :class:`AnalysisConfig` for jobs that don't carry their own.
    num_workers:
        Worker processes in the pool (spawn start method).  ``0`` runs jobs
        on a single in-process thread -- no pickling, no subprocesses; the
        mode unit tests use to prove a dedup hit never touches any pool.
    host, port:
        TCP endpoint (``port=0`` picks a free port).  Ignored when
        ``unix_path`` is given.
    unix_path:
        Path of a unix domain socket to listen on instead of TCP.
    max_retries:
        Pool-breaking failures one cluster may cause before it is
        quarantined into an error report.
    """

    def __init__(
        self,
        *,
        config: Optional[AnalysisConfig] = None,
        num_workers: int = 0,
        host: str = "127.0.0.1",
        port: int = 0,
        unix_path: Optional[str] = None,
        max_retries: int = 1,
        mp_start_method: str = "spawn",
    ):
        if num_workers < 0:
            raise ValueError(f"num_workers must be non-negative, got {num_workers}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be non-negative, got {max_retries}")
        self.default_config = config or AnalysisConfig()
        self.num_workers = num_workers
        self.host = host
        self.port = port
        self.unix_path = unix_path
        self.max_retries = max_retries
        self.mp_start_method = mp_start_method

        self.store = JobStore()
        self.health = SweepHealth()
        #: Aggregated worker cache-counter deltas (same channel as sweeps).
        self.cache_stats: Dict[str, int] = {}
        self.jobs_submitted = 0
        self.jobs_completed = 0
        self.jobs_failed = 0
        #: The bound address once running: ``(host, port)`` or the unix path.
        self.address: Optional[Union[Tuple[str, int], str]] = None

        self._job_ids = itertools.count(1)
        self._active_jobs = 0
        self._queue_depth = 0
        self._in_flight = 0
        self._pool_generation = 0
        self._executor: Optional[Executor] = None
        self._inflight_futures: Dict[str, "asyncio.Future[Dict[str, Any]]"] = {}
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._started_monotonic = 0.0

    # ------------------------------------------------------------------ pool

    def _make_executor(self) -> Executor:
        if self.num_workers <= 0:
            return ThreadPoolExecutor(max_workers=1, thread_name_prefix="repro-service")
        ctx = multiprocessing.get_context(self.mp_start_method)
        return ProcessPoolExecutor(max_workers=self.num_workers, mp_context=ctx)

    @staticmethod
    def _dispose_executor(executor: Optional[Executor]) -> None:
        """Tear an executor down without waiting on possibly-hung workers."""
        if executor is None:
            return
        processes = list((getattr(executor, "_processes", None) or {}).values())
        executor.shutdown(wait=False, cancel_futures=True)
        for process in processes:
            if process.is_alive():
                process.kill()
        for process in processes:
            process.join(timeout=5.0)

    async def _rebuild_pool(self, generation: int, cause: str) -> None:
        """Replace a broken pool exactly once per break.

        Every job in flight when a worker dies observes the same
        ``BrokenExecutor``; the generation guard makes sure only the first
        one counts the crash and pays for the rebuild -- the rest retry on
        the fresh pool.
        """
        async with self._pool_lock:
            if self._pool_generation != generation:
                return
            self._pool_generation += 1
            self.health.worker_crashes += 1
            self.health.pool_rebuilds += 1
            self.health.note(f"worker pool broke ({cause}); rebuilding")
            old = self._executor
            self._executor = self._make_executor()
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(None, self._dispose_executor, old)

    # ------------------------------------------------------------ job engine

    def _error_payload(self, label: str, spec: NoiseClusterSpec, cause: str) -> Dict[str, Any]:
        report = ClusterReport(
            label=label,
            spec=spec,
            results={},
            error=ClusterError(
                exception_type="WorkerCrash",
                message=cause,
                cause_chain=(f"WorkerCrash: {cause}",),
            ),
        )
        return report.to_json()

    @staticmethod
    def _payload_ok(payload: Dict[str, Any]) -> bool:
        """Whether a cluster-report wire payload carries no error (no decode)."""
        try:
            return payload["payload"]["fields"].get("error") is None
        except (KeyError, TypeError, AttributeError):
            return False

    async def _compute(
        self,
        label: str,
        spec: NoiseClusterSpec,
        technology: Any,
        config: AnalysisConfig,
    ) -> Dict[str, Any]:
        """Run one cluster on the pool, retrying across pool breaks."""
        job = ClusterJobPayload(label=label, technology=technology, spec=spec, config=config)
        loop = asyncio.get_running_loop()
        attempts = 0
        while True:
            generation = self._pool_generation
            self._queue_depth += 1
            try:
                await self._semaphore.acquire()
            finally:
                self._queue_depth -= 1
            self._in_flight += 1
            try:
                payload, delta = await loop.run_in_executor(
                    self._executor, run_cluster_job, job
                )
            except BrokenExecutor as exc:
                cause = f"{type(exc).__name__}: {exc}"
                await self._rebuild_pool(generation, cause)
                attempts += 1
                if attempts > self.max_retries:
                    self.health.quarantined.append(label)
                    self.health.note(
                        f"quarantined {label} after {attempts} pool-breaking "
                        f"attempts ({cause})"
                    )
                    return self._error_payload(label, spec, cause)
                self.health.retries += 1
                continue
            finally:
                self._in_flight -= 1
                self._semaphore.release()
            for key, value in delta.items():
                self.cache_stats[key] = self.cache_stats.get(key, 0) + value
            return payload

    async def _obtain(
        self,
        label: str,
        spec: NoiseClusterSpec,
        fingerprint: str,
        technology: Any,
        config: AnalysisConfig,
    ) -> Tuple[Dict[str, Any], str]:
        """Resolve one cluster job: store hit, in-flight coalesce or compute."""
        stored = self.store.get(fingerprint)
        if stored is not None:
            return stored, "reused"
        existing = self._inflight_futures.get(fingerprint)
        if existing is not None:
            return await asyncio.shield(existing), "reused"
        future: "asyncio.Future[Dict[str, Any]]" = asyncio.get_running_loop().create_future()
        self._inflight_futures[fingerprint] = future
        try:
            payload = await self._compute(label, spec, technology, config)
        except BaseException as exc:
            future.set_exception(exc)
            future.exception()  # mark retrieved: coalesced waiters get their own copy
            raise
        else:
            future.set_result(payload)
        finally:
            self._inflight_futures.pop(fingerprint, None)
        if self._payload_ok(payload):
            self.store.put(fingerprint, payload)
        return payload, "recomputed"

    # -------------------------------------------------------------- protocol

    def _hello_message(self) -> Dict[str, Any]:
        return {
            "type": "hello",
            "protocol_version": PROTOCOL_VERSION,
            "schema_version": wire.SCHEMA_VERSION,
            "server_version": __version__,
        }

    def _status_message(self) -> Dict[str, Any]:
        cache = dict(self.cache_stats)
        disk_lookups = cache.get("disk_hits", 0) + cache.get("disk_misses", 0)
        lost = self.jobs_submitted - self.jobs_completed - self.jobs_failed - self._active_jobs
        return {
            "type": "status_report",
            "protocol_version": PROTOCOL_VERSION,
            "schema_version": wire.SCHEMA_VERSION,
            "server_version": __version__,
            "num_workers": self.num_workers,
            "uptime_seconds": time.monotonic() - self._started_monotonic,
            "queue_depth": self._queue_depth,
            "in_flight": self._in_flight,
            "jobs": {
                "submitted": self.jobs_submitted,
                "completed": self.jobs_completed,
                "failed": self.jobs_failed,
                "active": self._active_jobs,
                "lost": lost,
            },
            "dedup": self.store.stats(),
            "cache_stats": cache,
            "cache_hit_rate": (
                cache.get("disk_hits", 0) / disk_lookups if disk_lookups else 0.0
            ),
            "health": self.health.to_dict(),
        }

    def _parse_job(
        self, job: Dict[str, Any]
    ) -> Tuple[str, Any, AnalysisConfig, List[Tuple[str, NoiseClusterSpec]]]:
        if not isinstance(job, dict):
            raise ProtocolError("'submit' requires a 'job' object")
        design_name = str(job.get("design_name", ""))
        technology = job.get("technology", "cmos130")
        if isinstance(technology, dict):
            technology = wire.decode(technology)
        if "config" in job and job["config"] is not None:
            config = wire.decode(job["config"])
            if not isinstance(config, AnalysisConfig):
                raise ProtocolError("job 'config' must decode to an AnalysisConfig")
        else:
            config = self.default_config
        # The service owns placement: one job occupies one worker slot.
        config = config.replace(max_workers=1)
        raw_clusters = job.get("clusters")
        if not isinstance(raw_clusters, list) or not raw_clusters:
            raise ProtocolError("job 'clusters' must be a non-empty list")
        clusters: List[Tuple[str, NoiseClusterSpec]] = []
        seen_labels = set()
        for entry in raw_clusters:
            if not isinstance(entry, dict) or "label" not in entry or "spec" not in entry:
                raise ProtocolError("each cluster entry needs 'label' and 'spec'")
            label = str(entry["label"])
            if label in seen_labels:
                raise ProtocolError(f"duplicate cluster label {label!r} in one job")
            seen_labels.add(label)
            spec = wire.decode(entry["spec"])
            if not isinstance(spec, NoiseClusterSpec):
                raise ProtocolError(
                    f"cluster {label!r} 'spec' must decode to a NoiseClusterSpec"
                )
            clusters.append((label, spec))
        return design_name, technology, config, clusters

    async def _handle_submit(self, message: Dict[str, Any], send: _Send) -> None:
        job_id = next(self._job_ids)
        self.jobs_submitted += 1
        self._active_jobs += 1
        try:
            design_name, technology, config, clusters = self._parse_job(
                message.get("job", {})
            )
            library_fp = technology_library_fingerprint(technology)
            entries = [
                (label, spec, cluster_fingerprint(spec, config, library_fingerprint=library_fp))
                for label, spec in clusters
            ]
            await send({"type": "ack", "job_id": job_id, "num_clusters": len(entries)})
            start = time.perf_counter()
            total = len(entries)
            completed = 0

            async def handle_one(
                label: str, spec: NoiseClusterSpec, fingerprint: str
            ) -> Tuple[str, Dict[str, Any], str]:
                nonlocal completed
                payload, provenance = await self._obtain(
                    label, spec, fingerprint, technology, config
                )
                completed += 1
                await send(
                    {
                        "type": "progress",
                        "job_id": job_id,
                        "label": label,
                        "provenance": provenance,
                        "completed": completed,
                        "total": total,
                    }
                )
                return label, payload, provenance

            outcomes = await asyncio.gather(
                *(handle_one(label, spec, fp) for label, spec, fp in entries)
            )
            reports: List[ClusterReport] = []
            reused: List[str] = []
            recomputed: List[str] = []
            failed: List[str] = []
            for label, payload, provenance in outcomes:
                # A fresh decode per response: the stored payload stays
                # immutable while each response's report object carries its
                # own merge-time provenance annotation.
                report = ClusterReport.from_json(payload)
                report.provenance = provenance
                (reused if provenance == "reused" else recomputed).append(label)
                if report.error is not None:
                    failed.append(label)
                reports.append(report)
            session_report = SessionReport(
                clusters=reports,
                methods=config.methods,
                total_runtime_seconds=time.perf_counter() - start,
                design_name=design_name,
            )
            self.jobs_completed += 1
            await send(
                {
                    "type": "result",
                    "job_id": job_id,
                    "report": session_report.to_json(),
                    "reused": reused,
                    "recomputed": recomputed,
                    "failed": failed,
                    "counters": {
                        "reused": len(reused),
                        "recomputed": len(recomputed),
                        "failed": len(failed),
                        "dedup": self.store.stats(),
                    },
                }
            )
        except (ProtocolError, wire.WireFormatError) as exc:
            self.jobs_failed += 1
            await send({"type": "error", "job_id": job_id, "message": str(exc)})
        except Exception as exc:  # the daemon must survive any one bad job
            self.jobs_failed += 1
            self.health.note(f"job {job_id} failed: {type(exc).__name__}: {exc}")
            await send(
                {
                    "type": "error",
                    "job_id": job_id,
                    "message": f"{type(exc).__name__}: {exc}",
                }
            )
        finally:
            self._active_jobs -= 1

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        send_lock = asyncio.Lock()

        async def send(message: Dict[str, Any]) -> None:
            async with send_lock:
                await write_message(writer, message)

        try:
            await send(self._hello_message())
            while True:
                try:
                    message = await read_message(reader)
                except ProtocolError as exc:
                    with contextlib.suppress(Exception):
                        await send({"type": "error", "message": str(exc)})
                    break
                if message is None:
                    break
                mtype = message["type"]
                if mtype == "ping":
                    await send({"type": "pong"})
                elif mtype == "status":
                    await send(self._status_message())
                elif mtype == "submit":
                    await self._handle_submit(message, send)
                elif mtype == "shutdown":
                    await send({"type": "shutdown_ack"})
                    if self._stop_event is not None:
                        self._stop_event.set()
                    break
                else:
                    await send(
                        {"type": "error", "message": f"unknown message type {mtype!r}"}
                    )
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            pass
        finally:
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    # ------------------------------------------------------------- lifecycle

    def request_stop(self) -> None:
        """Ask a running server to stop (safe from any thread)."""
        loop, event = self._loop, self._stop_event
        if loop is not None and event is not None and not loop.is_closed():
            loop.call_soon_threadsafe(event.set)

    async def run(self, *, ready: Optional[threading.Event] = None) -> None:
        """Serve until a ``shutdown`` message or :meth:`request_stop`."""
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        self._pool_lock = asyncio.Lock()
        self._semaphore = asyncio.Semaphore(max(1, self.num_workers))
        self._executor = self._make_executor()
        self._started_monotonic = time.monotonic()
        if self.unix_path is not None:
            server = await asyncio.start_unix_server(
                self._handle_connection, path=self.unix_path, limit=MAX_MESSAGE_BYTES
            )
            self.address = self.unix_path
        else:
            server = await asyncio.start_server(
                self._handle_connection,
                host=self.host,
                port=self.port,
                limit=MAX_MESSAGE_BYTES,
            )
            bound = server.sockets[0].getsockname()
            self.address = (bound[0], bound[1])
        try:
            if ready is not None:
                ready.set()
            await self._stop_event.wait()
            # Drain active jobs briefly so a shutdown right after a result
            # doesn't strand a sibling connection mid-job.
            deadline = time.monotonic() + 10.0
            while self._active_jobs and time.monotonic() < deadline:
                await asyncio.sleep(0.05)
        finally:
            server.close()
            with contextlib.suppress(Exception):
                await server.wait_closed()
            self._dispose_executor(self._executor)
            self._executor = None
            self._loop = None


@dataclass
class ServiceHandle:
    """A server running on a background thread, plus its stop switch."""

    server: AnalysisServer
    thread: threading.Thread

    @property
    def address(self) -> Union[Tuple[str, int], str]:
        assert self.server.address is not None
        return self.server.address

    def stop(self, timeout: float = 30.0) -> None:
        self.server.request_stop()
        self.thread.join(timeout)

    def __enter__(self) -> "ServiceHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def start_server_in_thread(
    server: Optional[AnalysisServer] = None, *, timeout: float = 120.0, **kwargs
) -> ServiceHandle:
    """Boot an :class:`AnalysisServer` on a daemon thread and wait for it.

    ``kwargs`` construct the server when one isn't supplied.  Returns once
    the socket is bound, so ``handle.address`` is immediately usable.
    """
    if server is None:
        server = AnalysisServer(**kwargs)
    elif kwargs:
        raise ValueError("pass either a server instance or constructor kwargs, not both")
    ready = threading.Event()
    failures: List[BaseException] = []

    def main() -> None:
        try:
            asyncio.run(server.run(ready=ready))
        except BaseException as exc:  # surfaced to the starter below
            failures.append(exc)
        finally:
            ready.set()

    thread = threading.Thread(target=main, name="repro-service", daemon=True)
    thread.start()
    if not ready.wait(timeout):
        server.request_stop()
        raise RuntimeError(f"analysis service did not start within {timeout}s")
    if failures:
        raise RuntimeError("analysis service failed to start") from failures[0]
    return ServiceHandle(server=server, thread=thread)
