"""Synchronous client of the analysis service.

Blocking socket client for the line-delimited JSON protocol -- what
examples, tests and CI drive the daemon with.  One client owns one
connection; requests on it are serial (submit streams progress until its
result arrives).
"""

from __future__ import annotations

import socket
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Tuple, Union

from ..api import wire
from ..api.config import AnalysisConfig
from ..api.report import SessionReport
from ..noise.cluster import NoiseClusterSpec
from .protocol import PROTOCOL_VERSION, ProtocolError, dump_message, parse_message

__all__ = ["ServiceClient", "ServiceError", "ServiceResult"]

#: ``(label, spec)`` pairs or a ``label -> spec`` mapping.
Clusters = Union[
    Mapping[str, NoiseClusterSpec], Iterable[Tuple[str, NoiseClusterSpec]]
]


class ServiceError(RuntimeError):
    """The server reported an error, or the connection broke."""


@dataclass
class ServiceResult:
    """Outcome of one submitted design revision."""

    job_id: int
    #: The merged report; each cluster's ``provenance`` is ``"reused"`` or
    #: ``"recomputed"``.
    report: SessionReport
    reused: List[str] = field(default_factory=list)
    recomputed: List[str] = field(default_factory=list)
    #: Labels whose analysis errored (their reports carry the ClusterError).
    failed: List[str] = field(default_factory=list)
    counters: Dict[str, Any] = field(default_factory=dict)


class ServiceClient:
    """Blocking client: ``ping`` / ``status`` / ``submit_design`` / ``shutdown``.

    ``address`` is a ``(host, port)`` tuple for TCP or a filesystem path
    for a unix socket -- exactly what ``AnalysisServer.address`` /
    ``ServiceHandle.address`` yields.
    """

    def __init__(
        self,
        address: Union[Tuple[str, int], str, Path],
        *,
        timeout: Optional[float] = 600.0,
    ):
        if isinstance(address, (str, Path)):
            self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._sock.settimeout(timeout)
            self._sock.connect(str(address))
        else:
            host, port = address
            self._sock = socket.create_connection((host, int(port)), timeout=timeout)
        self._file = self._sock.makefile("rwb")
        self.hello = self._read()
        if self.hello.get("type") != "hello":
            raise ServiceError(f"expected a hello greeting, got {self.hello!r}")
        if self.hello.get("protocol_version") != PROTOCOL_VERSION:
            raise ServiceError(
                f"protocol version mismatch: server speaks "
                f"{self.hello.get('protocol_version')!r}, client {PROTOCOL_VERSION}"
            )

    # ------------------------------------------------------------------ io

    def _send(self, message: Dict[str, Any]) -> None:
        self._file.write(dump_message(message))
        self._file.flush()

    def _read(self) -> Dict[str, Any]:
        line = self._file.readline()
        if not line:
            raise ServiceError("connection closed by the server")
        try:
            return parse_message(line)
        except ProtocolError as exc:
            raise ServiceError(str(exc)) from exc

    def _request(self, message: Dict[str, Any], expect: str) -> Dict[str, Any]:
        self._send(message)
        reply = self._read()
        if reply.get("type") == "error":
            raise ServiceError(reply.get("message", "unspecified server error"))
        if reply.get("type") != expect:
            raise ServiceError(f"expected {expect!r}, got {reply!r}")
        return reply

    # ------------------------------------------------------------- requests

    def ping(self) -> None:
        self._request({"type": "ping"}, "pong")

    def status(self) -> Dict[str, Any]:
        """The server's health telemetry (see API.md for the fields)."""
        return self._request({"type": "status"}, "status_report")

    def shutdown(self) -> None:
        """Ask the server to stop; the connection is closed afterwards."""
        self._request({"type": "shutdown"}, "shutdown_ack")

    def submit_design(
        self,
        clusters: Clusters,
        *,
        config: Optional[AnalysisConfig] = None,
        technology: Any = "cmos130",
        design_name: str = "",
        on_progress: Optional[Callable[[Dict[str, Any]], None]] = None,
    ) -> ServiceResult:
        """Submit one design revision and block until its merged report.

        ``clusters`` is the full revision -- every submit is a complete
        design; the server's fingerprint diff decides what actually runs.
        ``on_progress`` receives each per-cluster progress event as it
        streams in.
        """
        if isinstance(clusters, Mapping):
            pairs = list(clusters.items())
        else:
            pairs = list(clusters)
        job: Dict[str, Any] = {
            "design_name": design_name,
            "technology": (
                technology if isinstance(technology, str) else wire.encode(technology)
            ),
            "config": None if config is None else wire.encode(config),
            "clusters": [
                {"label": str(label), "spec": wire.encode(spec)}
                for label, spec in pairs
            ],
        }
        ack = self._request({"type": "submit", "job": job}, "ack")
        job_id = ack["job_id"]
        while True:
            message = self._read()
            mtype = message.get("type")
            if mtype == "progress":
                if on_progress is not None:
                    on_progress(message)
            elif mtype == "result":
                return ServiceResult(
                    job_id=job_id,
                    report=SessionReport.from_json(message["report"]),
                    reused=list(message.get("reused", [])),
                    recomputed=list(message.get("recomputed", [])),
                    failed=list(message.get("failed", [])),
                    counters=dict(message.get("counters", {})),
                )
            elif mtype == "error":
                raise ServiceError(message.get("message", "unspecified server error"))
            else:
                raise ServiceError(f"unexpected message during submit: {message!r}")

    def submit_design_stream(
        self,
        extractions: Iterable[Any],
        *,
        chunk_size: int = 64,
        config: Optional[AnalysisConfig] = None,
        technology: Any = "cmos130",
        design_name: str = "",
        on_progress: Optional[Callable[[Dict[str, Any]], None]] = None,
    ) -> ServiceResult:
        """Stream a full-chip extraction into the service, chunk by chunk.

        ``extractions`` is a lazy iterable of
        :class:`~repro.sna.extraction.ClusterExtraction` (e.g.
        ``StreamingClusterExtractor.extract(...)``) or of ``(label, spec)``
        pairs; clusters are submitted in chunks of ``chunk_size`` as the
        extractor discovers them, so neither client nor server ever holds
        the whole design.  Each chunk is a :meth:`submit_design` revision --
        the server's fingerprint store still deduplicates repeated clusters
        across chunks and revisions.  Returns one merged
        :class:`ServiceResult` (``job_id`` of the last chunk; int counters
        summed across chunks).
        """
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be at least 1, got {chunk_size}")
        merged: Optional[ServiceResult] = None
        chunk: List[Tuple[str, NoiseClusterSpec]] = []

        def flush() -> None:
            nonlocal merged
            if not chunk:
                return
            result = self.submit_design(
                list(chunk),
                config=config,
                technology=technology,
                design_name=design_name,
                on_progress=on_progress,
            )
            if merged is None:
                merged = result
            else:
                merged.job_id = result.job_id
                merged.report.clusters.extend(result.report.clusters)
                merged.report.total_runtime_seconds += result.report.total_runtime_seconds
                merged.reused.extend(result.reused)
                merged.recomputed.extend(result.recomputed)
                merged.failed.extend(result.failed)
                for key, value in result.counters.items():
                    if isinstance(value, int) and isinstance(merged.counters.get(key), int):
                        merged.counters[key] += value
                    else:
                        merged.counters[key] = value
            chunk.clear()

        for item in extractions:
            if isinstance(item, tuple):
                label, spec = item
                chunk.append((str(label), spec))
            else:
                chunk.append((item.spec.name, item.spec))
            if len(chunk) >= chunk_size:
                flush()
        flush()
        if merged is None:
            return ServiceResult(
                job_id=-1,
                report=SessionReport(
                    clusters=[],
                    methods=(),
                    total_runtime_seconds=0.0,
                    design_name=design_name,
                ),
            )
        return merged

    # ------------------------------------------------------------ lifecycle

    def close(self) -> None:
        for resource in (self._file, self._sock):
            try:
                resource.close()
            except OSError:
                pass

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
