"""Cluster job fingerprints: the service's dedup and ECO-diff identity.

A fingerprint is the SHA-256 content hash (the exact scheme of
:mod:`repro.characterization.diskcache`) of everything that determines a
cluster's analysis result:

* the **library fingerprint** -- technology parameters plus the structural
  definition of every cell, so a corner or Monte-Carlo variation can never
  collide with nominal;
* the **cluster specification** in wire-encoded form -- victim, aggressors,
  bus geometry, glitch timing;
* the **analysis configuration**, minus its execution-only fields
  (``max_workers``, ``cache_dir``): where a job *runs* must not change what
  it *is*, or a client with a different cache path would never dedup
  against the server's store.

Two jobs with equal fingerprints are bit-identical work by construction;
the server returns the stored report without touching the pool.  An ECO
revision changes the fingerprints of exactly the clusters whose inputs
changed, which is the entire diff algorithm.
"""

from __future__ import annotations

import dataclasses
from functools import lru_cache
from typing import Any

from ..api import wire
from ..api.config import AnalysisConfig
from ..characterization.diskcache import content_hash, library_fingerprint
from ..noise.cluster import NoiseClusterSpec
from ..technology.library import build_default_library
from ..technology.process import Technology

__all__ = [
    "FINGERPRINT_VERSION",
    "cluster_fingerprint",
    "technology_library_fingerprint",
]

#: Version mixed into every fingerprint; bump to invalidate result stores
#: when the analysis semantics change incompatibly.
FINGERPRINT_VERSION = 1

#: Config fields that affect execution placement, not results.
_EXECUTION_ONLY_FIELDS = frozenset({"max_workers", "cache_dir"})


@lru_cache(maxsize=8)
def _preset_fingerprint(name: str) -> str:
    return library_fingerprint(build_default_library(name))


def technology_library_fingerprint(technology: Any) -> str:
    """Library fingerprint of a preset name or :class:`Technology` instance."""
    if isinstance(technology, Technology):
        return library_fingerprint(build_default_library(technology))
    return _preset_fingerprint(str(technology))


def _config_payload(config: AnalysisConfig) -> dict:
    return {
        f.name: wire.encode(getattr(config, f.name))
        for f in dataclasses.fields(config)
        if f.name not in _EXECUTION_ONLY_FIELDS
    }


def cluster_fingerprint(
    spec: NoiseClusterSpec,
    config: AnalysisConfig,
    *,
    library_fingerprint: str,
) -> str:
    """The dedup identity of one cluster analysis job."""
    return content_hash(
        {
            "fingerprint_version": FINGERPRINT_VERSION,
            "library": library_fingerprint,
            "cluster": wire.encode(spec),
            "config": _config_payload(config),
        }
    )
