"""Canonical experiment configurations reproducing the paper's evaluation.

Each function returns the :class:`~repro.noise.cluster.NoiseClusterSpec` (or
a list of them) for one experiment of the paper:

* :func:`table1_cluster`  -- Table 1: one rising aggressor plus a noise glitch
  propagating through the victim 2-input NAND driver on two 500 um parallel
  metal-4 wires (0.13 um technology).
* :func:`table2_cluster`  -- Table 2: two in-phase rising aggressors plus the
  propagating glitch (victim wire sandwiched between the aggressors).
* :func:`figure1_cluster` -- the structural macromodel example of Figure 1
  (same topology as Table 2 but without the propagated glitch).
* :func:`accuracy_sweep_clusters` -- the "several noise clusters in 0.13 um
  and 90 nm technology" accuracy claim: a sweep over aggressor counts, wire
  lengths, victim cells and glitch conditions.

The absolute numbers produced on this substrate differ from the paper's
(different devices, different extractor), but each experiment preserves the
comparison the paper makes; see EXPERIMENTS.md for measured values.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterator, List, Optional, Tuple

from .interconnect.geometry import ParallelBusGeometry, WireSpec
from .noise.cluster import AggressorSpec, InputGlitchSpec, NoiseClusterSpec, VictimSpec
from .technology.library import CellLibrary, build_default_library
from .units import ps

__all__ = [
    "table1_cluster",
    "table2_cluster",
    "figure1_cluster",
    "accuracy_sweep_clusters",
    "speedup_clusters",
    "default_library",
    "paper_session",
]


def default_library(technology: str = "cmos130") -> CellLibrary:
    """The standard-cell library used by the paper-reproduction experiments."""
    return build_default_library(technology)


def paper_session(technology: str = "cmos130", **config_overrides):
    """A ready-made :class:`repro.api.NoiseAnalysisSession` for one technology.

    The canonical way to run the paper's experiments::

        session = paper_session("cmos130", methods=("golden", "macromodel"))
        report = session.analyze(table1_cluster())

    ``config_overrides`` are :class:`repro.api.AnalysisConfig` fields.
    """
    # Local import keeps ``import repro.experiments`` light for spec-only use.
    from .api import AnalysisConfig, NoiseAnalysisSession

    return NoiseAnalysisSession(default_library(technology), AnalysisConfig(**config_overrides))


def table1_cluster(
    *,
    length_um: float = 500.0,
    layer_index: int = 4,
    num_segments: int = 10,
) -> NoiseClusterSpec:
    """Table 1: injected + propagated noise on two coupled 500 um M4 wires.

    The victim driver is a minimum-strength 2-input NAND holding its output
    low; a falling glitch arrives on one NAND input (the propagated noise)
    while the neighbouring aggressor net -- driven by an inverter -- switches
    low-to-high, injecting crosstalk noise through the coupling capacitance.
    The glitch and the aggressor transition are timed so that the two noise
    contributions overlap, which is the worst case the paper analyses.
    """
    geometry = ParallelBusGeometry.two_parallel_wires(
        length_um=length_um,
        layer_index=layer_index,
        victim_name="victim",
        aggressor_name="aggressor",
    )
    return NoiseClusterSpec(
        victim=VictimSpec(
            net="victim",
            driver_cell="NAND2_X1",
            output_high=False,
            input_glitch=InputGlitchSpec(height=0.95, width=ps(250), start_time=ps(150)),
            receiver_cell="INV_X1",
        ),
        aggressors=[
            AggressorSpec(
                net="aggressor",
                driver_cell="INV_X2",
                rising=True,
                input_transition=ps(40),
                switch_time=ps(200),
            )
        ],
        geometry=geometry,
        num_segments=num_segments,
        name="table1_injected_plus_propagated",
    )


def table2_cluster(
    *,
    length_um: float = 500.0,
    layer_index: int = 4,
    num_segments: int = 10,
) -> NoiseClusterSpec:
    """Table 2: worst-case overlap of two in-phase aggressors and a glitch.

    The victim wire runs between two aggressor wires; both aggressor drivers
    switch low-to-high at the same instant (in phase) while the propagated
    glitch goes through the victim NAND2 driver.
    """
    geometry = ParallelBusGeometry.victim_between_aggressors(
        length_um=length_um,
        layer_index=layer_index,
        victim_name="victim",
        aggressor_names=("aggr1", "aggr2"),
    )
    aggressor = AggressorSpec(
        net="aggr1",
        driver_cell="INV_X2",
        rising=True,
        input_transition=ps(40),
        switch_time=ps(200),
    )
    return NoiseClusterSpec(
        victim=VictimSpec(
            net="victim",
            driver_cell="NAND2_X1",
            output_high=False,
            input_glitch=InputGlitchSpec(height=0.95, width=ps(300), start_time=ps(150)),
            receiver_cell="INV_X1",
        ),
        aggressors=[aggressor, replace(aggressor, net="aggr2")],
        geometry=geometry,
        num_segments=num_segments,
        name="table2_two_inphase_aggressors",
    )


def figure1_cluster(**kwargs) -> NoiseClusterSpec:
    """Figure 1: the victim + two coupled aggressors macromodel topology.

    Structurally identical to the Table 2 cluster but without the propagated
    input glitch -- it exercises exactly the circuit drawn in Figure 1 of the
    paper (VCCS victim, two Thevenin aggressors, coupled driving-point
    model).
    """
    spec = table2_cluster(**kwargs)
    victim = VictimSpec(
        net=spec.victim.net,
        driver_cell=spec.victim.driver_cell,
        output_high=spec.victim.output_high,
        input_glitch=None,
        receiver_cell=spec.victim.receiver_cell,
        receiver_pin=spec.victim.receiver_pin,
    )
    return NoiseClusterSpec(
        victim=victim,
        aggressors=spec.aggressors,
        geometry=spec.geometry,
        num_segments=spec.num_segments,
        name="figure1_macromodel_topology",
    )


@dataclass(frozen=True)
class SweepCase:
    """One configuration of the accuracy sweep."""

    label: str
    technology: str
    spec: NoiseClusterSpec


def _sweep_geometry(num_aggressors: int, length_um: float, layer_index: int) -> ParallelBusGeometry:
    """Victim with 1..4 aggressors: neighbours first, then second neighbours."""
    if num_aggressors == 1:
        wires = [WireSpec("aggr1", length_um), WireSpec("victim", length_um)]
    elif num_aggressors == 2:
        wires = [
            WireSpec("aggr1", length_um),
            WireSpec("victim", length_um),
            WireSpec("aggr2", length_um),
        ]
    elif num_aggressors == 3:
        wires = [
            WireSpec("aggr3", length_um),
            WireSpec("aggr1", length_um),
            WireSpec("victim", length_um),
            WireSpec("aggr2", length_um),
        ]
    else:
        wires = [
            WireSpec("aggr3", length_um),
            WireSpec("aggr1", length_um),
            WireSpec("victim", length_um),
            WireSpec("aggr2", length_um),
            WireSpec("aggr4", length_um),
        ]
    return ParallelBusGeometry(wires=wires, layer_index=layer_index, name=f"sweep_{num_aggressors}agg")


def accuracy_sweep_clusters(
    *,
    technologies: Tuple[str, ...] = ("cmos130", "cmos90"),
    quick: bool = False,
) -> List[SweepCase]:
    """The cluster configurations behind the paper's accuracy claim.

    The sweep varies the technology, the number of aggressors, the wire
    length, the victim driver cell, the victim quiet level / aggressor
    direction and the presence of a propagated glitch.  With ``quick=True`` a
    reduced but still representative subset is returned (used by the unit
    tests; the benchmark uses the full list).
    """
    cases: List[SweepCase] = []

    configurations = [
        # (num_aggressors, length_um, victim_cell, victim_high, agg_cell, rising, glitch)
        (1, 500.0, "NAND2_X1", False, "INV_X2", True, True),
        (1, 300.0, "INV_X1", False, "INV_X1", True, False),
        (2, 500.0, "NAND2_X1", False, "INV_X2", True, True),
        (2, 700.0, "NOR2_X1", True, "INV_X2", False, True),
        (3, 400.0, "AOI21_X1", False, "INV_X1", True, False),
        (4, 600.0, "NAND2_X2", False, "INV_X4", True, True),
        (2, 1000.0, "OAI21_X1", False, "BUF_X2", True, False),
        (1, 400.0, "NAND3_X1", False, "INV_X2", True, True),
    ]
    if quick:
        configurations = [configurations[0], configurations[2], configurations[3]]

    for technology in technologies:
        vdd = 1.2 if technology == "cmos130" else 1.0
        for (n_agg, length, victim_cell, victim_high, agg_cell, rising, with_glitch) in configurations:
            geometry = _sweep_geometry(n_agg, length, layer_index=4)
            glitch = (
                InputGlitchSpec(height=0.75 * vdd, width=ps(250), start_time=ps(150))
                if with_glitch
                else None
            )
            aggressors = [
                AggressorSpec(
                    net=f"aggr{i + 1}",
                    driver_cell=agg_cell,
                    rising=rising if not victim_high else False,
                    input_transition=ps(40),
                    switch_time=ps(200),
                )
                for i in range(n_agg)
            ]
            spec = NoiseClusterSpec(
                victim=VictimSpec(
                    net="victim",
                    driver_cell=victim_cell,
                    output_high=victim_high,
                    input_glitch=glitch,
                    receiver_cell="INV_X1",
                ),
                aggressors=aggressors,
                geometry=geometry,
                num_segments=8,
                name=f"sweep_{technology}_{victim_cell}_{n_agg}agg_{int(length)}um",
            )
            label = (
                f"{technology} {victim_cell} {n_agg} aggr x {agg_cell} "
                f"{int(length)}um {'glitch' if with_glitch else 'xtalk-only'}"
            )
            cases.append(SweepCase(label=label, technology=technology, spec=spec))
    return cases


def speedup_clusters(quick: bool = False) -> List[SweepCase]:
    """Cluster set used for the ~20x speed-up measurement (Claim B)."""
    cases = [case for case in accuracy_sweep_clusters(technologies=("cmos130",), quick=quick)]
    return cases
