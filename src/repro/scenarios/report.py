"""Aggregated results of a scenario sweep.

A sweep produces one lightweight :class:`ScenarioResult` per scenario --
scalar glitch metrics per method, NRC verdicts and a structured error field
-- rather than full waveform-carrying cluster reports, so results stay cheap
to ship across process boundaries.  The :class:`SweepReport` aggregates them
into the statistics a characterisation flow actually gates on: worst-case
noise per axis value, NRC failure and error counts, and (when the golden
method ran) method-vs-golden error distributions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..api import wire

__all__ = ["ScenarioResult", "AxisStats", "SweepHealth", "SweepReport"]


@dataclass
class ScenarioResult:
    """Scalar outcome of one scenario (picklable, no waveforms).

    ``peaks`` / ``areas_v_ps`` / ``widths_ps`` are keyed by method name;
    ``nrc_fails`` holds the per-method NRC verdicts when checking was on.
    A failed scenario has ``ok=False``, the structured ``error`` /
    ``traceback_text`` fields set and empty metric dicts.
    """

    scenario_id: str
    axes: Tuple[Tuple[str, str], ...]
    ok: bool = True
    error: str = ""
    traceback_text: str = ""
    peaks: Dict[str, float] = field(default_factory=dict)
    areas_v_ps: Dict[str, float] = field(default_factory=dict)
    widths_ps: Dict[str, float] = field(default_factory=dict)
    nrc_fails: Dict[str, bool] = field(default_factory=dict)
    runtime_seconds: float = 0.0
    #: The scenario's library key (``str(Scenario.session_key())``) -- the
    #: context needed to rebuild the failing session from the report alone.
    session_key: str = ""
    #: ``"Type: message"`` chain of the failure (outermost first); mirrors
    #: :attr:`repro.api.report.ClusterError.cause_chain`.
    error_chain: Tuple[str, ...] = ()
    #: How many executions this scenario consumed (1 = first try).
    attempts: int = 1
    #: Degradation-ladder events when the result came from a lower rung.
    degradation: Tuple[str, ...] = ()
    #: True when the fault-tolerant runner gave up on this scenario after
    #: repeated worker crashes/timeouts (``ok`` is then also False).
    quarantined: bool = False

    def axis_value(self, axis: str) -> Optional[str]:
        for name, value in self.axes:
            if name == axis:
                return value
        return None

    def peak(self, method: str) -> float:
        return self.peaks[method]

    @property
    def fails_nrc(self) -> bool:
        return any(self.nrc_fails.values())


@dataclass
class AxisStats:
    """Noise statistics of all (successful) scenarios sharing one axis value."""

    axis: str
    value: str
    count: int = 0
    errors: int = 0
    nrc_failures: int = 0
    worst_peak: float = 0.0
    worst_scenario: str = ""
    mean_abs_peak: float = 0.0

    def describe(self) -> str:
        return (
            f"{self.axis}={self.value:12s} n={self.count:3d} "
            f"worst={self.worst_peak:+.4f} V (|mean|={self.mean_abs_peak:.4f} V)  "
            f"nrc_fail={self.nrc_failures}  errors={self.errors}"
        )


@dataclass
class SweepHealth:
    """Fault-tolerance bookkeeping of one sweep run.

    Everything the retry/recovery machinery did -- shard retries and
    bisection splits, pool rebuilds after worker crashes, stall timeouts,
    quarantined scenarios, degradation-ladder fallbacks, non-finite
    screens -- lives here, so a sweep that *survived* faults still shows
    exactly what it survived.
    """

    #: Shard resubmissions after a failure (splits not included).
    retries: int = 0
    #: Bisection splits of multi-scenario shards during fault isolation.
    shard_splits: int = 0
    #: Times the worker pool was torn down and rebuilt.
    pool_rebuilds: int = 0
    #: Stall windows in which no shard completed within ``shard_timeout_s``.
    timeouts: int = 0
    #: Pool-breaking worker deaths observed (segfault/OOM-kill class).
    worker_crashes: int = 0
    #: Scenario ids abandoned after exhausting ``max_retries``.
    quarantined: List[str] = field(default_factory=list)
    #: Scenario ids whose result came from a degradation-ladder rung.
    degraded_scenarios: List[str] = field(default_factory=list)
    #: Degradation trigger summary -> occurrence count.
    fallback_triggers: Dict[str, int] = field(default_factory=dict)
    #: Scenario ids rejected by the non-finite metrics screen.
    nonfinite_scenarios: List[str] = field(default_factory=list)
    #: Worker-recycling limit in force (None = workers live forever).
    max_tasks_per_child: Optional[int] = None
    #: Distinct matrix-topology classes the batched linear core factorised
    #: (one entry per structurally distinct base matrix, summed over workers).
    batch_groups: int = 0
    #: Stacked multi-RHS solves performed through shared factorizations.
    batched_solves: int = 0
    #: Factorizations avoided by a shared-cache hit (bit-identical matrix).
    factorizations_saved: int = 0
    #: Human-readable event log, in order of occurrence.
    events: List[str] = field(default_factory=list)

    def note(self, message: str) -> None:
        self.events.append(message)

    @property
    def faults_seen(self) -> bool:
        """Whether any fault-handling machinery actually engaged."""
        return bool(
            self.retries
            or self.shard_splits
            or self.pool_rebuilds
            or self.timeouts
            or self.worker_crashes
            or self.quarantined
            or self.degraded_scenarios
            or self.nonfinite_scenarios
        )

    def to_dict(self) -> Dict:
        return {
            "retries": self.retries,
            "shard_splits": self.shard_splits,
            "pool_rebuilds": self.pool_rebuilds,
            "timeouts": self.timeouts,
            "worker_crashes": self.worker_crashes,
            "quarantined": list(self.quarantined),
            "degraded_scenarios": list(self.degraded_scenarios),
            "fallback_triggers": dict(self.fallback_triggers),
            "nonfinite_scenarios": list(self.nonfinite_scenarios),
            "max_tasks_per_child": self.max_tasks_per_child,
            "batch_groups": self.batch_groups,
            "batched_solves": self.batched_solves,
            "factorizations_saved": self.factorizations_saved,
            "events": list(self.events),
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "SweepHealth":
        """Rebuild the ledger from a :meth:`to_dict` payload."""
        health = cls()
        for name in (
            "retries",
            "shard_splits",
            "pool_rebuilds",
            "timeouts",
            "worker_crashes",
            "batch_groups",
            "batched_solves",
            "factorizations_saved",
        ):
            setattr(health, name, int(payload.get(name, 0)))
        health.quarantined = list(payload.get("quarantined", []))
        health.degraded_scenarios = list(payload.get("degraded_scenarios", []))
        health.fallback_triggers = dict(payload.get("fallback_triggers", {}))
        health.nonfinite_scenarios = list(payload.get("nonfinite_scenarios", []))
        health.max_tasks_per_child = payload.get("max_tasks_per_child")
        health.events = list(payload.get("events", []))
        return health

    def describe(self) -> List[str]:
        lines = [
            "sweep health: "
            f"{self.retries} retries, {self.shard_splits} shard splits, "
            f"{self.pool_rebuilds} pool rebuilds, {self.timeouts} timeouts, "
            f"{self.worker_crashes} worker crashes"
        ]
        if self.quarantined:
            lines.append(f"  quarantined: {', '.join(self.quarantined)}")
        if self.degraded_scenarios:
            lines.append(f"  degraded: {', '.join(self.degraded_scenarios)}")
        if self.nonfinite_scenarios:
            lines.append(f"  non-finite: {', '.join(self.nonfinite_scenarios)}")
        for trigger, count in self.fallback_triggers.items():
            lines.append(f"  fallback x{count}: {trigger}")
        return lines


class SweepReport:
    """Everything a sweep run produced, plus the aggregation helpers."""

    def __init__(
        self,
        results: Sequence[ScenarioResult],
        *,
        methods: Tuple[str, ...],
        elapsed_seconds: float,
        num_workers: int,
        num_shards: int = 0,
        cache_stats: Optional[Dict[str, int]] = None,
        health: Optional[SweepHealth] = None,
    ):
        self.results: List[ScenarioResult] = list(results)
        self.methods = tuple(methods)
        self.elapsed_seconds = elapsed_seconds
        self.num_workers = num_workers
        self.num_shards = num_shards
        #: Aggregated persistent-cache counters summed over all workers
        #: (hits / misses / stores / corrupt_dropped) plus the number of
        #: actual characterisation runs ("characterizations").
        self.cache_stats: Dict[str, int] = dict(cache_stats or {})
        #: Fault-tolerance bookkeeping of the run (always present for runs
        #: through :class:`~repro.scenarios.runner.SweepRunner`).
        self.health: SweepHealth = health if health is not None else SweepHealth()

    # -------------------------------------------------------------- basics

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    @property
    def primary_method(self) -> str:
        return self.methods[0]

    @property
    def ok_results(self) -> List[ScenarioResult]:
        return [result for result in self.results if result.ok]

    @property
    def errors(self) -> List[ScenarioResult]:
        return [result for result in self.results if not result.ok]

    @property
    def nrc_failure_count(self) -> int:
        return sum(1 for result in self.ok_results if result.fails_nrc)

    @property
    def scenarios_per_second(self) -> float:
        if self.elapsed_seconds <= 0:
            return float("inf")
        return len(self.results) / self.elapsed_seconds

    def result(self, scenario_id: str) -> ScenarioResult:
        for result in self.results:
            if result.scenario_id == scenario_id:
                return result
        raise KeyError(f"no scenario {scenario_id!r} in this report")

    # -------------------------------------------------------- aggregations

    def worst_case(self, method: Optional[str] = None) -> ScenarioResult:
        """The successful scenario with the largest |peak| for ``method``."""
        method = method or self.primary_method
        candidates = [result for result in self.ok_results if method in result.peaks]
        if not candidates:
            raise ValueError(f"no successful scenario ran method {method!r}")
        return max(candidates, key=lambda result: abs(result.peaks[method]))

    def by_axis(self, axis: str, method: Optional[str] = None) -> Dict[str, AxisStats]:
        """Per-value statistics along one axis ("corner", "geometry", ...)."""
        method = method or self.primary_method
        stats: Dict[str, AxisStats] = {}
        sums: Dict[str, float] = {}
        for result in self.results:
            value = result.axis_value(axis)
            if value is None:
                continue
            entry = stats.setdefault(value, AxisStats(axis=axis, value=value))
            if not result.ok:
                entry.errors += 1
                continue
            peak = result.peaks.get(method)
            if peak is None:
                continue
            entry.count += 1
            entry.nrc_failures += 1 if result.fails_nrc else 0
            sums[value] = sums.get(value, 0.0) + abs(peak)
            if abs(peak) >= abs(entry.worst_peak):
                entry.worst_peak = peak
                entry.worst_scenario = result.scenario_id
        for value, entry in stats.items():
            if entry.count:
                entry.mean_abs_peak = sums[value] / entry.count
        return dict(sorted(stats.items()))

    def error_distribution(
        self, method: str, reference: str = "golden"
    ) -> Dict[str, float]:
        """|peak error| statistics of ``method`` against ``reference``.

        Returns ``count`` and the mean / p95 / max absolute peak error in
        percent over every successful scenario where both methods ran and
        the reference peak is non-zero.
        """
        errors: List[float] = []
        for result in self.ok_results:
            peak = result.peaks.get(method)
            ref = result.peaks.get(reference)
            if peak is None or ref is None or ref == 0.0:
                continue
            errors.append(abs(100.0 * (peak - ref) / ref))
        if not errors:
            return {"count": 0, "mean_pct": math.nan, "p95_pct": math.nan, "max_pct": math.nan}
        ordered = sorted(errors)
        p95_index = min(len(ordered) - 1, int(math.ceil(0.95 * len(ordered))) - 1)
        return {
            "count": len(ordered),
            "mean_pct": sum(ordered) / len(ordered),
            "p95_pct": ordered[p95_index],
            "max_pct": ordered[-1],
        }

    # -------------------------------------------------------------- export

    def to_json(self) -> Dict:
        """Lossless, versioned JSON payload.

        Carries every :class:`ScenarioResult` (wire-encoded) alongside the
        derived summary keys the sweep benchmark and CI gates already read
        (``num_scenarios``, ``num_errors``, ``health``, ...), so one payload
        serves both the service wire format and the human dashboards.
        :meth:`from_json` rebuilds an equivalent report from it.
        """
        worst: Optional[Dict] = None
        try:
            worst_result = self.worst_case()
            worst = {
                "scenario_id": worst_result.scenario_id,
                "peak": worst_result.peaks[self.primary_method],
            }
        except ValueError:
            pass
        return {
            "schema_version": wire.SCHEMA_VERSION,
            "kind": "sweep_report",
            "results": [wire.encode(result) for result in self.results],
            "num_scenarios": len(self.results),
            "num_errors": len(self.errors),
            "nrc_failures": self.nrc_failure_count,
            "methods": list(self.methods),
            "elapsed_seconds": self.elapsed_seconds,
            "scenarios_per_second": self.scenarios_per_second,
            "num_workers": self.num_workers,
            "num_shards": self.num_shards,
            "cache_stats": dict(self.cache_stats),
            "health": self.health.to_dict(),
            "worst_case": worst,
            "by_corner": {
                value: {
                    "count": stats.count,
                    "worst_peak": stats.worst_peak,
                    "mean_abs_peak": stats.mean_abs_peak,
                    "nrc_failures": stats.nrc_failures,
                    "errors": stats.errors,
                }
                for value, stats in self.by_axis("corner").items()
            },
        }

    @classmethod
    def from_json(cls, payload: Dict) -> "SweepReport":
        """Rebuild a report from its :meth:`to_json` payload."""
        if not isinstance(payload, dict):
            raise wire.WireFormatError(
                f"expected a sweep_report dict, got {type(payload).__name__!r}"
            )
        version = payload.get("schema_version")
        if version != wire.SCHEMA_VERSION:
            raise wire.WireFormatError(
                f"unsupported schema_version {version!r} (this build reads "
                f"version {wire.SCHEMA_VERSION})"
            )
        if payload.get("kind") != "sweep_report":
            raise wire.WireFormatError(
                f"expected a 'sweep_report' payload, got {payload.get('kind')!r}"
            )
        results = [wire.decode(item) for item in payload["results"]]
        for result in results:
            if not isinstance(result, ScenarioResult):
                raise wire.WireFormatError(
                    f"sweep_report result decoded to {type(result).__name__!r}"
                )
        return cls(
            results,
            methods=tuple(payload["methods"]),
            elapsed_seconds=payload["elapsed_seconds"],
            num_workers=payload["num_workers"],
            num_shards=payload.get("num_shards", 0),
            cache_stats=payload.get("cache_stats"),
            health=SweepHealth.from_dict(payload.get("health", {})),
        )

    def text(self) -> str:
        """Multi-line human-readable sweep summary."""
        lines = [
            f"Scenario sweep: {len(self.results)} scenarios "
            f"({'/'.join(self.methods)}), {self.elapsed_seconds:.2f} s "
            f"({self.scenarios_per_second:.1f} scenarios/s, "
            f"{self.num_workers} worker{'s' if self.num_workers != 1 else ''})",
        ]
        for axis in ("corner", "geometry"):
            stats = self.by_axis(axis)
            if len(stats) > 1:
                for entry in stats.values():
                    lines.append("  " + entry.describe())
        try:
            worst = self.worst_case()
            lines.append(
                f"worst case: {worst.scenario_id} "
                f"peak={worst.peaks[self.primary_method]:+.4f} V"
            )
        except ValueError:
            pass
        if "golden" in self.methods:
            for method in self.methods:
                if method == "golden":
                    continue
                dist = self.error_distribution(method)
                if dist["count"]:
                    lines.append(
                        f"{method} vs golden |peak error|: mean {dist['mean_pct']:.1f}%, "
                        f"p95 {dist['p95_pct']:.1f}%, max {dist['max_pct']:.1f}% "
                        f"(n={dist['count']})"
                    )
        lines.append(
            f"NRC failures: {self.nrc_failure_count} / {len(self.ok_results)}; "
            f"errors: {len(self.errors)} / {len(self.results)}"
        )
        if self.cache_stats:
            cache = self.cache_stats
            lines.append(
                "characterization cache: "
                f"{cache.get('characterizations', 0)} computed, "
                f"{cache.get('disk_hits', 0)} disk hits, "
                f"{cache.get('disk_stores', 0)} stored, "
                f"{cache.get('corrupt_dropped', 0)} corrupt dropped"
            )
        if self.health.batch_groups or self.health.factorizations_saved:
            lines.append(
                f"batched solver: {self.health.batch_groups} matrix groups, "
                f"{self.health.factorizations_saved} factorizations saved, "
                f"{self.health.batched_solves} stacked solves"
            )
        if self.health.faults_seen:
            lines.extend(self.health.describe())
        for result in self.errors:
            lines.append(f"  ERROR {result.scenario_id}: {result.error}")
        return "\n".join(lines)
