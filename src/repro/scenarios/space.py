"""Scenario spaces: corners x geometry x Monte-Carlo variation.

The paper evaluates single scenarios -- one technology, one cluster
topology per table row.  A :class:`ScenarioSpace` turns one such cluster
into a *design-space sweep*: the cross product of

* **process corners** (:mod:`repro.technology.process` --
  fast/slow/typical device scaling with supply and temperature derating),
* **geometry variants** (wire-length, coupled-length and spacing scaling
  of the cluster's :class:`~repro.interconnect.geometry.ParallelBusGeometry`),
* **seeded Monte-Carlo parameter variation** (per-sample device ``kp`` /
  ``vto`` and wire-capacitance perturbations),

expanded into concrete, picklable :class:`Scenario` objects that a
:class:`~repro.scenarios.runner.SweepRunner` shards across worker
processes.

Determinism: Monte-Carlo sample ``i`` of a space seeded with ``seed`` is
drawn from ``numpy.random.default_rng([seed, i])`` -- it depends only on
``(seed, i)``, never on expansion order, worker count or sharding, so the
same space always produces the same scenarios and the same sweep numbers.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..circuit.stamping import SOLVER_BACKENDS
from ..noise.cluster import NoiseClusterSpec
from ..technology.library import CellLibrary, build_default_library
from ..technology.process import (
    ProcessCorner,
    Technology,
    apply_corner,
    get_corner,
    get_technology,
)

__all__ = [
    "GeometryVariant",
    "MonteCarloModel",
    "ParameterVariation",
    "Scenario",
    "ScenarioSpace",
]

#: Threshold floor a Monte-Carlo draw may not cross (enhancement mode).
_MIN_VTO = 0.05


@dataclass(frozen=True)
class GeometryVariant:
    """One point on the wire-geometry axis of a scenario space.

    ``length_scale`` multiplies every wire length of the cluster;
    ``coupling_scale`` additionally scales the *coupled* run length (values
    below 1 model aggressors that run alongside the victim for only part of
    the route); ``spacing_factor`` overrides the bus spacing (2.0 = double
    spacing, roughly halving the coupling capacitance).
    """

    label: str
    length_scale: float = 1.0
    coupling_scale: float = 1.0
    spacing_factor: Optional[float] = None

    def __post_init__(self):
        if not self.label:
            raise ValueError("geometry variant label must be non-empty")
        if self.length_scale <= 0 or self.coupling_scale <= 0:
            raise ValueError(
                f"geometry variant {self.label!r}: scales must be positive"
            )
        if self.coupling_scale > 1.0:
            raise ValueError(
                f"geometry variant {self.label!r}: coupling_scale cannot exceed 1 "
                f"(a wire cannot couple over more than its length)"
            )
        if self.spacing_factor is not None and self.spacing_factor <= 0:
            raise ValueError(
                f"geometry variant {self.label!r}: spacing_factor must be positive"
            )

    def apply_to(self, spec: NoiseClusterSpec) -> NoiseClusterSpec:
        """The cluster spec with this variant's geometry transformation."""
        wires = []
        for wire in spec.geometry.wires:
            length = wire.length_um * self.length_scale
            coupled = wire.coupled_length_um * self.length_scale * self.coupling_scale
            wires.append(
                dataclasses.replace(
                    wire, length_um=length, coupled_length_um=min(length, coupled)
                )
            )
        geometry = dataclasses.replace(
            spec.geometry,
            wires=wires,
            spacing_factor=(
                spec.geometry.spacing_factor
                if self.spacing_factor is None
                else self.spacing_factor
            ),
        )
        return dataclasses.replace(spec, geometry=geometry)


@dataclass(frozen=True)
class ParameterVariation:
    """One sampled set of parameter perturbations (a Monte-Carlo draw).

    ``*_kp_scale`` multiply the device transconductance, ``*_vto_shift``
    are additive threshold shifts (volts) and ``wire_cap_scale`` multiplies
    every metal layer's ground and coupling capacitance.
    """

    nmos_kp_scale: float = 1.0
    pmos_kp_scale: float = 1.0
    nmos_vto_shift: float = 0.0
    pmos_vto_shift: float = 0.0
    wire_cap_scale: float = 1.0

    def __post_init__(self):
        if self.nmos_kp_scale <= 0 or self.pmos_kp_scale <= 0 or self.wire_cap_scale <= 0:
            raise ValueError("variation scales must be positive")

    def apply_to(self, technology: Technology, *, tag: str = "") -> Technology:
        """The technology with this draw's perturbations applied."""
        nmos = technology.nmos.scaled(
            kp=technology.nmos.kp * self.nmos_kp_scale,
            vto=max(_MIN_VTO, technology.nmos.vto + self.nmos_vto_shift),
        )
        pmos = technology.pmos.scaled(
            kp=technology.pmos.kp * self.pmos_kp_scale,
            vto=max(_MIN_VTO, technology.pmos.vto + self.pmos_vto_shift),
        )
        layers = {
            index: dataclasses.replace(
                layer,
                ground_cap_per_um=layer.ground_cap_per_um * self.wire_cap_scale,
                coupling_cap_per_um=layer.coupling_cap_per_um * self.wire_cap_scale,
            )
            for index, layer in technology.metal_layers.items()
        }
        return dataclasses.replace(
            technology,
            name=technology.name + (f"#{tag}" if tag else "#mc"),
            nmos=nmos,
            pmos=pmos,
            metal_layers=layers,
        )


@dataclass(frozen=True)
class MonteCarloModel:
    """Seeded Monte-Carlo axis of a scenario space.

    ``kp_sigma`` is the relative (lognormal) sigma of the device
    transconductance, ``vto_sigma`` the absolute sigma of the threshold
    shift (volts, NMOS and PMOS drawn independently) and ``wire_cap_sigma``
    the relative sigma of the wire capacitance scale.
    """

    num_samples: int
    seed: int = 0
    kp_sigma: float = 0.05
    vto_sigma: float = 0.015
    wire_cap_sigma: float = 0.05

    def __post_init__(self):
        if self.num_samples < 1:
            raise ValueError("num_samples must be at least 1")
        if self.seed < 0:
            raise ValueError("seed must be non-negative")
        for label in ("kp_sigma", "vto_sigma", "wire_cap_sigma"):
            if getattr(self, label) < 0:
                raise ValueError(f"{label} must be non-negative")

    def sample(self, index: int) -> ParameterVariation:
        """Draw sample ``index``; depends only on ``(seed, index)``."""
        if not 0 <= index < self.num_samples:
            raise IndexError(
                f"sample index {index} out of range [0, {self.num_samples})"
            )
        rng = np.random.default_rng([self.seed, index])
        draw = rng.standard_normal(5)
        return ParameterVariation(
            nmos_kp_scale=float(np.exp(draw[0] * self.kp_sigma)),
            pmos_kp_scale=float(np.exp(draw[1] * self.kp_sigma)),
            nmos_vto_shift=float(draw[2] * self.vto_sigma),
            pmos_vto_shift=float(draw[3] * self.vto_sigma),
            wire_cap_scale=float(np.exp(draw[4] * self.wire_cap_sigma)),
        )

    def samples(self) -> Iterator[ParameterVariation]:
        for index in range(self.num_samples):
            yield self.sample(index)


@dataclass(frozen=True)
class Scenario:
    """One fully-specified point of a scenario space.

    Everything needed to analyse the point is derivable from this object
    alone (it is picklable and self-contained), which is what lets the
    sweep runner ship scenarios to worker processes.
    """

    scenario_id: str
    base_technology: str
    corner: ProcessCorner
    cluster: NoiseClusterSpec
    geometry_label: str = "nom"
    variation: Optional[ParameterVariation] = None
    sample_index: Optional[int] = None
    #: Per-scenario circuit-solver backend override ("auto"/"dense"/
    #: "sparse"); ``None`` inherits the sweep config's ``solver_backend``.
    #: Lets one sweep mix backends -- e.g. dense oracle scenarios next to
    #: sparse large-cluster scenarios -- for differential validation.
    solver_backend: Optional[str] = None
    #: Per-scenario PRIMA order override for ``method="reduced"``; ``None``
    #: inherits the sweep config's ``reduction_order``.  Makes the reduction
    #: order a sweepable accuracy/cost axis (see
    #: :attr:`ScenarioSpace.reduction_orders`).
    reduction_order: Optional[int] = None

    @property
    def corner_name(self) -> str:
        return self.corner.name

    def axes(self) -> Tuple[Tuple[str, str], ...]:
        """(axis, value) pairs identifying this scenario for aggregation."""
        sample = "nominal" if self.sample_index is None else f"mc{self.sample_index:03d}"
        axes = (
            ("technology", self.base_technology),
            ("corner", self.corner.name),
            ("geometry", self.geometry_label),
            ("sample", sample),
        )
        if self.solver_backend is not None:
            # Only an explicit override becomes an axis: default scenarios
            # keep their historical axes (and aggregation keys) unchanged.
            axes += (("backend", self.solver_backend),)
        if self.reduction_order is not None:
            axes += (("reduction_order", str(self.reduction_order)),)
        return axes

    def session_key(self) -> Tuple:
        """Hashable key of the library this scenario analyses against.

        Scenarios sharing a key can reuse one characterised session; the
        cluster geometry is deliberately not part of the key (it does not
        change the cell library).
        """
        return (self.base_technology, self.corner, self.variation)

    def derived_technology(self) -> Technology:
        """The corner- and variation-derived technology of this scenario."""
        technology = apply_corner(get_technology(self.base_technology), self.corner)
        if self.variation is not None:
            tag = "mc" if self.sample_index is None else f"mc{self.sample_index:03d}"
            technology = self.variation.apply_to(technology, tag=tag)
        return technology

    def build_library(self) -> CellLibrary:
        """A standard-cell library in this scenario's derived technology."""
        return build_default_library(self.derived_technology())


@dataclass
class ScenarioSpace:
    """The cross product of corner, geometry and Monte-Carlo axes.

    ``corners`` accepts names from
    :data:`~repro.technology.process.PROCESS_CORNERS` or custom
    :class:`~repro.technology.process.ProcessCorner` objects (custom corners
    are registered under their own name in the scenario ids).
    """

    base: NoiseClusterSpec
    technology: str = "cmos130"
    corners: Sequence[Union[str, ProcessCorner]] = ("tt",)
    geometry: Sequence[GeometryVariant] = (GeometryVariant("nom"),)
    monte_carlo: Optional[MonteCarloModel] = None
    name: str = ""
    #: Optional solver-backend override stamped onto every expanded
    #: scenario; ``None`` (default) lets the sweep config decide.
    solver_backend: Optional[str] = None
    #: Optional PRIMA-order axis for ``method="reduced"`` sweeps: each value
    #: expands into its own scenario (crossed with corners, geometry and
    #: Monte-Carlo), so one sweep characterises the accuracy/cost knee of
    #: the reduction.  ``None`` keeps the config's single order.
    reduction_orders: Optional[Sequence[int]] = None

    def __post_init__(self):
        if not self.corners:
            raise ValueError("a scenario space needs at least one corner")
        if not self.geometry:
            raise ValueError("a scenario space needs at least one geometry variant")
        labels = [variant.label for variant in self.geometry]
        if len(set(labels)) != len(labels):
            raise ValueError("geometry variant labels must be unique")
        # Resolve names eagerly so typos fail at construction, not mid-sweep.
        resolved = tuple(get_corner(corner) for corner in self.corners)
        corner_names = [corner.name for corner in resolved]
        if len(set(corner_names)) != len(corner_names):
            raise ValueError("corner names must be unique")
        if (
            self.solver_backend is not None
            and self.solver_backend not in SOLVER_BACKENDS
        ):
            raise ValueError(
                f"unknown solver_backend {self.solver_backend!r}; "
                f"valid: None or one of {SOLVER_BACKENDS}"
            )
        if self.reduction_orders is not None:
            orders = tuple(int(order) for order in self.reduction_orders)
            if not orders:
                raise ValueError("reduction_orders must be None or non-empty")
            if any(order < 1 for order in orders):
                raise ValueError(
                    f"reduction orders must be at least 1, got {orders}"
                )
            if len(set(orders)) != len(orders):
                raise ValueError("reduction orders must be unique")
            self.reduction_orders = orders
        get_technology(self.technology)
        self.corners = resolved
        self.geometry = tuple(self.geometry)
        if not self.name:
            self.name = self.base.name

    def __len__(self) -> int:
        samples = self.monte_carlo.num_samples if self.monte_carlo else 1
        orders = len(self.reduction_orders) if self.reduction_orders else 1
        return len(self.corners) * len(self.geometry) * orders * samples

    def resolved_corners(self) -> Tuple[ProcessCorner, ...]:
        """The corner axis as :class:`ProcessCorner` objects.

        ``__post_init__`` already resolved every name, so ``get_corner`` is
        a passthrough here -- it exists to narrow the declared
        ``Union[str, ProcessCorner]`` field type for checkers and for any
        caller mutating ``corners`` after construction.
        """
        return tuple(get_corner(corner) for corner in self.corners)

    def expand(self) -> List[Scenario]:
        """All scenarios of the space, in deterministic axis-major order."""
        scenarios: List[Scenario] = []
        order_axis: Tuple[Optional[int], ...] = (
            tuple(self.reduction_orders) if self.reduction_orders else (None,)
        )
        for corner in self.resolved_corners():
            for variant in self.geometry:
                cluster = variant.apply_to(self.base)
                for order in order_axis:
                    prefix = (
                        f"{self.name}/{self.technology}/{corner.name}/{variant.label}"
                    )
                    if order is not None:
                        prefix += f"/q{order}"
                    if self.monte_carlo is None:
                        scenarios.append(
                            Scenario(
                                scenario_id=prefix,
                                base_technology=self.technology,
                                corner=corner,
                                cluster=cluster,
                                geometry_label=variant.label,
                                solver_backend=self.solver_backend,
                                reduction_order=order,
                            )
                        )
                        continue
                    for index in range(self.monte_carlo.num_samples):
                        scenarios.append(
                            Scenario(
                                scenario_id=f"{prefix}/mc{index:03d}",
                                base_technology=self.technology,
                                corner=corner,
                                cluster=cluster,
                                geometry_label=variant.label,
                                variation=self.monte_carlo.sample(index),
                                sample_index=index,
                                solver_backend=self.solver_backend,
                                reduction_order=order,
                            )
                        )
        return scenarios

    def describe(self) -> str:
        corners = "/".join(corner.name for corner in self.resolved_corners())
        geometry = "/".join(variant.label for variant in self.geometry)
        mc = (
            f", {self.monte_carlo.num_samples} MC samples (seed {self.monte_carlo.seed})"
            if self.monte_carlo
            else ""
        )
        orders = (
            ", reduction orders " + "/".join(str(o) for o in self.reduction_orders)
            if self.reduction_orders
            else ""
        )
        return (
            f"ScenarioSpace '{self.name}' on {self.technology}: "
            f"corners {corners}, geometry {geometry}{orders}{mc} "
            f"-> {len(self)} scenarios"
        )
