"""Fault-tolerant sharded multiprocess execution of scenario sweeps.

The :class:`SweepRunner` takes the scenarios of a
:class:`~repro.scenarios.space.ScenarioSpace`, groups them by the library
they analyse against (same technology + corner + variation), slices the
groups into shards and fans the shards out over a
:class:`~concurrent.futures.ProcessPoolExecutor`.

Worker economics:

* every payload crossing the process boundary is a small picklable value
  (scenarios carry specs and parameter draws, results carry scalar
  metrics -- never waveforms);
* each worker process keeps a per-process session cache keyed by
  :meth:`Scenario.session_key`, so consecutive scenarios against the same
  derived library reuse its characterised models instead of rebuilding
  them;
* with a configured persistent cache (``AnalysisConfig.cache_dir``) the
  characterised models are shared *across* processes and across runs
  through the filesystem, which is what makes a warm parallel sweep
  dramatically faster than a cold serial one.

Fault tolerance (the part a million-cluster sweep cannot live without):

* a failing scenario never aborts the sweep -- the failure is captured as
  a structured error on its :class:`~repro.scenarios.report.ScenarioResult`,
  and with ``AnalysisConfig.degradation`` on, numerical failures first walk
  the :mod:`repro.resilience` ladder (``reduced -> sparse -> dense``);
* a *dying worker* (segfault, OOM kill -- anything that breaks the pool)
  never aborts it either: shards are submitted as individual futures, a
  broken pool is torn down and rebuilt, failed multi-scenario shards are
  bisected to isolate the killer, and singleton suspects are re-run in
  isolation (sole in-flight work) so blame is unambiguous before a
  scenario is quarantined;
* a *hung* scenario is caught by the stall detector: when no shard
  completes within ``shard_timeout_s``, the pool is killed and the
  in-flight shards re-enter the same bisect/isolate cycle;
* retries back off exponentially (``retry_backoff_s`` base, capped), and
  ``max_tasks_per_child`` recycles workers to bound leak accumulation.

Everything the recovery machinery does is recorded in the report's
:class:`~repro.scenarios.report.SweepHealth`.  Retried scenarios re-run
bit-identical computations (Monte-Carlo draws are seeded per sample), so a
sweep that survived faults reports the same numbers for its healthy
scenarios as a fault-free run at any worker count.
"""

from __future__ import annotations

import math
import multiprocessing
import sys
import time
import traceback
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Sequence, Tuple, Union

from .. import faults
from ..api.config import AnalysisConfig
from ..api.report import ClusterError, ClusterReport, exception_chain
from ..api.session import NoiseAnalysisSession
from ..noise.cluster import NoiseClusterSpec
from .report import ScenarioResult, SweepHealth, SweepReport
from .space import Scenario, ScenarioSpace

__all__ = [
    "ClusterJobPayload",
    "SweepRunner",
    "reset_worker_sessions",
    "run_cluster_job",
]

#: Per-process session cache: one characterised session per derived library.
_WORKER_SESSIONS: Dict[Tuple, NoiseAnalysisSession] = {}

#: Keep at most this many sessions alive per worker (a Monte-Carlo sweep
#: creates one distinct library per sample; unbounded growth would hold
#: every characterised model of the whole sweep in one process).
_MAX_WORKER_SESSIONS = 32

#: Upper bound of the exponential retry backoff (seconds).
_MAX_BACKOFF_S = 30.0


def reset_worker_sessions() -> None:
    """Drop this process's session cache.

    Benchmarks call this between timed phases so a "cold" serial run in the
    same process really starts cold; worker processes never need it.
    """
    _WORKER_SESSIONS.clear()


def _session_for_key(key: Tuple, config: AnalysisConfig, build_library) -> NoiseAnalysisSession:
    """Fetch or build the per-process session for a cache key.

    ``build_library`` is only called on a miss; the FIFO eviction bounds
    how many characterised libraries one worker process holds.
    """
    full_key = (key, config)
    session = _WORKER_SESSIONS.get(full_key)
    if session is None:
        if len(_WORKER_SESSIONS) >= _MAX_WORKER_SESSIONS:
            _WORKER_SESSIONS.pop(next(iter(_WORKER_SESSIONS)))
        session = NoiseAnalysisSession(build_library(), config)
        _WORKER_SESSIONS[full_key] = session
    return session


def _session_for(scenario: Scenario, config: AnalysisConfig) -> NoiseAnalysisSession:
    return _session_for_key(scenario.session_key(), config, scenario.build_library)


def _worker_cache_totals() -> Dict[str, int]:
    """Summed cache counters over every session alive in this process."""
    totals = {
        "characterizations": 0,
        "disk_hits": 0,
        "disk_misses": 0,
        "disk_stores": 0,
        "corrupt_dropped": 0,
        "store_failures": 0,
        "batch_groups": 0,
        "batched_solves": 0,
        "factorizations_saved": 0,
    }
    for session in _WORKER_SESSIONS.values():
        totals["characterizations"] += session.characterizer.stats.miss_count()
        disk = session.characterizer.disk_cache
        if disk is not None:
            snapshot = disk.stats.snapshot()
            totals["disk_hits"] += snapshot["hits"]
            totals["disk_misses"] += snapshot["misses"]
            totals["disk_stores"] += snapshot["stores"]
            totals["corrupt_dropped"] += snapshot["corrupt_dropped"]
            totals["store_failures"] += snapshot["store_failures"]
        solver_cache = getattr(session, "solver_cache", None)
        if solver_cache is not None:
            for key, value in solver_cache.counters().items():
                totals[key] += value
    return totals


def _nonfinite_entries(result: ScenarioResult) -> List[str]:
    """``"method.metric=value"`` entries for every non-finite scalar metric."""
    entries = []
    for label, metrics in (
        ("peak", result.peaks),
        ("area_v_ps", result.areas_v_ps),
        ("width_ps", result.widths_ps),
    ):
        for method, value in metrics.items():
            if not math.isfinite(value):
                entries.append(f"{method}.{label}={value!r}")
    return entries


def _analyze_scenario(scenario: Scenario, config: AnalysisConfig) -> ScenarioResult:
    """Run one scenario; failures become structured per-scenario errors."""
    start = time.perf_counter()
    session_key = str(scenario.session_key())
    degradation: Tuple[str, ...] = ()
    try:
        with faults.scenario_context(scenario.scenario_id):
            faults.fire("scenario")
            if scenario.solver_backend is not None:
                # Per-scenario backend override: the derived config keys its
                # own session, so mixed-backend sweeps never share solver
                # instances across backends (characterised models still flow
                # through the persistent disk cache, which is
                # backend-independent).
                config = config.replace(solver_backend=scenario.solver_backend)
            if scenario.reduction_order is not None:
                # Same pattern for the PRIMA-order axis of method="reduced".
                config = config.replace(reduction_order=scenario.reduction_order)
            session = _session_for(scenario, config)
            if config.degradation:
                report = session.analyze_resilient(
                    scenario.cluster, label=scenario.scenario_id
                )
                degradation = report.degradation
            else:
                report = session.analyze(scenario.cluster, label=scenario.scenario_id)
            result = ScenarioResult(
                scenario_id=scenario.scenario_id,
                axes=scenario.axes(),
                peaks={name: r.peak for name, r in report.results.items()},
                areas_v_ps={name: r.area_v_ps for name, r in report.results.items()},
                widths_ps={name: r.width_ps for name, r in report.results.items()},
                nrc_fails={name: c.fails for name, c in report.nrc_checks.items()},
                runtime_seconds=time.perf_counter() - start,
                session_key=session_key,
                degradation=degradation,
            )
            if faults.fire("metrics") == "nan":
                result.peaks = {name: float("nan") for name in result.peaks}
    except Exception as exc:
        return ScenarioResult(
            scenario_id=scenario.scenario_id,
            axes=scenario.axes(),
            ok=False,
            error=f"{type(exc).__name__}: {exc}",
            traceback_text=traceback.format_exc(),
            error_chain=exception_chain(exc),
            session_key=session_key,
            degradation=degradation,
            runtime_seconds=time.perf_counter() - start,
        )
    # Non-finite screen: a NaN/Inf metric must never reach worst-case
    # aggregation as a "successful" number -- it would either poison the
    # max() or silently vanish from it.
    bad = _nonfinite_entries(result)
    if bad:
        return ScenarioResult(
            scenario_id=scenario.scenario_id,
            axes=scenario.axes(),
            ok=False,
            error=f"NonFiniteMetrics: {', '.join(bad)}",
            error_chain=(f"NonFiniteMetrics: {', '.join(bad)}",),
            session_key=session_key,
            degradation=degradation,
            runtime_seconds=time.perf_counter() - start,
        )
    return result


def _run_shard(
    payload: Tuple[Tuple[Tuple[int, Scenario], ...], AnalysisConfig]
) -> Tuple[List[Tuple[int, ScenarioResult]], Dict[str, int]]:
    """Worker entry point: run one shard, report results + cache deltas."""
    indexed_scenarios, config = payload
    before = _worker_cache_totals()
    results = [
        (index, _analyze_scenario(scenario, config))
        for index, scenario in indexed_scenarios
    ]
    after = _worker_cache_totals()
    # Session eviction can drop counters between snapshots; clamp so the
    # aggregate never goes negative.
    delta = {key: max(0, after[key] - before.get(key, 0)) for key in after}
    return results, delta


@dataclass(frozen=True)
class ClusterJobPayload:
    """One service job crossing the process boundary: analyse one cluster.

    Everything here is picklable under the spawn start method.
    ``technology`` is either a preset name (``"cmos130"``) or a full
    :class:`~repro.technology.process.Technology` instance -- whatever
    :func:`~repro.technology.library.build_default_library` accepts.
    """

    label: str
    technology: object
    spec: NoiseClusterSpec
    config: AnalysisConfig


def run_cluster_job(payload: ClusterJobPayload) -> Tuple[Dict, Dict[str, int]]:
    """Worker entry point of the analysis service: run one cluster job.

    Returns the resulting :class:`~repro.api.report.ClusterReport` as its
    wire payload (never the object -- the wire format is the service's
    process-boundary contract) plus the persistent-cache counter delta this
    job caused, mirroring :func:`_run_shard`.  Analysis failures come back
    as error reports; only worker death escapes.
    """
    from ..characterization.diskcache import technology_fingerprint
    from ..technology.library import build_default_library
    from ..technology.process import Technology

    technology = payload.technology
    if isinstance(technology, Technology):
        session_key: Tuple = ("service", technology_fingerprint(technology))
    else:
        session_key = ("service", str(technology))
    before = _worker_cache_totals()
    start = time.perf_counter()
    try:
        with faults.scenario_context(payload.label):
            faults.fire("scenario")
            session = _session_for_key(
                session_key, payload.config, lambda: build_default_library(technology)
            )
            if payload.config.degradation:
                report = session.analyze_resilient(payload.spec, label=payload.label)
            else:
                report = session.analyze(payload.spec, label=payload.label)
    except Exception as exc:
        report = ClusterReport(
            label=payload.label,
            spec=payload.spec,
            results={},
            runtime_seconds=time.perf_counter() - start,
            error=ClusterError.from_exception(exc),
        )
    after = _worker_cache_totals()
    delta = {key: max(0, after[key] - before.get(key, 0)) for key in after}
    return report.to_json(), delta


@dataclass
class _WorkItem:
    """One schedulable unit: a shard plus its fault-handling state."""

    shard: Tuple[Tuple[int, Scenario], ...]
    #: Failed attempts charged to this item (isolated singletons only --
    #: blame in a shared pool crash is ambiguous, so only failures observed
    #: while the item was the sole in-flight work count toward quarantine).
    failures: int = 0
    #: How many times this shard has been submitted to a pool.
    submits: int = 0
    #: True while the item runs alone for unambiguous fault attribution.
    isolated: bool = False


class SweepRunner:
    """Shard a scenario sweep across worker processes and aggregate it.

    Parameters
    ----------
    config:
        The :class:`~repro.api.AnalysisConfig` every scenario is analysed
        with.  Set ``cache_dir`` on it to share characterisation across
        workers and runs; leave ``max_workers`` at 1 (process parallelism
        happens here, thread parallelism inside a worker rarely pays).
    num_workers:
        Worker process count; 1 runs everything in this process (no pool,
        no pickling -- the mode unit tests and baselines use).  The
        fault-tolerance machinery below only applies to pooled runs.
    shard_size:
        Scenarios per shard.  Defaults to spreading the sweep over roughly
        four shards per worker (bounds scheduling overhead while keeping
        the pool busy when shard runtimes differ).
    mp_context:
        Optional :mod:`multiprocessing` context (e.g. a "spawn" context)
        forwarded to the pool.
    max_retries:
        Failed *isolated* attempts a scenario may accumulate before it is
        quarantined (its result becomes a structured
        ``quarantined`` error).  Pool-level failures while other work was
        in flight are not charged -- attribution there is ambiguous.
    shard_timeout_s:
        Stall detector: when no shard completes for this long, the pool is
        assumed wedged (a hung scenario, a deadlocked worker), killed and
        rebuilt, and the in-flight shards re-enter the retry cycle.
        ``None`` (default) disables the detector.
    retry_backoff_s:
        Base of the capped exponential backoff between failure rounds
        (``retry_backoff_s * 2**round``, capped at 30 s).
    max_tasks_per_child:
        Recycle each worker process after this many shards (Python 3.11+,
        spawn/forkserver start methods).  Bounds the damage of slow leaks
        in long sweeps; ``None`` keeps workers alive for the whole run.
    """

    def __init__(
        self,
        config: Optional[AnalysisConfig] = None,
        *,
        num_workers: int = 1,
        shard_size: Optional[int] = None,
        mp_context=None,
        max_retries: int = 2,
        shard_timeout_s: Optional[float] = None,
        retry_backoff_s: float = 0.5,
        max_tasks_per_child: Optional[int] = None,
    ):
        self.config = config or AnalysisConfig()
        if num_workers < 1:
            raise ValueError(f"num_workers must be at least 1, got {num_workers}")
        if shard_size is not None and shard_size < 1:
            raise ValueError(f"shard_size must be at least 1, got {shard_size}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be non-negative, got {max_retries}")
        if shard_timeout_s is not None and not shard_timeout_s > 0:
            raise ValueError(
                f"shard_timeout_s must be None or positive, got {shard_timeout_s}"
            )
        if retry_backoff_s < 0:
            raise ValueError(
                f"retry_backoff_s must be non-negative, got {retry_backoff_s}"
            )
        if max_tasks_per_child is not None and max_tasks_per_child < 1:
            raise ValueError(
                f"max_tasks_per_child must be None or >= 1, got {max_tasks_per_child}"
            )
        self.num_workers = num_workers
        self.shard_size = shard_size
        self.mp_context = mp_context
        self.max_retries = max_retries
        self.shard_timeout_s = shard_timeout_s
        self.retry_backoff_s = retry_backoff_s
        self.max_tasks_per_child = max_tasks_per_child

    # ---------------------------------------------------------------- shards

    def _make_shards(
        self, scenarios: Sequence[Scenario]
    ) -> List[Tuple[Tuple[int, Scenario], ...]]:
        """Group scenarios by session key, then slice into shards.

        Grouping keeps scenarios that share a derived library adjacent, so
        a shard (and therefore a worker) characterises each library at most
        once; the original indices ride along to restore input order.
        """
        order: Dict[Tuple, List[Tuple[int, Scenario]]] = {}
        for index, scenario in enumerate(scenarios):
            order.setdefault(scenario.session_key(), []).append((index, scenario))
        grouped = [pair for group in order.values() for pair in group]

        if self.shard_size is not None:
            size = self.shard_size
        else:
            size = max(1, -(-len(grouped) // (self.num_workers * 4)))
        return [
            tuple(grouped[start:start + size])
            for start in range(0, len(grouped), size)
        ]

    # ------------------------------------------------------------------ pool

    def _new_pool(self, health: SweepHealth) -> ProcessPoolExecutor:
        kwargs = {}
        ctx = self.mp_context
        if self.max_tasks_per_child is not None:
            start_method = getattr(ctx, "_name", None) if ctx is not None else None
            if sys.version_info < (3, 11):
                health.note("max_tasks_per_child ignored: requires Python 3.11+")
            elif start_method == "fork":
                health.note(
                    "max_tasks_per_child ignored: incompatible with the fork "
                    "start method"
                )
            else:
                kwargs["max_tasks_per_child"] = self.max_tasks_per_child
                if ctx is None:
                    # max_tasks_per_child requires spawn/forkserver, but the
                    # platform default context may be fork.
                    ctx = multiprocessing.get_context("spawn")
        return ProcessPoolExecutor(
            max_workers=self.num_workers, mp_context=ctx, **kwargs
        )

    @staticmethod
    def _kill_pool(pool: ProcessPoolExecutor) -> None:
        """Tear a pool down without waiting on (possibly hung) workers.

        ``shutdown(cancel_futures=True)`` alone is not enough: a worker
        stuck in a hung scenario never picks up the poison pill, and an
        interrupted sweep (KeyboardInterrupt) must not leave live worker
        processes behind.  Killing after the shutdown request reaps both.
        """
        try:
            processes = list((getattr(pool, "_processes", None) or {}).values())
        except Exception:  # pragma: no cover - defensive against impl changes
            processes = []
        pool.shutdown(wait=False, cancel_futures=True)
        for process in processes:
            if process.is_alive():
                process.kill()
        for process in processes:
            process.join(timeout=5.0)

    def _backoff(self, failure_round: int, health: SweepHealth) -> None:
        if self.retry_backoff_s <= 0:
            return
        delay = min(self.retry_backoff_s * (2.0 ** failure_round), _MAX_BACKOFF_S)
        health.note(f"backing off {delay:.2f}s before retry round {failure_round + 1}")
        time.sleep(delay)

    # ------------------------------------------------------------------- run

    def run(
        self, scenarios: Union[ScenarioSpace, Sequence[Scenario]]
    ) -> SweepReport:
        """Execute the sweep and aggregate everything into a report.

        ``scenarios`` is a :class:`ScenarioSpace` (expanded here) or an
        already-expanded scenario sequence.  Results keep the input order
        regardless of sharding; the same scenarios with the same seeds
        produce the same report numbers at any worker count -- retries and
        recoveries included, because a retried scenario re-runs the exact
        same computation.
        """
        if isinstance(scenarios, ScenarioSpace):
            scenarios = scenarios.expand()
        scenarios = list(scenarios)
        start = time.perf_counter()
        shards = self._make_shards(scenarios)
        health = SweepHealth(max_tasks_per_child=self.max_tasks_per_child)
        cache_stats: Dict[str, int] = {}
        collected: Dict[int, ScenarioResult] = {}

        if self.num_workers == 1 or len(scenarios) <= 1:
            for shard in shards:
                results, delta = _run_shard((shard, self.config))
                for index, result in results:
                    collected[index] = result
                for key, value in delta.items():
                    cache_stats[key] = cache_stats.get(key, 0) + value
        else:
            self._run_parallel(shards, collected, cache_stats, health)

        # Structural guarantee: every scenario produces a result.  A hole
        # here would be a runner bug -- surface it as a visible error result
        # instead of crashing the aggregation (or silently dropping work).
        for index, scenario in enumerate(scenarios):
            if index not in collected:  # pragma: no cover - defensive
                health.note(f"scenario {scenario.scenario_id} lost by the runner")
                collected[index] = ScenarioResult(
                    scenario_id=scenario.scenario_id,
                    axes=scenario.axes(),
                    ok=False,
                    error="InternalError: scenario produced no result",
                    session_key=str(scenario.session_key()),
                )

        ordered = [collected[index] for index in sorted(collected)]
        for result in ordered:
            if result.degradation:
                health.degraded_scenarios.append(result.scenario_id)
                for event in result.degradation:
                    key = event[:160]
                    health.fallback_triggers[key] = (
                        health.fallback_triggers.get(key, 0) + 1
                    )
            if result.error.startswith("NonFiniteMetrics"):
                health.nonfinite_scenarios.append(result.scenario_id)

        # The batched-solver counters ride the worker cache-delta channel;
        # lift them into the health record (their single home in the report).
        health.batch_groups = cache_stats.pop("batch_groups", 0)
        health.batched_solves = cache_stats.pop("batched_solves", 0)
        health.factorizations_saved = cache_stats.pop("factorizations_saved", 0)

        return SweepReport(
            ordered,
            methods=self.config.methods,
            elapsed_seconds=time.perf_counter() - start,
            num_workers=self.num_workers,
            num_shards=len(shards),
            cache_stats=cache_stats,
            health=health,
        )

    # -------------------------------------------------------------- parallel

    def _run_parallel(
        self,
        shards: List[Tuple[Tuple[int, Scenario], ...]],
        collected: Dict[int, ScenarioResult],
        cache_stats: Dict[str, int],
        health: SweepHealth,
    ) -> None:
        """The fault-tolerant pooled execution loop.

        Shards ride on individual futures.  Completions are harvested with
        ``wait(..., FIRST_COMPLETED)`` so every finished shard resets the
        stall timer; a broken pool or a stall tears the pool down, requeues
        the in-flight work (bisecting multi-scenario shards, sending
        singletons to the isolation queue) and rebuilds.  Isolated
        singletons run as the sole in-flight work, so a failure there is
        unambiguously theirs; ``max_retries`` such failures quarantine the
        scenario.
        """
        pending: Deque[_WorkItem] = deque(_WorkItem(shard) for shard in shards)
        suspects: Deque[_WorkItem] = deque()
        futures: Dict[Future, _WorkItem] = {}
        failure_round = 0
        pool = self._new_pool(health)

        def submit(item: _WorkItem) -> None:
            item.submits += 1
            futures[pool.submit(_run_shard, (item.shard, self.config))] = item

        def collect(
            item: _WorkItem,
            results: List[Tuple[int, ScenarioResult]],
            delta: Dict[str, int],
        ) -> None:
            for index, result in results:
                result.attempts = item.submits
                collected[index] = result
            for key, value in delta.items():
                cache_stats[key] = cache_stats.get(key, 0) + value

        def requeue(item: _WorkItem, cause: str) -> None:
            shard = item.shard
            if len(shard) > 1:
                # Bisect to isolate the killer scenario.  No blame charged:
                # the innocent half must not inherit the failure count.
                mid = len(shard) // 2
                health.shard_splits += 1
                health.note(f"split shard of {len(shard)} after failure ({cause})")
                pending.append(
                    _WorkItem(shard[:mid], failures=item.failures, submits=item.submits)
                )
                pending.append(
                    _WorkItem(shard[mid:], failures=item.failures, submits=item.submits)
                )
                return
            ((index, scenario),) = shard
            health.retries += 1
            if item.isolated:
                # The failure happened while this was the only in-flight
                # work -- unambiguously this scenario's fault.
                item.failures += 1
                if item.failures > self.max_retries:
                    health.quarantined.append(scenario.scenario_id)
                    health.note(
                        f"quarantined {scenario.scenario_id} after "
                        f"{item.failures} isolated failures ({cause})"
                    )
                    collected[index] = ScenarioResult(
                        scenario_id=scenario.scenario_id,
                        axes=scenario.axes(),
                        ok=False,
                        error=(
                            f"Quarantined: {item.failures} isolated failed "
                            f"attempts; last cause: {cause}"
                        ),
                        error_chain=(f"Quarantined: {cause}",),
                        session_key=str(scenario.session_key()),
                        attempts=item.submits,
                        quarantined=True,
                    )
                    return
            else:
                health.note(
                    f"suspect {scenario.scenario_id} after pool failure ({cause})"
                )
            item.isolated = False
            suspects.append(item)

        def handle_pool_failure(cause: str) -> None:
            nonlocal pool, failure_round
            # Harvest stragglers that did complete, requeue the rest.
            for future, item in list(futures.items()):
                try:
                    results, delta = future.result(timeout=0)
                except Exception:
                    requeue(item, cause)
                else:
                    collect(item, results, delta)
            futures.clear()
            self._kill_pool(pool)
            health.pool_rebuilds += 1
            pool = self._new_pool(health)
            self._backoff(failure_round, health)
            failure_round += 1

        try:
            while pending or suspects or futures:
                while pending:
                    submit(pending.popleft())
                if not futures and suspects:
                    # Isolation phase: one suspect at a time, nothing else
                    # in flight, so the next failure has exactly one owner.
                    item = suspects.popleft()
                    item.isolated = True
                    submit(item)
                done, _ = wait(
                    list(futures),
                    timeout=self.shard_timeout_s,
                    return_when=FIRST_COMPLETED,
                )
                if not done:
                    health.timeouts += 1
                    health.note(
                        "stall: no shard completed within "
                        f"{self.shard_timeout_s}s; killing the pool"
                    )
                    handle_pool_failure(
                        f"no completion within shard_timeout_s={self.shard_timeout_s}"
                    )
                    continue
                broken: Optional[str] = None
                for future in done:
                    item = futures.pop(future)
                    try:
                        results, delta = future.result()
                    except Exception as exc:
                        broken = f"{type(exc).__name__}: {exc}"
                        requeue(item, broken)
                    else:
                        collect(item, results, delta)
                if broken is not None:
                    if any(
                        isinstance(f.exception(), BrokenProcessPool)
                        for f in done
                        if f.exception() is not None
                    ):
                        health.worker_crashes += 1
                    handle_pool_failure(broken)
        finally:
            # Always reap the pool -- a KeyboardInterrupt mid-sweep must not
            # leave orphaned worker processes running.
            self._kill_pool(pool)
