"""Sharded multiprocess execution of scenario sweeps.

The :class:`SweepRunner` takes the scenarios of a
:class:`~repro.scenarios.space.ScenarioSpace`, groups them by the library
they analyse against (same technology + corner + variation), slices the
groups into shards and fans the shards out over a
:class:`~concurrent.futures.ProcessPoolExecutor`.

Worker economics:

* every payload crossing the process boundary is a small picklable value
  (scenarios carry specs and parameter draws, results carry scalar
  metrics -- never waveforms);
* each worker process keeps a per-process session cache keyed by
  :meth:`Scenario.session_key`, so consecutive scenarios against the same
  derived library reuse its characterised models instead of rebuilding
  them;
* with a configured persistent cache (``AnalysisConfig.cache_dir``) the
  characterised models are shared *across* processes and across runs
  through the filesystem, which is what makes a warm parallel sweep
  dramatically faster than a cold serial one.

A failing scenario never aborts the sweep: the failure is captured as a
structured error on its :class:`~repro.scenarios.report.ScenarioResult`.
"""

from __future__ import annotations

import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..api.config import AnalysisConfig
from ..api.session import NoiseAnalysisSession
from .report import ScenarioResult, SweepReport
from .space import Scenario, ScenarioSpace

__all__ = ["SweepRunner", "reset_worker_sessions"]

#: Per-process session cache: one characterised session per derived library.
_WORKER_SESSIONS: Dict[Tuple, NoiseAnalysisSession] = {}

#: Keep at most this many sessions alive per worker (a Monte-Carlo sweep
#: creates one distinct library per sample; unbounded growth would hold
#: every characterised model of the whole sweep in one process).
_MAX_WORKER_SESSIONS = 32


def reset_worker_sessions() -> None:
    """Drop this process's session cache.

    Benchmarks call this between timed phases so a "cold" serial run in the
    same process really starts cold; worker processes never need it.
    """
    _WORKER_SESSIONS.clear()


def _session_for(scenario: Scenario, config: AnalysisConfig) -> NoiseAnalysisSession:
    key = (scenario.session_key(), config)
    session = _WORKER_SESSIONS.get(key)
    if session is None:
        if len(_WORKER_SESSIONS) >= _MAX_WORKER_SESSIONS:
            _WORKER_SESSIONS.pop(next(iter(_WORKER_SESSIONS)))
        session = NoiseAnalysisSession(scenario.build_library(), config)
        _WORKER_SESSIONS[key] = session
    return session


def _worker_cache_totals() -> Dict[str, int]:
    """Summed cache counters over every session alive in this process."""
    totals = {
        "characterizations": 0,
        "disk_hits": 0,
        "disk_misses": 0,
        "disk_stores": 0,
        "corrupt_dropped": 0,
        "store_failures": 0,
    }
    for session in _WORKER_SESSIONS.values():
        totals["characterizations"] += session.characterizer.stats.miss_count()
        disk = session.characterizer.disk_cache
        if disk is not None:
            snapshot = disk.stats.snapshot()
            totals["disk_hits"] += snapshot["hits"]
            totals["disk_misses"] += snapshot["misses"]
            totals["disk_stores"] += snapshot["stores"]
            totals["corrupt_dropped"] += snapshot["corrupt_dropped"]
            totals["store_failures"] += snapshot["store_failures"]
    return totals


def _analyze_scenario(scenario: Scenario, config: AnalysisConfig) -> ScenarioResult:
    """Run one scenario; failures become structured per-scenario errors."""
    start = time.perf_counter()
    try:
        if scenario.solver_backend is not None:
            # Per-scenario backend override: the derived config keys its own
            # session, so mixed-backend sweeps never share solver instances
            # across backends (characterised models still flow through the
            # persistent disk cache, which is backend-independent).
            config = config.replace(solver_backend=scenario.solver_backend)
        if scenario.reduction_order is not None:
            # Same pattern for the PRIMA-order axis of method="reduced".
            config = config.replace(reduction_order=scenario.reduction_order)
        session = _session_for(scenario, config)
        report = session.analyze(scenario.cluster, label=scenario.scenario_id)
    except Exception as exc:
        return ScenarioResult(
            scenario_id=scenario.scenario_id,
            axes=scenario.axes(),
            ok=False,
            error=f"{type(exc).__name__}: {exc}",
            traceback_text=traceback.format_exc(),
            runtime_seconds=time.perf_counter() - start,
        )
    return ScenarioResult(
        scenario_id=scenario.scenario_id,
        axes=scenario.axes(),
        peaks={name: result.peak for name, result in report.results.items()},
        areas_v_ps={name: result.area_v_ps for name, result in report.results.items()},
        widths_ps={name: result.width_ps for name, result in report.results.items()},
        nrc_fails={name: check.fails for name, check in report.nrc_checks.items()},
        runtime_seconds=time.perf_counter() - start,
    )


def _run_shard(
    payload: Tuple[Tuple[Tuple[int, Scenario], ...], AnalysisConfig]
) -> Tuple[List[Tuple[int, ScenarioResult]], Dict[str, int]]:
    """Worker entry point: run one shard, report results + cache deltas."""
    indexed_scenarios, config = payload
    before = _worker_cache_totals()
    results = [
        (index, _analyze_scenario(scenario, config))
        for index, scenario in indexed_scenarios
    ]
    after = _worker_cache_totals()
    # Session eviction can drop counters between snapshots; clamp so the
    # aggregate never goes negative.
    delta = {key: max(0, after[key] - before.get(key, 0)) for key in after}
    return results, delta


class SweepRunner:
    """Shard a scenario sweep across worker processes and aggregate it.

    Parameters
    ----------
    config:
        The :class:`~repro.api.AnalysisConfig` every scenario is analysed
        with.  Set ``cache_dir`` on it to share characterisation across
        workers and runs; leave ``max_workers`` at 1 (process parallelism
        happens here, thread parallelism inside a worker rarely pays).
    num_workers:
        Worker process count; 1 runs everything in this process (no pool,
        no pickling -- the mode unit tests and baselines use).
    shard_size:
        Scenarios per shard.  Defaults to spreading the sweep over roughly
        four shards per worker (bounds scheduling overhead while keeping
        the pool busy when shard runtimes differ).
    mp_context:
        Optional :mod:`multiprocessing` context (e.g. a "spawn" context)
        forwarded to the pool.
    """

    def __init__(
        self,
        config: Optional[AnalysisConfig] = None,
        *,
        num_workers: int = 1,
        shard_size: Optional[int] = None,
        mp_context=None,
    ):
        self.config = config or AnalysisConfig()
        if num_workers < 1:
            raise ValueError(f"num_workers must be at least 1, got {num_workers}")
        if shard_size is not None and shard_size < 1:
            raise ValueError(f"shard_size must be at least 1, got {shard_size}")
        self.num_workers = num_workers
        self.shard_size = shard_size
        self.mp_context = mp_context

    # ---------------------------------------------------------------- shards

    def _make_shards(
        self, scenarios: Sequence[Scenario]
    ) -> List[Tuple[Tuple[int, Scenario], ...]]:
        """Group scenarios by session key, then slice into shards.

        Grouping keeps scenarios that share a derived library adjacent, so
        a shard (and therefore a worker) characterises each library at most
        once; the original indices ride along to restore input order.
        """
        order: Dict[Tuple, List[Tuple[int, Scenario]]] = {}
        for index, scenario in enumerate(scenarios):
            order.setdefault(scenario.session_key(), []).append((index, scenario))
        grouped = [pair for group in order.values() for pair in group]

        if self.shard_size is not None:
            size = self.shard_size
        else:
            size = max(1, -(-len(grouped) // (self.num_workers * 4)))
        return [
            tuple(grouped[start:start + size])
            for start in range(0, len(grouped), size)
        ]

    # ------------------------------------------------------------------- run

    def run(
        self, scenarios: Union[ScenarioSpace, Sequence[Scenario]]
    ) -> SweepReport:
        """Execute the sweep and aggregate everything into a report.

        ``scenarios`` is a :class:`ScenarioSpace` (expanded here) or an
        already-expanded scenario sequence.  Results keep the input order
        regardless of sharding; the same scenarios with the same seeds
        produce the same report numbers at any worker count.
        """
        if isinstance(scenarios, ScenarioSpace):
            scenarios = scenarios.expand()
        scenarios = list(scenarios)
        start = time.perf_counter()
        shards = self._make_shards(scenarios)
        cache_stats: Dict[str, int] = {}
        indexed_results: List[Tuple[int, ScenarioResult]] = []

        if self.num_workers == 1 or len(scenarios) <= 1:
            for shard in shards:
                results, delta = _run_shard((shard, self.config))
                indexed_results.extend(results)
                for key, value in delta.items():
                    cache_stats[key] = cache_stats.get(key, 0) + value
        else:
            with ProcessPoolExecutor(
                max_workers=self.num_workers, mp_context=self.mp_context
            ) as pool:
                payloads = [(shard, self.config) for shard in shards]
                for results, delta in pool.map(_run_shard, payloads):
                    indexed_results.extend(results)
                    for key, value in delta.items():
                        cache_stats[key] = cache_stats.get(key, 0) + value

        indexed_results.sort(key=lambda pair: pair[0])
        return SweepReport(
            [result for _, result in indexed_results],
            methods=self.config.methods,
            elapsed_seconds=time.perf_counter() - start,
            num_workers=self.num_workers,
            num_shards=len(shards),
            cache_stats=cache_stats,
        )
