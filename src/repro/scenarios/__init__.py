"""Scenario sweeps: corners, geometry variants and Monte-Carlo variation.

This package turns a single noise cluster into a design-space sweep and
executes it at scale:

* :class:`ScenarioSpace` expands axes -- process corners
  (:func:`repro.technology.apply_corner`), wire-geometry variants and
  seeded Monte-Carlo parameter variation -- into concrete, picklable
  :class:`Scenario` objects;
* :class:`SweepRunner` shards the scenarios across worker processes with
  per-worker session reuse and (via ``AnalysisConfig.cache_dir``) a
  persistent characterisation cache shared through the filesystem;
* :class:`SweepReport` aggregates per-scenario scalar results into
  worst-case noise per axis value, NRC failure counts and
  method-vs-golden error distributions.

Quick start::

    from repro.api import AnalysisConfig
    from repro.experiments import table1_cluster
    from repro.scenarios import MonteCarloModel, ScenarioSpace, SweepRunner

    space = ScenarioSpace(
        base=table1_cluster(),
        technology="cmos130",
        corners=("tt", "ff", "ss"),
        monte_carlo=MonteCarloModel(num_samples=8, seed=42),
    )
    runner = SweepRunner(
        AnalysisConfig(methods=("macromodel",), cache_dir="auto"),
        num_workers=4,
    )
    report = runner.run(space)
    print(report.text())
"""

from .report import AxisStats, ScenarioResult, SweepHealth, SweepReport
from .runner import SweepRunner, reset_worker_sessions
from .space import (
    GeometryVariant,
    MonteCarloModel,
    ParameterVariation,
    Scenario,
    ScenarioSpace,
)

__all__ = [
    "GeometryVariant",
    "MonteCarloModel",
    "ParameterVariation",
    "Scenario",
    "ScenarioSpace",
    "ScenarioResult",
    "AxisStats",
    "SweepHealth",
    "SweepReport",
    "SweepRunner",
    "reset_worker_sessions",
]
