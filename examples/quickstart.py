#!/usr/bin/env python3
"""Quickstart: analyse one noise cluster with the non-linear macromodel.

This example builds the paper's basic scenario -- a quiet victim net driven
by a 2-input NAND, coupled to a switching aggressor over 500 um of metal 4 --
and compares three ways of computing the total noise glitch at the victim
driving point:

* the golden transistor-level simulation (the "ELDO" reference),
* the paper's non-linear VCCS macromodel,
* the conventional linear-superposition estimate.

Run it from the repository root::

    python examples/quickstart.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.interconnect import ParallelBusGeometry
from repro.noise import (
    AggressorSpec,
    ClusterNoiseAnalyzer,
    InputGlitchSpec,
    NoiseClusterSpec,
    VictimSpec,
)
from repro.technology import build_default_library
from repro.units import ps


def main() -> None:
    # 1. A standard-cell library in the 0.13 um technology preset.
    library = build_default_library("cmos130")
    print(library.summary())
    print()

    # 2. The noise cluster: two 500 um parallel wires on metal 4.  The victim
    #    is held low by a minimum-size NAND2; a falling glitch arrives at one
    #    NAND input while the neighbouring aggressor switches low-to-high.
    geometry = ParallelBusGeometry.two_parallel_wires(length_um=500.0, layer_index=4)
    cluster = NoiseClusterSpec(
        victim=VictimSpec(
            net="victim",
            driver_cell="NAND2_X1",
            output_high=False,
            input_glitch=InputGlitchSpec(height=0.95, width=ps(250), start_time=ps(150)),
            receiver_cell="INV_X1",
        ),
        aggressors=[
            AggressorSpec(
                net="aggressor",
                driver_cell="INV_X2",
                rising=True,
                input_transition=ps(40),
                switch_time=ps(200),
            )
        ],
        geometry=geometry,
        num_segments=10,
        name="quickstart",
    )
    print(cluster.describe())
    print()

    # 3. Run the three analyses and compare them against the golden result.
    analyzer = ClusterNoiseAnalyzer(library)
    results = analyzer.analyze(
        cluster, methods=("golden", "macromodel", "superposition"), dt=ps(1)
    )
    print(analyzer.comparison_table(results))
    print()

    # 4. Check the macromodel glitch against the receiver's noise rejection
    #    curve (the SNA pass/fail criterion).
    check = analyzer.nrc_check(cluster, results["macromodel"], widths=[ps(100), ps(250), ps(500)])
    print(check.describe())

    speedup = results["golden"].runtime_seconds / results["macromodel"].runtime_seconds
    print(f"\nmacromodel speed-up over the transistor-level simulation: {speedup:.1f}x")


if __name__ == "__main__":
    main()
