#!/usr/bin/env python3
"""Quickstart: analyse one noise cluster through the unified session API.

This example builds the paper's basic scenario -- a quiet victim net driven
by a 2-input NAND, coupled to a switching aggressor over 500 um of metal 4 --
and compares three ways of computing the total noise glitch at the victim
driving point:

* the golden transistor-level simulation (the "ELDO" reference),
* the paper's non-linear VCCS macromodel,
* the conventional linear-superposition estimate.

Everything goes through one front door: a ``NoiseAnalysisSession`` built
from a frozen ``AnalysisConfig``.  The methods are resolved by name from the
pluggable registry (``repro.api.list_methods()`` shows what is available),
and the session's report bundles the per-method results with the NRC
verdicts.

Run it from the repository root::

    python examples/quickstart.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.api import AnalysisConfig, NoiseAnalysisSession, list_methods
from repro.interconnect import ParallelBusGeometry
from repro.noise import AggressorSpec, InputGlitchSpec, NoiseClusterSpec, VictimSpec
from repro.technology import build_default_library
from repro.units import ps


def main() -> None:
    # 1. A standard-cell library in the 0.13 um technology preset.
    library = build_default_library("cmos130")
    print(library.summary())
    print()

    # 2. The noise cluster: two 500 um parallel wires on metal 4.  The victim
    #    is held low by a minimum-size NAND2; a falling glitch arrives at one
    #    NAND input while the neighbouring aggressor switches low-to-high.
    geometry = ParallelBusGeometry.two_parallel_wires(length_um=500.0, layer_index=4)
    cluster = NoiseClusterSpec(
        victim=VictimSpec(
            net="victim",
            driver_cell="NAND2_X1",
            output_high=False,
            input_glitch=InputGlitchSpec(height=0.95, width=ps(250), start_time=ps(150)),
            receiver_cell="INV_X1",
        ),
        aggressors=[
            AggressorSpec(
                net="aggressor",
                driver_cell="INV_X2",
                rising=True,
                input_transition=ps(40),
                switch_time=ps(200),
            )
        ],
        geometry=geometry,
        num_segments=10,
        name="quickstart",
    )
    print(cluster.describe())
    print()

    # 3. One session = one configuration + one shared characterisation cache.
    #    Every registered analysis method is addressable by name.
    print(f"registered analysis methods: {list_methods()}")
    session = NoiseAnalysisSession(
        library,
        AnalysisConfig(
            methods=("golden", "macromodel", "superposition"),
            dt=ps(1),
            check_nrc=True,
            nrc_widths=(ps(100), ps(250), ps(500)),
        ),
    )
    report = session.analyze(cluster)
    print(report.comparison_table())
    print()

    # 4. The report already carries the NRC verdict (the SNA pass/fail
    #    criterion) for every method.
    print(report.nrc_check("macromodel").describe())

    golden = report.result("golden")
    macromodel = report.result("macromodel")
    speedup = golden.runtime_seconds / macromodel.runtime_seconds
    print(f"\nmacromodel speed-up over the transistor-level simulation: {speedup:.1f}x")


if __name__ == "__main__":
    main()
