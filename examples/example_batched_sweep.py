#!/usr/bin/env python
"""Monte-Carlo sweep through the batched linear transient core.

A Monte-Carlo sweep solves a *family* of circuits that share one matrix
topology and differ only in sampled element values and drives.  The
batched solver core (``repro.circuit.batched``) fingerprints every linear
transient, factorises each distinct base matrix once, steps same-matrix
scenarios with stacked right-hand sides, and keeps the factorizations in a
session-owned LRU cache so repeated analyses pay nothing.

This example runs the same 8-sample Monte-Carlo sweep twice -- once with
``AnalysisConfig(batching="auto")`` (the default) and once with
``batching="off"`` -- prints the batch counters the sweep health record
collected from every worker, and shows that batching is numerically
invisible: the worst-case glitches agree exactly.

Run with::

    PYTHONPATH=src python examples/example_batched_sweep.py [--workers N]
"""

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.api import AnalysisConfig
from repro.experiments import table1_cluster
from repro.scenarios import MonteCarloModel, ScenarioSpace, SweepRunner


def run_sweep(space, *, batching, workers):
    config = AnalysisConfig(
        methods=("macromodel",),
        vccs_grid=5,
        check_nrc=False,
        batching=batching,
    )
    runner = SweepRunner(config, num_workers=workers)
    return runner.run(space)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int, default=2, help="worker processes")
    parser.add_argument(
        "--samples", type=int, default=8, help="Monte-Carlo samples"
    )
    args = parser.parse_args(argv)

    space = ScenarioSpace(
        base=table1_cluster(),
        technology="cmos130",
        monte_carlo=MonteCarloModel(num_samples=args.samples, seed=7),
    )
    print(space.describe())

    print("\n--- batching='auto' (default) ---")
    batched = run_sweep(space, batching="auto", workers=args.workers)
    print(batched.text())
    health = batched.health
    print(
        f"\nbatch counters: {health.batch_groups} matrix groups, "
        f"{health.batched_solves} stacked solves, "
        f"{health.factorizations_saved} factorizations saved"
    )

    print("\n--- batching='off' (reference) ---")
    sequential = run_sweep(space, batching="off", workers=args.workers)

    worst_batched = batched.worst_case()
    worst_sequential = sequential.worst_case()
    delta = abs(
        worst_batched.peaks["macromodel"] - worst_sequential.peaks["macromodel"]
    )
    print(
        f"worst glitch batched={worst_batched.peaks['macromodel']:+.6f} V, "
        f"sequential={worst_sequential.peaks['macromodel']:+.6f} V "
        f"(|delta|={delta:.2e})"
    )
    if delta > 1e-12:
        print("FAILED: batching changed the numbers", file=sys.stderr)
        return 1
    print("=> batching saved work without moving a single waveform")
    return 1 if batched.errors else 0


if __name__ == "__main__":
    sys.exit(main())
