#!/usr/bin/env python
"""Corner + Monte-Carlo sweep of the paper's Table-1 noise cluster.

The paper reports one number per table row -- one technology, nominal
devices.  This example asks the production question instead: *across
process corners and die-to-die variation, how bad does the noise glitch
get, and does it ever break the receiver?*

It expands a 3-corner x 8-sample scenario space over the Table-1 cluster
(one rising aggressor plus a propagated glitch on two coupled 500 um M4
wires), analyses every scenario with the paper's macromodel through a
sharded multiprocess :class:`repro.scenarios.SweepRunner`, and prints the
per-corner worst cases.  The persistent characterisation cache
(``cache_dir="auto"`` -> ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``) makes
the second run of this script dramatically faster than the first: every
corner/sample library is characterised once per cache lifetime, not once
per run.

Run with::

    PYTHONPATH=src python examples/example_corner_sweep.py [--workers N]
"""

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.api import AnalysisConfig
from repro.experiments import table1_cluster
from repro.scenarios import MonteCarloModel, ScenarioSpace, SweepRunner


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int, default=4, help="worker processes")
    parser.add_argument(
        "--samples", type=int, default=8, help="Monte-Carlo samples per corner"
    )
    parser.add_argument(
        "--cache-dir",
        default="auto",
        help="persistent cache directory (default: auto -> ~/.cache/repro)",
    )
    args = parser.parse_args(argv)

    space = ScenarioSpace(
        base=table1_cluster(),
        technology="cmos130",
        corners=("tt", "ff", "ss"),
        monte_carlo=MonteCarloModel(num_samples=args.samples, seed=42),
    )
    print(space.describe())

    config = AnalysisConfig(
        methods=("macromodel",),
        vccs_grid=11,
        check_nrc=True,
        cache_dir=args.cache_dir,
    )
    runner = SweepRunner(config, num_workers=args.workers)
    report = runner.run(space)

    print()
    print(report.text())
    print()
    worst = report.worst_case()
    print(
        f"=> design verdict: worst glitch {worst.peaks['macromodel']:+.4f} V "
        f"at {worst.scenario_id}; "
        f"{report.nrc_failure_count} of {len(report)} scenarios violate the "
        f"receiver noise rejection curve"
    )
    return 1 if report.errors else 0


if __name__ == "__main__":
    sys.exit(main())
