#!/usr/bin/env python3
"""Table-2 style worst-case analysis: two in-phase aggressors + a glitch.

Beyond reproducing Table 2, this example sweeps the relative phase between
the two aggressors to show how the worst case (the paper's "worst-case
overlapping") emerges when the aggressor transitions and the propagated
glitch align, and how the macromodel tracks the golden simulation across the
whole alignment range -- which is what makes it usable inside a worst-case
search.

Run from the repository root::

    python examples/multi_aggressor_worst_case.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from dataclasses import replace

from repro.experiments import paper_session, table2_cluster
from repro.noise import NoiseClusterSpec
from repro.units import ps


def main() -> None:
    session = paper_session(
        "cmos130", methods=("golden", "macromodel"), dt=ps(1), check_nrc=False
    )

    base = table2_cluster()
    print(base.describe())
    print()

    # 1. The in-phase worst case of Table 2.
    report = session.analyze(base)
    print("Table 2 - worst-case overlap of two in-phase aggressors + glitch")
    print(report.comparison_table())
    print()

    # 2. Sweep the skew of the second aggressor: the total noise peaks when
    #    both aggressors switch together, and the macromodel follows the
    #    golden trend closely enough to locate the same worst case.  The
    #    sweep is one batched `analyze_many` call: the session characterises
    #    the shared cells once and analyses the points in parallel.
    skews_ps = (0, 50, 100, 200, 400)
    specs = []
    for skew_ps in skews_ps:
        aggressors = [
            base.aggressors[0],
            replace(base.aggressors[1], switch_time=base.aggressors[1].switch_time + ps(skew_ps)),
        ]
        specs.append(
            NoiseClusterSpec(
                victim=base.victim,
                aggressors=aggressors,
                geometry=base.geometry,
                num_segments=base.num_segments,
                name=f"table2_skew_{skew_ps}ps",
            )
        )
    reports = session.analyze_many(specs, max_workers=4)

    print("Aggressor skew sweep (second aggressor delayed by 'skew'):")
    print(f"{'skew (ps)':>10s} {'golden peak (V)':>16s} {'macromodel peak (V)':>20s} {'err %':>7s}")
    for skew_ps, swept in zip(skews_ps, reports):
        golden_peak = swept.result("golden").peak
        macro_peak = swept.result("macromodel").peak
        error = 100.0 * (macro_peak - golden_peak) / golden_peak
        print(f"{skew_ps:10d} {golden_peak:16.3f} {macro_peak:20.3f} {error:7.1f}")

    print(
        "\nThe worst case is the in-phase alignment (skew = 0), as the paper"
        " assumes; skewing the second aggressor reduces the total glitch."
    )


if __name__ == "__main__":
    main()
