#!/usr/bin/env python3
"""Full-design static noise analysis with the macromodel engine.

The paper's conclusion calls for "a complete methodology for static noise
analysis based on our macromodel"; this example runs that flow end-to-end on
a small gate-level design:

1. build a design (instances + nets) and annotate it with coupling
   parasitics from a SPEF-like file,
2. extract the noise cluster around every victim net,
3. analyse each cluster with the non-linear macromodel,
4. check every glitch against the receiver's noise rejection curve and
   print the violation report.

Steps 2-4 are one call on the unified session API:
``NoiseAnalysisSession.run_design``.

Run from the repository root::

    python examples/full_design_sna.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.api import AnalysisConfig, NoiseAnalysisSession
from repro.noise import InputGlitchSpec
from repro.sna import ClusterExtractor, Design, ExtractionConfig, annotate_design
from repro.technology import build_default_library
from repro.units import ps

PARASITICS = """\
// coupling parasitics extracted for the bus region
*NET bus0 *LENGTH 600 *LAYER 4
*NET bus1 *LENGTH 600 *LAYER 4
*NET bus2 *LENGTH 600 *LAYER 4
*NET sel  *LENGTH 250 *LAYER 3
*COUPLING bus0 bus1 550
*COUPLING bus1 bus2 550
*COUPLING bus2 sel  180
"""


def build_design(library) -> Design:
    """A small bus-like design with three long coupled nets."""
    design = Design("bus_demo", library)
    for name in ("d0", "d1", "d2", "en", "s"):
        design.add_primary_input(name)

    # Drivers of the long bus nets: a weak NAND2, a stronger inverter and an
    # AOI cell -- deliberately mixed drive strengths so the report shows a
    # spread of noise levels.
    design.add_instance("drv0", "NAND2_X1", {"A": "d0", "B": "en", "Z": "bus0"})
    design.add_instance("drv1", "INV_X4", {"A": "d1", "Z": "bus1"})
    design.add_instance("drv2", "AOI21_X1", {"A": "d2", "B": "en", "C": "s", "Z": "bus2"})
    design.add_instance("drv3", "INV_X1", {"A": "s", "Z": "sel"})

    # Receivers at the far end of every net.
    design.add_instance("rcv0", "INV_X1", {"A": "bus0", "Z": "q0"})
    design.add_instance("rcv1", "NAND2_X1", {"A": "bus1", "B": "en", "Z": "q1"})
    design.add_instance("rcv2", "INV_X1", {"A": "bus2", "Z": "q2"})
    design.add_instance("rcv3", "INV_X1", {"A": "sel", "Z": "q3"})
    return design


def main() -> None:
    library = build_default_library("cmos130")
    design = build_design(library)
    annotate_design(design, PARASITICS)
    print(design.summary())
    print()

    # bus0 is known (from an upstream propagation pass) to receive a glitch
    # at its driver input; the other nets see crosstalk only.
    extractor = ClusterExtractor(
        design,
        config=ExtractionConfig(num_segments=8),
        input_glitches={"bus0": InputGlitchSpec(height=0.9, width=ps(250), start_time=ps(150))},
    )
    print("Extracted noise clusters:")
    for extraction in extractor.extract_clusters():
        aggressors = ", ".join(extraction.aggressor_nets) or "none"
        print(f"  victim {extraction.victim_net}: aggressors [{aggressors}]")
    print()

    session = NoiseAnalysisSession(
        library, AnalysisConfig(methods=("macromodel",), dt=ps(2), check_nrc=True)
    )
    report = session.run_design(design, extractor=extractor)
    print(report.text())

    if report.violations:
        print("\nNets to fix (spacing, shielding, or upsizing the holding driver):")
        for violation in report.violations:
            check = violation.nrc_check()
            print(f"  - {violation.victim_net} (margin {check.margin:+.3f} V)")
    if report.errors:
        print("\nClusters that failed to analyse (no verdict -- NOT clean):")
        for failed in report.errors:
            print(f"  - {failed.victim_net or failed.label}: {failed.error.summary()}")
    if report.ok:
        print("\nNo NRC violations: the design is noise-clean under the worst-case assumptions.")
    engine = report.engine_statistics()
    print(
        f"\ndedicated-engine totals: {engine.num_time_points} time points, "
        f"{engine.newton_iterations} Newton iterations, {engine.runtime_seconds * 1e3:.1f} ms"
    )


if __name__ == "__main__":
    main()
