#!/usr/bin/env python3
"""Reproduce Table 1 of the paper: injected + propagated noise combination.

The paper's Table 1 compares the total noise glitch (peak and area) at the
victim driving point computed by circuit simulation (ELDO), by linear
superposition of the separately-evaluated injected and propagated noise, and
by the proposed non-linear macromodel.  This example regenerates that table
on the reproduction substrate and also prints the component breakdown that
explains *why* superposition underestimates the combined glitch.

Run from the repository root::

    python examples/table1_injected_plus_propagated.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.experiments import paper_session, table1_cluster
from repro.noise import compare_results
from repro.units import ps


def main() -> None:
    cluster = table1_cluster()
    print(cluster.describe())
    print()

    session = paper_session(
        "cmos130",
        methods=("golden", "superposition", "macromodel"),
        dt=ps(1),
        check_nrc=False,
    )
    report = session.analyze(cluster)

    golden = report.result("golden")
    superposition = report.result("superposition")
    macromodel = report.result("macromodel")
    sup_err = compare_results(golden, superposition)
    mac_err = compare_results(golden, macromodel)

    print("Table 1 - injected and propagated noise combination")
    print(f"{'Noise':12s} {'golden':>10s} {'superpos.':>10s} {'err%':>7s} {'macromodel':>11s} {'err%':>7s}")
    print(
        f"{'Peak (V)':12s} {golden.peak:10.3f} {superposition.peak:10.3f} "
        f"{sup_err['peak_error_pct']:7.1f} {macromodel.peak:11.3f} {mac_err['peak_error_pct']:7.1f}"
    )
    print(
        f"{'Area (V*ps)':12s} {golden.area_v_ps:10.1f} {superposition.area_v_ps:10.1f} "
        f"{sup_err['area_error_pct']:7.1f} {macromodel.area_v_ps:11.1f} {mac_err['area_error_pct']:7.1f}"
    )
    print()

    injected = superposition.details["injected_metrics"]
    propagated = superposition.details["propagated_metrics"]
    print("Why superposition fails (component view):")
    print(f"  injected-only peak   : {injected.peak:.3f} V")
    print(f"  propagated-only peak : {propagated.peak:.3f} V")
    print(f"  linear sum of peaks  : {injected.peak + propagated.peak:.3f} V")
    print(f"  true combined peak   : {golden.peak:.3f} V")
    print(
        "  -> the victim driver's holding current saturates as the output is\n"
        "     pushed away from the rail, so the real combination is super-linear."
    )


if __name__ == "__main__":
    main()
