#!/usr/bin/env python
"""Analysis as a service: a two-revision ECO loop against the daemon.

Boots the persistent :class:`repro.service.AnalysisServer` in this process,
submits a three-cluster design revision, then submits an *ECO revision* in
which only one cluster's bus geometry changed.  The server diffs the
revision by cluster fingerprint against its result store, recomputes only
the changed cluster and merges the rest back from the store -- each cluster
in the merged report annotated ``reused`` or ``recomputed``.

The point of the exercise: in an ECO flow the cost of re-signing-off noise
is proportional to the size of the *change*, not the size of the design.

Run with::

    PYTHONPATH=src python examples/example_service_eco.py [--workers N]

``--workers 0`` (the default) analyses on an in-process thread; ``N > 0``
spawns a real worker pool, the daemon's production configuration.
"""

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.api import AnalysisConfig
from repro.experiments import figure1_cluster
from repro.service import ServiceClient, start_server_in_thread


def revision(eco=False):
    """The design as ``label -> cluster spec``; the ECO grows one bus."""
    return {
        "bus_short": figure1_cluster(length_um=200.0, num_segments=3),
        "bus_mid": figure1_cluster(length_um=350.0 if eco else 300.0, num_segments=3),
        "bus_long": figure1_cluster(length_um=400.0, num_segments=3),
    }


def show(title, result):
    print(f"\n=== {title} ===")
    for report in result.report:
        print(f"  {report.summary()}  [{report.provenance}]")
    print(f"  reused: {sorted(result.reused)}  recomputed: {sorted(result.recomputed)}")


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--workers", type=int, default=0,
        help="worker processes (0 = in-process thread)",
    )
    args = parser.parse_args(argv)

    config = AnalysisConfig(
        methods=("macromodel",), vccs_grid=5, check_nrc=False, dt=4e-12
    )
    handle = start_server_in_thread(config=config, num_workers=args.workers)
    try:
        with ServiceClient(handle.address) as client:
            print(f"daemon up at {handle.address} "
                  f"(server {client.hello['server_version']}, "
                  f"protocol v{client.hello['protocol_version']})")

            first = client.submit_design(
                revision(), design_name="ecochip-rev1",
                on_progress=lambda e: print(
                    f"  [{e['completed']}/{e['total']}] {e['label']}: {e['provenance']}"
                ),
            )
            show("revision 1 (full design, cold store)", first)

            second = client.submit_design(revision(eco=True), design_name="ecochip-rev2")
            show("revision 2 (ECO: bus_mid grew 300 -> 350 um)", second)

            status = client.status()
            dedup = status["dedup"]
            print("\n=== daemon status ===")
            print(f"  jobs: {status['jobs']}")
            print(f"  dedup: {dedup['hits']} hits / {dedup['misses']} misses "
                  f"(hit rate {dedup['hit_rate']:.0%}, {dedup['entries']} stored)")
            print(f"  worker crashes: {status['health']['worker_crashes']}, "
                  f"pool rebuilds: {status['health']['pool_rebuilds']}")

            ok = (
                sorted(second.recomputed) == ["bus_mid"]
                and sorted(second.reused) == ["bus_long", "bus_short"]
                and status["jobs"]["lost"] == 0
            )
            print(
                "\n=> ECO verdict: re-sign-off touched "
                f"{len(second.recomputed)} of {len(second.report)} clusters"
            )
            return 0 if ok else 1
    finally:
        handle.stop()


if __name__ == "__main__":
    sys.exit(main())
