"""Tests for the unit helpers."""

import pytest

from repro import units


def test_time_conversions_round_trip():
    assert units.to_ps(units.ps(123.0)) == pytest.approx(123.0)
    assert units.to_ns(units.ns(4.5)) == pytest.approx(4.5)
    assert units.ns(1.0) == pytest.approx(1000.0 * units.ps(1.0))
    assert units.us(1.0) == pytest.approx(1e-6)


def test_capacitance_conversions():
    assert units.fF(1000.0) == pytest.approx(units.pF(1.0))
    assert units.to_fF(units.fF(37.0)) == pytest.approx(37.0)


def test_resistance_and_length():
    assert units.kohm(2.0) == pytest.approx(2000.0)
    assert units.ohm(5.0) == 5.0
    assert units.um(1000.0) == pytest.approx(1e-3)
    assert units.nm(130.0) == pytest.approx(0.13e-6)
    assert units.to_um(units.um(42.0)) == pytest.approx(42.0)


def test_voltage_current_helpers():
    assert units.mV(250.0) == pytest.approx(0.25)
    assert units.to_mV(0.345) == pytest.approx(345.0)
    assert units.uA(3.0) == pytest.approx(3e-6)
    assert units.mA(2.0) == pytest.approx(2e-3)


def test_noise_area_unit():
    assert units.to_v_ps(units.v_ps(174.3)) == pytest.approx(174.3)


def test_thermal_voltage():
    vt = units.thermal_voltage()
    assert 0.024 < vt < 0.027
    assert units.thermal_voltage(600.0) == pytest.approx(2.0 * vt, rel=1e-6)
