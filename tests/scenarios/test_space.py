"""ScenarioSpace expansion: axes, determinism, picklability."""

import pickle

import pytest

from repro.experiments import figure1_cluster
from repro.scenarios import (
    GeometryVariant,
    MonteCarloModel,
    ParameterVariation,
    Scenario,
    ScenarioSpace,
)
from repro.technology import ProcessCorner, get_technology


@pytest.fixture(scope="module")
def base():
    return figure1_cluster(length_um=300.0, num_segments=4)


class TestGeometryVariant:
    def test_scales_lengths_and_coupling(self, base):
        variant = GeometryVariant("short", length_scale=0.5, coupling_scale=0.8)
        derived = variant.apply_to(base)
        for wire, orig in zip(derived.geometry.wires, base.geometry.wires):
            assert wire.length_um == pytest.approx(orig.length_um * 0.5)
            assert wire.coupled_length_um == pytest.approx(
                orig.coupled_length_um * 0.5 * 0.8
            )
        # The original spec is untouched.
        assert base.geometry.wires[0].length_um == 300.0

    def test_spacing_override(self, base):
        derived = GeometryVariant("spread", spacing_factor=2.0).apply_to(base)
        assert derived.geometry.spacing_factor == 2.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"label": ""},
            {"label": "x", "length_scale": 0.0},
            {"label": "x", "coupling_scale": 1.5},
            {"label": "x", "spacing_factor": -1.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            GeometryVariant(**kwargs)


class TestMonteCarlo:
    def test_samples_are_deterministic_and_order_free(self):
        model = MonteCarloModel(num_samples=8, seed=7)
        assert model.sample(3) == model.sample(3)
        assert model.sample(3) == MonteCarloModel(num_samples=100, seed=7).sample(3)
        assert model.sample(3) != model.sample(4)
        assert model.sample(0) != MonteCarloModel(num_samples=8, seed=8).sample(0)

    def test_sample_index_bounds(self):
        model = MonteCarloModel(num_samples=2)
        with pytest.raises(IndexError):
            model.sample(2)

    def test_variation_applies_to_technology(self):
        base = get_technology("cmos130")
        variation = ParameterVariation(
            nmos_kp_scale=1.1, pmos_kp_scale=0.9, nmos_vto_shift=0.02,
            wire_cap_scale=1.2,
        )
        derived = variation.apply_to(base, tag="mc007")
        assert derived.nmos.kp == pytest.approx(base.nmos.kp * 1.1)
        assert derived.pmos.kp == pytest.approx(base.pmos.kp * 0.9)
        assert derived.nmos.vto == pytest.approx(base.nmos.vto + 0.02)
        assert derived.metal_layers[4].coupling_cap_per_um == pytest.approx(
            base.metal_layers[4].coupling_cap_per_um * 1.2
        )
        assert derived.name.endswith("#mc007")

    def test_sigma_zero_is_nominal(self):
        model = MonteCarloModel(num_samples=1, kp_sigma=0, vto_sigma=0, wire_cap_sigma=0)
        assert model.sample(0) == ParameterVariation()


class TestScenarioSpace:
    def test_cross_product_size_and_unique_ids(self, base):
        space = ScenarioSpace(
            base=base,
            corners=("tt", "ff", "ss"),
            geometry=(GeometryVariant("nom"), GeometryVariant("short", length_scale=0.5)),
            monte_carlo=MonteCarloModel(num_samples=4, seed=1),
        )
        scenarios = space.expand()
        assert len(scenarios) == len(space) == 3 * 2 * 4
        ids = [scenario.scenario_id for scenario in scenarios]
        assert len(set(ids)) == len(ids)
        corners = {scenario.corner_name for scenario in scenarios}
        assert corners == {"tt", "ff", "ss"}

    def test_no_monte_carlo_axis(self, base):
        space = ScenarioSpace(base=base, corners=("tt", "ss"))
        scenarios = space.expand()
        assert len(scenarios) == 2
        assert all(s.variation is None and s.sample_index is None for s in scenarios)
        assert scenarios[0].axes()[-1] == ("sample", "nominal")

    def test_expansion_is_reproducible(self, base):
        def build():
            return ScenarioSpace(
                base=base,
                corners=("tt",),
                monte_carlo=MonteCarloModel(num_samples=3, seed=11),
            ).expand()

        first, second = build(), build()
        assert [s.scenario_id for s in first] == [s.scenario_id for s in second]
        assert [s.variation for s in first] == [s.variation for s in second]

    def test_custom_corner_objects(self, base):
        corner = ProcessCorner("hot", temperature_c=125.0)
        space = ScenarioSpace(base=base, corners=(corner,))
        scenario = space.expand()[0]
        assert scenario.corner_name == "hot"
        technology = scenario.derived_technology()
        assert technology.nmos.kp < get_technology("cmos130").nmos.kp

    def test_validation(self, base):
        with pytest.raises(ValueError):
            ScenarioSpace(base=base, corners=())
        with pytest.raises(ValueError):
            ScenarioSpace(base=base, geometry=())
        with pytest.raises(ValueError):
            ScenarioSpace(
                base=base, geometry=(GeometryVariant("a"), GeometryVariant("a"))
            )
        with pytest.raises(ValueError):
            ScenarioSpace(base=base, corners=("tt", "tt"))
        with pytest.raises(KeyError):
            ScenarioSpace(base=base, corners=("nosuch",))
        with pytest.raises(KeyError):
            ScenarioSpace(base=base, technology="nosuch")


class TestReductionAxis:
    def test_orders_multiply_the_space(self, base):
        space = ScenarioSpace(
            base=base,
            corners=("tt", "ss"),
            reduction_orders=(4, 8, 12),
            monte_carlo=MonteCarloModel(num_samples=2, seed=5),
        )
        scenarios = space.expand()
        assert len(scenarios) == len(space) == 2 * 3 * 2
        ids = [scenario.scenario_id for scenario in scenarios]
        assert len(set(ids)) == len(ids)
        assert {s.reduction_order for s in scenarios} == {4, 8, 12}

    def test_order_appears_in_id_and_axes(self, base):
        space = ScenarioSpace(base=base, corners=("tt",), reduction_orders=(8,))
        scenario = space.expand()[0]
        assert "/q8" in scenario.scenario_id
        assert ("reduction_order", "8") in scenario.axes()
        assert "reduction orders 8" in space.describe()

    def test_no_axis_when_unset(self, base):
        scenario = ScenarioSpace(base=base, corners=("tt",)).expand()[0]
        assert scenario.reduction_order is None
        assert all(name != "reduction_order" for name, _ in scenario.axes())
        assert "/q" not in scenario.scenario_id

    @pytest.mark.parametrize("orders", [(), (0,), (8, 8)])
    def test_validation(self, base, orders):
        with pytest.raises(ValueError):
            ScenarioSpace(base=base, corners=("tt",), reduction_orders=orders)


class TestScenario:
    def test_scenarios_are_picklable(self, base):
        space = ScenarioSpace(
            base=base,
            corners=("ff",),
            monte_carlo=MonteCarloModel(num_samples=1, seed=3),
        )
        scenario = space.expand()[0]
        clone = pickle.loads(pickle.dumps(scenario))
        assert clone.scenario_id == scenario.scenario_id
        assert clone.variation == scenario.variation
        assert clone.cluster.name == scenario.cluster.name
        assert clone.derived_technology() == scenario.derived_technology()

    def test_derived_technology_composes_corner_and_variation(self, base):
        space = ScenarioSpace(
            base=base,
            corners=("ff",),
            monte_carlo=MonteCarloModel(num_samples=1, seed=3),
        )
        scenario = space.expand()[0]
        technology = scenario.derived_technology()
        corner_only = Scenario(
            scenario_id="x",
            base_technology="cmos130",
            corner=scenario.corner,
            cluster=base,
        ).derived_technology()
        variation = scenario.variation
        assert technology.nmos.kp == pytest.approx(
            corner_only.nmos.kp * variation.nmos_kp_scale
        )
        assert "@ff" in technology.name and "#mc000" in technology.name

    def test_session_key_ignores_geometry(self, base):
        space = ScenarioSpace(
            base=base,
            corners=("tt",),
            geometry=(GeometryVariant("nom"), GeometryVariant("half", length_scale=0.5)),
        )
        first, second = space.expand()
        assert first.session_key() == second.session_key()
        assert first.geometry_label != second.geometry_label
